#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting, perf smoke.
#
# Usage: scripts/ci.sh
#
# Everything runs offline against the vendored shims (see README.md);
# no network or extra tooling beyond the Rust toolchain is required.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace tests"
cargo test -q --workspace

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "==> perf smoke: n=10 all-to-all schedule (time-bounded)"
timeout 300 cargo test --release -q -p cubecomm --test perf_smoke -- --ignored \
    n10_all_to_all_completes_within_bound

echo "==> perf smoke: n=12 router transpose (time-bounded)"
timeout 300 cargo test --release -q -p cubecomm --test perf_smoke -- --ignored \
    n12_router_transpose_completes_within_bound

echo "==> perf smoke: n=10 fieldmap exchange sweep (time-bounded)"
timeout 300 cargo test --release -q -p cubetranspose --test perf_smoke -- --ignored

echo "==> router figures: CSVs must match committed baselines at every thread count"
fig_tmp="$(mktemp -d)"
trap 'rm -rf "$fig_tmp"' EXIT
for threads in 1 default; do
    rm -rf "$fig_tmp"/*
    if [ "$threads" = default ]; then
        env -u CUBEBENCH_THREADS cargo run --release -q -p cubebench --bin figures -- \
            --csv "$fig_tmp" fig14b fig16 fig17 fig18 >/dev/null
    else
        CUBEBENCH_THREADS="$threads" cargo run --release -q -p cubebench --bin figures -- \
            --csv "$fig_tmp" fig14b fig16 fig17 fig18 >/dev/null
    fi
    for fig in fig14b fig16 fig17 fig18; do
        diff -u "results/$fig.csv" "$fig_tmp/$fig.csv" \
            || { echo "FAIL: $fig.csv diverges from baseline (CUBEBENCH_THREADS=$threads)"; exit 1; }
    done
done

echo "CI gate passed."
