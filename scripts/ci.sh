#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting, static schedule
# analysis, perf smoke.
#
# Usage: scripts/ci.sh
#
# Everything runs offline against the vendored shims (see README.md);
# no network or extra tooling beyond the Rust toolchain is required.

set -euo pipefail
cd "$(dirname "$0")/.."

# Name every step so a failure reports *which* gate broke, not just a
# bare nonzero exit from somewhere in the script.
CURRENT_STEP="startup"
begin() {
    CURRENT_STEP="$1"
    echo "==> $1"
}
fig_tmp="$(mktemp -d)"
trap 'rm -rf "$fig_tmp"' EXIT
trap 'echo "FAIL: CI step \"$CURRENT_STEP\" failed" >&2' ERR

begin "tier-1: release build"
cargo build --release

begin "tier-1: workspace tests"
cargo test -q --workspace

begin "clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

begin "rustfmt check"
cargo fmt --check

begin "rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

begin "lint policy: no new code outside the allowlisted kernel module"
# The workspace denies the corresponding rustc lint ([workspace.lints]);
# this grep additionally pins the one module-level allow carve-out to
# crates/core/src/local.rs, so a new allow attribute elsewhere fails
# even before clippy sees it.
violations="$(grep -rln 'uns[a]fe' \
    --include='*.rs' crates shims src tests examples 2>/dev/null \
    | grep -v '^crates/core/src/local.rs$' || true)"
if [ -n "$violations" ]; then
    echo "FAIL: non-allowlisted files mention the denied keyword:" >&2
    echo "$violations" >&2
    false
fi

begin "lint policy: no raw std::sync / std::thread / crossbeam outside cubesync"
# Every crate synchronizes through the cubesync facade so the model
# checker can see (and exhaustively interleave) every visible operation.
# A raw std::sync mutex or spawned thread is invisible to the explorer —
# catch it at review time, not when a heisenbug ships. Allowlisted:
# cubesync itself (the facade's two backends genuinely need the real
# primitives) and the vendored shims.
violations="$(grep -rln -E 'std::sync|std::thread|crossbeam' \
    --include='*.rs' crates src tests examples 2>/dev/null \
    | grep -v '^crates/cubesync/' || true)"
if [ -n "$violations" ]; then
    echo "FAIL: files bypass the cubesync facade with raw sync/thread primitives:" >&2
    echo "$violations" >&2
    false
fi

begin "model-check: exhaustive interleaving of the real concurrency protocols (time-bounded)"
# Rebuilds the facade's dependents against the model backend and
# enumerates schedules of cubesim::par, the cuberun scheduler, and the
# plan cache. The bound is generous — the suite runs in seconds — and
# exists to turn an exploration blow-up into a failure, not a hang.
timeout 300 env RUSTFLAGS="--cfg cubesync_model" \
    cargo test -q -p cubesync --test real_protocols

begin "model-check: seeded-mutation detection suite"
# The checker's own coverage gate: five historical concurrency bugs
# re-introduced into protocol miniatures must each be *caught*.
timeout 300 cargo test -q -p cubesync --test mutations

begin "cubecheck: static invariants of the figure schedules"
cargo run --release -q -p cubecheck -- --all-figures

begin "cubecheck: plan/execution equivalence at 1 and 2 worker threads"
# The equivalence suite loops its executions over with_threads(1|2)
# internally; running it under both ambient settings also pins the
# thread-local default path.
CUBEBENCH_THREADS=1 cargo test --release -q -p cubecheck --test equivalence
CUBEBENCH_THREADS=2 cargo test --release -q -p cubecheck --test equivalence

begin "perf smoke: n=10 all-to-all schedule (time-bounded)"
timeout 300 cargo test --release -q -p cubecomm --test perf_smoke -- --ignored \
    n10_all_to_all_completes_within_bound

begin "perf smoke: n=12 router transpose (time-bounded)"
timeout 300 cargo test --release -q -p cubecomm --test perf_smoke -- --ignored \
    n12_router_transpose_completes_within_bound

begin "perf smoke: n=12 warm plan-cache fetch >= 10x cold build"
timeout 300 cargo test --release -q -p cubecomm --test perf_smoke -- --ignored \
    n12_warm_cache_fetch_beats_cold_build_10x

begin "perf smoke: n=10 fieldmap exchange sweep (time-bounded)"
timeout 300 cargo test --release -q -p cubetranspose --test perf_smoke -- --ignored

begin "local-kernels smoke: in-place transpose no slower than scratch gather"
timeout 300 cargo test --release -q -p cubetranspose --test local_kernels_smoke -- --ignored

begin "allocation gate: in-place path performs zero O(mn)-sized allocations"
# The counting global allocator lives in crates/core/src/local.rs's test
# module (the one unsafe-allowlisted file); the gate arms it around a
# warmed in-place transpose and fails on any matrix-sized allocation.
cargo test --release -q -p cubetranspose --lib alloc_gate_tests

begin "perf smoke: n=14 schedule construction + rule sweep (time-bounded)"
timeout 300 cargo test --release -q -p cubecheck --test perf_smoke -- --ignored \
    planning_and_checking_stay_fast

begin "perf smoke: D3(4,8) Dragonfly planning + replay loop (time-bounded)"
timeout 300 cargo test --release -q -p cubecheck --test perf_smoke -- --ignored \
    dragonfly_planning_and_replay_stay_fast

begin "perf smoke: n=12 SPMD transpose on the virtual-node scheduler (time-bounded)"
timeout 300 cargo test --release -q -p boolcube --test spmd_perf_smoke -- --ignored \
    n12_spmd_transpose_completes_within_bound

begin "SPMD smoke: n=16 (65536 virtual nodes), byte-identical at 1/2/5 workers"
timeout 300 cargo test --release -q -p boolcube --test spmd_perf_smoke -- --ignored \
    n16_virtual_nodes_full_transpose

begin "cubecheck: n=16 plan lint smoke (time-bounded)"
# 65 536-node flight plan, feasible since factored construction; the
# bound catches a return to per-node recomputation.
timeout 300 cargo run --release -q -p cubecheck -- n16-smoke

begin "cubecheck: Swapped Dragonfly planner lint smoke (time-bounded)"
# Both Draper planner variants on a D3(4,8) through the same five rule
# families the cube schedules pass — the topology-generic checker path.
timeout 300 cargo run --release -q -p cubecheck -- dragonfly-smoke

begin "router figures: CSVs must match committed baselines at every thread count"
for threads in 1 default; do
    rm -rf "$fig_tmp"/*
    if [ "$threads" = default ]; then
        env -u CUBEBENCH_THREADS cargo run --release -q -p cubebench --bin figures -- \
            --csv "$fig_tmp" fig14b fig16 fig17 fig18 >/dev/null
    else
        # The threads=1 pass also statically lints the four figures'
        # schedules from inside the figures driver (--lint).
        CUBEBENCH_THREADS="$threads" cargo run --release -q -p cubebench --bin figures -- \
            --lint --csv "$fig_tmp" fig14b fig16 fig17 fig18 >/dev/null
    fi
    for fig in fig14b fig16 fig17 fig18; do
        diff -u "results/$fig.csv" "$fig_tmp/$fig.csv" \
            || { echo "FAIL: $fig.csv diverges from baseline (CUBEBENCH_THREADS=$threads)"; exit 1; }
    done
done

echo "CI gate passed."
