#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting, perf smoke.
#
# Usage: scripts/ci.sh
#
# Everything runs offline against the vendored shims (see README.md);
# no network or extra tooling beyond the Rust toolchain is required.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --release

echo "==> tier-1: workspace tests"
cargo test -q --workspace

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "==> perf smoke: n=10 all-to-all schedule (time-bounded)"
timeout 300 cargo test --release -q -p cubecomm --test perf_smoke -- --ignored

echo "==> perf smoke: n=10 fieldmap exchange sweep (time-bounded)"
timeout 300 cargo test --release -q -p cubetranspose --test perf_smoke -- --ignored

echo "CI gate passed."
