//! Topology abstraction for the communication core.
//!
//! The paper's algorithms are stated on the Boolean *n*-cube, but the
//! simulator (`cubesim`-style flat link slabs), the store-and-forward
//! router, the SPMD mailbox slab and the static schedule checker only
//! need three facts about the machine graph: how many nodes there are,
//! how many ports a node has, and which node sits at the far end of each
//! port. This crate states those facts once, as the [`Topology`] trait,
//! with two families:
//!
//! * [`Hypercube`] — the Boolean `n`-cube. Port `p` of node `x` is the
//!   dimension-`p` link to `x ^ (1 << p)`; every port is wired and every
//!   link uses the same port number on both ends. This is the zero-cost
//!   reference instance: all its methods inline to the bit arithmetic the
//!   flat data planes used before the abstraction existed.
//! * [`SwappedDragonfly`] — Draper's Swapped Dragonfly `D3(K,M)`
//!   (*Four Algorithms on the Swapped Dragonfly*): `K·M` groups of `M`
//!   routers, each group a complete graph, each router holding `K`
//!   global ports wired by the swap rule (global port `j` of router
//!   `(g, r)` leads to group `r·K + j`, router `g / K`).
//!
//! # Port numbering contract
//!
//! Ports are numbered `0..ports()` uniformly across nodes; a flat link
//! slab indexed `node * ports + port` therefore covers every directed
//! link with a fixed stride. A port may be *unwired*
//! ([`Topology::neighbor`] returns `None` — e.g. the swap fixed point of
//! a Dragonfly group); using it is a routing bug. Wired ports are
//! symmetric: if `neighbor(x, p) == Some(y)` then
//! `reverse_port(x, p) == Some(q)` with `neighbor(y, q) == Some(x)` and
//! `reverse_port(y, q) == Some(p)` — every undirected link is seen from
//! both ends, though (unlike the hypercube) not necessarily under the
//! same port number.

use std::fmt;

/// A machine graph: node count, per-node ordered ports, and port →
/// neighbor resolution. See the crate docs for the port numbering
/// contract every implementation must satisfy.
pub trait Topology: Clone + Send + Sync + 'static {
    /// Number of nodes. Node addresses are `0..num_nodes()` as `u64`.
    fn num_nodes(&self) -> usize;

    /// Uniform per-node port count (the stride of flat link slabs).
    fn ports(&self) -> u32;

    /// The node at the far end of `node`'s port `port`, or `None` when
    /// the port is unwired. Implementations may panic on out-of-range
    /// `node` or `port`.
    fn neighbor(&self, node: u64, port: u32) -> Option<u64>;

    /// The port of `neighbor(node, port)` that leads back to `node`
    /// (`None` exactly when the port is unwired).
    fn reverse_port(&self, node: u64, port: u32) -> Option<u32>;

    /// Human-readable topology name for diagnostics, e.g. `7-cube` or
    /// `D3(4,8)`.
    fn label(&self) -> String;
}

/// The Boolean `n`-cube: `2^n` nodes, port `p` crosses dimension `p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Hypercube {
    n: u32,
}

impl Hypercube {
    /// An `n`-dimensional cube.
    #[track_caller]
    pub fn new(n: u32) -> Self {
        cubeaddr::check_dims(n);
        Hypercube { n }
    }

    /// Cube dimension.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }
}

impl Topology for Hypercube {
    #[inline]
    fn num_nodes(&self) -> usize {
        cubeaddr::num_nodes(self.n)
    }

    #[inline]
    fn ports(&self) -> u32 {
        self.n
    }

    #[inline]
    fn neighbor(&self, node: u64, port: u32) -> Option<u64> {
        debug_assert!(port < self.n && node < self.num_nodes() as u64);
        Some(node ^ (1 << port))
    }

    #[inline]
    fn reverse_port(&self, _node: u64, port: u32) -> Option<u32> {
        // A cube link crosses one dimension; both ends call it by that
        // dimension's port number.
        Some(port)
    }

    fn label(&self) -> String {
        format!("{}-cube", self.n)
    }
}

/// Draper's Swapped Dragonfly `D3(K,M)`: `K·M` groups of `M` routers
/// (`K·M²` nodes). Each group is a complete graph on its `M` routers;
/// each router additionally has `K` global ports wired by the swap rule.
///
/// Node `x` encodes `(group, router)` as `x = group · M + router`.
///
/// # Port layout (uniform `M - 1 + K` ports per node)
///
/// * Intra-group ports `p ∈ [0, M-1)` connect router `r` to router
///   `p` if `p < r`, else `p + 1` (the complete graph minus self, in
///   ascending router order).
/// * Global ports `p ∈ [M-1, M-1+K)` with `j = p - (M-1)` connect
///   `(g, r)` to `(g', r') = (r·K + j, g / K)` — the *swap*: the local
///   coordinates of one end are the group coordinates of the other.
///   Each group therefore reaches every group (including itself) over
///   exactly one global link; the one self-loop per group (`g = r·K + j`
///   at router `r = g / K`) is left unwired.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SwappedDragonfly {
    k: u32,
    m: u32,
}

impl SwappedDragonfly {
    /// A `D3(K, M)`: `M` routers per group, `K` global ports per router.
    #[track_caller]
    pub fn new(k: u32, m: u32) -> Self {
        assert!(k >= 1 && m >= 1, "D3(K,M) needs K >= 1 and M >= 1, got D3({k},{m})");
        let ports = (m - 1) as u64 + k as u64;
        assert!(ports <= 64, "D3({k},{m}) has {ports} ports per router; the port masks hold 64");
        let nodes = (k as u128) * (m as u128) * (m as u128);
        assert!(nodes <= u64::MAX as u128 / 2, "D3({k},{m}) node count overflows");
        SwappedDragonfly { k, m }
    }

    /// Global ports per router, `K`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Routers per group, `M`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of groups, `K·M`.
    #[inline]
    pub fn groups(&self) -> u64 {
        u64::from(self.k) * u64::from(self.m)
    }

    /// The `(group, router)` coordinates of node `x`.
    #[inline]
    pub fn coords(&self, x: u64) -> (u64, u64) {
        (x / u64::from(self.m), x % u64::from(self.m))
    }

    /// The node at `(group, router)`.
    #[inline]
    pub fn node_at(&self, group: u64, router: u64) -> u64 {
        debug_assert!(group < self.groups() && router < u64::from(self.m));
        group * u64::from(self.m) + router
    }

    /// The intra-group port of router `from` leading to router `to`
    /// (`from != to`, both in `[0, M)`).
    #[inline]
    pub fn intra_port(&self, from: u64, to: u64) -> u32 {
        debug_assert!(from != to && from < u64::from(self.m) && to < u64::from(self.m));
        if to < from {
            to as u32
        } else {
            to as u32 - 1
        }
    }

    /// The global port of router `(g, r)` whose link leads to group
    /// `target`, if this router owns it (`target ∈ [r·K, r·K + K)`).
    #[inline]
    pub fn global_port_to(&self, router: u64, target_group: u64) -> Option<u32> {
        let base = router * u64::from(self.k);
        (base..base + u64::from(self.k))
            .contains(&target_group)
            .then(|| self.m - 1 + (target_group - base) as u32)
    }

    /// The router of a group owning the global link toward
    /// `target_group`: `target_group / K`.
    #[inline]
    pub fn gateway_router(&self, target_group: u64) -> u64 {
        target_group / u64::from(self.k)
    }
}

impl fmt::Display for SwappedDragonfly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D3({},{})", self.k, self.m)
    }
}

impl Topology for SwappedDragonfly {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.k as usize * self.m as usize * self.m as usize
    }

    #[inline]
    fn ports(&self) -> u32 {
        self.m - 1 + self.k
    }

    fn neighbor(&self, node: u64, port: u32) -> Option<u64> {
        debug_assert!(node < self.num_nodes() as u64 && port < self.ports());
        let m = u64::from(self.m);
        let (g, r) = self.coords(node);
        if u64::from(port) < m - 1 {
            // Intra-group: complete graph minus self, ascending.
            let nr = if u64::from(port) < r { u64::from(port) } else { u64::from(port) + 1 };
            Some(self.node_at(g, nr))
        } else {
            // Global swap link.
            let j = u64::from(port) - (m - 1);
            let target_group = r * u64::from(self.k) + j;
            if target_group == g {
                return None; // the group's swap fixed point stays unwired
            }
            Some(self.node_at(target_group, g / u64::from(self.k)))
        }
    }

    fn reverse_port(&self, node: u64, port: u32) -> Option<u32> {
        let m = u64::from(self.m);
        let (g, r) = self.coords(node);
        if u64::from(port) < m - 1 {
            let nr = if u64::from(port) < r { u64::from(port) } else { u64::from(port) + 1 };
            Some(self.intra_port(nr, r))
        } else {
            self.neighbor(node, port)?;
            // The far end's global port back to group `g` is `g mod K`.
            Some(self.m - 1 + (g % u64::from(self.k)) as u32)
        }
    }

    fn label(&self) -> String {
        self.to_string()
    }
}

/// A value-level topology description: the [`Topology`] choice carried
/// by plans, lowered schedules and runtime configuration, where a
/// generic parameter would infect every data structure. Dispatches every
/// trait method to the named family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TopoSpec {
    /// The Boolean `n`-cube.
    Hypercube {
        /// Cube dimension.
        n: u32,
    },
    /// The Swapped Dragonfly `D3(K,M)`.
    Dragonfly {
        /// Global ports per router.
        k: u32,
        /// Routers per group.
        m: u32,
    },
}

impl TopoSpec {
    /// The spec of an `n`-cube.
    pub fn hypercube(n: u32) -> Self {
        TopoSpec::Hypercube { n: Hypercube::new(n).n() }
    }

    /// The spec of a `D3(K,M)` Swapped Dragonfly.
    pub fn dragonfly(k: u32, m: u32) -> Self {
        let d = SwappedDragonfly::new(k, m);
        TopoSpec::Dragonfly { k: d.k(), m: d.m() }
    }

    /// True for the hypercube family (the flat fast paths).
    pub fn is_hypercube(&self) -> bool {
        matches!(self, TopoSpec::Hypercube { .. })
    }
}

impl From<Hypercube> for TopoSpec {
    fn from(h: Hypercube) -> Self {
        TopoSpec::Hypercube { n: h.n() }
    }
}

impl From<SwappedDragonfly> for TopoSpec {
    fn from(d: SwappedDragonfly) -> Self {
        TopoSpec::Dragonfly { k: d.k(), m: d.m() }
    }
}

impl Topology for TopoSpec {
    fn num_nodes(&self) -> usize {
        match *self {
            TopoSpec::Hypercube { n } => Hypercube::new(n).num_nodes(),
            TopoSpec::Dragonfly { k, m } => SwappedDragonfly::new(k, m).num_nodes(),
        }
    }

    fn ports(&self) -> u32 {
        match *self {
            TopoSpec::Hypercube { n } => n,
            TopoSpec::Dragonfly { k, m } => SwappedDragonfly::new(k, m).ports(),
        }
    }

    fn neighbor(&self, node: u64, port: u32) -> Option<u64> {
        match *self {
            TopoSpec::Hypercube { n } => Hypercube::new(n).neighbor(node, port),
            TopoSpec::Dragonfly { k, m } => SwappedDragonfly::new(k, m).neighbor(node, port),
        }
    }

    fn reverse_port(&self, node: u64, port: u32) -> Option<u32> {
        match *self {
            TopoSpec::Hypercube { n } => Hypercube::new(n).reverse_port(node, port),
            TopoSpec::Dragonfly { k, m } => SwappedDragonfly::new(k, m).reverse_port(node, port),
        }
    }

    fn label(&self) -> String {
        match *self {
            TopoSpec::Hypercube { n } => Hypercube::new(n).label(),
            TopoSpec::Dragonfly { k, m } => SwappedDragonfly::new(k, m).label(),
        }
    }
}

/// A topology with a canonical deterministic shortest-path routing
/// function — what a store-and-forward router needs beyond adjacency.
///
/// The function must be *progressive*: repeatedly stepping
/// `cur = neighbor(cur, next_port(cur, dst))` reaches `dst` in finitely
/// many wired hops. On the cube this is the e-cube order (lowest
/// differing dimension first); on the Swapped Dragonfly it is the
/// minimal local–global–local route through the destination group's
/// gateway router (Draper's *direct* routing).
pub trait MinimalRoute: Topology {
    /// The port `cur` forwards on toward `dst`, or `None` on arrival
    /// (`cur == dst`). The returned port is always wired.
    fn next_port(&self, cur: u64, dst: u64) -> Option<u32>;
}

impl MinimalRoute for Hypercube {
    #[inline]
    fn next_port(&self, cur: u64, dst: u64) -> Option<u32> {
        let diff = cur ^ dst;
        if diff == 0 {
            None
        } else {
            Some(diff.trailing_zeros())
        }
    }
}

impl MinimalRoute for SwappedDragonfly {
    fn next_port(&self, cur: u64, dst: u64) -> Option<u32> {
        if cur == dst {
            return None;
        }
        let (gc, rc) = self.coords(cur);
        let (gd, rd) = self.coords(dst);
        if gc == gd {
            // Same group: one intra hop.
            return Some(self.intra_port(rc, rd));
        }
        let gw = self.gateway_router(gd);
        if rc == gw {
            // At the gateway: cross the swap link (wired since gd != gc).
            self.global_port_to(rc, gd)
        } else {
            // Walk to the gateway router first.
            Some(self.intra_port(rc, gw))
        }
    }
}

impl MinimalRoute for TopoSpec {
    fn next_port(&self, cur: u64, dst: u64) -> Option<u32> {
        match *self {
            TopoSpec::Hypercube { n } => Hypercube::new(n).next_port(cur, dst),
            TopoSpec::Dragonfly { k, m } => SwappedDragonfly::new(k, m).next_port(cur, dst),
        }
    }
}

/// Checks the port symmetry contract over every `(node, port)` of a
/// topology — test support for new implementations.
pub fn check_symmetry<T: Topology>(topo: &T) {
    for x in 0..topo.num_nodes() as u64 {
        for p in 0..topo.ports() {
            match topo.neighbor(x, p) {
                None => assert_eq!(
                    topo.reverse_port(x, p),
                    None,
                    "{}: unwired port ({x}, {p}) has a reverse port",
                    topo.label()
                ),
                Some(y) => {
                    assert!(
                        (y as usize) < topo.num_nodes(),
                        "{}: neighbor({x}, {p}) = {y} out of range",
                        topo.label()
                    );
                    assert_ne!(y, x, "{}: self-loop at ({x}, {p})", topo.label());
                    let q = topo.reverse_port(x, p).unwrap_or_else(|| {
                        panic!("{}: wired port ({x}, {p}) lacks a reverse port", topo.label())
                    });
                    assert_eq!(
                        topo.neighbor(y, q),
                        Some(x),
                        "{}: reverse of ({x}, {p}) does not lead back",
                        topo.label()
                    );
                    assert_eq!(
                        topo.reverse_port(y, q),
                        Some(p),
                        "{}: reverse_port not involutive at ({x}, {p})",
                        topo.label()
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercube_matches_bit_arithmetic() {
        let h = Hypercube::new(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.ports(), 4);
        for x in 0..16u64 {
            for p in 0..4 {
                assert_eq!(h.neighbor(x, p), Some(x ^ (1 << p)));
                assert_eq!(h.reverse_port(x, p), Some(p));
            }
        }
        assert_eq!(h.label(), "4-cube");
        check_symmetry(&h);
    }

    #[test]
    fn dragonfly_shape() {
        let d = SwappedDragonfly::new(2, 4);
        assert_eq!(d.groups(), 8);
        assert_eq!(d.num_nodes(), 32);
        assert_eq!(d.ports(), 3 + 2);
        assert_eq!(d.label(), "D3(2,4)");
        // Intra ports skip self.
        assert_eq!(d.neighbor(d.node_at(3, 2), 0), Some(d.node_at(3, 0)));
        assert_eq!(d.neighbor(d.node_at(3, 2), 1), Some(d.node_at(3, 1)));
        assert_eq!(d.neighbor(d.node_at(3, 2), 2), Some(d.node_at(3, 3)));
        // Global port j of (g, r) reaches (rK + j, g / K).
        assert_eq!(d.neighbor(d.node_at(5, 1), 3), Some(d.node_at(2, 2)));
        assert_eq!(d.neighbor(d.node_at(5, 1), 4), Some(d.node_at(3, 2)));
    }

    #[test]
    fn dragonfly_symmetry_various_shapes() {
        for (k, m) in [(1, 1), (1, 2), (2, 2), (2, 4), (4, 4), (3, 5)] {
            check_symmetry(&SwappedDragonfly::new(k, m));
        }
    }

    #[test]
    fn dragonfly_one_unwired_swap_port_per_group() {
        let d = SwappedDragonfly::new(2, 4);
        let mut unwired = 0usize;
        for x in 0..d.num_nodes() as u64 {
            for p in 0..d.ports() {
                if d.neighbor(x, p).is_none() {
                    let (g, r) = d.coords(x);
                    assert_eq!(r, d.gateway_router(g), "fixed point off the gateway router");
                    unwired += 1;
                }
            }
        }
        assert_eq!(unwired as u64, d.groups());
    }

    #[test]
    fn dragonfly_every_group_pair_has_one_global_link() {
        let d = SwappedDragonfly::new(2, 4);
        for g in 0..d.groups() {
            for target in 0..d.groups() {
                if target == g {
                    continue;
                }
                let r = d.gateway_router(target);
                let p = d.global_port_to(r, target).expect("gateway owns the link");
                let y = d.neighbor(d.node_at(g, r), p).expect("wired inter-group link");
                assert_eq!(d.coords(y).0, target);
            }
        }
    }

    #[test]
    fn gateway_and_global_port_agree_with_neighbor() {
        let d = SwappedDragonfly::new(3, 5);
        for g in 0..d.groups() {
            for target in 0..d.groups() {
                let r = d.gateway_router(target);
                let p = d.global_port_to(r, target).expect("gateway router owns the link");
                match d.neighbor(d.node_at(g, r), p) {
                    Some(y) => assert_eq!(d.coords(y), (target, g / u64::from(d.k()))),
                    None => assert_eq!(target, g, "only the self swap link is unwired"),
                }
            }
        }
    }

    #[test]
    fn spec_dispatch_matches_direct() {
        let spec = TopoSpec::dragonfly(2, 3);
        let d = SwappedDragonfly::new(2, 3);
        assert_eq!(spec.num_nodes(), d.num_nodes());
        assert_eq!(spec.ports(), d.ports());
        for x in 0..d.num_nodes() as u64 {
            for p in 0..d.ports() {
                assert_eq!(spec.neighbor(x, p), d.neighbor(x, p));
                assert_eq!(spec.reverse_port(x, p), d.reverse_port(x, p));
            }
        }
        assert!(TopoSpec::hypercube(3).is_hypercube());
        assert!(!spec.is_hypercube());
        assert_eq!(TopoSpec::from(Hypercube::new(3)), TopoSpec::hypercube(3));
        assert_eq!(TopoSpec::from(d), spec);
    }

    #[test]
    #[should_panic(expected = "K >= 1")]
    fn zero_k_rejected() {
        let _ = SwappedDragonfly::new(0, 4);
    }

    /// Walks `next_port` from `src` to `dst`, asserting every hop is
    /// wired, and returns the path length.
    fn walk<T: MinimalRoute>(topo: &T, src: u64, dst: u64) -> u32 {
        let mut cur = src;
        let mut hops = 0;
        while let Some(p) = topo.next_port(cur, dst) {
            cur = topo
                .neighbor(cur, p)
                .unwrap_or_else(|| panic!("{}: route uses unwired ({cur}, {p})", topo.label()));
            hops += 1;
            assert!(hops <= topo.num_nodes() as u32, "{}: route cycles", topo.label());
        }
        assert_eq!(cur, dst);
        hops
    }

    #[test]
    fn hypercube_route_is_ecube() {
        let h = Hypercube::new(5);
        for src in 0..32u64 {
            for dst in 0..32u64 {
                assert_eq!(walk(&h, src, dst), (src ^ dst).count_ones());
                // Lowest differing dimension first.
                if src != dst {
                    assert_eq!(h.next_port(src, dst), Some((src ^ dst).trailing_zeros()));
                }
            }
        }
    }

    #[test]
    fn dragonfly_route_is_minimal_lgl() {
        for (k, m) in [(1, 2), (2, 2), (2, 4), (3, 5)] {
            let d = SwappedDragonfly::new(k, m);
            for src in 0..d.num_nodes() as u64 {
                for dst in 0..d.num_nodes() as u64 {
                    let hops = walk(&d, src, dst);
                    // Local-global-local: at most 3 hops on any D3.
                    assert!(hops <= 3, "{d}: {src} -> {dst} took {hops} hops");
                    let ((gs, rs), (gd, _)) = (d.coords(src), d.coords(dst));
                    if gs == gd {
                        assert!(hops <= 1);
                    } else {
                        // One global hop plus up to one intra hop each side.
                        let gw = d.gateway_router(gd);
                        let expect = 1
                            + u32::from(rs != gw)
                            + u32::from(d.coords(dst).1 != gs / u64::from(d.k()));
                        assert_eq!(hops, expect, "{d}: {src} -> {dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn spec_route_dispatch_matches_direct() {
        let d = SwappedDragonfly::new(2, 3);
        let spec = TopoSpec::from(d);
        for src in 0..d.num_nodes() as u64 {
            for dst in 0..d.num_nodes() as u64 {
                assert_eq!(spec.next_port(src, dst), d.next_port(src, dst));
            }
        }
    }
}
