//! A minimal complex-number type (kept local to avoid a dependency; only
//! what the FFT needs).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Cplx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cplx {
    /// Zero.
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cplx = Cplx { re: 1.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Cplx { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Cplx { re: theta.cos(), im: theta.sin() }
    }

    /// The principal root of unity power `ω_n^k = e^{-2πik/n}` (the FFT's
    /// forward-transform convention).
    pub fn omega(n: usize, k: usize) -> Self {
        Self::cis(-2.0 * std::f64::consts::PI * (k % n) as f64 / n as f64)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Cplx { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Cplx { re: self.re * s, im: self.im * s }
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, o: Cplx) -> Cplx {
        Cplx { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, o: Cplx) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, o: Cplx) -> Cplx {
        Cplx { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, o: Cplx) -> Cplx {
        Cplx { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        assert_eq!(a + b, Cplx::new(4.0, 1.0));
        assert_eq!(a - b, Cplx::new(-2.0, 3.0));
        assert_eq!(a * b, Cplx::new(5.0, 5.0)); // (1+2i)(3-i) = 5+5i
        assert_eq!(-a, Cplx::new(-1.0, -2.0));
    }

    #[test]
    fn roots_of_unity() {
        let w = Cplx::omega(4, 1);
        assert!((w - Cplx::new(0.0, -1.0)).abs() < 1e-12);
        // ω_n^n = 1.
        let mut acc = Cplx::ONE;
        for _ in 0..8 {
            acc = acc * Cplx::omega(8, 1);
        }
        assert!((acc - Cplx::ONE).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let a = Cplx::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!((a * a.conj() - Cplx::new(25.0, 0.0)).abs() < 1e-12);
    }
}
