//! Radix-2 FFTs, local and distributed.
//!
//! The distributed transform is the classic transpose-based *four-step*
//! FFT: a length-`N = R·C` signal viewed as an `R × C` matrix needs
//! column FFTs, a twiddle scaling, and row FFTs — and making the columns
//! local is exactly the matrix transposition the paper optimizes (§1's
//! FACR motivation; the bit-reversal of §7 is the radix-2 butterfly
//! companion). The global communication of [`fft_four_step`] is two
//! transpositions through the standard exchange algorithm on the
//! simulated cube.

use crate::cplx::Cplx;
use cubecomm::{BlockMsg, BufferPolicy};
use cubelayout::{Assignment, Direction, DistMatrix, Encoding, Layout};
use cubesim::{CommReport, MachineParams, SimNet};
use cubetranspose::one_dim::{transpose_1d_exchange, Routed};

/// In-place iterative radix-2 Cooley–Tukey FFT (forward transform,
/// `ω = e^{-2πi/n}`).
///
/// # Panics
/// Unless `data.len()` is a power of two.
pub fn fft_in_place(data: &mut [Cplx]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs a power-of-two length");
    if n <= 1 {
        return;
    }
    let bits = n.trailing_zeros();
    // Bit-reversed reordering (§7's permutation).
    for i in 0..n as u64 {
        let j = cubeaddr::bit_reverse(i, bits);
        if i < j {
            data.swap(i as usize, j as usize);
        }
    }
    let mut len = 2;
    while len <= n {
        let w_len = Cplx::omega(len, 1);
        for start in (0..n).step_by(len) {
            let mut w = Cplx::ONE;
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

/// Inverse FFT (unnormalized conjugate trick, then scaled by `1/n`).
pub fn ifft_in_place(data: &mut [Cplx]) {
    for v in data.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(data);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = v.conj().scale(1.0 / n);
    }
}

/// Naive `O(n²)` DFT, the verification reference.
pub fn dft_naive(data: &[Cplx]) -> Vec<Cplx> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Cplx::ZERO;
            for (j, &x) in data.iter().enumerate() {
                acc += x * Cplx::omega(n, (j * k) % n);
            }
            acc
        })
        .collect()
}

/// The distributed four-step FFT of a length `2^(r+c)` signal over a
/// `2^n`-node simulated cube.
///
/// The signal `x[n1·C + n2]` is stored as an `R × C` matrix (`R = 2^r`
/// rows, `C = 2^c` columns), row-partitioned. Steps:
///
/// 1. transpose (columns become local rows);
/// 2. local length-`R` FFTs and the `ω_N^{k1·n2}` twiddle scaling;
/// 3. transpose back;
/// 4. local length-`C` FFTs.
///
/// Returns the spectrum in the `X[k1][k2]` grid (i.e. `X[k2·R + k1]` at
/// matrix position `(k1, k2)`) together with the communication report of
/// the two transpositions.
pub fn fft_four_step(
    signal: &[Cplx],
    r: u32,
    c: u32,
    n: u32,
    params: &MachineParams,
) -> (DistMatrix<Cplx>, CommReport) {
    let (rows, cols) = (1usize << r, 1usize << c);
    assert_eq!(signal.len(), rows * cols);
    let big_n = rows * cols;
    let layout_a =
        Layout::one_dim(r, c, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
    let layout_t =
        Layout::one_dim(c, r, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);

    let a =
        DistMatrix::from_fn(layout_a.clone(), |n1, n2| signal[(n1 as usize) * cols + n2 as usize]);

    let mut net: SimNet<BlockMsg<Routed<Cplx>>> = SimNet::new(n, params.clone());

    // Step 1: transpose → T[n2][n1] = x[n1·C + n2].
    let mut t = transpose_1d_exchange(&a, &layout_t, &mut net, BufferPolicy::Ideal);
    let report1 = net.finalize();

    // Step 2: local column FFTs (now rows of length R) + twiddles:
    // Y[k1][n2] gets ω_N^{k1·n2}; here the local row index is n2.
    per_local_row(&mut t, |n2, line| {
        fft_in_place(line);
        for (k1, v) in line.iter_mut().enumerate() {
            *v = *v * Cplx::omega(big_n, (k1 * n2 as usize) % big_n);
        }
    });

    // Step 3: transpose back → Z[k1][n2].
    let mut net: SimNet<BlockMsg<Routed<Cplx>>> = SimNet::new(n, params.clone());
    let mut z = transpose_1d_exchange(&t, &layout_a, &mut net, BufferPolicy::Ideal);
    let mut report = net.finalize();

    // Step 4: local row FFTs over n2 → X[k1][k2].
    per_local_row(&mut z, |_, line| fft_in_place(line));

    report.merge(&report1);
    (z, report)
}

/// Applies `f(global_row_index, row)` to every local row of a
/// row-partitioned matrix.
fn per_local_row(m: &mut DistMatrix<Cplx>, mut f: impl FnMut(u64, &mut [Cplx])) {
    let layout = m.layout().clone();
    let (rows, cols) = (layout.local_rows(), layout.local_cols());
    for x in 0..layout.num_nodes() as u64 {
        let node = cubeaddr::NodeId(x);
        for rr in 0..rows {
            let (gr, _) = layout.element_at(node, (rr * cols) as u64);
            let buf = m.node_mut(node);
            f(gr, &mut buf[rr * cols..(rr + 1) * cols]);
        }
    }
}

/// Reads the four-step output grid back into natural spectrum order:
/// `X[k2·R + k1] = grid(k1, k2)`.
pub fn spectrum_from_grid(grid: &DistMatrix<Cplx>) -> Vec<Cplx> {
    let rows = 1usize << grid.layout().p();
    let cols = 1usize << grid.layout().q();
    let mut out = vec![Cplx::ZERO; rows * cols];
    for k1 in 0..rows as u64 {
        for k2 in 0..cols as u64 {
            out[(k2 as usize) * rows + k1 as usize] = grid.get(k1, k2);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn close(a: &[Cplx], b: &[Cplx], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    fn signal(n: usize) -> Vec<Cplx> {
        (0..n).map(|i| Cplx::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos() * 0.5)).collect()
    }

    #[test]
    fn local_fft_matches_naive_dft() {
        for bits in 0..=8u32 {
            let mut data = signal(1 << bits);
            let want = dft_naive(&data);
            fft_in_place(&mut data);
            assert!(close(&data, &want, 1e-9), "length 2^{bits}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig = signal(256);
        let mut data = orig.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        assert!(close(&data, &orig, 1e-10));
    }

    #[test]
    fn parseval_energy_preserved() {
        let orig = signal(128);
        let mut data = orig.clone();
        fft_in_place(&mut data);
        let time_energy: f64 = orig.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn four_step_matches_naive_dft() {
        // N = 2^8 over a 2-cube, R = 2^4, C = 2^4.
        let x = signal(256);
        let params = MachineParams::unit(PortMode::OnePort);
        let (grid, report) = fft_four_step(&x, 4, 4, 2, &params);
        let got = spectrum_from_grid(&grid);
        let want = dft_naive(&x);
        assert!(close(&got, &want, 1e-8));
        assert!(report.rounds > 0, "the transposes must communicate");
    }

    #[test]
    fn four_step_rectangular_and_bigger_cube() {
        // N = 2^9, R = 2^5, C = 2^4, 8 nodes.
        let x = signal(512);
        let params = MachineParams::intel_ipsc();
        let (grid, _) = fft_four_step(&x, 5, 4, 3, &params);
        let got = spectrum_from_grid(&grid);
        let want = dft_naive(&x);
        assert!(close(&got, &want, 1e-8));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Cplx::ZERO; 64];
        x[0] = Cplx::ONE;
        let params = MachineParams::unit(PortMode::OnePort);
        let (grid, _) = fft_four_step(&x, 3, 3, 2, &params);
        for v in spectrum_from_grid(&grid) {
            assert!((v - Cplx::ONE).abs() < 1e-10);
        }
    }
}
