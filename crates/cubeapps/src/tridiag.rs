//! Tridiagonal system solvers.
//!
//! The paper's companion work solves tridiagonal systems on ensemble
//! architectures (its refs \[11, 13\]); ADI and FACR reduce to many
//! independent tridiagonal solves once the transpose has made the lines
//! local. Two kernels:
//!
//! * [`thomas`] — the sequential `O(n)` LU sweep (numerically fine for
//!   the diagonally dominant systems these solvers produce);
//! * [`cyclic_reduction`] — odd-even cyclic reduction, the
//!   parallel-friendly `O(n log n)`-work variant the paper's ref \[11\]
//!   maps onto the cube.

/// A constant-coefficient tridiagonal system
/// `a·x_{i-1} + b·x_i + c·x_{i+1} = d_i` with implied zero boundaries.
#[derive(Clone, Copy, Debug)]
pub struct ConstTridiag {
    /// Subdiagonal coefficient.
    pub a: f64,
    /// Diagonal coefficient.
    pub b: f64,
    /// Superdiagonal coefficient.
    pub c: f64,
}

impl ConstTridiag {
    /// Multiplies the system matrix by `x` (for residual checks).
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|i| {
                let lo = if i > 0 { self.a * x[i - 1] } else { 0.0 };
                let hi = if i + 1 < n { self.c * x[i + 1] } else { 0.0 };
                lo + self.b * x[i] + hi
            })
            .collect()
    }
}

/// Thomas algorithm for a constant-coefficient tridiagonal system.
///
/// # Panics
/// On an empty right-hand side.
pub fn thomas(sys: ConstTridiag, d: &[f64]) -> Vec<f64> {
    let n = d.len();
    assert!(n > 0);
    let mut cp = vec![0.0; n];
    let mut dp = vec![0.0; n];
    cp[0] = sys.c / sys.b;
    dp[0] = d[0] / sys.b;
    for i in 1..n {
        let m = sys.b - sys.a * cp[i - 1];
        cp[i] = sys.c / m;
        dp[i] = (d[i] - sys.a * dp[i - 1]) / m;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = dp[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = dp[i] - cp[i] * x[i + 1];
    }
    x
}

/// Odd-even cyclic reduction for a constant-coefficient tridiagonal
/// system of size `2^k - 1` (the natural size for the method; other
/// sizes are padded internally with identity rows).
///
/// Each reduction level eliminates the odd-indexed unknowns; after
/// `log n` levels a single equation remains, then back-substitution
/// unwinds. On a cube each level is one nearest-neighbor exchange — the
/// structure the paper's ref \[11\] maps to ensemble architectures; here
/// it serves as an independent check of [`thomas`] and as the local
/// kernel for the FACR solver.
pub fn cyclic_reduction(sys: ConstTridiag, d: &[f64]) -> Vec<f64> {
    let n = d.len();
    assert!(n > 0);
    // Pad to 2^k - 1 with identity rows (b = 1, d = 0) that don't couple;
    // indices 0 and full+1 are zero sentinels.
    let full = (n + 1).next_power_of_two() - 1;
    let mut a = vec![0.0; full + 2];
    let mut b = vec![1.0; full + 2];
    let mut c = vec![0.0; full + 2];
    let mut f = vec![0.0; full + 2];
    for i in 0..n {
        a[i + 1] = if i > 0 { sys.a } else { 0.0 };
        b[i + 1] = sys.b;
        c[i + 1] = if i + 1 < n { sys.c } else { 0.0 };
        f[i + 1] = d[i];
    }

    let levels = (full + 1).trailing_zeros();
    // Forward elimination: at each level the rows at odd multiples of the
    // stride are eliminated into their even neighbors; a row's
    // coefficients are never touched after the level that eliminates it,
    // so the arrays hold exactly what back-substitution needs.
    let mut stride = 1usize;
    for _ in 0..levels.saturating_sub(1) {
        let step = stride * 2;
        let mut i = step;
        while i <= full {
            let alpha = -a[i] / b[i - stride];
            let beta = -c[i] / b[i + stride];
            let a_new = alpha * a[i - stride];
            let c_new = beta * c[i + stride];
            b[i] += alpha * c[i - stride] + beta * a[i + stride];
            f[i] += alpha * f[i - stride] + beta * f[i + stride];
            a[i] = a_new;
            c[i] = c_new;
            i += step;
        }
        stride = step;
    }

    // Single remaining equation, then unwind level by level.
    let mid = full.div_ceil(2);
    let mut x = vec![0.0; full + 2];
    x[mid] = f[mid] / b[mid];
    stride = mid / 2;
    while stride >= 1 {
        let step = stride * 2;
        let mut i = stride;
        while i <= full {
            x[i] = (f[i] - a[i] * x[i - stride] - c[i] * x[i + stride]) / b[i];
            i += step;
        }
        stride /= 2;
        if stride == 0 {
            break;
        }
    }
    x[1..=n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(sys: ConstTridiag, x: &[f64], d: &[f64]) -> f64 {
        sys.apply(x).iter().zip(d).map(|(l, r)| (l - r).abs()).fold(0.0, f64::max)
    }

    fn laplacian() -> ConstTridiag {
        ConstTridiag { a: -1.0, b: 2.5, c: -1.0 }
    }

    #[test]
    fn thomas_solves_laplacian_like() {
        let sys = laplacian();
        for n in [1usize, 2, 5, 16, 33, 100] {
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let x = thomas(sys, &d);
            assert!(residual(sys, &x, &d) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn cyclic_reduction_matches_thomas() {
        let sys = laplacian();
        for n in [1usize, 3, 7, 15, 31, 20, 25, 64] {
            let d: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            let a = thomas(sys, &d);
            let b = cyclic_reduction(sys, &d);
            let max_diff = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
            assert!(max_diff < 1e-9, "n={n}: max diff {max_diff}");
        }
    }

    #[test]
    fn cyclic_reduction_residual_direct() {
        let sys = ConstTridiag { a: 1.0, b: -4.0, c: 1.0 };
        let n = 63;
        let d: Vec<f64> = (0..n).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        let x = cyclic_reduction(sys, &d);
        assert!(residual(sys, &x, &d) < 1e-9);
    }

    #[test]
    fn apply_is_consistent() {
        let sys = laplacian();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(sys.apply(&x), vec![2.5 - 2.0, -1.0 + 5.0 - 3.0, -2.0 + 7.5]);
    }
}
