//! Poisson's problem by Fourier analysis (the FACR family) — the paper's
//! second motivation for fast transposition (§1).
//!
//! `∇²u = f` on a `2^p × 2^p` grid with homogeneous Dirichlet
//! boundaries: a discrete sine transform along the locally stored rows, a
//! matrix transposition (simulated cube), one tridiagonal solve per
//! Fourier mode, a transposition back, and the inverse transform.

use crate::tridiag::{thomas, ConstTridiag};
use cubecomm::{BlockMsg, BufferPolicy};
use cubelayout::{Assignment, Direction, DistMatrix, Encoding, Layout};
use cubesim::{CommReport, MachineParams, SimNet};
use cubetranspose::one_dim::{transpose_1d_exchange, Routed};
use std::f64::consts::PI;

/// Discrete sine transform (DST-I) of `n` interior points.
pub fn dst(line: &[f64]) -> Vec<f64> {
    let n = line.len();
    (1..=n)
        .map(|k| {
            (0..n).map(|j| line[j] * ((j + 1) as f64 * k as f64 * PI / (n + 1) as f64).sin()).sum()
        })
        .collect()
}

/// Inverse DST-I (`dst` scaled by `2/(n+1)`).
pub fn idst(line: &[f64]) -> Vec<f64> {
    let n = line.len();
    dst(line).into_iter().map(|v| v * 2.0 / (n + 1) as f64).collect()
}

/// Solves `∇²u = f` (five-point Laplacian, unit spacing, homogeneous
/// Dirichlet boundaries) for a row-partitioned right-hand side, running
/// the two transposes through a simulated `2^n`-node cube.
///
/// Returns the solution (same layout as the input) and the combined
/// communication report.
pub fn solve_poisson(
    rhs: &DistMatrix<f64>,
    n: u32,
    params: &MachineParams,
) -> (DistMatrix<f64>, CommReport) {
    let layout = rhs.layout().clone();
    assert_eq!(layout.p(), layout.q(), "square grids only");
    let size = 1usize << layout.p();

    let mut work = rhs.clone();
    // 1. DST along x (local rows).
    per_row(&mut work, |_, line| dst(line));

    // 2. Transpose: modes become rows.
    let mut net: SimNet<BlockMsg<Routed<f64>>> = SimNet::new(n, params.clone());
    let mut hat = transpose_1d_exchange(&work, &layout, &mut net, BufferPolicy::Ideal);
    let mut report = net.finalize();

    // 3. Per-mode tridiagonal solves along y.
    per_row(&mut hat, |k, line| {
        let diag = 2.0 * ((k + 1) as f64 * PI / (size + 1) as f64).cos() - 4.0;
        thomas(ConstTridiag { a: 1.0, b: diag, c: 1.0 }, line)
    });

    // 4. Transpose back and inverse transform.
    let mut net: SimNet<BlockMsg<Routed<f64>>> = SimNet::new(n, params.clone());
    let mut sol = transpose_1d_exchange(&hat, &layout, &mut net, BufferPolicy::Ideal);
    let r2 = net.finalize();
    report.merge(&r2);
    per_row(&mut sol, |_, line| idst(line));
    (sol, report)
}

/// The row-partitioned layout FACR uses for a `2^p × 2^p` grid.
pub fn grid_layout(p: u32, n: u32) -> Layout {
    Layout::one_dim(p, p, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary)
}

/// Applies the five-point Laplacian (zero boundaries) — the residual
/// check's forward operator.
pub fn laplacian(u: &DistMatrix<f64>) -> Vec<Vec<f64>> {
    let dense = u.gather();
    let size = dense.len();
    let at = |y: i64, x: i64| -> f64 {
        if y < 0 || x < 0 || y as usize >= size || x as usize >= size {
            0.0
        } else {
            dense[y as usize][x as usize]
        }
    };
    (0..size as i64)
        .map(|y| {
            (0..size as i64)
                .map(|x| at(y - 1, x) + at(y + 1, x) + at(y, x - 1) + at(y, x + 1) - 4.0 * at(y, x))
                .collect()
        })
        .collect()
}

fn per_row(m: &mut DistMatrix<f64>, mut f: impl FnMut(u64, &[f64]) -> Vec<f64>) {
    let layout = m.layout().clone();
    let (rows, cols) = (layout.local_rows(), layout.local_cols());
    for x in 0..layout.num_nodes() as u64 {
        let node = cubeaddr::NodeId(x);
        for r in 0..rows {
            let (gr, _) = layout.element_at(node, (r * cols) as u64);
            let line = m.node(node)[r * cols..(r + 1) * cols].to_vec();
            let new = f(gr, &line);
            m.node_mut(node)[r * cols..(r + 1) * cols].copy_from_slice(&new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    #[test]
    fn dst_is_self_inverse() {
        let line: Vec<f64> = (0..16).map(|i| (i as f64 * 0.4).sin()).collect();
        let back = idst(&dst(&line));
        for (a, b) in line.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn eigenfunction_solved_exactly() {
        let (p, n) = (4u32, 2u32);
        let size = 1usize << p;
        let (a, b) = (2u32, 5u32);
        let s = |k: u32, j: u64| ((j + 1) as f64 * k as f64 * PI / (size + 1) as f64).sin();
        let lambda = 2.0 * (a as f64 * PI / (size + 1) as f64).cos()
            + 2.0 * (b as f64 * PI / (size + 1) as f64).cos()
            - 4.0;
        let layout = grid_layout(p, n);
        let rhs = DistMatrix::from_fn(layout.clone(), |y, x| lambda * s(b, y) * s(a, x));
        let (sol, report) = solve_poisson(&rhs, n, &MachineParams::unit(PortMode::OnePort));
        let dense = sol.gather();
        for (y, row) in dense.iter().enumerate() {
            for (x, &v) in row.iter().enumerate() {
                let want = s(b, y as u64) * s(a, x as u64);
                assert!((v - want).abs() < 1e-10, "({y}, {x})");
            }
        }
        assert!(report.rounds > 0);
    }

    #[test]
    fn random_rhs_residual_small() {
        let (p, n) = (4u32, 1u32);
        let layout = grid_layout(p, n);
        let rhs = DistMatrix::from_fn(layout.clone(), |y, x| {
            (((y * 37 + x * 17) % 11) as f64 - 5.0) / 3.0
        });
        let (sol, _) = solve_poisson(&rhs, n, &MachineParams::unit(PortMode::OnePort));
        let lap = laplacian(&sol);
        let dense_rhs = rhs.gather();
        let mut err: f64 = 0.0;
        for y in 0..(1 << p) {
            for x in 0..(1 << p) {
                err = err.max((lap[y][x] - dense_rhs[y][x]).abs());
            }
        }
        assert!(err < 1e-9, "residual {err}");
    }

    #[test]
    fn solution_unique_zero_for_zero_rhs() {
        let layout = grid_layout(3, 1);
        let rhs = DistMatrix::from_fn(layout, |_, _| 0.0);
        let (sol, _) = solve_poisson(&rhs, 1, &MachineParams::unit(PortMode::OnePort));
        assert!(sol.gather().iter().flatten().all(|v| v.abs() < 1e-12));
    }
}
