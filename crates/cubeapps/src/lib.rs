//! Applications of Boolean-cube matrix transposition — the workloads the
//! paper's introduction motivates.
//!
//! * [`cplx`] — a minimal complex-number type for the spectral solvers.
//! * [`fft`] — radix-2 FFTs: the local kernel, and the transpose-based
//!   *four-step* parallel FFT whose global data movement is exactly the
//!   matrix transposition the paper optimizes.
//! * [`tridiag`] — tridiagonal system solvers: the sequential Thomas
//!   algorithm and odd-even cyclic reduction (the paper's companion
//!   solver on ensemble architectures, its refs \[11, 13\]).
//! * [`adi`] — the Alternating Direction Implicit heat solver: implicit
//!   sweeps along one grid direction at a time, with a matrix
//!   transposition between the phases (§1's first motivation).
//! * [`poisson`] — Poisson's problem by Fourier analysis (the FACR
//!   family, §1's second motivation): sine transform, transpose,
//!   per-mode tridiagonal solves, transpose back.
//!
//! Every solver runs its communication through the simulated cube, so
//! the transposition costs are accounted under the paper's model, and
//! every solver is verified against an independent reference (naive DFT,
//! dense LU-free direct solves, manufactured exact solutions).

pub mod adi;
pub mod cplx;
pub mod fft;
pub mod poisson;
pub mod tridiag;

pub use cplx::Cplx;
