//! Alternating Direction Implicit (ADI / Peaceman–Rachford) heat
//! diffusion on a distributed grid — the paper's first motivation for
//! fast transposition (§1).
//!
//! The field is row-partitioned; each half-step solves tridiagonal
//! systems along one grid direction. Rows are local, so the x-sweep
//! needs no communication; a matrix transposition makes the y-lines
//! local for the second half-step, and a second transposition restores
//! the orientation. Communication runs through the simulated cube, so
//! each time step's transpose cost is accounted under the paper's model.

use crate::tridiag::{thomas, ConstTridiag};
use cubecomm::{BlockMsg, BufferPolicy};
use cubelayout::{Assignment, Direction, DistMatrix, Encoding, Layout};
use cubesim::{MachineParams, SimNet};
use cubetranspose::one_dim::{transpose_1d_exchange, Routed};

/// An ADI heat-diffusion problem on a `2^p × 2^p` grid over a `2^n`-node
/// cube.
pub struct AdiSolver {
    layout: Layout,
    n: u32,
    /// `r = α·Δt / (2Δx²)` — the implicit half-step coefficient.
    pub r: f64,
    params: MachineParams,
    /// Accumulated simulated communication time over all steps.
    pub comm_time: f64,
    /// Accumulated transpose count.
    pub transposes: usize,
}

impl AdiSolver {
    /// Creates a solver (`p` grid bits per side, `n` cube dimensions).
    ///
    /// # Panics
    /// If `n > p` (more processors than rows).
    #[track_caller]
    pub fn new(p: u32, n: u32, r: f64, params: MachineParams) -> Self {
        assert!(n <= p, "need at least one row per node");
        let layout =
            Layout::one_dim(p, p, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
        AdiSolver { layout, n, r, params, comm_time: 0.0, transposes: 0 }
    }

    /// The field layout (row-partitioned).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Builds the initial field from `f(y, x)`.
    pub fn init(&self, f: impl FnMut(u64, u64) -> f64) -> DistMatrix<f64> {
        DistMatrix::from_fn(self.layout.clone(), f)
    }

    /// One implicit sweep along the local rows:
    /// `(1 + 2r)·x_i - r(x_{i-1} + x_{i+1}) = d_i` per line.
    fn sweep_rows(&self, m: &mut DistMatrix<f64>) {
        let layout = m.layout().clone();
        let (rows, cols) = (layout.local_rows(), layout.local_cols());
        let sys = ConstTridiag { a: -self.r, b: 1.0 + 2.0 * self.r, c: -self.r };
        for x in 0..layout.num_nodes() as u64 {
            let buf = m.node_mut(cubeaddr::NodeId(x));
            for row in 0..rows {
                let seg = buf[row * cols..(row + 1) * cols].to_vec();
                let solved = thomas(sys, &seg);
                buf[row * cols..(row + 1) * cols].copy_from_slice(&solved);
            }
        }
    }

    fn transpose(&mut self, m: &DistMatrix<f64>) -> DistMatrix<f64> {
        let after = m.layout().swapped_shape();
        let mut net: SimNet<BlockMsg<Routed<f64>>> = SimNet::new(self.n, self.params.clone());
        let out = transpose_1d_exchange(
            m,
            &after,
            &mut net,
            BufferPolicy::Buffered { min_direct: self.params.b_copy() },
        );
        let r = net.finalize();
        self.comm_time += r.time;
        self.transposes += 1;
        out
    }

    /// Advances one full ADI time step (x-sweep, transpose, y-sweep,
    /// transpose back).
    pub fn step(&mut self, field: DistMatrix<f64>) -> DistMatrix<f64> {
        let mut f = field;
        self.sweep_rows(&mut f);
        let mut t = self.transpose(&f);
        self.sweep_rows(&mut t);
        self.transpose(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn solver() -> AdiSolver {
        AdiSolver::new(5, 2, 0.3, MachineParams::unit(PortMode::OnePort))
    }

    fn hot_spot(s: &AdiSolver) -> DistMatrix<f64> {
        let size = 1i64 << 5;
        s.init(|y, x| {
            let (y, x) = (y as i64 - size / 2, x as i64 - size / 2);
            if y.abs() < 4 && x.abs() < 4 {
                100.0
            } else {
                0.0
            }
        })
    }

    fn peak(m: &DistMatrix<f64>) -> f64 {
        m.gather().iter().flatten().cloned().fold(f64::MIN, f64::max)
    }

    fn heat(m: &DistMatrix<f64>) -> f64 {
        m.gather().iter().flatten().sum()
    }

    #[test]
    fn peak_decays_monotonically() {
        let mut s = solver();
        let mut field = hot_spot(&s);
        let mut prev = peak(&field);
        for _ in 0..5 {
            field = s.step(field);
            let p = peak(&field);
            assert!(p < prev);
            prev = p;
        }
        assert_eq!(s.transposes, 10);
        assert!(s.comm_time > 0.0);
    }

    #[test]
    fn symmetry_preserved() {
        let mut s = solver();
        let mut field = hot_spot(&s);
        for _ in 0..3 {
            field = s.step(field);
        }
        let dense = field.gather();
        // Indexed on purpose: compares each entry with its transpose.
        #[allow(clippy::needless_range_loop)]
        for y in 0..32 {
            for x in 0..32 {
                assert!((dense[y][x] - dense[x][y]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn near_conservation_away_from_boundary() {
        // The interior-localized pulse keeps total heat almost constant
        // for early steps (boundary losses are exponentially small).
        let mut s = solver();
        let mut field = hot_spot(&s);
        let initial = heat(&field);
        for _ in 0..3 {
            field = s.step(field);
        }
        assert!((heat(&field) - initial).abs() / initial < 1e-6);
    }

    #[test]
    fn steady_state_is_zero() {
        // Many steps with strong diffusion: everything drains through the
        // Dirichlet boundary.
        let mut s = AdiSolver::new(4, 1, 2.0, MachineParams::unit(PortMode::OnePort));
        let mut field = s.init(|_, _| 1.0);
        for _ in 0..200 {
            field = s.step(field);
        }
        assert!(peak(&field) < 1e-3);
    }
}
