//! Data-plane throughput of the `MappedMatrix` exchange-engine
//! primitives (`crates/core/src/fieldmap.rs`), isolated from whole
//! transpose algorithms: one iteration executes a single primitive on a
//! pre-built matrix (construction and the simulated net's setup happen in
//! the untimed batch setup). Tracks the gather/scatter/permute kernels
//! independently of the schedule-executor rework measured in
//! `simulator.rs`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use cubesim::{MachineParams, PortMode, SimNet};
use cubetranspose::{FieldMap, MappedMatrix, SendPolicy};

/// Label matrix with `n` real dimensions and `vp` virtual ones.
fn mapped(n: u32, vp: u32) -> MappedMatrix<u64> {
    let map = FieldMap::new((0..n).collect(), (n..n + vp).collect());
    MappedMatrix::from_fn(map, |w| w)
}

fn unit_net(n: u32) -> SimNet<Vec<u64>> {
    SimNet::new(n, MachineParams::unit(PortMode::OnePort).with_t_copy(0.5))
}

/// `(n, vp)` pairs: 256 nodes × 256 elems and 1024 nodes × 1024 elems.
const SIZES: [(u32, u32); 2] = [(8, 8), (10, 10)];

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("fieldmap");
    group.sample_size(10);
    for (n, vp) in SIZES {
        let m = mapped(n, vp);
        // The canonical first step of the stepwise transpose: swap the
        // top virtual position in — the outgoing half is one contiguous
        // run of 2^{vp-1} elements.
        group.bench_with_input(BenchmarkId::new("exchange_rv_ideal", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    mm.exchange_real_virt(&mut net, 0, vp - 1, SendPolicy::Ideal);
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
        if n == 8 {
            continue;
        }
        // Mid-array position: 2^3 sub-rounds of 2^{vp-4}-element runs
        // (unbuffered), or a gathered round (buffered, min_direct above
        // the run length).
        group.bench_with_input(BenchmarkId::new("exchange_rv_unbuffered", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    mm.exchange_real_virt(&mut net, 0, vp - 4, SendPolicy::Unbuffered);
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("exchange_rv_buffered", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    let policy = SendPolicy::Buffered { min_direct: 1 << (vp - 3) };
                    mm.exchange_real_virt(&mut net, 0, vp - 4, policy);
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
        // The full standard-exchange sweep: n steps pairing real position
        // k with virtual position vp-1-k, run lengths 2^{vp-1} down to 1
        // (the last steps hit the short-run element path).
        group.bench_with_input(BenchmarkId::new("exchange_sweep_ideal", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    for k in 0..n {
                        mm.exchange_real_virt(&mut net, k, vp - 1 - k, SendPolicy::Ideal);
                    }
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_permute(c: &mut Criterion) {
    let mut group = c.benchmark_group("fieldmap");
    group.sample_size(10);
    for (n, vp) in SIZES {
        let m = mapped(n, vp);
        // Field rotation: the local-transpose permutation of the §6.2
        // conversion algorithms (swap the two halves of the local
        // address).
        let rotate: Vec<u32> = (vp / 2..vp).chain(0..vp / 2).collect();
        group.bench_with_input(BenchmarkId::new("permute_virt", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    mm.permute_virt(&mut net, &rotate);
                    net.finish_round();
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
        if n == 8 {
            continue;
        }
        // A scrambled (non-run-preserving) permutation: perm[j] = 7j+3
        // mod vp (a bijection whenever gcd(7, vp) = 1).
        let scramble: Vec<u32> = (0..vp).map(|j| (7 * j + 3) % vp).collect();
        group.bench_with_input(BenchmarkId::new("permute_virt_scramble", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    mm.permute_virt(&mut net, &scramble);
                    net.finish_round();
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_swap_real_real(c: &mut Criterion) {
    let mut group = c.benchmark_group("fieldmap");
    group.sample_size(10);
    for (n, vp) in SIZES {
        let m = mapped(n, vp);
        group.bench_with_input(BenchmarkId::new("swap_real_real", n), &n, |b, &n| {
            b.iter_batched(
                || (m.clone(), unit_net(n)),
                |(mut mm, mut net)| {
                    mm.swap_real_real(&mut net, 0, n - 1);
                    (mm, net.finalize())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exchange, bench_permute, bench_swap_real_real);
criterion_main!(benches);
