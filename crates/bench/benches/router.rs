//! E-cube router throughput: the flat lane-based router versus the
//! original full-lattice `RefRouter`, on the workloads the figures run.
//!
//! `transpose/*` is the node-permutation transpose pattern behind
//! FIG14b/16–18 (Connection Machine constants, `2^n` messages, heavy
//! contention) at the two largest sweep sizes; `sparse_probe/*` is 16
//! messages on a 14-cube, where the reference router still pays for the
//! full `2^n × n` queue lattice (~230k queues) but the lazily sized
//! flat router only allocates the touched lanes.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use cubeaddr::NodeId;
use cubebench::experiments::transpose_route_msgs;
use cubecomm::ecube::reference::RefRouter;
use cubecomm::ecube::{ecube_route, RouteMsg};
use cubecomm::{Block, BlockMsg};
use cubesim::{MachineParams, SimNet};

/// Net for the flat router, which carries bare blocks on the wire.
fn cm_net(n: u32) -> SimNet<Block<u64>> {
    SimNet::new(n, MachineParams::connection_machine())
}

/// Net for the reference router, which batches blocks per link.
fn cm_net_ref(n: u32) -> SimNet<BlockMsg<u64>> {
    SimNet::new(n, MachineParams::connection_machine())
}

/// 16 far-apart messages on a big cube: src `i`, dst = bitwise
/// complement, 4 elements each.
fn sparse_msgs(n: u32) -> Vec<RouteMsg<u64>> {
    let mask = (1u64 << n) - 1;
    (0..16u64)
        .map(|i| RouteMsg { src: NodeId(i), dst: NodeId(i ^ mask), data: vec![i; 4] })
        .collect()
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router");
    group.sample_size(10);

    for n in [12u32, 14] {
        let msgs = transpose_route_msgs(n, 4);
        group.throughput(Throughput::Elements(msgs.len() as u64));
        group.bench_with_input(BenchmarkId::new("flat/transpose", n), &n, |b, &n| {
            b.iter_batched(
                || (cm_net(n), msgs.clone()),
                |(mut net, msgs)| {
                    let out = ecube_route(&mut net, msgs);
                    (net.finalize(), out.len())
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("ref/transpose", n), &n, |b, &n| {
            b.iter_batched(
                || (cm_net_ref(n), msgs.clone()),
                |(mut net, msgs)| {
                    let out = RefRouter::route(&mut net, msgs);
                    (net.finalize(), out.len())
                },
                BatchSize::LargeInput,
            )
        });
    }

    let n = 14u32;
    let msgs = sparse_msgs(n);
    group.throughput(Throughput::Elements(msgs.len() as u64));
    group.bench_with_input(BenchmarkId::new("flat/sparse_probe", n), &n, |b, &n| {
        b.iter_batched(
            || (cm_net(n), msgs.clone()),
            |(mut net, msgs)| {
                let out = ecube_route(&mut net, msgs);
                (net.finalize(), out.len())
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_with_input(BenchmarkId::new("ref/sparse_probe", n), &n, |b, &n| {
        b.iter_batched(
            || (cm_net_ref(n), msgs.clone()),
            |(mut net, msgs)| {
                let out = RefRouter::route(&mut net, msgs);
                (net.finalize(), out.len())
            },
            BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
