//! Swapped Dragonfly planner family: Draper's swap-exchange all-to-all
//! versus direct minimal-path routing of the same traffic, plus the
//! planner-cache economics, on the CI smoke shape `D3(4,8)` (256 nodes,
//! 11 ports per router).
//!
//! `a2a/direct_route` pushes every ordered pair as an individual
//! message through the dynamic graph-generic router (minimal
//! local-global-local paths, heavy gateway contention);
//! `a2a/swap_exchange` replays the static swap-exchange schedule —
//! `2M-1` contention-free rounds — through the payload-free executor.
//! `swap_exchange/build` and `swap_exchange/cached` are one cold plan
//! construction versus a warm [`PlanCache`] fetch of the same plan.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use cubeaddr::NodeId;
use cubecheck::run_schedule;
use cubecomm::ecube::RouteMsg;
use cubecomm::graph::graph_route;
use cubecomm::plan::{
    dragonfly_swap_exchange_plan, dragonfly_swap_exchange_plan_cached, PlanCache,
};
use cubecomm::Block;
use cubesim::{MachineParams, PortMode, SimNet};
use cubetopo::{SwappedDragonfly, TopoSpec, Topology};

const K: u32 = 4;
const M: u32 = 8;

fn params() -> MachineParams {
    MachineParams::intel_ipsc().with_ports(PortMode::AllPorts)
}

/// Every ordered pair once, one element, tagged payloads.
fn a2a_msgs(num: u64) -> Vec<RouteMsg<u64>> {
    (0..num)
        .flat_map(|s| {
            (0..num).filter(move |&t| t != s).map(move |t| RouteMsg {
                src: NodeId(s),
                dst: NodeId(t),
                data: vec![s * 1000 + t],
            })
        })
        .collect()
}

/// The matching size matrix for the swap-exchange planner.
fn a2a_sizes(num: u64) -> Vec<Vec<u64>> {
    (0..num).map(|s| (0..num).map(|t| u64::from(s != t)).collect()).collect()
}

fn bench_dragonfly(c: &mut Criterion) {
    let d = SwappedDragonfly::new(K, M);
    let num = d.num_nodes() as u64;
    let shape = format!("{K}x{M}");
    let mut group = c.benchmark_group("dragonfly");
    group.sample_size(10);

    let msgs = a2a_msgs(num);
    group.throughput(Throughput::Elements(msgs.len() as u64));
    group.bench_with_input(BenchmarkId::new("a2a/direct_route", &shape), &(), |b, ()| {
        b.iter_batched(
            || {
                let net: SimNet<Block<u64>, TopoSpec> =
                    SimNet::on_topology(TopoSpec::dragonfly(K, M), params());
                (net, msgs.clone())
            },
            |(mut net, msgs)| {
                let out = graph_route(&mut net, msgs);
                (net.finalize(), out.len())
            },
            BatchSize::LargeInput,
        )
    });

    let sizes = a2a_sizes(num);
    let plan = dragonfly_swap_exchange_plan(K, M, &sizes);
    let machine = params();
    group.bench_with_input(BenchmarkId::new("a2a/swap_exchange", &shape), &(), |b, ()| {
        b.iter(|| run_schedule(&plan, &machine))
    });

    group.bench_with_input(BenchmarkId::new("swap_exchange/build", &shape), &(), |b, ()| {
        b.iter(|| dragonfly_swap_exchange_plan(K, M, &sizes))
    });
    let cache = PlanCache::new(8);
    let _ = dragonfly_swap_exchange_plan_cached(&cache, K, M, &sizes);
    group.bench_with_input(BenchmarkId::new("swap_exchange/cached", &shape), &(), |b, ()| {
        b.iter(|| dragonfly_swap_exchange_plan_cached(&cache, K, M, &sizes))
    });

    group.finish();
}

criterion_group!(benches, bench_dragonfly);
criterion_main!(benches);
