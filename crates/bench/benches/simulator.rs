//! Simulation throughput: wall-clock cost of running the cost-model
//! simulator for each transpose algorithm (one iteration = one full
//! simulated transpose including legality checking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cubecomm::BufferPolicy;
use cubelayout::{Assignment, Direction, Encoding, Layout};
use cubesim::{MachineParams, PortMode, SimNet};
use cubetranspose::two_dim::Packet;
use cubetranspose::{verify, SendPolicy};

fn bench_sim_one_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_1d");
    group.sample_size(20);
    let n = 4u32;
    let before =
        Layout::one_dim(6, 6, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
    let after =
        Layout::one_dim(6, 6, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
    let m = verify::labels(before);

    group.bench_function("exchange_blocks", |b| {
        b.iter(|| {
            let mut net = SimNet::new(n, MachineParams::intel_ipsc());
            cubetranspose::transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal)
        })
    });
    group.bench_function("exchange_stepwise", |b| {
        b.iter(|| {
            let mut net: SimNet<Vec<u64>> = SimNet::new(n, MachineParams::intel_ipsc());
            cubetranspose::transpose_stepwise(&m, &after, &mut net, SendPolicy::Ideal)
        })
    });
    group.bench_function("sbnt", |b| {
        b.iter(|| {
            let mut net =
                SimNet::new(n, MachineParams::intel_ipsc().with_ports(PortMode::AllPorts));
            cubetranspose::transpose_1d_sbnt(&m, &after, &mut net)
        })
    });
    group.finish();
}

fn bench_sim_two_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_2d");
    group.sample_size(20);
    let before = Layout::square(6, 6, 2, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = verify::labels(before.clone());
    let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
    for b_size in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("spt", b_size), &b_size, |b, &bs| {
            b.iter(|| {
                let mut net: SimNet<Packet<u64>> = SimNet::new(4, params.clone());
                cubetranspose::transpose_spt(&m, &after, &mut net, bs)
            })
        });
    }
    group.bench_function("mpt_k2", |b| {
        b.iter(|| {
            let mut net: SimNet<Packet<u64>> = SimNet::new(4, params.clone());
            cubetranspose::transpose_mpt(&m, &after, &mut net, 2)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_one_dim, bench_sim_two_dim);
criterion_main!(benches);
