//! Simulation throughput: wall-clock cost of running the cost-model
//! simulator for each transpose algorithm (one iteration = one full
//! simulated transpose including legality checking).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use cubeaddr::NodeId;
use cubecomm::BufferPolicy;
use cubelayout::{Assignment, Direction, Encoding, Layout};
use cubesim::{MachineParams, PortMode, SimNet};
use cubetranspose::two_dim::Packet;
use cubetranspose::{verify, SendPolicy};

fn bench_sim_one_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_1d");
    group.sample_size(20);
    let n = 4u32;
    let before =
        Layout::one_dim(6, 6, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
    let after =
        Layout::one_dim(6, 6, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
    let m = verify::labels(before);

    group.bench_function("exchange_blocks", |b| {
        b.iter(|| {
            let mut net = SimNet::new(n, MachineParams::intel_ipsc());
            cubetranspose::transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal)
        })
    });
    group.bench_function("exchange_stepwise", |b| {
        b.iter(|| {
            let mut net: SimNet<Vec<u64>> = SimNet::new(n, MachineParams::intel_ipsc());
            cubetranspose::transpose_stepwise(&m, &after, &mut net, SendPolicy::Ideal)
        })
    });
    group.bench_function("sbnt", |b| {
        b.iter(|| {
            let mut net =
                SimNet::new(n, MachineParams::intel_ipsc().with_ports(PortMode::AllPorts));
            cubetranspose::transpose_1d_sbnt(&m, &after, &mut net)
        })
    });
    group.finish();
}

fn bench_sim_two_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_2d");
    group.sample_size(20);
    let before = Layout::square(6, 6, 2, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = verify::labels(before.clone());
    let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
    for b_size in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("spt", b_size), &b_size, |b, &bs| {
            b.iter(|| {
                let mut net: SimNet<Packet<u64>> = SimNet::new(4, params.clone());
                cubetranspose::transpose_spt(&m, &after, &mut net, bs)
            })
        });
    }
    group.bench_function("mpt_k2", |b| {
        b.iter(|| {
            let mut net: SimNet<Packet<u64>> = SimNet::new(4, params.clone());
            cubetranspose::transpose_mpt(&m, &after, &mut net, 2)
        })
    });
    group.finish();
}

/// `blocks[src][dst] = [src*1000 + dst; b]`: the uniform all-to-all load.
fn uniform_blocks(n: u32, b: usize) -> Vec<Vec<Vec<u64>>> {
    let num = 1usize << n;
    (0..num as u64).map(|s| (0..num as u64).map(|d| vec![s * 1000 + d; b]).collect()).collect()
}

/// Raw data-plane throughput of the simulator at production cube sizes:
/// repeated full dimension sweeps where every node exchanges a small
/// message with its neighbor each round. One iteration executes
/// `sweeps * n` rounds of `2^n` sends + receives, so the per-message
/// bookkeeping (link legality, one-port checks, cost accounting)
/// dominates — exactly the path the flat-indexed refactor targets.
fn bench_schedule_exec(c: &mut Criterion) {
    const SWEEPS: u32 = 4;
    let mut group = c.benchmark_group("schedule_exec");
    group.sample_size(10);
    for n in [10u32, 12] {
        let num = 1u64 << n;
        group.throughput(Throughput::Elements(2 * num * (SWEEPS * n) as u64));
        group.bench_with_input(BenchmarkId::new("dim_sweep", n), &n, |b, &n| {
            b.iter(|| {
                let mut net: SimNet<u64> = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
                for _ in 0..SWEEPS {
                    for d in 0..n {
                        for x in 0..num {
                            net.send(NodeId(x), d, x);
                        }
                        net.finish_round();
                        for x in 0..num {
                            criterion::black_box(net.recv(NodeId(x), d));
                        }
                    }
                }
                net.finalize()
            })
        });
    }
    group.finish();
}

/// Full all-to-all personalized communication on a 1024-node cube: the
/// paper's §3.2 exchange schedule end to end, including block
/// partitioning and message assembly in the executor. The 2^20-block
/// input is built once and cloned in the untimed batch setup, so the
/// group measures communication, not input construction.
fn bench_all_to_all_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_to_all");
    group.sample_size(10);
    let n = 10u32;
    let blocks = uniform_blocks(n, 1);
    group.bench_with_input(BenchmarkId::new("ideal", n), &n, |b, &n| {
        b.iter_batched(
            || (blocks.clone(), SimNet::new(n, MachineParams::unit(PortMode::OnePort))),
            |(blocks, mut net): (_, SimNet<cubecomm::BlockMsg<u64>>)| {
                let out =
                    cubecomm::exchange::all_to_all_exchange(&mut net, blocks, BufferPolicy::Ideal);
                (net.finalize(), out.len())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_one_dim,
    bench_sim_two_dim,
    bench_schedule_exec,
    bench_all_to_all_large
);
criterion_main!(benches);
