//! Schedule-construction cost: how long planning takes, separate from
//! execution (the ROADMAP's untracked-planning-cost item).
//!
//! `exchange_plan/transpose` builds the transpose-pair exchange schedule
//! (one block per off-diagonal node, all `n` dimensions highest first);
//! `router_plan/transpose` builds the e-cube flight plan for the
//! figures' node-permutation workload — the static twin of the
//! `router/flat/transpose` bench. Both at `n ∈ {10, 12, 14, 16}` (16
//! became feasible with factored construction). The `*/cached` rows
//! measure a warm [`PlanCache`] hit for the same inputs — the price a
//! figure sweep or CI lint pays after the first build.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use cubecheck::workloads::transpose_msgs;
use cubecomm::plan::{
    ecube_route_plan, ecube_route_plan_cached, exchange_plan, exchange_plan_cached, BlockMeta,
    PlanCache,
};
use cubecomm::BufferPolicy;
use cubesim::PortMode;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_construction");
    group.sample_size(10);

    for n in [10u32, 12, 14, 16] {
        let msgs = transpose_msgs(n, 4);
        group.throughput(Throughput::Elements(msgs.len() as u64));
        group.bench_with_input(BenchmarkId::new("router_plan/transpose", n), &n, |b, &n| {
            b.iter_batched(
                || msgs.clone(),
                |msgs| ecube_route_plan(n, &msgs),
                BatchSize::LargeInput,
            )
        });

        let cache = PlanCache::new(4);
        let _ = ecube_route_plan_cached(&cache, n, &msgs); // warm
        group.bench_with_input(BenchmarkId::new("router_plan/cached", n), &n, |b, &n| {
            b.iter(|| ecube_route_plan_cached(&cache, n, &msgs))
        });

        let blocks: Vec<BlockMeta> = transpose_msgs(n, 8)
            .into_iter()
            .map(|(src, dst, elems)| BlockMeta { src, dst, elems })
            .collect();
        let dims: Vec<u32> = (0..n).rev().collect();
        group.throughput(Throughput::Elements(blocks.len() as u64));
        group.bench_with_input(BenchmarkId::new("exchange_plan/transpose", n), &n, |b, &n| {
            b.iter_batched(
                || (blocks.clone(), dims.clone()),
                |(blocks, dims)| {
                    exchange_plan(
                        n,
                        blocks,
                        &dims,
                        BufferPolicy::Ideal,
                        PortMode::OnePort,
                        "bench/exchange",
                    )
                },
                BatchSize::LargeInput,
            )
        });

        let cache = PlanCache::new(4);
        let _ = exchange_plan_cached(
            &cache,
            n,
            &blocks,
            &dims,
            BufferPolicy::Ideal,
            PortMode::OnePort,
            "bench/exchange",
        );
        group.bench_with_input(BenchmarkId::new("exchange_plan/cached", n), &n, |b, &n| {
            b.iter(|| {
                exchange_plan_cached(
                    &cache,
                    n,
                    &blocks,
                    &dims,
                    BufferPolicy::Ideal,
                    PortMode::OnePort,
                    "bench/exchange",
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
