//! Real message-passing transposes on the SPMD runtime: wall-clock cost
//! of the exchange and SPT node programs across cube sizes, old
//! thread-per-node runtime vs the cooperative virtual-node pool.
//!
//! The `threads/*` rows run `cuberun::reference` (one OS thread per
//! node) and stop at n = 10, its hard cap; the `virtual/*` rows run the
//! scheduler and continue to n = 16 — 65 536 virtual nodes, the paper's
//! Connection-Machine configuration, unreachable by the old runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubelayout::{Assignment, DistMatrix, Encoding, Layout};
use cubetranspose::spmd::{
    spmd_transpose_exchange, spmd_transpose_exchange_threads, spmd_transpose_spt,
};

/// A 2^half x 2^half matrix on a (2·half)-cube: one element per node.
fn one_elem_per_node(half: u32) -> (Layout, Layout, DistMatrix<f64>) {
    let before = Layout::square(half, half, half, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = DistMatrix::from_fn(before.clone(), |u, v| (u * (1 << half) + v) as f64);
    (before, after, m)
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmd_exchange_transpose");
    group.sample_size(10);
    // The old runtime: one OS thread per cube node. 2^10 threads is its
    // refusal threshold, so the sweep stops there.
    for n in [6u32, 8, 10] {
        let (_, after, m) = one_elem_per_node(n / 2);
        group.throughput(Throughput::Elements(1 << n));
        group.bench_with_input(BenchmarkId::new("threads", n), &m, |b, m| {
            b.iter(|| spmd_transpose_exchange_threads(m, &after))
        });
    }
    // The virtual-node pool: same program, same sizes, then onward to
    // the Connection-Machine configuration.
    for n in [6u32, 8, 10, 12, 14, 16] {
        let (_, after, m) = one_elem_per_node(n / 2);
        group.throughput(Throughput::Elements(1 << n));
        group.bench_with_input(BenchmarkId::new("virtual", n), &m, |b, m| {
            b.iter(|| spmd_transpose_exchange(m, &after))
        });
    }
    group.finish();
}

fn bench_spt(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmd_spt_transpose");
    group.sample_size(20);
    for half in [1u32, 2, 3] {
        let p = 5u32;
        let before = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let m = DistMatrix::from_fn(before.clone(), |u, v| (u * 32 + v) as f64);
        group.throughput(Throughput::Elements(1 << (2 * p)));
        group.bench_with_input(BenchmarkId::new("virtual", 1 << (2 * half)), &m, |b, m| {
            b.iter(|| spmd_transpose_spt(m, &after))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exchange, bench_spt);
criterion_main!(benches);
