//! Real multithreaded transposes on the SPMD runtime: wall-clock cost of
//! the exchange and SPT node programs across cube sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubelayout::{Assignment, Direction, DistMatrix, Encoding, Layout};
use cubetranspose::spmd::{spmd_transpose_exchange, spmd_transpose_spt};

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmd_exchange_transpose");
    group.sample_size(20);
    for n in [2u32, 4, 6] {
        let p = 5u32.max(n);
        let before =
            Layout::one_dim(p, p, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
        let after =
            Layout::one_dim(p, p, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
        let m = DistMatrix::from_fn(before.clone(), |u, v| (u * 64 + v) as f64);
        group.throughput(Throughput::Elements(1 << (2 * p)));
        group.bench_with_input(BenchmarkId::new("threads", 1 << n), &m, |b, m| {
            b.iter(|| spmd_transpose_exchange(m, &after))
        });
    }
    group.finish();
}

fn bench_spt(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmd_spt_transpose");
    group.sample_size(20);
    for half in [1u32, 2, 3] {
        let p = 5u32;
        let before = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let m = DistMatrix::from_fn(before.clone(), |u, v| (u * 32 + v) as f64);
        group.throughput(Throughput::Elements(1 << (2 * p)));
        group.bench_with_input(BenchmarkId::new("threads", 1 << (2 * half)), &m, |b, m| {
            b.iter(|| spmd_transpose_spt(m, &after))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exchange, bench_spt);
criterion_main!(benches);
