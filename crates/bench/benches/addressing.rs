//! Microbenchmarks of the addressing primitives on the algorithms' hot
//! paths.

use criterion::{criterion_group, criterion_main, Criterion};
use cubeaddr::{bit_reverse, gray, gray_inverse, shuffle, DimPermutation, NodeId};
use cubecomm::sbnt::sbnt_path_dims;

fn bench_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("addressing");
    group.bench_function("gray", |b| b.iter(|| (0..1024u64).map(gray).sum::<u64>()));
    group
        .bench_function("gray_inverse", |b| b.iter(|| (0..1024u64).map(gray_inverse).sum::<u64>()));
    group.bench_function("shuffle", |b| {
        b.iter(|| (0..1024u64).map(|w| shuffle(w, 3, 10)).sum::<u64>())
    });
    group.bench_function("bit_reverse", |b| {
        b.iter(|| (0..1024u64).map(|w| bit_reverse(w, 10)).sum::<u64>())
    });
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths");
    group.bench_function("sbnt_path_10cube", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for d in 1..1024u64 {
                total += sbnt_path_dims(NodeId(0), NodeId(d), 10).len();
            }
            total
        })
    });
    group.bench_function("mpt_paths_8cube", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for x in 0..256u64 {
                let h = cubetranspose::two_dim::h_of(x, 4);
                for p in 0..2 * h {
                    total += cubetranspose::two_dim::mpt_path(x, 4, p).len();
                }
            }
            total
        })
    });
    group.bench_function("parallel_swap_factorization", |b| {
        b.iter(|| {
            let delta = DimPermutation::new(vec![7, 3, 0, 5, 2, 6, 1, 4]);
            delta.parallel_swap_factors().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codes, bench_paths);
criterion_main!(benches);
