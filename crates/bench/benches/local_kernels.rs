//! Host-measured local transpose kernels (the in-node work of the §6.2
//! conversion algorithms and the copy costs behind Figure 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubetranspose::local::Dense;

fn bench_local_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_transpose");
    for size in [64usize, 256, 1024] {
        let m = Dense::from_fn(size, size, |r, c| (r * size + c) as u64);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::new("naive", size), &m, |b, m| {
            b.iter(|| m.transpose_naive())
        });
        group.bench_with_input(BenchmarkId::new("blocked32", size), &m, |b, m| {
            b.iter(|| m.transpose_blocked(32))
        });
        group.bench_with_input(BenchmarkId::new("cache_oblivious", size), &m, |b, m| {
            b.iter(|| m.transpose_cache_oblivious(32))
        });
    }
    group.finish();
}

fn bench_in_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_transpose_in_place");
    for size in [256usize, 1024] {
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let mut m = Dense::from_fn(size, size, |r, c| (r * size + c) as u64);
            b.iter(|| m.transpose_in_place());
        });
    }
    group.finish();
}

fn bench_copy(c: &mut Criterion) {
    // Figure 9's subject: raw copy speed per element width.
    let mut group = c.benchmark_group("copy");
    let bytes = 1 << 16;
    let src8: Vec<u8> = vec![1; bytes];
    let src64: Vec<u64> = vec![1; bytes / 8];
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("u8", |b| b.iter(|| src8.clone()));
    group.bench_function("u64", |b| b.iter(|| src64.clone()));
    group.finish();
}

criterion_group!(benches, bench_local_transpose, bench_in_place, bench_copy);
criterion_main!(benches);
