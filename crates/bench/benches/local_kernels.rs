//! Host-measured local transpose kernels (the in-node work of the §6.2
//! conversion algorithms and the copy costs behind Figure 9), plus the
//! in-place C2R kernel against the scratch paths it replaces at
//! vp ≥ 20 local-block shapes (`results/BENCH_local.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubetranspose::local::Dense;
use cubetranspose::{inplace, local};

fn bench_local_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_transpose");
    for size in [64usize, 256, 1024] {
        let m = Dense::from_fn(size, size, |r, c| (r * size + c) as u64);
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_with_input(BenchmarkId::new("naive", size), &m, |b, m| {
            b.iter(|| m.transpose_naive())
        });
        group.bench_with_input(BenchmarkId::new("blocked32", size), &m, |b, m| {
            b.iter(|| m.transpose_blocked(32))
        });
        group.bench_with_input(BenchmarkId::new("cache_oblivious", size), &m, |b, m| {
            b.iter(|| m.transpose_cache_oblivious(32))
        });
    }
    group.finish();
}

fn bench_in_place(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_transpose_in_place");
    for size in [256usize, 1024] {
        group.throughput(Throughput::Elements((size * size) as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            let mut m = Dense::from_fn(size, size, |r, c| (r * size + c) as u64);
            b.iter(|| m.transpose_in_place());
        });
    }
    group.finish();
}

/// The relocation table of the rotation permutation realized as a
/// `rows × cols` transpose — what `PermPlan::Gather` would build.
fn gather_table(rows: usize, cols: usize) -> Vec<u32> {
    let mut t = Vec::with_capacity(rows * cols);
    for c in 0..cols {
        for r in 0..rows {
            t.push((r * cols + c) as u32);
        }
    }
    t
}

/// In-place kernel vs the two scratch realizations of the same local
/// transpose, at vp ≥ 20 block shapes. Every variant does a full
/// round trip (transpose there and back) per iteration so all rows are
/// directly comparable; each also prints its peak scratch bytes per
/// call — the footprint column of `results/BENCH_local.json`.
fn bench_inplace_vs_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_inplace_vs_scratch");
    group.sample_size(10);
    // vp = 20 square (the engine's a = vp/2 rotation), vp = 21 and 22
    // rectangular.
    for (rows, cols) in [(1usize << 10, 1usize << 10), (1 << 11, 1 << 10), (1 << 11, 1 << 11)] {
        let vp = (rows * cols).trailing_zeros();
        let shape = format!("{rows}x{cols}");
        let data: Vec<u64> = (0..(rows * cols) as u64).collect();
        group.throughput(Throughput::Elements(2 * (rows * cols) as u64));

        let fwd = inplace::scratch_elems(rows, cols).max(inplace::scratch_elems(cols, rows));
        println!(
            "footprint local_inplace_vs_scratch/inplace/{shape} scratch_bytes {} vp {vp}",
            fwd * 8
        );
        let mut buf = data.clone();
        group.bench_function(BenchmarkId::new("inplace", &shape), |b| {
            b.iter(|| {
                inplace::transpose_serial(&mut buf, rows, cols);
                inplace::transpose_serial(&mut buf, cols, rows);
            })
        });

        // Gather through a relocation table into a full-size staging
        // buffer (the PermPlan::Gather realization): scratch = the
        // staging buffer plus the shared table.
        let t_fwd = gather_table(rows, cols);
        let t_back = gather_table(cols, rows);
        println!(
            "footprint local_inplace_vs_scratch/scratch_gather/{shape} scratch_bytes {} vp {vp}",
            rows * cols * 8 + rows * cols * 4
        );
        let mut src = data.clone();
        let mut staging: Vec<u64> = Vec::with_capacity(rows * cols);
        group.bench_function(BenchmarkId::new("scratch_gather", &shape), |b| {
            b.iter(|| {
                for table in [&t_fwd, &t_back] {
                    staging.clear();
                    staging.extend(table.iter().map(|&g| src[g as usize]));
                    std::mem::swap(&mut src, &mut staging);
                }
            })
        });

        // The tiled out-of-place kernel through a pooled full-size
        // buffer (the PermPlan::Transpose realization).
        println!(
            "footprint local_inplace_vs_scratch/scratch_tiled/{shape} scratch_bytes {} vp {vp}",
            rows * cols * 8
        );
        let mut src = data.clone();
        let mut staging: Vec<u64> = Vec::with_capacity(rows * cols);
        group.bench_function(BenchmarkId::new("scratch_tiled", &shape), |b| {
            b.iter(|| {
                local::transpose_flat_blocked_into(&src, rows, cols, 64, &mut staging);
                std::mem::swap(&mut src, &mut staging);
                local::transpose_flat_blocked_into(&src, cols, rows, 64, &mut staging);
                std::mem::swap(&mut src, &mut staging);
            })
        });
    }
    group.finish();
}

fn bench_copy(c: &mut Criterion) {
    // Figure 9's subject: raw copy speed per element width.
    let mut group = c.benchmark_group("copy");
    let bytes = 1 << 16;
    let src8: Vec<u8> = vec![1; bytes];
    let src64: Vec<u64> = vec![1; bytes / 8];
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("u8", |b| b.iter(|| src8.clone()));
    group.bench_function("u64", |b| b.iter(|| src64.clone()));
    group.finish();
}

criterion_group!(
    benches,
    bench_local_transpose,
    bench_in_place,
    bench_inplace_vs_scratch,
    bench_copy
);
criterion_main!(benches);
