//! Application-level benches: the FFT kernels and the spectral Poisson
//! solve (local compute plus simulated transpose overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cubeapps::cplx::Cplx;
use cubeapps::fft::{fft_four_step, fft_in_place};
use cubeapps::poisson::{grid_layout, solve_poisson};
use cubeapps::tridiag::{cyclic_reduction, thomas, ConstTridiag};
use cubelayout::DistMatrix;
use cubesim::{MachineParams, PortMode};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for bits in [10u32, 14] {
        let n = 1usize << bits;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("local", n), |b| {
            let data: Vec<Cplx> = (0..n).map(|i| Cplx::new((i as f64).sin(), 0.0)).collect();
            b.iter(|| {
                let mut d = data.clone();
                fft_in_place(&mut d);
                d
            })
        });
    }
    group.sample_size(20);
    group.bench_function("four_step_4096_8nodes", |b| {
        let x: Vec<Cplx> = (0..4096).map(|i| Cplx::new((i as f64 * 0.3).cos(), 0.0)).collect();
        let params = MachineParams::intel_ipsc();
        b.iter(|| fft_four_step(&x, 6, 6, 3, &params))
    });
    group.finish();
}

fn bench_tridiag(c: &mut Criterion) {
    let mut group = c.benchmark_group("tridiag");
    let sys = ConstTridiag { a: -1.0, b: 2.5, c: -1.0 };
    for n in [255usize, 4095] {
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("thomas", n), &d, |b, d| b.iter(|| thomas(sys, d)));
        group.bench_with_input(BenchmarkId::new("cyclic_reduction", n), &d, |b, d| {
            b.iter(|| cyclic_reduction(sys, d))
        });
    }
    group.finish();
}

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson");
    group.sample_size(10);
    let layout = grid_layout(5, 2);
    let rhs = DistMatrix::from_fn(layout, |y, x| ((y * 3 + x) % 7) as f64 - 3.0);
    let params = MachineParams::unit(PortMode::OnePort);
    group.bench_function("facr_32x32_4nodes", |b| b.iter(|| solve_poisson(&rhs, 2, &params)));
    group.finish();
}

criterion_group!(benches, bench_fft, bench_tridiag, bench_poisson);
criterion_main!(benches);
