//! Regeneration of every table and figure of the paper's evaluation.
//!
//! Each `figNN`/`tabN` function reruns the corresponding experiment on
//! the simulated machines and returns the data series the paper plots.
//! Absolute values depend on the calibrated machine constants; the
//! *shapes* — who wins, by what factor, where curves cross — are the
//! reproduction targets (see EXPERIMENTS.md at the repository root).

use crate::par::par_map;
use crate::series::{Series, SeriesSet};
use cubeaddr::NodeId;
use cubecomm::ecube::{ecube_route, RouteMsg};
use cubecomm::{Block, BufferPolicy};
use cubelayout::{Assignment, Direction, Encoding, Layout};
use cubemodel as model;
use cubesim::{MachineParams, PortMode, SimNet};
use cubetranspose::gray::{transpose_combined, transpose_naive_mixed, MixedSpec};
use cubetranspose::two_dim::{tr, Packet};
use cubetranspose::{verify, SendPolicy};

/// Builds the canonical 1D row-consecutive transpose pair for `pq = 2^m`
/// elements on an `n`-cube.
fn one_dim_pair(m_log: u32, n: u32) -> (Layout, Layout) {
    let p = m_log / 2;
    let q = m_log - p;
    (
        Layout::one_dim(p, q, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary),
        Layout::one_dim(q, p, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary),
    )
}

/// The router message set for the node-permutation transpose `x → tr(x)`
/// on an `n`-cube, `elems` elements per message — the workload of
/// Figure 14(b), the Connection Machine figures, and the router bench.
pub fn transpose_route_msgs(n: u32, elems: usize) -> Vec<RouteMsg<u64>> {
    let half = n / 2;
    (0..(1u64 << n))
        .filter(|&x| tr(x, half) != x)
        .map(|x| RouteMsg { src: NodeId(x), dst: NodeId(tr(x, half)), data: vec![x; elems] })
        .collect()
}

/// Simulated 1D transpose time under a send policy (iPSC constants).
fn one_dim_time(m_log: u32, n: u32, policy: SendPolicy) -> f64 {
    let params = MachineParams::intel_ipsc();
    let (before, after) = one_dim_pair(m_log, n);
    let m = verify::labels(before);
    let mut net: SimNet<Vec<u64>> = SimNet::new(n, params);
    let _ = cubetranspose::transpose_stepwise(&m, &after, &mut net, policy);
    net.finalize().time
}

/// Figure 9: local copy time versus data volume, per element width.
pub fn fig9() -> SeriesSet {
    let mut set = SeriesSet::new("Figure 9: copy time on the iPSC model", "bytes", "seconds");
    // Copy cost is per element: a per-element loop overhead plus a
    // per-byte move cost, so wider types copy fewer elements per byte and
    // come out cheaper per byte — the spread between the four curves of
    // the measured figure. The float curve integrates to the iPSC
    // t_copy ≈ 36 µs/element used everywhere else.
    for (name, width) in [("char", 1usize), ("short", 2), ("float", 4), ("double", 8)] {
        let mut s = Series::new(name);
        for log in 6..=12u32 {
            let bytes = 1usize << log;
            let elems = bytes / width;
            s.push(bytes as f64, elems as f64 * 4.0e-6 + bytes as f64 * 8.0e-6);
        }
        set.push(s);
    }
    set
}

/// Figure 10: 1D transpose, unbuffered versus buffered, versus cube
/// dimension, for two matrix sizes.
pub fn fig10() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 10: 1D transpose time vs cube dimension (iPSC)",
        "cube dimension n",
        "seconds",
    );
    let b_copy = MachineParams::intel_ipsc().b_copy();
    let points: Vec<(u32, u32)> =
        [12u32, 16].into_iter().flat_map(|m| (1..=6u32).map(move |n| (m, n))).collect();
    let times = par_map(&points, |&(m_log, n)| {
        (
            one_dim_time(m_log, n, SendPolicy::Unbuffered),
            one_dim_time(m_log, n, SendPolicy::Buffered { min_direct: b_copy }),
        )
    });
    let mut at = times.iter();
    for m_log in [12u32, 16] {
        let mut unbuf = Series::new(format!("unbuffered 2^{m_log}"));
        let mut buf = Series::new(format!("buffered 2^{m_log}"));
        for n in 1..=6u32 {
            let &(u, b) = at.next().unwrap();
            unbuf.push(n as f64, u);
            buf.push(n as f64, b);
        }
        set.push(unbuf);
        set.push(buf);
    }
    set
}

/// Figure 11: sensitivity to the minimum unbuffered block size.
pub fn fig11() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 11: optimum buffer threshold (iPSC)",
        "min direct block (elements)",
        "seconds",
    );
    let points: Vec<(u32, u32, u32)> = [(14u32, 5u32), (16, 6)]
        .into_iter()
        .flat_map(|(m, n)| (0..=10u32).map(move |t| (m, n, t)))
        .collect();
    let times = par_map(&points, |&(m_log, n, t_log)| {
        one_dim_time(m_log, n, SendPolicy::Buffered { min_direct: 1 << t_log })
    });
    let mut at = times.iter();
    for (m_log, n) in [(14u32, 5u32), (16, 6)] {
        let mut s = Series::new(format!("PQ=2^{m_log}, n={n}"));
        for t_log in 0..=10u32 {
            s.push((1usize << t_log) as f64, *at.next().unwrap());
        }
        set.push(s);
    }
    set
}

/// Figure 12: optimum buffering versus unbuffered, versus matrix size.
pub fn fig12() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 12: effect of optimum buffering (iPSC, 6-cube)",
        "matrix elements",
        "seconds",
    );
    let n = 6u32;
    let b_copy = MachineParams::intel_ipsc().b_copy();
    let points: Vec<u32> = (12..=18u32).collect();
    let times = par_map(&points, |&m_log| {
        (
            one_dim_time(m_log, n, SendPolicy::Unbuffered),
            one_dim_time(m_log, n, SendPolicy::Buffered { min_direct: b_copy }),
        )
    });
    let mut unbuf = Series::new("unbuffered");
    let mut buf = Series::new("optimum buffering");
    for (m_log, &(u, b)) in points.iter().zip(&times) {
        unbuf.push((1u64 << m_log) as f64, u);
        buf.push((1u64 << m_log) as f64, b);
    }
    set.push(unbuf);
    set.push(buf);
    set
}

/// Simulated stepwise-SPT 2D transpose; returns (copy, comm, total).
fn spt_stepwise_parts(m_log: u32, n: u32) -> (f64, f64, f64) {
    let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
    assert!(m_log.is_multiple_of(2), "2D figures use square matrices");
    let p = m_log / 2;
    let before = Layout::square(p, p, n / 2, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = verify::labels(before);
    let mut net: SimNet<Packet<u64>> = SimNet::new(n, params);
    let _ = cubetranspose::transpose_spt_stepwise(&m, &after, &mut net);
    let r = net.finalize();
    (r.copy_time, r.startup_time + r.transfer_time, r.time)
}

/// Figure 13: copy/communication/total of the 2D transpose, 2-cube and
/// 6-cube.
pub fn fig13() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 13: 2D (SPT) transpose breakdown (iPSC)",
        "matrix elements",
        "seconds",
    );
    let points: Vec<(u32, u32)> =
        [2u32, 6].into_iter().flat_map(|n| (8..=16u32).step_by(2).map(move |m| (n, m))).collect();
    let parts = par_map(&points, |&(n, m_log)| spt_stepwise_parts(m_log, n));
    let mut at = parts.iter();
    for n in [2u32, 6] {
        let mut copy = Series::new(format!("copy n={n}"));
        let mut comm = Series::new(format!("comm n={n}"));
        let mut total = Series::new(format!("total n={n}"));
        for m_log in (8..=16u32).step_by(2) {
            let &(c, m, t) = at.next().unwrap();
            copy.push((1u64 << m_log) as f64, c);
            comm.push((1u64 << m_log) as f64, m);
            total.push((1u64 << m_log) as f64, t);
        }
        set.push(copy);
        set.push(comm);
        set.push(total);
    }
    set
}

/// Figure 14(a): SPT total time across cube dimensions.
pub fn fig14a() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 14a: 2D SPT transpose vs matrix size (iPSC)",
        "matrix elements",
        "seconds",
    );
    let points: Vec<(u32, u32)> = [2u32, 4, 6]
        .into_iter()
        .flat_map(|n| (8..=16u32).step_by(2).map(move |m| (n, m)))
        .collect();
    let totals = par_map(&points, |&(n, m_log)| spt_stepwise_parts(m_log, n).2);
    let mut at = totals.iter();
    for n in [2u32, 4, 6] {
        let mut s = Series::new(format!("{n}-cube"));
        for m_log in (8..=16u32).step_by(2) {
            s.push((1u64 << m_log) as f64, *at.next().unwrap());
        }
        set.push(s);
    }
    set
}

/// Figure 14(b): transpose by the routing logic (e-cube direct sends)
/// versus the scheduled, pipelined SPT.
///
/// The router pays the same pre/post 2D↔1D rearrangement copies the
/// direct sends need on the iPSC. The pipelined SPT series shows the
/// algorithmic advantage of scheduling: packets stream every cycle over
/// the edge-disjoint paths instead of store-and-forwarding whole
/// messages through the router's queues.
pub fn fig14b() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 14b: routing logic vs scheduled SPT (iPSC)",
        "matrix elements",
        "seconds",
    );
    let points: Vec<(u32, u32)> = [2u32, 4, 6]
        .into_iter()
        .flat_map(|n| (8..=16u32).step_by(2).map(move |m| (n, m)))
        .collect();
    let times = par_map(&points, |&(n, m_log)| {
        let half = n / 2;
        let per = 1usize << (m_log - n);
        let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);

        let mut net: SimNet<Block<u64>> = SimNet::new(n, params.clone());
        for x in 0..(1u64 << n) {
            net.local_copy(NodeId(x), 2 * per); // gather + scatter
        }
        let _ = ecube_route(&mut net, transpose_route_msgs(n, per));
        let router_time = net.finalize().time;

        let p = m_log / 2;
        let before = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let m = verify::labels(before);
        let b = params.max_packet.min(per);
        let mut net2: SimNet<Packet<u64>> = SimNet::new(n, params);
        let _ = cubetranspose::transpose_spt(&m, &after, &mut net2, b);
        (router_time, net2.finalize().time)
    });
    let mut at = times.iter();
    for n in [2u32, 4, 6] {
        let mut router = Series::new(format!("router {n}-cube"));
        let mut spt = Series::new(format!("SPT pipelined {n}-cube"));
        for m_log in (8..=16u32).step_by(2) {
            let &(r, s) = at.next().unwrap();
            router.push((1u64 << m_log) as f64, r);
            spt.push((1u64 << m_log) as f64, s);
        }
        set.push(router);
        set.push(spt);
    }
    set
}

/// Figure 15: mixed-encoding transpose, naive (2n-2 steps) versus
/// combined (n steps).
pub fn fig15() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 15: mixed-encoding transpose, naive vs combined (iPSC)",
        "matrix elements",
        "seconds",
    );
    let mut points: Vec<(u32, u32)> = Vec::new();
    for half in [1u32, 2, 3] {
        for p in (half + 2)..=(half + 5) {
            points.push((half, p));
        }
    }
    let times = par_map(&points, |&(half, p)| {
        let n = 2 * half;
        let spec = MixedSpec::binary_rows_gray_cols(p, half);
        let m = verify::labels(spec.before());
        let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);

        let mut net1: SimNet<cubetranspose::gray::BlockFlight<u64>> =
            SimNet::new(n, params.clone());
        let _ = transpose_naive_mixed(&spec, &m, &mut net1);

        let mut net2: SimNet<cubetranspose::gray::BlockFlight<u64>> = SimNet::new(n, params);
        let _ = transpose_combined(&spec, &m, &mut net2);
        (net1.finalize().time, net2.finalize().time)
    });
    let mut at = times.iter();
    for half in [1u32, 2, 3] {
        let n = 2 * half;
        let mut naive = Series::new(format!("naive n={n}"));
        let mut comb = Series::new(format!("combined n={n}"));
        for p in (half + 2)..=(half + 5) {
            let pq = (1u64 << (2 * p)) as f64;
            let &(t_naive, t_comb) = at.next().unwrap();
            naive.push(pq, t_naive);
            comb.push(pq, t_comb);
        }
        set.push(naive);
        set.push(comb);
    }
    set
}

/// Connection-Machine transpose via the router; `elems` per processor.
fn cm_time(n: u32, elems: usize) -> f64 {
    let mut net: SimNet<Block<u64>> = SimNet::new(n, MachineParams::connection_machine());
    let _ = ecube_route(&mut net, transpose_route_msgs(n, elems));
    net.finalize().time
}

/// Figure 16: CM transpose, one element per processor, vs machine size.
pub fn fig16() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 16: Connection Machine transpose, 1 element/processor",
        "cube dimension n",
        "seconds",
    );
    let points: Vec<u32> = (6..=14u32).step_by(2).collect();
    let times = par_map(&points, |&n| cm_time(n, 1));
    let mut s = Series::new("router");
    for (&n, &t) in points.iter().zip(&times) {
        s.push(n as f64, t);
    }
    set.push(s);
    set
}

/// Figure 17: CM transpose with multiple elements per processor.
pub fn fig17() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 17: Connection Machine transpose, multiple elements",
        "elements per processor",
        "seconds",
    );
    let points: Vec<(u32, u32)> =
        [8u32, 10, 12].into_iter().flat_map(|n| (0..=5u32).map(move |e| (n, e))).collect();
    let times = par_map(&points, |&(n, e_log)| cm_time(n, 1 << e_log));
    let mut at = times.iter();
    for n in [8u32, 10, 12] {
        let mut s = Series::new(format!("{n}-cube"));
        for e_log in 0..=5u32 {
            s.push((1usize << e_log) as f64, *at.next().unwrap());
        }
        set.push(s);
    }
    set
}

/// Figure 18: CM transpose of fixed matrices vs machine size.
pub fn fig18() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 18: Connection Machine transpose vs machine size",
        "cube dimension n",
        "seconds",
    );
    let points: Vec<(u32, u32)> = [14u32, 16, 18]
        .into_iter()
        .flat_map(|m| (8..=m.min(14)).step_by(2).map(move |n| (m, n)))
        .collect();
    let times = par_map(&points, |&(m_log, n)| cm_time(n, 1 << (m_log - n)));
    let mut at = times.iter();
    for m_log in [14u32, 16, 18] {
        let mut s = Series::new(format!("{0}×{0}", 1u64 << (m_log / 2)));
        for n in (8..=m_log.min(14)).step_by(2) {
            s.push(n as f64, *at.next().unwrap());
        }
        set.push(s);
    }
    set
}

/// Figure 19: one- versus two-dimensional partitioning on the iPSC.
pub fn fig19() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Figure 19: 1D vs 2D transpose (iPSC, with copy costs)",
        "cube dimension n",
        "seconds",
    );
    let b_copy = MachineParams::intel_ipsc().b_copy();
    let points: Vec<(u32, u32)> =
        [12u32, 16].into_iter().flat_map(|m| (1..=(m / 2).min(8)).map(move |n| (m, n))).collect();
    let times = par_map(&points, |&(m_log, n)| {
        (
            one_dim_time(m_log, n, SendPolicy::Buffered { min_direct: b_copy }),
            (n % 2 == 0).then(|| spt_stepwise_parts(m_log, n).2),
        )
    });
    let mut at = times.iter();
    for m_log in [12u32, 16] {
        let mut one = Series::new(format!("1D 2^{m_log}"));
        let mut two = Series::new(format!("2D 2^{m_log}"));
        for n in 1..=(m_log / 2).min(8) {
            let &(o, t) = at.next().unwrap();
            one.push(n as f64, o);
            if let Some(t) = t {
                two.push(n as f64, t);
            }
        }
        set.push(one);
        set.push(two);
    }
    set
}

/// Table 3: some-to-all model versus simulation across (k, l) splits.
pub fn tab3() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Table 3: some-to-all time, k splitting + l all-to-all steps (unit one-port)",
        "k (of n = 6)",
        "time units",
    );
    let n = 6u32;
    let b = 8usize;
    let mut sim = Series::new("simulated");
    let mut mdl = Series::new("Table 3 model");
    let mut mdl_np = Series::new("Table 3 n-port model");
    for k in 0..=n {
        let l = n - k;
        let l_dims = cubeaddr::DimSet::range(0, l);
        let k_dims = cubeaddr::DimSet::range(l, n);
        let sources = 1usize << l;
        let num = 1usize << n;
        let blocks: Vec<Vec<Vec<u64>>> = (0..sources as u64)
            .map(|i| (0..num as u64).map(|d| vec![i ^ d; b]).collect())
            .collect();
        let params = MachineParams::unit(PortMode::OnePort);
        let mut net = SimNet::new(n, params.clone());
        let _ = cubecomm::some_to_all::some_to_all(
            &mut net,
            l_dims,
            k_dims,
            blocks,
            BufferPolicy::Ideal,
        );
        let pq = (sources * num * b) as u64;
        sim.push(k as f64, net.finalize().time);
        mdl.push(k as f64, model::some_to_all::one_port(pq, k, l, &params));
        mdl_np.push(k as f64, model::some_to_all::all_port(pq, k, l, &params));
    }
    set.push(sim);
    set.push(mdl);
    set.push(mdl_np);
    set
}

/// Theorem 2: MPT model minimum versus the simulated MPT across cube
/// sizes.
pub fn thm2() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Theorem 2: MPT T_min vs simulation (unit model, PQ = 2^16)",
        "cube dimension n",
        "time units",
    );
    let m_log = 16u32;
    let params = MachineParams::unit(PortMode::AllPorts);
    let mut sim = Series::new("simulated MPT (best k ≤ 8)");
    let mut mdl = Series::new("Theorem 2 T_min");
    let mut lb = Series::new("Theorem 3 bound");
    let points: Vec<u32> = (2..=8u32).step_by(2).collect();
    let bests = par_map(&points, |&n| {
        let p = m_log / 2;
        let before = Layout::square(p, p, n / 2, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let m = verify::labels(before);
        let mut best = f64::INFINITY;
        for k in 1..=8u32 {
            let mut net: SimNet<Packet<u64>> = SimNet::new(n, params.clone());
            let _ = cubetranspose::transpose_mpt(&m, &after, &mut net, k);
            best = best.min(net.finalize().time);
        }
        best
    });
    for (&n, &best) in points.iter().zip(&bests) {
        sim.push(n as f64, best);
        mdl.push(n as f64, model::mpt::mpt_min(1 << m_log, n, &params));
        lb.push(n as f64, model::bounds::transpose_lower_bound(1 << m_log, n, &params));
    }
    set.push(sim);
    set.push(mdl);
    set.push(lb);
    set
}

/// §9 break-even: where the 2D partitioning starts to win (one-port,
/// with copy).
pub fn breakeven() -> SeriesSet {
    let mut set = SeriesSet::new(
        "§9 break-even: T^1d and T^2d models vs cube dimension (iPSC)",
        "cube dimension n",
        "seconds",
    );
    let params = MachineParams::intel_ipsc();
    for m_log in [14u32, 16] {
        let mut one = Series::new(format!("T1d 2^{m_log}"));
        let mut two = Series::new(format!("T2d 2^{m_log}"));
        for n in (2..=(m_log / 2).min(10)).step_by(2) {
            let (a, b) = model::bounds::compare_1d_2d_one_port(1 << m_log, n, &params);
            one.push(n as f64, a);
            two.push(n as f64, b);
        }
        set.push(one);
        set.push(two);
    }
    set
}

/// Pipeline occupancy: total elements in flight per round for the
/// pipelined SPT versus the MPT — the fill/steady/drain profile of the
/// packet pipelines (uses the simulator's per-round history).
pub fn pipeline() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Pipeline occupancy per round (64×64 on a 4-cube, unit costs)",
        "round",
        "elements in flight",
    );
    let (p, half) = (6u32, 2u32);
    let n = 2 * half;
    let before = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = verify::labels(before.clone());
    let params = MachineParams::unit(PortMode::AllPorts);

    let mut spt = Series::new("SPT B=16");
    let mut net: SimNet<Packet<u64>> = SimNet::new(n, params.clone());
    net.record_history();
    let _ = cubetranspose::transpose_spt(&m, &after, &mut net, 16);
    for (i, h) in net.finalize().history.iter().enumerate() {
        spt.push(i as f64, h.total_elems as f64);
    }

    let mut mpt = Series::new("MPT k=2");
    let mut net: SimNet<Packet<u64>> = SimNet::new(n, params);
    net.record_history();
    let _ = cubetranspose::transpose_mpt(&m, &after, &mut net, 2);
    for (i, h) in net.finalize().history.iter().enumerate() {
        mpt.push(i as f64, h.total_elems as f64);
    }
    set.push(spt);
    set.push(mpt);
    set
}

/// Ablation: packet-size sweep around `B_opt` for the pipelined SPT and
/// DPT (the optimum-packet-size discussion of §6.1.1–6.1.2). The curves
/// are U-shaped with minima at the model's `B_opt`, DPT's shifted to
/// `B_opt/√2` and lower overall.
pub fn ablation_bopt() -> SeriesSet {
    let mut set = SeriesSet::new(
        "Ablation: SPT/DPT time vs packet size (iPSC n-port, 64×64 on a 4-cube)",
        "packet size B (elements)",
        "seconds",
    );
    let (p, half) = (6u32, 2u32);
    let n = 2 * half;
    let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
    let before = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = verify::labels(before.clone());
    let mut spt = Series::new("SPT simulated");
    let mut dpt = Series::new("DPT simulated");
    let mut spt_model = Series::new("SPT model");
    for b_log in 2..=8u32 {
        let b = 1usize << b_log;
        let mut net: SimNet<Packet<u64>> = SimNet::new(n, params.clone());
        let _ = cubetranspose::transpose_spt(&m, &after, &mut net, b);
        spt.push(b as f64, net.finalize().time);
        let mut net: SimNet<Packet<u64>> = SimNet::new(n, params.clone());
        let _ = cubetranspose::transpose_dpt(&m, &after, &mut net, b);
        dpt.push(b as f64, net.finalize().time);
        spt_model.push(b as f64, model::two_dim::spt(1 << (2 * p), n, b as u64, &params));
    }
    set.push(spt);
    set.push(dpt);
    set.push(spt_model);
    set
}

/// Ablation: the three §6.2 conversion algorithms compared on iPSC
/// constants across matrix sizes.
pub fn ablation_convert() -> SeriesSet {
    use cubetranspose::convert::{
        convert_algorithm1, convert_algorithm2, convert_algorithm3, ConvertSpec,
    };
    let mut set = SeriesSet::new(
        "Ablation: §6.2 conversion algorithms (iPSC, n_r = n_c = 2)",
        "matrix elements",
        "seconds",
    );
    let mut a1 = Series::new("algorithm 1 (2n steps)");
    let mut a2 = Series::new("algorithm 2 (n steps + local transposes)");
    let mut a3 = Series::new("algorithm 3 (n steps)");
    for p in 4..=7u32 {
        let spec = ConvertSpec::new(p, p, 2);
        let m = verify::labels(spec.before());
        let pq = (1u64 << (2 * p)) as f64;
        let params = MachineParams::intel_ipsc();
        type Alg = fn(
            &ConvertSpec,
            &cubelayout::DistMatrix<u64>,
            &mut SimNet<Vec<u64>>,
            SendPolicy,
        ) -> cubelayout::DistMatrix<u64>;
        let run = |alg: Alg| {
            let mut net: SimNet<Vec<u64>> = SimNet::new(4, params.clone());
            let _ = alg(&spec, &m, &mut net, SendPolicy::Ideal);
            net.finalize().time
        };
        a1.push(pq, run(convert_algorithm1));
        a2.push(pq, run(convert_algorithm2));
        a3.push(pq, run(convert_algorithm3));
    }
    set.push(a1);
    set.push(a2);
    set.push(a3);
    set
}

/// §9 in planner form: the algorithm [`cubetranspose::driver::plan`]
/// selects across the (matrix size, cube size, port model) grid — the
/// practical summary of the paper's comparison section.
pub fn recommend() -> String {
    use cubetranspose::driver::{plan, Choice};
    let mut out = String::from(
        "Planner selections (square 2D consecutive layouts → left; 1D row layouts → right):\n\n\
         machine/ports      | matrix     n=2            n=4            n=6            | 1D n=2         1D n=4         1D n=6\n",
    );
    let name = |c: Choice| match c {
        Choice::Local => "local".to_string(),
        Choice::SptStepwise => "SPT-step".to_string(),
        Choice::Mpt { k } => format!("MPT(k={k})"),
        Choice::ExchangeBuffered { .. } => "exch-buf".to_string(),
        Choice::Sbnt => "SBnT".to_string(),
    };
    for (mname, params) in [
        ("iPSC one-port", MachineParams::intel_ipsc()),
        ("iPSC n-port", MachineParams::intel_ipsc().with_ports(PortMode::AllPorts)),
        ("CM (n-port)", MachineParams::connection_machine()),
    ] {
        for p in [4u32, 7] {
            let mut row = format!("{mname:<18} | {0:>4}×{0:<5}", 1u64 << p);
            for half in [1u32, 2, 3] {
                let l = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
                row.push_str(&format!(" {:<14}", name(plan(&l, &l.swapped_shape(), &params))));
            }
            row.push_str("| ");
            for n in [2u32, 4, 6] {
                let l = Layout::one_dim(
                    p,
                    p,
                    Direction::Rows,
                    n.min(p),
                    Assignment::Consecutive,
                    Encoding::Binary,
                );
                row.push_str(&format!("{:<15}", name(plan(&l, &l.swapped_shape(), &params))));
            }
            row.push('\n');
            out.push_str(&row);
        }
    }
    out
}

/// Tables 1 and 2 as printable text.
pub fn tables12() -> String {
    let mut out = String::new();
    out.push_str("Table 1 (p = q = 6, n = 3):\n");
    out.push_str(&cubelayout::table::table1(6, 6, 3));
    out.push_str("\nTable 2 (p = q = 8, n = 5, i = 1, s = 2):\n");
    out.push_str(&cubelayout::table::table2(8, 8, 5, 1, 2));
    out
}

/// Figures 1–2: ownership grids for the four basic partitionings.
pub fn partition_grids() -> String {
    let mut out = String::new();
    let cases = [
        (
            "1D cyclic rows",
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Cyclic, Encoding::Binary),
        ),
        (
            "1D consecutive rows",
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary),
        ),
        ("2D cyclic", Layout::square(3, 3, 1, Assignment::Cyclic, Encoding::Binary)),
        ("2D consecutive", Layout::square(3, 3, 1, Assignment::Consecutive, Encoding::Binary)),
    ];
    for (name, layout) in cases {
        out.push_str(&format!("{name}:\n{}\n", cubelayout::table::render_ownership_grid(&layout)));
    }
    out
}

/// Figures 6–7: the permutation pattern of the combined mixed-encoding
/// transpose, shown as the grid of block identities after each iteration.
///
/// Every entry prints which block `(u‖v)` currently sits at the node in
/// that grid position (nodes arranged by their row/column parts); the
/// rotations visible between iterations are the paper's `c`/`cc`
/// (clockwise/counterclockwise) block movements.
pub fn fig7() -> String {
    let half = 2u32;
    let spec = MixedSpec::binary_rows_gray_cols(half + 1, half);
    // One block identity per node; a node may transiently hold two
    // between the row and column steps (the relay case), so store lists.
    let num = 1usize << (2 * half);
    let mut at: Vec<Vec<(u64, u64)>> = vec![Vec::new(); num];
    for bu in 0..(1u64 << half) {
        for bv in 0..(1u64 << half) {
            at[spec.node_of(bu, bv).index()].push((bu, bv));
        }
    }
    let render = |at: &Vec<Vec<(u64, u64)>>| -> String {
        let mut s = String::new();
        for r in 0..(1u64 << half) {
            for c in 0..(1u64 << half) {
                let x = cubeaddr::concat(r, c, half);
                match at[x as usize].as_slice() {
                    [(u, v)] => s.push_str(&format!("{u}{v} ")),
                    other => s.push_str(&format!("{}? ", other.len())),
                }
            }
            s.push('\n');
        }
        s
    };
    let hop = |at: &mut Vec<Vec<(u64, u64)>>, j: u32, row_step: bool| {
        let mut next: Vec<Vec<(u64, u64)>> = vec![Vec::new(); num];
        for (x, slot) in at.iter().enumerate() {
            for &(u, v) in slot {
                let x = x as u64;
                let nx = if row_step {
                    let target = v; // binary rows
                    if (((x >> half) ^ target) >> j) & 1 == 1 {
                        x ^ (1 << (j + half))
                    } else {
                        x
                    }
                } else {
                    let target = cubeaddr::gray(u);
                    if ((x ^ target) >> j) & 1 == 1 {
                        x ^ (1 << j)
                    } else {
                        x
                    }
                };
                next[nx as usize].push((u, v));
            }
        }
        *at = next;
    };
    let mut out = format!(
        "Figure 6/7: combined transpose of a binary-row/Gray-column encoded\n\
         matrix on a {}-cube; entries are (row-index, column-index):\n\ninitial:\n{}",
        2 * half,
        render(&at)
    );
    for j in (0..half).rev() {
        hop(&mut at, j, true);
        hop(&mut at, j, false);
        out.push_str(&format!("\nafter iteration j={j} (row+column steps):\n{}", render(&at)));
    }
    out
}

/// Space-time diagram of the pipelined SPT on a 4-cube: rows are the
/// directed links in use, columns the routing cycles; a digit shows the
/// number of elements (log2) crossing that link that cycle. Shows the
/// pipeline filling every path edge cycle after cycle — the visual form
/// of the edge-disjointness lemmas.
pub fn trace() -> String {
    let (p, half) = (4u32, 2u32);
    let n = 2 * half;
    let before = Layout::square(p, p, half, Assignment::Consecutive, Encoding::Binary);
    let after = before.swapped_shape();
    let m = verify::labels(before.clone());
    let mut net: SimNet<Packet<u64>> = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
    net.record_links();
    let _ = cubetranspose::transpose_spt(&m, &after, &mut net, 4);
    let r = net.finalize();

    // Collect the set of links ever used, sorted.
    let mut links: Vec<(u64, u32)> =
        r.link_history.iter().flatten().map(|e| (e.src, e.dim)).collect();
    links.sort_unstable();
    links.dedup();
    let rounds = r.link_history.len();
    let mut out = format!(
        "SPT space-time diagram: {} directed links × {} cycles (B = 4 elements)\n\
         rows: link src→dim; '#' = busy cycle\n\n",
        links.len(),
        rounds
    );
    for &(src, dim) in &links {
        out.push_str(&format!("{src:>2}--d{dim}-> |"));
        for round in &r.link_history {
            let busy = round.iter().any(|e| (e.src, e.dim) == (src, dim));
            out.push(if busy { '#' } else { ' ' });
        }
        out.push_str("|\n");
    }
    out
}

/// Figure 4: the six MPT paths of x = (000 ‖ 111).
pub fn fig4() -> String {
    let mut out =
        String::from("Figure 4: the 6 edge-disjoint paths from (000‖111) to (111‖000):\n");
    for p in 0..6u32 {
        let path = cubetranspose::two_dim::mpt_path(0b000_111, 3, p);
        out.push_str(&format!("  path {p}: dims {path:?}\n"));
    }
    out
}
