//! Command-line transpose planner: describe a distributed matrix and a
//! machine, get the algorithm choice, the simulated cost, and a
//! correctness check.
//!
//! ```text
//! cargo run --release -p cubebench --bin transpose -- \
//!     --p 6 --q 6 --before 2d:consecutive:binary:half=2 \
//!     --machine ipsc --ports all
//! ```
//!
//! `--after` defaults to the same scheme on the transposed shape. Layout
//! spec grammar: see `cubelayout::parse`.

use cubelayout::parse::parse_layout;
use cubesim::{MachineParams, PortMode};
use cubetranspose::{driver, verify};

fn usage() -> ! {
    eprintln!(
        "usage: transpose --p <bits> --q <bits> --before <spec> [--after <spec>]\n\
         \x20                 [--machine ipsc|cm|unit] [--ports one|all]\n\
         specs: 1d:rows|cols:cyclic|consecutive:binary|gray:n=<k>\n\
         \x20      2d:<scheme>:<enc>:half=<k>\n\
         \x20      2d:<rs>:<re>:<cs>:<ce>:nr=<k>:nc=<k>\n\
         \x20      banded:nc=<k>"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut p = None;
    let mut q = None;
    let mut before_spec = None;
    let mut after_spec: Option<String> = None;
    let mut machine = "ipsc".to_string();
    let mut ports = "one".to_string();
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--p" => p = val("--p").parse().ok(),
            "--q" => q = val("--q").parse().ok(),
            "--before" => before_spec = Some(val("--before")),
            "--after" => after_spec = Some(val("--after")),
            "--machine" => machine = val("--machine"),
            "--ports" => ports = val("--ports"),
            _ => usage(),
        }
    }
    let (Some(p), Some(q), Some(before_spec)) = (p, q, before_spec) else { usage() };

    let before = parse_layout(&before_spec, p, q).unwrap_or_else(|e| {
        eprintln!("--before: {e}");
        std::process::exit(2);
    });
    let after = match after_spec {
        Some(s) => parse_layout(&s, q, p).unwrap_or_else(|e| {
            eprintln!("--after: {e}");
            std::process::exit(2);
        }),
        None => before.swapped_shape(),
    };

    let mut params = match machine.as_str() {
        "ipsc" => MachineParams::intel_ipsc(),
        "cm" => MachineParams::connection_machine(),
        "unit" => MachineParams::unit(PortMode::OnePort),
        other => {
            eprintln!("unknown machine '{other}'");
            usage()
        }
    };
    params.ports = match ports.as_str() {
        "one" => PortMode::OnePort,
        "all" => PortMode::AllPorts,
        other => {
            eprintln!("unknown port mode '{other}'");
            usage()
        }
    };

    println!(
        "problem: {}×{} matrix, {} nodes ({} elements/node) on {}\n",
        1u64 << p,
        1u64 << q,
        before.num_nodes(),
        before.elems_per_node(),
        params.name,
    );

    let matrix = verify::labels(before.clone());
    let (out, choice, report) = driver::execute(&matrix, &after, &params);
    verify::assert_transposed(&before, &out);

    println!("plan     : {choice:?}");
    println!("simulated: {}", report.summary());
    println!("verified : every element of A^T in place.");
}
