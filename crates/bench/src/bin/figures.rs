//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p cubebench --bin figures            # everything
//! cargo run --release -p cubebench --bin figures fig10 tab3 # a subset
//! cargo run --release -p cubebench --bin figures --csv out/ # also CSV files
//! cargo run --release -p cubebench --bin figures --lint     # statically
//!                       # verify the routed figures' schedules first
//! ```

use cubebench::experiments as exp;
use cubebench::SeriesSet;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    let mut plot = false;
    let mut lint = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            csv_dir = Some(it.next().unwrap_or_else(|| {
                eprintln!("--csv needs a directory");
                std::process::exit(2);
            }));
        } else if a == "--plot" {
            plot = true;
        } else if a == "--lint" {
            lint = true;
        } else {
            wanted.push(a);
        }
    }

    type Gen = fn() -> SeriesSet;
    let numeric: &[(&str, Gen)] = &[
        ("fig9", exp::fig9),
        ("fig10", exp::fig10),
        ("fig11", exp::fig11),
        ("fig12", exp::fig12),
        ("fig13", exp::fig13),
        ("fig14a", exp::fig14a),
        ("fig14b", exp::fig14b),
        ("fig15", exp::fig15),
        ("fig16", exp::fig16),
        ("fig17", exp::fig17),
        ("fig18", exp::fig18),
        ("fig19", exp::fig19),
        ("tab3", exp::tab3),
        ("thm2", exp::thm2),
        ("breakeven", exp::breakeven),
        ("ablation_bopt", exp::ablation_bopt),
        ("pipeline", exp::pipeline),
        ("ablation_convert", exp::ablation_convert),
    ];
    type TextGen = fn() -> String;
    let textual: &[(&str, TextGen)] = &[
        ("tab1", exp::tables12 as TextGen),
        ("fig1", exp::partition_grids as TextGen),
        ("fig4", exp::fig4 as TextGen),
        ("fig7", exp::fig7 as TextGen),
        ("trace", exp::trace as TextGen),
        ("recommend", exp::recommend as TextGen),
    ];

    let run_all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let selected = |name: &str| run_all || wanted.iter().any(|w| w == name);

    // Static schedule verification before any data generation: lint the
    // selected routed figures' communication schedules with cubecheck
    // and abort on the first invariant violation.
    if lint {
        let mut violations = 0usize;
        for name in cubecheck::workloads::FIGURES {
            if !selected(name) {
                continue;
            }
            let workloads = cubecheck::workloads::figure(name).expect("lintable figure");
            for w in &workloads {
                let mut low = cubecheck::lower(&w.schedule, &w.params);
                low.name = w.name.clone();
                for d in cubecheck::check_all(&low, &w.params) {
                    eprintln!("{d}");
                    violations += 1;
                }
            }
            eprintln!("lint: {name}: {} schedules checked", workloads.len());
        }
        if violations > 0 {
            eprintln!("lint: {violations} schedule violation(s); not generating figures");
            std::process::exit(1);
        }
    }

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }

    for (name, f) in textual {
        if selected(name) {
            println!("==== {name} ====");
            println!("{}", f());
        }
    }
    // Compute the selected figures in parallel (each generator may itself
    // fan its point grid out over par_map); print in declaration order so
    // the output is byte-identical to a sequential run.
    let chosen: Vec<(&str, Gen)> =
        numeric.iter().copied().filter(|(name, _)| selected(name)).collect();
    let sets = cubebench::par::par_map(&chosen, |&(_, f)| f());
    for ((name, _), set) in chosen.iter().zip(&sets) {
        {
            println!("==== {name} ====");
            print!("{}", set.to_table());
            if plot {
                print!("\n{}", set.to_ascii_chart(64, 16));
            }
            println!();
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{name}.csv");
                let mut file = std::fs::File::create(&path).expect("create csv");
                file.write_all(set.to_csv().as_bytes()).expect("write csv");
                eprintln!("wrote {path}");
            }
        }
    }
}
