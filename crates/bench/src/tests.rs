//! Smoke tests over the experiment harness: cheap instances of each
//! generator, with shape assertions where the paper states one.

use crate::experiments as exp;

#[test]
fn textual_artifacts_nonempty() {
    for (name, s) in [
        ("tables12", exp::tables12()),
        ("grids", exp::partition_grids()),
        ("fig4", exp::fig4()),
        ("fig7", exp::fig7()),
    ] {
        assert!(s.lines().count() > 3, "{name} too short");
    }
}

#[test]
fn fig4_paths_verbatim() {
    let s = exp::fig4();
    assert!(s.contains("[5, 2, 4, 1, 3, 0]"));
    assert!(s.contains("[2, 5, 1, 4, 0, 3]"));
}

#[test]
fn fig7_final_grid_is_transposed() {
    let s = exp::fig7();
    // Final grid row 0 lists the blocks (u, 0) in Gray order of u.
    let last: Vec<&str> = s.lines().rev().filter(|l| !l.trim().is_empty()).take(4).collect();
    assert_eq!(last[3].trim(), "00 10 30 20");
    assert_eq!(last[0].trim(), "03 13 33 23");
}

#[test]
fn fig9_linear_in_bytes() {
    let set = exp::fig9();
    for s in &set.series {
        let (x0, y0) = s.points[0];
        let (x1, y1) = *s.points.last().unwrap();
        let ratio = (y1 / y0) / (x1 / x0);
        assert!((ratio - 1.0).abs() < 1e-9, "{} not linear", s.name);
    }
}

#[test]
fn tab3_simulation_equals_model() {
    let set = exp::tab3();
    let sim = &set.series[0];
    let model = &set.series[1];
    for (a, b) in sim.points.iter().zip(&model.points) {
        assert!((a.1 - b.1).abs() < 1e-9, "k={} sim {} vs model {}", a.0, a.1, b.1);
    }
}

#[test]
fn series_set_renders_both_formats() {
    let set = exp::fig9();
    assert!(set.to_csv().lines().count() >= 2);
    assert!(set.to_table().contains("Figure 9"));
}
