//! Tiny data-series container with CSV and aligned-text output, used by
//! the figure harness.

/// A named series of `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A set of series sharing an x-axis; renders as CSV (one x column, one
/// column per series) or as an aligned text table.
#[derive(Clone, Debug, Default)]
pub struct SeriesSet {
    /// Title printed above text output.
    pub title: String,
    /// Label of the shared x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        SeriesSet {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Appends a series.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// The union of all x values, sorted and deduplicated.
    fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        xs
    }

    fn lookup(s: &Series, x: f64) -> Option<f64> {
        s.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// Renders as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for x in self.xs() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push(',');
                if let Some(y) = Self::lookup(s, x) {
                    out.push_str(&format!("{y}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned, human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = format!("# {} (y: {})\n", self.title, self.y_label);
        let mut widths = vec![self.x_label.len().max(12)];
        for s in &self.series {
            widths.push(s.name.len().max(12));
        }
        out.push_str(&format!("{:>w$}", self.x_label, w = widths[0]));
        for (s, w) in self.series.iter().zip(&widths[1..]) {
            out.push_str(&format!("  {:>w$}", s.name, w = w));
        }
        out.push('\n');
        for x in self.xs() {
            out.push_str(&format!("{:>w$.4}", x, w = widths[0]));
            for (s, w) in self.series.iter().zip(&widths[1..]) {
                match Self::lookup(s, x) {
                    Some(y) => out.push_str(&format!("  {:>w$.6}", y, w = w)),
                    None => out.push_str(&format!("  {:>w$}", "-", w = w)),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl SeriesSet {
    /// Renders a simple ASCII chart: one symbol per series, x mapped
    /// log-scale when it spans more than a decade, y linear. Terminal-
    /// friendly companion to the CSV output.
    pub fn to_ascii_chart(&self, width: usize, height: usize) -> String {
        const SYMBOLS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
        let pts: Vec<(f64, f64)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        if pts.is_empty() || width < 8 || height < 4 {
            return String::from("(no data)\n");
        }
        let (x_min, x_max) =
            pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.0), hi.max(p.0)));
        let (y_min, y_max) =
            pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.1), hi.max(p.1)));
        let log_x = x_min > 0.0 && x_max / x_min.max(f64::MIN_POSITIVE) > 10.0;
        let fx = |x: f64| if log_x { x.ln() } else { x };
        let (xa, xb) = (fx(x_min), fx(x_max));
        let col = |x: f64| {
            if xb > xa {
                (((fx(x) - xa) / (xb - xa)) * (width - 1) as f64).round() as usize
            } else {
                0
            }
        };
        let row = |y: f64| {
            if y_max > y_min {
                (height - 1)
                    - (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize
            } else {
                height / 2
            }
        };
        let mut grid = vec![vec![' '; width]; height];
        for (i, s) in self.series.iter().enumerate() {
            let sym = SYMBOLS[i % SYMBOLS.len()];
            for &(x, y) in &s.points {
                grid[row(y)][col(x)] = sym;
            }
        }
        let mut out = format!("{} (y: {:.3e}..{:.3e})\n", self.title, y_min, y_max);
        for line in grid {
            out.push('|');
            out.extend(line);
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', width));
        out.push('\n');
        out.push_str(&format!(
            "x: {:.3e}..{:.3e}{}  legend:",
            x_min,
            x_max,
            if log_x { " (log)" } else { "" }
        ));
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!(" {}={}", SYMBOLS[i % SYMBOLS.len()], s.name));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeriesSet {
        let mut set = SeriesSet::new("t", "x", "y");
        let mut a = Series::new("a");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("b");
        b.push(2.0, 200.0);
        set.push(a);
        set.push(b);
        set
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
    }

    #[test]
    fn table_contains_values() {
        let t = sample().to_table();
        assert!(t.contains("200"));
        assert!(t.contains('-'));
    }

    #[test]
    fn chart_renders_symbols_and_legend() {
        let chart = sample().to_ascii_chart(40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("legend: *=a o=b"));
        assert_eq!(chart.lines().count(), 13);
    }

    #[test]
    fn chart_handles_empty() {
        let set = SeriesSet::new("t", "x", "y");
        assert_eq!(set.to_ascii_chart(40, 10), "(no data)\n");
    }
}
