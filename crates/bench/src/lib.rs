//! Benchmark and figure-regeneration support library.
//!
//! Shared helpers for the Criterion benches and the `figures` binary that
//! regenerate the tables and figures of the Johnsson–Ho paper. See
//! `EXPERIMENTS.md` at the repository root for the experiment index.

pub mod experiments;
pub mod par;
pub mod series;

#[cfg(test)]
mod tests;

pub use series::{Series, SeriesSet};
