//! Scoped-thread parallel map for independent experiment points.
//!
//! Every figure sweep is a grid of independent `(n, PQ, preset)`
//! simulation points; [`par_map`] fans the grid out over scoped worker
//! threads (work-claiming by atomic counter, so uneven point costs
//! balance) and returns results **in input order** — the output of a
//! parallel sweep is byte-identical to the sequential one, because each
//! point's simulation is deterministic and the reassembly is positional.
//!
//! The worker count is `std::thread::available_parallelism`, overridable
//! with the `CUBEBENCH_THREADS` environment variable (`1` forces the
//! sequential path; useful for timing comparisons).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads to use for experiment sweeps.
pub fn num_threads() -> usize {
    match std::env::var("CUBEBENCH_THREADS") {
        Ok(v) => v.parse().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Maps `f` over `items` on [`num_threads`] scoped threads; results come
/// back in input order.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_with(num_threads(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_with<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map_with(threads, &items, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_with(4, &[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map_with(4, &[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Early items sleep so later items finish first on real threads.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map_with(4, &items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..8).collect();
        let _ = par_map_with(2, &items, |&x| {
            assert!(x != 5, "boom");
            x
        });
    }
}
