//! Scoped-thread parallel map for independent experiment points.
//!
//! Every figure sweep is a grid of independent `(n, PQ, preset)`
//! simulation points; [`par_map`] fans the grid out over scoped worker
//! threads (work-claiming by atomic counter, so uneven point costs
//! balance) and returns results **in input order** — the output of a
//! parallel sweep is byte-identical to the sequential one, because each
//! point's simulation is deterministic and the reassembly is positional.
//!
//! The implementation lives in [`cubesim::par`] so the simulator's
//! block-move data plane and the figure sweeps share one worker pool
//! policy; this module re-exports it under the historical name. The
//! worker count defaults to the machine's available parallelism, overridable
//! with the `CUBEBENCH_THREADS` environment variable (`1` forces the
//! sequential path; useful for timing comparisons).

pub use cubesim::par::{num_threads, par_map, par_map_with, with_threads};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map_with(threads, &items, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn env_override_respected_via_with_threads() {
        let items: Vec<u64> = (0..8).collect();
        let out = with_threads(3, || par_map(&items, |&x| x + 1));
        assert_eq!(out, (1..9).collect::<Vec<_>>());
    }
}
