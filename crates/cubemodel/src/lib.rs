//! Closed-form communication-complexity models from the paper.
//!
//! Every `T = …` expression in the paper is implemented here as a pure
//! function of the problem size (`PQ` elements over `N = 2^n` nodes) and
//! the machine constants (`τ`, `t_c`, `B_m`, `t_copy` from
//! [`cubesim::MachineParams`]). The simulator's measured times are checked
//! against these models in the test suites and the figure harness:
//!
//! * [`one_to_all`] — SBT / rotated-SBT / SBnT one-to-all personalized
//!   communication (§3.1) and its lower bounds;
//! * [`all_to_all`] — the exchange algorithm and the n-port bound (§3.2);
//! * [`some_to_all`] — Table 3;
//! * [`one_dim`] — the §8.1 unbuffered/buffered one-dimensional transpose
//!   expressions and the §9 `T^{1d}`;
//! * [`two_dim`] — SPT and DPT complexities (§6.1.1–6.1.2) and the §9
//!   `T^{2d}` iPSC estimate;
//! * [`mpt`] — the Multiple Paths Transpose: Theorem 2's piecewise
//!   minimum time and optimal packet size;
//! * [`bounds`] — Theorem 3's transpose lower bound and the §9 break-even
//!   analysis.

pub mod all_to_all;
pub mod bounds;
pub mod mpt;
pub mod one_dim;
pub mod one_to_all;
pub mod some_to_all;
pub mod two_dim;

/// Convenience: `⌈a/b⌉` on positive floats used by the paper's
/// `⌈PQ/(B_m·…)⌉` terms (computed in exact integer arithmetic).
pub(crate) fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn ceil_div_basic() {
        assert_eq!(super::ceil_div(10, 3), 4);
        assert_eq!(super::ceil_div(9, 3), 3);
        assert_eq!(super::ceil_div(1, 256), 1);
    }
}
