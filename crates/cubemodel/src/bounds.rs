//! Lower bounds and the one- vs two-dimensional comparison (Theorem 3,
//! §9).

use cubesim::MachineParams;

/// Theorem 3: matrix transposition (square two-dimensional partitioning)
/// takes at least `max(n·τ, PQ/(2N)·t_c)` — `n` start-ups for the
/// anti-diagonal nodes, and the bisection argument on the upper-right
/// quadrant for the transfer term.
pub fn transpose_lower_bound(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    (n as f64 * m.tau).max(pq as f64 / (2.0 * big_n as f64) * m.t_c)
}

/// §9's n-port comparison: `(T^{1d}_{min}, T^{2d}_{min})` — the
/// SBnT-routed one-dimensional transpose versus the MPT two-dimensional
/// transpose. `n` must be even.
///
/// In this copy-free model the one-dimensional partitioning yields a
/// lower or equal complexity for `n ≥ √(PQ·t_c/Nτ)` and for
/// `n ≤ √(PQ·t_c/2Nτ)`, with only a marginal difference (about one
/// start-up plus `PQ/(2nN)·t_c`) in between — the paper's concluding
/// inequality chain.
pub fn compare_1d_2d_all_port(pq: u64, n: u32, m: &MachineParams) -> (f64, f64) {
    (crate::one_dim::all_port_min(pq, n, m), crate::mpt::mpt_min(pq, n, m))
}

/// §9's one-port comparison with copy time — the regime of Figure 19:
/// the optimally buffered exchange-algorithm 1D transpose versus the
/// step-by-step SPT 2D transpose on iPSC-like constants.
pub fn compare_1d_2d_one_port(pq: u64, n: u32, m: &MachineParams) -> (f64, f64) {
    (crate::one_dim::buffered_opt(pq, n, m), crate::two_dim::spt_ipsc_step_by_step(pq, n, m))
}

/// The even cube dimensions (with at least one element per node) where
/// the *one-port* two-dimensional transpose has lower model time than
/// the one-dimensional one: "if the copy time is included then the
/// two-dimensional partitioning yields a lower complexity for a
/// sufficiently large cube" (§9).
pub fn two_dim_winning_band(pq: u64, m: &MachineParams) -> Vec<u32> {
    let mut wins = Vec::new();
    let mut n = 2;
    while (1u64 << n) <= pq && n <= 40 {
        let (t1, t2) = compare_1d_2d_one_port(pq, n, m);
        if t2 < t1 {
            wins.push(n);
        }
        n += 2;
    }
    wins
}

/// §9's break-even estimate: `N ≈ c·r/log₂²r` with `r = PQ·t_c/τ` and
/// `½ < c < 1`. Returns the estimate for `c = ¾`.
pub fn break_even_nodes_estimate(pq: u64, m: &MachineParams) -> f64 {
    let r = pq as f64 * m.t_c / m.tau;
    0.75 * r / r.log2().powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn lower_bound_pieces() {
        let m = unit();
        // Start-up-bound regime.
        assert_eq!(transpose_lower_bound(64, 6, &m), 6.0);
        // Transfer-bound regime: PQ/2N = 2^20/2^7 = 8192.
        assert_eq!(transpose_lower_bound(1 << 20, 6, &m), 8192.0);
    }

    #[test]
    fn all_port_one_dim_wins_at_extremes() {
        // n above √(PQ/N) and below √(PQ/2N): 1D strictly lower.
        let m = unit();
        let pq = 1u64 << 22;
        for n in (2u32..=20).step_by(2) {
            let (t1, t2) = compare_1d_2d_all_port(pq, n, &m);
            let nu = pq as f64 / (1u64 << n) as f64;
            if (n as f64) >= nu.sqrt() || (n as f64) <= (nu / 2.0).sqrt() {
                assert!(t1 <= t2 + 1e-9, "n={n}: 1D {t1} vs 2D {t2}");
            }
            // Everywhere, the 2D penalty is bounded by a couple of
            // start-ups plus PQ/(2nN)·t_c (the paper: "about one
            // start-up unless the cube is very small").
            let slack = 4.0 * m.tau + nu / (2.0 * n as f64) * m.t_c + nu * m.t_c;
            assert!(t2 <= t1 + slack, "n={n}: {t2} vs {t1} + {slack}");
        }
    }

    #[test]
    fn one_port_two_dim_wins_for_large_cubes() {
        // Figure 19's crossover on iPSC constants: the winning band is a
        // suffix (large cubes).
        let m = cubesim::MachineParams::intel_ipsc();
        let pq = 1u64 << 16;
        let band = two_dim_winning_band(pq, &m);
        assert!(!band.is_empty(), "expected 2D to win for large cubes");
        let smallest = band[0];
        // The band extends to the largest feasible n.
        let max_n = band[band.len() - 1];
        assert_eq!(
            band,
            (smallest..=max_n).step_by(2).collect::<Vec<_>>(),
            "winning band not contiguous"
        );
        // Small cubes favor 1D.
        let (t1, t2) = compare_1d_2d_one_port(pq, 4, &m);
        assert!(t1 < t2, "small cube should favor 1D: {t1} vs {t2}");
    }

    #[test]
    fn copy_free_one_port_favors_one_dim() {
        // "If the copy time is ignored and communication is restricted to
        // one port at a time, then the one-dimensional partitioning
        // always yields a lower complexity."
        let m = unit(); // t_copy = 0
        let pq = 1u64 << 18;
        for n in (2u32..=16).step_by(2) {
            let (t1, t2) = compare_1d_2d_one_port(pq, n, &m);
            assert!(t1 <= t2 + 1e-9, "n={n}: {t1} vs {t2}");
        }
    }

    #[test]
    fn break_even_estimate_positive_and_growing() {
        let m = unit();
        let a = break_even_nodes_estimate(1 << 16, &m);
        let b = break_even_nodes_estimate(1 << 20, &m);
        assert!(a > 0.0 && b > a);
    }
}
