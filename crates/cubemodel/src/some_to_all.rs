//! Some-to-all / all-to-some personalized communication models
//! (§3.3, Table 3).
//!
//! `k` splitting (accumulation) steps and `l` all-to-all steps over a
//! `(k+l)`-cube holding `PQ` elements in total. The splitting phase runs
//! first (Theorem 1), so splitting step `i ∈ {0, …, k-1}` transfers
//! `PQ/2^{k+l-i}` elements and each of the `l` all-to-all steps transfers
//! `PQ/2^{k+l+1}`.

use crate::ceil_div;
use cubesim::MachineParams;

/// Table 3, one-port row:
/// `T = (l·PQ/2^{k+l+1} + Σ_{i=0}^{k-1} PQ/2^{k+l-i})·t_c
///    + (l·⌈PQ/(B_m·2^{k+l+1})⌉ + Σ_{i=0}^{k-1} ⌈PQ/(B_m·2^{k+l-i})⌉)·τ`.
pub fn one_port(pq: u64, k: u32, l: u32, m: &MachineParams) -> f64 {
    let bm = m.max_packet as u64;
    let n = k + l;
    let a2a_elems = pq as f64 / (1u64 << (n + 1)) as f64;
    let a2a_pkts = ceil_div((pq >> (n + 1)).max(1), bm);
    let mut transfer = l as f64 * a2a_elems;
    let mut startups = l as u64 * a2a_pkts;
    for i in 0..k {
        let elems = pq >> (n - i);
        transfer += elems as f64;
        startups += ceil_div(elems.max(1), bm);
    }
    transfer * m.t_c + startups as f64 * m.tau
}

/// Table 3, n-port row: the splitting data is pipelined over `k` ports
/// and the all-to-all data over `l` ports:
/// `T = (PQ/2^{k+l+1} + (1/k)·Σ_{i=0}^{k-1} PQ/2^{k+l-i})·t_c
///    + (l·⌈PQ/(l·B_m·2^{k+l+1})⌉ + Σ_{i=0}^{k-1} ⌈PQ/(k·B_m·2^{k+l-i})⌉)·τ`.
pub fn all_port(pq: u64, k: u32, l: u32, m: &MachineParams) -> f64 {
    let bm = m.max_packet as u64;
    let n = k + l;
    let mut transfer = 0.0;
    let mut startups = 0u64;
    if l > 0 {
        transfer += pq as f64 / (1u64 << (n + 1)) as f64;
        startups += l as u64 * ceil_div((pq >> (n + 1)).max(1), (l as u64).saturating_mul(bm));
    }
    if k > 0 {
        let mut split = 0.0;
        for i in 0..k {
            let elems = pq >> (n - i);
            split += elems as f64;
            startups += ceil_div(elems.max(1), (k as u64).saturating_mul(bm));
        }
        transfer += split / k as f64;
    }
    transfer * m.t_c + startups as f64 * m.tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn degenerate_pure_all_to_all() {
        // k = 0, l = n reduces to the exchange algorithm's time.
        let (pq, n) = (1u64 << 12, 4u32);
        let t = one_port(pq, 0, n, &unit());
        let expect = crate::all_to_all::exchange_one_port_min(pq, n, &unit());
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn degenerate_pure_one_to_all() {
        // l = 0, k = n reduces to the SBT one-to-all time.
        let (pq, n) = (1u64 << 12, 4u32);
        let t = one_port(pq, n, 0, &unit());
        let expect = crate::one_to_all::sbt_one_port_min(pq, n, &unit());
        assert!((t - expect).abs() < 1e-9, "{t} vs {expect}");
    }

    #[test]
    fn splitting_dominates_transfer() {
        // The k splitting steps move the bulk: with k+l fixed, moving a
        // dimension from l to k increases transfer time.
        let pq = 1u64 << 14;
        for k in 0..4u32 {
            let a = one_port(pq, k, 4 - k, &unit());
            let b = one_port(pq, k + 1, 4 - k - 1, &unit());
            assert!(b > a, "k={k}: {b} ≤ {a}");
        }
    }

    #[test]
    fn all_port_never_slower_than_one_port() {
        let pq = 1u64 << 16;
        for k in 0..=5u32 {
            for l in 0..=5u32 {
                if k + l == 0 {
                    continue;
                }
                let ap = all_port(pq, k, l, &unit());
                let op = one_port(pq, k, l, &unit());
                assert!(ap <= op + 1e-9, "k={k} l={l}: {ap} > {op}");
            }
        }
    }

    #[test]
    fn packets_fragment_with_small_bm() {
        let pq = 1u64 << 12;
        let small = unit().with_max_packet(16);
        assert!(one_port(pq, 2, 2, &small) > one_port(pq, 2, 2, &unit()));
    }
}
