//! One-dimensional-partitioning transpose models (§5, §8.1, §9).
//!
//! The 1D transpose is all-to-all personalized communication executed by
//! the exchange algorithm; the model here mirrors the simulator's
//! step-exact accounting: exchange step `k ∈ {0, …, n-1}` moves `PQ/2N`
//! elements that occupy `2^k` memory chunks of `PQ/(2^{k+1}·N)` elements
//! each. The closed forms printed in the paper are the evaluations of
//! these sums.

use crate::ceil_div;
use cubesim::MachineParams;

/// Per-step chunk geometry of the exchange algorithm.
fn chunks_at(pq: u64, n: u32, k: u32) -> (u64, u64) {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let count = 1u64 << k;
    let size = pq / (big_n * 2 * count);
    (count, size)
}

/// Unbuffered exchange-algorithm transpose (§8.1):
/// every chunk is its own message.
/// `T = n·(PQ/2N)·t_c + Σ_{k=0}^{n-1} 2^k·⌈PQ/(2^{k+1}·N·B_m)⌉·τ`.
///
/// Start-ups grow like `N` — "exponentially in the number of cube
/// dimensions" (Figure 10).
pub fn unbuffered(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let transfer = n as f64 * pq as f64 / (2.0 * big_n as f64) * m.t_c;
    let mut startups = 0u64;
    for k in 0..n {
        let (count, size) = chunks_at(pq, n, k);
        startups += count * ceil_div(size.max(1), m.max_packet as u64);
    }
    transfer + startups as f64 * m.tau
}

/// Buffered exchange-algorithm transpose with direct-send threshold
/// `min_direct` (elements): chunks at least that large go out directly;
/// smaller chunks are gathered into one buffer per step, charging
/// `t_copy` per gathered element and a single message.
///
/// With `min_direct = B_copy = τ/t_copy` this is the optimum buffering
/// scheme of §8.1; start-ups then grow only linearly in `n` (Figure 12).
pub fn buffered(pq: u64, n: u32, m: &MachineParams, min_direct: usize) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let step_elems = pq / (2 * big_n);
    let transfer = n as f64 * step_elems as f64 * m.t_c;
    let mut startups = 0u64;
    let mut copied = 0u64;
    for k in 0..n {
        let (count, size) = chunks_at(pq, n, k);
        if size as usize >= min_direct {
            startups += count * ceil_div(size.max(1), m.max_packet as u64);
        } else {
            copied += step_elems;
            startups += ceil_div(step_elems.max(1), m.max_packet as u64);
        }
    }
    transfer + startups as f64 * m.tau + copied as f64 * m.t_copy
}

/// The optimum-buffered transpose: threshold `B_copy = τ/t_copy`.
pub fn buffered_opt(pq: u64, n: u32, m: &MachineParams) -> f64 {
    buffered(pq, n, m, m.b_copy())
}

/// §9's `T^{1d}_{min} = (PQ/2N)·t_c + n·τ` — the n-port
/// (SBnT-routed) one-dimensional transpose.
pub fn all_port_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    crate::all_to_all::sbnt_all_port_min(pq, n, m)
}

/// The paper's *literal* §8.1 unbuffered closed form:
/// `T = n·(PQ/2N)·t_c + (N + ⌈PQ/(2B_m N)⌉·min(n, log₂⌈PQ/(B_m N)⌉)
///    - PQ/(B_m N))·τ`.
///
/// This is the printed summary of the chunk sum computed exactly by
/// [`unbuffered`]; the two agree up to the paper's roundings (the `N`
/// term stands for the `N - 1` sub-message start-ups, and the
/// logarithm/ceiling interplay is approximate off powers of two). The
/// test suite checks agreement within a small relative tolerance over
/// the experimental parameter grid.
pub fn unbuffered_paper_form(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = (1u64 << n) as f64;
    let bm = m.max_packet as f64;
    let per_node_ratio = pq as f64 / (bm * big_n);
    let transfer = n as f64 * pq as f64 / (2.0 * big_n) * m.t_c;
    let log_term = if per_node_ratio > 1.0 { per_node_ratio.ceil().log2() } else { 0.0 };
    // The paper's `N - PQ/(B_m N)` counts the one-packet chunks of the
    // late steps; it only applies while packets still fit (R ≤ N), so we
    // clamp it at zero outside that domain.
    let startups = (big_n - per_node_ratio).max(0.0)
        + (pq as f64 / (2.0 * bm * big_n)).ceil() * (n as f64).min(log_term);
    transfer + startups * m.tau
}

/// The paper's literal §8.1 buffered closed form:
///
/// ```text
/// T = n·(PQ/2N)·t_c
///   + (PQ/N)·max(0, n - log₂⌈PQ/(B_copy·N)⌉)·t_copy
///   + (min(N, PQ/(B_copy·N)) - min(N, PQ/(B_m·N))
///      + ⌈PQ/(2B_m N)⌉·(min(n, log₂⌈PQ/(B_m N)⌉)
///                       + max(0, n - log₂⌈PQ/(B_copy N)⌉)))·τ
/// ```
///
/// As with [`unbuffered_paper_form`], this is the printed approximation
/// of the step-exact [`buffered`]; it charges the copy on both the gather
/// and scatter sides (`PQ/N` per buffered step).
pub fn buffered_paper_form(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = (1u64 << n) as f64;
    let bm = m.max_packet as f64;
    let b_copy = m.b_copy() as f64;
    let r_m = pq as f64 / (bm * big_n);
    let r_c = pq as f64 / (b_copy * big_n);
    let log = |x: f64| if x > 1.0 { x.ceil().log2() } else { 0.0 };
    let buffered_steps = (n as f64 - log(r_c)).max(0.0);
    let transfer = n as f64 * pq as f64 / (2.0 * big_n) * m.t_c;
    let copy = pq as f64 / big_n * buffered_steps * m.t_copy;
    let startups = big_n.min(r_c) - big_n.min(r_m)
        + (pq as f64 / (2.0 * bm * big_n)).ceil() * ((n as f64).min(log(r_m)) + buffered_steps);
    transfer + copy + startups * m.tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn unbuffered_startups_approach_n_nodes() {
        // With B_m = ∞ every chunk is one packet: Σ 2^k = N - 1 start-ups.
        let (pq, n) = (1u64 << 16, 5u32);
        let t = unbuffered(pq, n, &unit());
        let big_n = cubeaddr::num_nodes(n) as u64;
        let transfer = n as f64 * pq as f64 / (2.0 * big_n as f64);
        assert_eq!(t - transfer, (big_n - 1) as f64);
    }

    #[test]
    fn buffered_with_zero_copy_cost_beats_unbuffered() {
        let m = unit(); // t_copy = 0: buffering is free.
        let (pq, n) = (1u64 << 14, 6u32);
        assert!(buffered(pq, n, &m, usize::MAX) < unbuffered(pq, n, &m));
    }

    #[test]
    fn threshold_extremes() {
        let (pq, n) = (1u64 << 14, 5u32);
        let m = unit().with_t_copy(2.0);
        // Threshold 0 ⇒ everything direct ⇒ equals unbuffered.
        assert_eq!(buffered(pq, n, &m, 0), unbuffered(pq, n, &m));
        // Huge threshold ⇒ everything gathered ⇒ n messages, full copy.
        let t = buffered(pq, n, &m, usize::MAX);
        let big_n = cubeaddr::num_nodes(n) as u64;
        let step = (pq / (2 * big_n)) as f64;
        assert_eq!(t, n as f64 * step + n as f64 + n as f64 * step * 2.0);
    }

    #[test]
    fn ipsc_optimum_near_interior_threshold() {
        // On iPSC constants the optimum threshold is neither 0 nor ∞
        // for mid-sized problems (Figure 11's U-shape).
        let m = MachineParams::intel_ipsc();
        let (pq, n) = (1u64 << 16, 6u32);
        let opt = buffered_opt(pq, n, &m);
        assert!(opt <= buffered(pq, n, &m, 0) + 1e-12);
        assert!(opt <= buffered(pq, n, &m, usize::MAX) + 1e-12);
        assert!(opt < unbuffered(pq, n, &m));
    }

    #[test]
    fn small_cube_schemes_coincide() {
        // "for sufficiently small cubes (or large data sets) the time
        // required by the two schemes coincide": with n = 1 there is a
        // single chunk, nothing to buffer.
        let m = MachineParams::intel_ipsc();
        let pq = 1u64 << 18;
        assert_eq!(unbuffered(pq, 1, &m), buffered_opt(pq, 1, &m));
    }

    #[test]
    fn paper_unbuffered_form_tracks_exact_sum() {
        // The printed closed form and the step-exact sum agree within a
        // modest relative band across the experimental grid (the paper's
        // form rounds N-1 sub-messages up to N and interpolates the
        // log/ceiling interplay).
        let m = MachineParams::intel_ipsc();
        for n in 2..=6u32 {
            for pq_log in 12..=18u32 {
                let pq = 1u64 << pq_log;
                if pq >> n < 2 {
                    continue;
                }
                let exact = unbuffered(pq, n, &m);
                let paper = unbuffered_paper_form(pq, n, &m);
                let ratio = paper / exact;
                assert!(
                    (0.75..=1.35).contains(&ratio),
                    "n={n} pq=2^{pq_log}: paper {paper} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn paper_buffered_form_tracks_exact_sum() {
        let m = MachineParams::intel_ipsc();
        for n in 2..=6u32 {
            for pq_log in 12..=18u32 {
                let pq = 1u64 << pq_log;
                let exact = buffered_opt(pq, n, &m);
                let paper = buffered_paper_form(pq, n, &m);
                let ratio = paper / exact;
                assert!(
                    (0.6..=2.1).contains(&ratio),
                    "n={n} pq=2^{pq_log}: paper {paper} vs exact {exact} (ratio {ratio})"
                );
            }
        }
    }

    #[test]
    fn all_port_min_formula() {
        let (pq, n) = (1u64 << 12, 4u32);
        let t = all_port_min(pq, n, &unit());
        assert_eq!(t, pq as f64 / 32.0 + 4.0);
    }
}
