//! All-to-all personalized communication models (§3.2).

use crate::ceil_div;
use cubesim::MachineParams;

/// The exchange algorithm, one-port:
/// `T = n·(PQ/2N)·t_c + n·⌈PQ/(2N·B_m)⌉·τ`.
pub fn exchange_one_port(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let per_step = pq as f64 / (2.0 * big_n as f64);
    let pkts = ceil_div(ceil_div(pq, 2 * big_n).max(1), m.max_packet as u64);
    n as f64 * (per_step * m.t_c + pkts as f64 * m.tau)
}

/// The minimum of [`exchange_one_port`] (for `B_m ≥ PQ/2N`):
/// `T_min = n·(PQ/(2N)·t_c + τ)`.
pub fn exchange_one_port_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    n as f64 * (pq as f64 / (2.0 * big_n as f64) * m.t_c + m.tau)
}

/// SBnT (or rotated-SBT) routing with subtree scheduling, n-port:
/// `T_min = (PQ/2N)·t_c + n·τ`.
pub fn sbnt_all_port_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    pq as f64 / (2.0 * big_n as f64) * m.t_c + n as f64 * m.tau
}

/// All-to-all lower bound (either port model):
/// `T ≥ max((PQ/2N)·t_c, n·τ) ≥ ½·((PQ/2N)·t_c + n·τ)`.
pub fn lower_bound(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    (pq as f64 / (2.0 * big_n as f64) * m.t_c).max(n as f64 * m.tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn min_matches_unrestricted_packets() {
        let (pq, n) = (1 << 14, 5);
        assert!(
            (exchange_one_port(pq, n, &unit()) - exchange_one_port_min(pq, n, &unit())).abs()
                < 1e-9
        );
    }

    #[test]
    fn exchange_within_factor_two_of_bound() {
        for n in 1..=10 {
            let pq = 1u64 << 16;
            let t = exchange_one_port_min(pq, n, &unit());
            let lb = lower_bound(pq, n, &unit());
            // "the exchange algorithm is optimum within a factor of 2"
            // holds when transfer dominates; with the τ term the general
            // bound is (n+… )/… — check against the ½(a+b) form instead.
            let half_sum = 0.5 * (pq as f64 / (2.0 * (1u64 << n) as f64) + n as f64);
            assert!(lb >= half_sum - 1e-9);
            assert!(t >= lb - 1e-9, "n={n}");
        }
    }

    #[test]
    fn sbnt_all_port_is_within_factor_two_of_bound() {
        for n in 1..=10 {
            let pq = 1u64 << 16;
            let t = sbnt_all_port_min(pq, n, &unit());
            let lb = lower_bound(pq, n, &unit());
            assert!(t <= 2.0 * lb + 1e-9, "n={n}: {t} vs {lb}");
        }
    }

    #[test]
    fn packet_limit_adds_startups() {
        let (pq, n) = (1u64 << 16, 4u32);
        let small = unit().with_max_packet(64);
        let t_small = exchange_one_port(pq, n, &small);
        let t_big = exchange_one_port(pq, n, &unit());
        // PQ/2N = 2048 elements per step → 32 packets of 64.
        assert!((t_small - t_big - (32.0 - 1.0) * n as f64).abs() < 1e-9);
    }
}
