//! One-to-all personalized communication models (§3.1).

use crate::ceil_div;
use cubesim::MachineParams;

/// SBT routing, one-port, scheduling all data for a subtree at once:
/// `T = (1 - 1/N)·PQ·t_c + Σ_{i=1}^{n} ⌈PQ / (2^i·B_m)⌉·τ`.
pub fn sbt_one_port(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let transfer = (1.0 - 1.0 / big_n as f64) * pq as f64 * m.t_c;
    let startups: u64 = (1..=n)
        .map(|i| {
            ceil_div(
                pq,
                (1u64 << i).saturating_mul(m.max_packet.min(u32::MAX as usize) as u64).max(1),
            )
        })
        .sum();
    transfer + startups as f64 * m.tau
}

/// The minimum of [`sbt_one_port`], attained for `B_m ≥ PQ/2`:
/// `T_min = (1 - 1/N)·PQ·t_c + n·τ`.
pub fn sbt_one_port_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    (1.0 - 1.0 / big_n as f64) * pq as f64 * m.t_c + n as f64 * m.tau
}

/// One-port lower bound:
/// `T ≥ max((1 - 1/N)·PQ·t_c, n·τ) ≥ ½·((1 - 1/N)·PQ·t_c + n·τ)`.
pub fn one_port_lower_bound(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let transfer = (1.0 - 1.0 / big_n as f64) * pq as f64 * m.t_c;
    transfer.max(n as f64 * m.tau)
}

/// n rotated SBTs (or SBnT with reverse-breadth-first scheduling),
/// n-port: `T_min = (1/n)(1 - 1/N)·PQ·t_c + n·τ`, attained for
/// `B_m ≳ √(2/π)·PQ/n^{3/2}`.
pub fn rotated_sbts_all_port_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let big_n = cubeaddr::num_nodes(n) as u64;
    (1.0 / n as f64) * (1.0 - 1.0 / big_n as f64) * pq as f64 * m.t_c + n as f64 * m.tau
}

/// n-port lower bound:
/// `T ≥ max((1/n)(1 - 1/N)·PQ·t_c, n·τ)`.
pub fn all_port_lower_bound(pq: u64, n: u32, m: &MachineParams) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let big_n = cubeaddr::num_nodes(n) as u64;
    let transfer = (1.0 / n as f64) * (1.0 - 1.0 / big_n as f64) * pq as f64 * m.t_c;
    transfer.max(n as f64 * m.tau)
}

/// The packet size minimizing the n-port rotated-SBT time:
/// `B_m ≥ √(2/π)·PQ/n^{3/2}` (the maximum subtree slice).
pub fn rotated_sbts_b_opt(pq: u64, n: u32) -> f64 {
    (2.0 / std::f64::consts::PI).sqrt() * pq as f64 / (n as f64).powf(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn sbt_min_is_infimum_over_packet_sizes() {
        let pq = 1 << 12;
        let n = 5;
        let unlimited = unit();
        assert!(
            (sbt_one_port(pq, n, &unlimited) - sbt_one_port_min(pq, n, &unlimited)).abs() < 1e-9
        );
        // Restricting B_m only adds start-ups.
        for bm in [16usize, 64, 256] {
            let m = unit().with_max_packet(bm);
            assert!(sbt_one_port(pq, n, &m) >= sbt_one_port_min(pq, n, &m) - 1e-9);
        }
    }

    #[test]
    fn sbt_within_factor_two_of_lower_bound() {
        for n in 1..=10u32 {
            for pq_log in 4..=20 {
                let pq = 1u64 << pq_log;
                let m = unit();
                let t = sbt_one_port_min(pq, n, &m);
                let lb = one_port_lower_bound(pq, n, &m);
                assert!(t <= 2.0 * lb + 1e-9, "n={n} pq={pq}: {t} vs 2×{lb}");
                assert!(t >= lb - 1e-9);
            }
        }
    }

    #[test]
    fn n_port_speedup_factor_n_on_transfer() {
        let pq = 1 << 16;
        let n = 6;
        let m = unit();
        let one = sbt_one_port_min(pq, n, &m) - n as f64 * m.tau;
        let all = rotated_sbts_all_port_min(pq, n, &m) - n as f64 * m.tau;
        assert!((one / all - n as f64).abs() < 1e-9);
    }

    #[test]
    fn all_port_min_within_factor_two_of_bound() {
        for n in 1..=10u32 {
            let pq = 1u64 << 18;
            let m = unit();
            let t = rotated_sbts_all_port_min(pq, n, &m);
            let lb = all_port_lower_bound(pq, n, &m);
            assert!(t <= 2.0 * lb + 1e-9);
        }
    }

    #[test]
    fn b_opt_shrinks_with_n() {
        assert!(rotated_sbts_b_opt(1 << 20, 8) < rotated_sbts_b_opt(1 << 20, 4));
    }
}
