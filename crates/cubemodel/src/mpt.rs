//! The Multiple Paths Transpose model (§6.1.3, Theorem 2).
//!
//! The MPT routes each node's `PQ/N` elements over `2H(x)` edge-disjoint
//! paths to `tr(x)`, in `4kH(x)` packets completing in `2kH(x) + 1`
//! cycles: `T = (2kH + 1)·(τ + PQ·t_c/(4kH·N))`. Larger `H(x)` classes
//! finish faster until the start-up term dominates; Theorem 2 collects
//! the machine-wide minimum time and optimal packet size, which is
//! governed by the anti-diagonal nodes (`H = n/2`).

use cubesim::MachineParams;

/// Time for the class with Hamming weight `h = H(x)` using `4kh` packets:
/// `T(k, h) = (2kh + 1)·(τ + PQ·t_c/(4kh·N))`, `k ≥ 1`.
pub fn time_kh(pq: u64, n: u32, h: u32, k: u32, m: &MachineParams) -> f64 {
    assert!(h >= 1 && k >= 1);
    let big_n = cubeaddr::num_nodes(n) as u64;
    let kh = (2 * k * h) as f64;
    (kh + 1.0) * (m.tau + pq as f64 * m.t_c / (2.0 * kh * big_n as f64))
}

/// The continuous-optimal `k = (1/2H)·√(PQ·t_c/(2N·τ))` and the
/// corresponding `T_min = (√τ + √(PQ·t_c/2N))²` (valid when `k ≥ 1`).
pub fn time_opt_k(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let a = m.tau.sqrt();
    let b = (pq as f64 * m.t_c / (2.0 * big_n as f64)).sqrt();
    (a + b) * (a + b)
}

/// Theorem 2: the total matrix transpose time of the MPT algorithm.
///
/// `n` must be even (square two-dimensional partitioning).
pub fn mpt_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    assert!(n >= 2 && n.is_multiple_of(2), "MPT needs an even cube dimension, got {n}");
    let big_n = cubeaddr::num_nodes(n) as u64;
    let ratio = (pq as f64 * m.t_c / (big_n as f64 * m.tau)).sqrt();
    let ratio_half = (pq as f64 * m.t_c / (2.0 * big_n as f64 * m.tau)).sqrt();
    let nf = n as f64;
    let per_node = pq as f64 / big_n as f64;
    if nf >= ratio {
        (nf + 1.0) * m.tau + (nf + 1.0) / (2.0 * nf) * per_node * m.t_c
    } else if nf > ratio_half {
        if (n / 2).is_multiple_of(2) {
            (nf / 2.0 + 3.0) * m.tau + (nf + 6.0) / (2.0 * nf + 8.0) * per_node * m.t_c
        } else {
            (nf / 2.0 + 2.0) * m.tau + (nf + 4.0) / (2.0 * nf + 4.0) * per_node * m.t_c
        }
    } else {
        time_opt_k(pq, n, m)
    }
}

/// Theorem 2's optimum packet size.
pub fn mpt_b_opt(pq: u64, n: u32, m: &MachineParams) -> f64 {
    assert!(n >= 2 && n.is_multiple_of(2));
    let big_n = cubeaddr::num_nodes(n) as u64;
    let ratio_half = (pq as f64 * m.t_c / (2.0 * big_n as f64 * m.tau)).sqrt();
    let nf = n as f64;
    if nf > ratio_half {
        if (n / 2).is_multiple_of(2) {
            (pq as f64 / (big_n as f64 * (nf + 4.0))).ceil()
        } else {
            (pq as f64 / (big_n as f64 * (nf + 2.0))).ceil()
        }
    } else {
        (pq as f64 * m.tau / (2.0 * big_n as f64 * m.t_c)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn time_kh_decreases_then_increases_in_h() {
        // "The transpose time decreases as a function of H(x) for
        // 1 ≤ H(x) ≤ √(PQ·t_c/8Nτ) and increases after."
        let (pq, n) = (1u64 << 20, 8u32);
        let m = unit();
        let crossover = (pq as f64 / (8.0 * (1u64 << n) as f64)).sqrt();
        let mut prev = f64::INFINITY;
        for h in 1..=(n / 2).max(4) {
            let t = time_kh(pq, n, h, 1, &m);
            if (h as f64) < crossover {
                assert!(t < prev, "h={h}");
            }
            prev = t;
        }
    }

    #[test]
    fn h1_equals_crossover_endpoint() {
        // "The transpose time for H(x) = 1 and H(x) = PQ·t_c/(8Nτ) are
        // the same."
        let (pq, n) = (1u64 << 18, 6u32);
        let m = unit();
        let h_end = pq as f64 / (8.0 * (1u64 << n) as f64);
        let t1 = time_kh(pq, n, 1, 1, &m);
        // Evaluate at the real-valued endpoint via the formula directly.
        let kh = 2.0 * h_end;
        let t_end = (kh + 1.0) * (m.tau + pq as f64 * m.t_c / (2.0 * kh * (1u64 << n) as f64));
        assert!((t1 - t_end).abs() / t1 < 1e-9);
    }

    #[test]
    fn theorem2_piecewise_continuity_rough() {
        // Across each regime boundary the two expressions agree within a
        // small factor (the paper says "approximately").
        let m = unit();
        for n in [4u32, 6, 8, 10] {
            let big_n = cubeaddr::num_nodes(n) as u64;
            // Boundary 1: n = sqrt(PQ tc / N tau) → PQ = n² N.
            let pq1 = (n as u64 * n as u64) * big_n;
            let hi = (n as f64 + 1.0) * m.tau
                + (n as f64 + 1.0) / (2.0 * n as f64) * pq1 as f64 / big_n as f64;
            let t = mpt_min(pq1, n, &m);
            assert!(t <= hi * 1.5 + 5.0, "n={n}: {t} vs {hi}");
        }
    }

    #[test]
    fn theorem2_beats_spt_and_dpt_for_large_data() {
        let m = unit();
        let n = 6;
        let pq = 1u64 << 24;
        let mpt = mpt_min(pq, n, &m);
        let dpt = crate::two_dim::dpt_min(pq, n, &m);
        let spt = crate::two_dim::spt_min(pq, n, &m);
        assert!(mpt < dpt && dpt < spt, "mpt {mpt}, dpt {dpt}, spt {spt}");
    }

    #[test]
    fn respects_theorem3_lower_bound() {
        let m = unit();
        for n in [2u32, 4, 6, 8] {
            for pq_log in [10u32, 14, 18, 22] {
                let pq = 1u64 << pq_log;
                let lb = crate::bounds::transpose_lower_bound(pq, n, &m);
                let t = mpt_min(pq, n, &m);
                assert!(t >= lb * 0.999, "n={n} pq={pq}: {t} < {lb}");
            }
        }
    }

    #[test]
    fn b_opt_positive_and_bounded() {
        let m = unit();
        for n in [2u32, 4, 8] {
            for pq_log in [10u32, 16, 22] {
                let pq = 1u64 << pq_log;
                let b = mpt_b_opt(pq, n, &m);
                assert!(b >= 1.0);
                assert!(b <= (pq / (1 << n)) as f64 + 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "even cube dimension")]
    fn odd_n_rejected() {
        let _ = mpt_min(1 << 10, 5, &unit());
    }
}
