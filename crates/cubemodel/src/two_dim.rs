//! Two-dimensional-partitioning transpose models: SPT and DPT
//! (§6.1.1–6.1.2) and the iPSC step-by-step estimate (§8.2.1, §9).

use crate::ceil_div;
use cubesim::MachineParams;

/// Single Path Transpose with pipelining, packet size `B`:
/// `T = (⌈PQ/(B·N)⌉ + n - 1)·(B·t_c + τ)`.
pub fn spt(pq: u64, n: u32, b: u64, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let packets = ceil_div(pq / big_n, b.max(1));
    (packets + n as u64 - 1) as f64 * (b as f64 * m.t_c + m.tau)
}

/// The optimal SPT packet size `B_opt = √(PQ·τ / (N·(n-1)·t_c))`.
pub fn spt_b_opt(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    (pq as f64 * m.tau / (big_n as f64 * (n as f64 - 1.0) * m.t_c)).sqrt()
}

/// The SPT minimum time `T_min = (√(PQ/N·t_c) + √((n-1)·τ))²`.
pub fn spt_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let a = (pq as f64 / big_n as f64 * m.t_c).sqrt();
    let b = ((n as f64 - 1.0) * m.tau).sqrt();
    (a + b) * (a + b)
}

/// Dual Paths Transpose: the data is split over two edge-disjoint paths,
/// `T = (⌈PQ/(2·B·N)⌉ + n - 1)·(B·t_c + τ)`.
pub fn dpt(pq: u64, n: u32, b: u64, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let packets = ceil_div(pq / (2 * big_n), b.max(1));
    (packets + n as u64 - 1) as f64 * (b as f64 * m.t_c + m.tau)
}

/// The DPT minimum time `T_min = (√(PQ/2N·t_c) + √((n-1)·τ))²`
/// (speedup ≈ 2 over SPT when transfer dominates).
pub fn dpt_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let a = (pq as f64 / (2.0 * big_n as f64) * m.t_c).sqrt();
    let b = ((n as f64 - 1.0) * m.tau).sqrt();
    (a + b) * (a + b)
}

/// The DPT optimal packet size `B_opt = √(PQ·τ / (2N(n-1)·t_c))`.
pub fn dpt_b_opt(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    (pq as f64 * m.tau / (2.0 * big_n as f64 * (n as f64 - 1.0) * m.t_c)).sqrt()
}

/// The iPSC step-by-step SPT implementation (no pipelining; §8.2.1):
/// `T = (PQ/N·t_c + ⌈PQ/(B_m·N)⌉·τ)·n + 2·PQ/N·t_copy`
/// — the two copy terms are the pre-send rearrangement of the
/// two-dimensional local array into a contiguous buffer and the inverse
/// at the receiver.
pub fn spt_ipsc_step_by_step(pq: u64, n: u32, m: &MachineParams) -> f64 {
    let big_n = cubeaddr::num_nodes(n) as u64;
    let per = pq as f64 / big_n as f64;
    (per * m.t_c + ceil_div(pq / big_n, m.max_packet as u64) as f64 * m.tau) * n as f64
        + 2.0 * per * m.t_copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::PortMode;

    fn unit() -> MachineParams {
        MachineParams::unit(PortMode::OnePort)
    }

    #[test]
    fn spt_min_is_minimum_over_b() {
        let (pq, n) = (1u64 << 16, 6u32);
        let m = unit();
        let t_min = spt_min(pq, n, &m);
        let b_opt = spt_b_opt(pq, n, &m);
        // Continuous optimum: nearby integer packet sizes come close.
        for b in [b_opt * 0.5, b_opt, b_opt * 2.0] {
            let t = spt(pq, n, b.round().max(1.0) as u64, &m);
            assert!(t >= t_min - 1e-6, "B={b}: {t} < {t_min}");
        }
        let t_at_opt = spt(pq, n, b_opt.round() as u64, &m);
        assert!(t_at_opt <= t_min * 1.05, "{t_at_opt} vs {t_min}");
    }

    #[test]
    fn dpt_speedup_about_two_when_transfer_dominates() {
        // PQ/N·t_c ≫ n·τ.
        let (pq, n) = (1u64 << 24, 4u32);
        let m = unit();
        let ratio = spt_min(pq, n, &m) / dpt_min(pq, n, &m);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn dpt_never_slower_than_spt() {
        let m = unit();
        for n in [2u32, 4, 6, 8] {
            for pq_log in 8..22 {
                let pq = 1u64 << pq_log;
                assert!(dpt_min(pq, n, &m) <= spt_min(pq, n, &m) + 1e-9);
            }
        }
    }

    #[test]
    fn ipsc_estimate_scales_linearly_in_matrix() {
        let m = MachineParams::intel_ipsc();
        let n = 4;
        let t1 = spt_ipsc_step_by_step(1 << 14, n, &m);
        let t2 = spt_ipsc_step_by_step(1 << 15, n, &m);
        // "The growth rate is proportional to the number of matrix
        // elements" once transfers dominate start-ups.
        assert!(t2 / t1 > 1.8 && t2 / t1 < 2.2, "ratio {}", t2 / t1);
    }

    #[test]
    fn spt_respects_theorem3_bound() {
        let m = unit();
        for n in [2u32, 4, 6] {
            for pq_log in 10..20 {
                let pq = 1u64 << pq_log;
                let lb = crate::bounds::transpose_lower_bound(pq, n, &m);
                assert!(spt_min(pq, n, &m) >= lb - 1e-9);
                assert!(dpt_min(pq, n, &m) >= lb - 1e-9);
            }
        }
    }
}
