//! Node addresses on a Boolean *n*-cube.
//!
//! A Boolean *n*-cube has `N = 2^n` nodes. Node `x` is connected to the `n`
//! nodes whose addresses differ from `x` in exactly one bit (paper
//! Definition 5). The diameter is `n` and the number of (undirected) links
//! is `n·N/2`.

use crate::{check_dims, hamming, mask};

/// Address of a node in a Boolean *n*-cube.
///
/// A `NodeId` is an *n*-bit binary string. The type does not carry `n`
/// itself — the cube dimension is supplied by the structures that own node
/// collections — but every operation that needs `n` takes it explicitly and
/// debug-asserts that the address fits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The node with all-zero address (conventional root for spanning
    /// trees).
    pub const ZERO: NodeId = NodeId(0);

    /// Creates a node id, checking that it fits an `n`-dimensional cube.
    #[inline]
    #[track_caller]
    pub fn new(addr: u64, n: u32) -> Self {
        check_dims(n);
        assert_eq!(addr & !mask(n), 0, "address {addr:#b} out of range for an {n}-cube");
        NodeId(addr)
    }

    /// The raw address bits.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// The neighbor across dimension `d` (bit `d` complemented).
    #[inline]
    pub fn neighbor(self, d: u32) -> NodeId {
        NodeId(self.0 ^ (1 << d))
    }

    /// Value of address bit `d`.
    #[inline]
    pub fn bit(self, d: u32) -> bool {
        (self.0 >> d) & 1 == 1
    }

    /// Hamming distance to `other` — the length of a shortest path in the
    /// cube.
    #[inline]
    pub fn distance(self, other: NodeId) -> u32 {
        hamming(self.0, other.0)
    }

    /// True when `other` is a cube neighbor (distance exactly one).
    #[inline]
    pub fn is_neighbor(self, other: NodeId) -> bool {
        (self.0 ^ other.0).count_ones() == 1
    }

    /// The dimension connecting `self` to neighbor `other`.
    ///
    /// # Panics
    /// If `other` is not a neighbor of `self`.
    #[inline]
    #[track_caller]
    pub fn dim_to(self, other: NodeId) -> u32 {
        let diff = self.0 ^ other.0;
        assert_eq!(diff.count_ones(), 1, "{self:?} and {other:?} are not cube neighbors");
        diff.trailing_zeros()
    }

    /// Iterator over all `n` neighbors, in ascending dimension order.
    pub fn neighbors(self, n: u32) -> impl Iterator<Item = NodeId> {
        (0..n).map(move |d| self.neighbor(d))
    }

    /// Iterator over every node of an `n`-cube in address order.
    pub fn all(n: u32) -> impl Iterator<Item = NodeId> {
        (0..crate::num_nodes(n) as u64).map(NodeId)
    }

    /// Translation of this node by `s` (bitwise exclusive or).
    ///
    /// The paper uses translations to relate spanning trees rooted at
    /// different nodes: the tree rooted at `s` is the tree rooted at 0 with
    /// every address XORed by `s`.
    #[inline]
    pub fn translate(self, s: NodeId) -> NodeId {
        NodeId(self.0 ^ s.0)
    }

    /// Index usable for array storage (`usize` form of the address).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeId({:#b})", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Number of nodes of an `n`-cube. Alias for [`crate::num_nodes`].
#[inline]
pub fn cube_size(n: u32) -> usize {
    crate::num_nodes(n)
}

/// Number of undirected links of an `n`-cube: `n·N/2`.
#[inline]
pub fn link_count(n: u32) -> usize {
    if n == 0 {
        0
    } else {
        (n as usize) << (n - 1)
    }
}

/// Enumerates the `Hamming(x, y)` shortest paths' first-step dimensions:
/// the set of dimensions in which `x` and `y` differ, ascending.
pub fn differing_dims(x: NodeId, y: NodeId) -> impl Iterator<Item = u32> {
    let mut diff = x.0 ^ y.0;
    std::iter::from_fn(move || {
        if diff == 0 {
            None
        } else {
            let d = diff.trailing_zeros();
            diff &= diff - 1;
            Some(d)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_relation() {
        let x = NodeId::new(0b1010, 4);
        assert_eq!(x.neighbor(0), NodeId(0b1011));
        assert_eq!(x.neighbor(3), NodeId(0b0010));
        assert!(x.is_neighbor(x.neighbor(2)));
        assert!(!x.is_neighbor(x));
        assert!(!x.is_neighbor(NodeId(0b0110)));
    }

    #[test]
    fn neighbor_involution() {
        for x in NodeId::all(5) {
            for d in 0..5 {
                assert_eq!(x.neighbor(d).neighbor(d), x);
                assert_eq!(x.dim_to(x.neighbor(d)), d);
            }
        }
    }

    #[test]
    fn counts() {
        assert_eq!(cube_size(0), 1);
        assert_eq!(cube_size(6), 64);
        assert_eq!(link_count(0), 0);
        assert_eq!(link_count(1), 1);
        assert_eq!(link_count(3), 12);
        // n·N/2 with n=6: 6·64/2 = 192.
        assert_eq!(link_count(6), 192);
    }

    #[test]
    fn all_nodes_have_n_neighbors() {
        let n = 4;
        for x in NodeId::all(n) {
            let nbrs: Vec<_> = x.neighbors(n).collect();
            assert_eq!(nbrs.len(), n as usize);
            for y in &nbrs {
                assert_eq!(x.distance(*y), 1);
            }
        }
    }

    #[test]
    fn differing_dims_matches_distance() {
        let x = NodeId(0b110100);
        let y = NodeId(0b011001);
        let dims: Vec<_> = differing_dims(x, y).collect();
        assert_eq!(dims.len() as u32, x.distance(y));
        assert_eq!(dims, vec![0, 2, 3, 5]);
    }

    #[test]
    fn translation_preserves_adjacency() {
        let n = 4;
        let s = NodeId(0b0110);
        for x in NodeId::all(n) {
            for d in 0..n {
                let y = x.neighbor(d);
                assert!(x.translate(s).is_neighbor(y.translate(s)));
            }
        }
    }

    #[test]
    #[should_panic]
    fn new_rejects_out_of_range() {
        NodeId::new(0b10000, 4);
    }

    #[test]
    #[should_panic]
    fn dim_to_rejects_non_neighbor() {
        NodeId(0).dim_to(NodeId(0b11));
    }
}
