//! Sets of cube dimensions and subcube enumeration.
//!
//! The paper partitions the `m`-dimensional address space of the matrix
//! into the dimensions used for *real processors* (`R`) and for *virtual
//! processors* (`V`), with `R ∩ V = ∅`, `R ∪ V = {0, …, m-1}`. The sets
//! `R_b` and `R_a` of real dimensions before and after a transposition, and
//! their intersection `I = R_b ∩ R_a`, classify the communication pattern
//! (all-to-all when `I = ∅` and `|R_b| = |R_a|`, pairwise when
//! `I = R_b = R_a`, …).

use crate::{check_dims, mask};

/// An immutable set of dimension indices, stored as a bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DimSet(pub u64);

impl DimSet {
    /// The empty set.
    pub const EMPTY: DimSet = DimSet(0);

    /// The set `{0, 1, …, m-1}` of all dimensions of an `m`-bit field.
    pub fn all(m: u32) -> Self {
        DimSet(mask(m))
    }

    /// The contiguous range `{lo, lo+1, …, hi-1}`.
    #[track_caller]
    pub fn range(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "empty-producing reversed range {lo}..{hi}");
        check_dims(hi);
        DimSet(mask(hi) & !mask(lo))
    }

    /// Builds a set from an iterator of dimension indices.
    pub fn from_dims<I: IntoIterator<Item = u32>>(dims: I) -> Self {
        let mut bits = 0u64;
        for d in dims {
            check_dims(d + 1);
            bits |= 1 << d;
        }
        DimSet(bits)
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, d: u32) -> bool {
        (self.0 >> d) & 1 == 1
    }

    /// Number of dimensions in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: DimSet) -> DimSet {
        DimSet(self.0 | other.0)
    }

    /// Set intersection — e.g. `I = R_b ∩ R_a`.
    #[inline]
    pub fn intersect(self, other: DimSet) -> DimSet {
        DimSet(self.0 & other.0)
    }

    /// Set difference.
    #[inline]
    pub fn difference(self, other: DimSet) -> DimSet {
        DimSet(self.0 & !other.0)
    }

    /// Complement within an `m`-dimensional field — e.g. `V = {0,…,m-1} \ R`.
    #[inline]
    pub fn complement(self, m: u32) -> DimSet {
        DimSet(mask(m) & !self.0)
    }

    /// True when the two sets are disjoint.
    #[inline]
    pub fn is_disjoint(self, other: DimSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Iterates the member dimensions in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let d = bits.trailing_zeros();
                bits &= bits - 1;
                Some(d)
            }
        })
    }

    /// Iterates the member dimensions in descending order.
    pub fn iter_desc(self) -> impl Iterator<Item = u32> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let d = 63 - bits.leading_zeros();
                bits &= !(1u64 << d);
                Some(d)
            }
        })
    }

    /// Extracts the bits of `w` at the member dimensions, packed into the
    /// low `len()` bits (lowest member dimension → bit 0).
    ///
    /// This is the "address within the subfield" used when a subset of the
    /// matrix-address dimensions forms a (real or virtual) processor
    /// address field.
    pub fn extract(self, w: u64) -> u64 {
        let mut out = 0u64;
        for (i, d) in self.iter().enumerate() {
            out |= ((w >> d) & 1) << i;
        }
        out
    }

    /// Inverse of [`DimSet::extract`]: scatters the low `len()` bits of
    /// `packed` to the member dimensions.
    pub fn deposit(self, packed: u64) -> u64 {
        let mut out = 0u64;
        for (i, d) in self.iter().enumerate() {
            out |= ((packed >> i) & 1) << d;
        }
        out
    }

    /// Enumerates all `2^len()` settings of the member bits (the *subcube*
    /// spanned by the set, based at address 0).
    ///
    /// Combined with a fixed setting of the complementary bits this
    /// enumerates the nodes of a subcube: the paper's some-to-all analysis
    /// runs concurrently "in `2^l` distinct subcubes … of dimension `k`".
    pub fn subcube(self) -> impl Iterator<Item = u64> {
        let n = self.len();
        (0..(1u64 << n)).map(move |packed| self.deposit(packed))
    }
}

impl std::fmt::Debug for DimSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DimSet{{")?;
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(DimSet::all(4).0, 0b1111);
        assert_eq!(DimSet::range(2, 5).0, 0b11100);
        assert_eq!(DimSet::range(3, 3).0, 0);
        assert_eq!(DimSet::from_dims([0, 2, 5]).0, 0b100101);
    }

    #[test]
    fn algebra() {
        let a = DimSet::from_dims([0, 1, 4]);
        let b = DimSet::from_dims([1, 2]);
        assert_eq!(a.union(b), DimSet::from_dims([0, 1, 2, 4]));
        assert_eq!(a.intersect(b), DimSet::from_dims([1]));
        assert_eq!(a.difference(b), DimSet::from_dims([0, 4]));
        assert_eq!(a.complement(5), DimSet::from_dims([2, 3]));
        assert!(!a.is_disjoint(b));
        assert!(a.is_disjoint(DimSet::from_dims([2, 3])));
    }

    #[test]
    fn iteration_orders() {
        let s = DimSet::from_dims([1, 3, 6]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 6]);
        assert_eq!(s.iter_desc().collect::<Vec<_>>(), vec![6, 3, 1]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn extract_deposit_roundtrip() {
        let s = DimSet::from_dims([1, 3, 6]);
        for packed in 0..8u64 {
            let scattered = s.deposit(packed);
            assert_eq!(s.extract(scattered), packed);
            // Non-member bits untouched.
            assert_eq!(scattered & !s.0, 0);
        }
        assert_eq!(s.extract(0b100_1010), 0b111);
        assert_eq!(s.extract(0b000_1010), 0b011);
    }

    #[test]
    fn extract_ignores_non_members() {
        let s = DimSet::from_dims([0, 2]);
        assert_eq!(s.extract(0b111), s.extract(0b101));
    }

    #[test]
    fn subcube_enumerates_all_corners() {
        let s = DimSet::from_dims([1, 4]);
        let corners: Vec<u64> = s.subcube().collect();
        assert_eq!(corners, vec![0b00000, 0b00010, 0b10000, 0b10010]);
    }

    #[test]
    fn complement_partition() {
        let m = 8;
        let r = DimSet::from_dims([0, 3, 5]);
        let v = r.complement(m);
        assert!(r.is_disjoint(v));
        assert_eq!(r.union(v), DimSet::all(m));
        assert_eq!(r.len() + v.len(), m);
    }
}
