//! The binary-reflected Gray code and its inverse.
//!
//! The paper embeds matrix rows and columns in the cube either by the
//! binary encoding or by the binary-reflected Gray code `G(w)`, which
//! preserves adjacency: `G(w)` and `G(w+1)` differ in exactly one bit, so
//! consecutive rows (columns) land on neighboring processors.

use crate::mask;

/// Binary-reflected Gray code of `w`: `G(w) = w ⊕ (w >> 1)`.
///
/// ```
/// use cubeaddr::{gray, gray_inverse, hamming};
/// assert_eq!(gray(5), 0b111);
/// assert_eq!(gray_inverse(gray(12345)), 12345);
/// // Consecutive codewords differ in exactly one bit.
/// assert_eq!(hamming(gray(6), gray(7)), 1);
/// ```
#[inline]
pub fn gray(w: u64) -> u64 {
    w ^ (w >> 1)
}

/// Inverse Gray code: the unique `w` with `gray(w) == g`.
///
/// Computed by the prefix-XOR `w_i = g_{m-1} ⊕ … ⊕ g_i`, folded in
/// O(log bits) steps.
#[inline]
pub fn gray_inverse(g: u64) -> u64 {
    let mut w = g;
    w ^= w >> 32;
    w ^= w >> 16;
    w ^= w >> 8;
    w ^= w >> 4;
    w ^= w >> 2;
    w ^= w >> 1;
    w
}

/// Gray code restricted to an `m`-bit field (identical to [`gray`] for
/// in-range inputs; asserts the input is in range in debug builds).
#[inline]
pub fn gray_m(w: u64, m: u32) -> u64 {
    debug_assert_eq!(w & !mask(m), 0);
    gray(w)
}

/// The dimension in which `G(w)` and `G(w+1)` differ: the number of
/// trailing ones of `w`, i.e. `trailing_zeros(!w)`.
///
/// This is the classic "ruler sequence" of Gray-code transitions; it is the
/// dimension along which a Gray-code-embedded ring takes its next step.
#[inline]
pub fn gray_transition_dim(w: u64) -> u32 {
    (!w).trailing_zeros()
}

/// Iterator over the `2^m` Gray codewords in sequence order
/// `G(0), G(1), …, G(2^m - 1)`.
pub fn gray_sequence(m: u32) -> impl Iterator<Item = u64> {
    crate::check_dims(m);
    (0..(1u64 << m)).map(gray)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming;

    #[test]
    fn small_values() {
        // G: 0,1,3,2,6,7,5,4 for 3 bits.
        let expect = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];
        for (w, &g) in expect.iter().enumerate() {
            assert_eq!(gray(w as u64), g);
            assert_eq!(gray_inverse(g), w as u64);
        }
    }

    #[test]
    fn bijection_roundtrip() {
        for w in 0..(1u64 << 12) {
            assert_eq!(gray_inverse(gray(w)), w);
            assert_eq!(gray(gray_inverse(w)), w);
        }
        // Spot-check wide values.
        for w in [u64::MAX, u64::MAX >> 1, 0xdead_beef_cafe_f00d] {
            assert_eq!(gray_inverse(gray(w)), w);
        }
    }

    #[test]
    fn adjacency_preserved() {
        for w in 0..(1u64 << 12) - 1 {
            assert_eq!(hamming(gray(w), gray(w + 1)), 1, "w={w}");
        }
    }

    #[test]
    fn wraparound_is_single_bit() {
        // The Gray sequence is a Hamiltonian cycle: last and first codeword
        // also differ in one bit.
        for m in 1..=10u32 {
            let last = gray((1u64 << m) - 1);
            assert_eq!(hamming(last, gray(0)), 1, "m={m}");
        }
    }

    #[test]
    fn transition_dims_are_ruler_sequence() {
        let expect = [0, 1, 0, 2, 0, 1, 0, 3, 0, 1, 0, 2, 0, 1, 0, 4];
        for (w, &d) in expect.iter().enumerate() {
            assert_eq!(gray_transition_dim(w as u64), d);
            assert_eq!(
                gray(w as u64) ^ gray(w as u64 + 1),
                1 << d,
                "transition bit mismatch at w={w}"
            );
        }
    }

    #[test]
    fn preserves_msb() {
        // The paper's §6.3 uses that binary and Gray codes have identical
        // most significant bits.
        for m in 1..=12u32 {
            for w in 0..(1u64 << m) {
                assert_eq!(gray(w) >> (m - 1), w >> (m - 1));
            }
        }
    }

    #[test]
    fn sequence_enumerates_all() {
        let mut seen: Vec<u64> = gray_sequence(8).collect();
        seen.sort_unstable();
        let all: Vec<u64> = (0..256).collect();
        assert_eq!(seen, all);
    }
}
