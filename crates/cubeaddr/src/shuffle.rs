//! Shuffle operators on address fields (paper Definition 3, Lemmas 1–3).
//!
//! A *shuffle* `sh^1` on an `m`-bit address field is a one-step left cyclic
//! shift: `loc(w_{m-1} w_{m-2} … w_0) ← loc(w_{m-2} … w_0 w_{m-1})`. In
//! terms of the value stored at an address, the element at address `w`
//! moves to address `sh(w)` where `sh` rotates the bits left. An *unshuffle*
//! `sh^{-1}` is the right cyclic shift. `sh^p` applied to the `(u||v)`
//! address of a `2^p × 2^q` matrix element realizes the transpose
//! (Lemma 1).

use crate::{check_dims, mask};

/// Left cyclic shift of the low `m` bits of `w` by `k` steps: `sh^k(w)`.
///
/// Bits above position `m` must be zero and remain zero.
#[inline]
#[track_caller]
pub fn shuffle(w: u64, k: u32, m: u32) -> u64 {
    check_dims(m);
    debug_assert_eq!(w & !mask(m), 0, "address {w:#b} exceeds {m} bits");
    if m == 0 {
        return 0;
    }
    let k = k % m;
    if k == 0 {
        return w;
    }
    ((w << k) | (w >> (m - k))) & mask(m)
}

/// Right cyclic shift of the low `m` bits of `w` by `k` steps: `sh^{-k}(w)`.
#[inline]
pub fn unshuffle(w: u64, k: u32, m: u32) -> u64 {
    if m == 0 {
        return 0;
    }
    shuffle(w, m - (k % m), m)
}

/// Greatest common divisor (for the Lemma 2 closed form).
pub(crate) fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The maximum over all `m`-bit `w` of `Hamming(w, sh^k(w))` (paper
/// Lemma 2):
///
/// ```text
/// max_w Hamming(w, sh^k w) = m            if m / gcd(m,k) is even
///                          = m - gcd(m,k) if m / gcd(m,k) is odd
/// ```
///
/// For `k = 0` (identity) the maximum is 0, consistent with
/// `m - gcd(m, 0) = 0`.
pub fn max_hamming_shuffle(m: u32, k: u32) -> u32 {
    check_dims(m);
    if m == 0 {
        return 0;
    }
    let k = k % m;
    if k == 0 {
        return 0;
    }
    let g = gcd(m, k);
    if (m / g).is_multiple_of(2) {
        m
    } else {
        m - g
    }
}

/// A witness address achieving [`max_hamming_shuffle`] for `k = 1`
/// (the constructive part of Lemma 2's proof): `0101…01` for even `m`,
/// `0101…010` for odd `m`.
pub fn max_hamming_witness_sh1(m: u32) -> u64 {
    check_dims(m);
    let alternating = 0x5555_5555_5555_5555u64; // …010101
    if m.is_multiple_of(2) {
        alternating & mask(m)
    } else {
        (alternating << 1) & mask(m) // …0101010
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming;

    #[test]
    fn shuffle_rotates() {
        assert_eq!(shuffle(0b1000, 1, 4), 0b0001);
        assert_eq!(shuffle(0b0011, 1, 4), 0b0110);
        assert_eq!(shuffle(0b0011, 2, 4), 0b1100);
        assert_eq!(shuffle(0b0011, 4, 4), 0b0011);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for m in 1..10u32 {
            for w in 0..(1u64 << m) {
                for k in 0..2 * m {
                    assert_eq!(unshuffle(shuffle(w, k, m), k, m), w);
                    assert_eq!(shuffle(unshuffle(w, k, m), k, m), w);
                }
            }
        }
    }

    #[test]
    fn sh_k_equals_sh_neg_m_minus_k() {
        // sh^k(w) = sh^{-(m-k)}(w).
        let m = 7;
        for w in 0..(1u64 << m) {
            for k in 0..m {
                assert_eq!(shuffle(w, k, m), unshuffle(w, m - k, m));
            }
        }
    }

    #[test]
    fn zero_width_field() {
        assert_eq!(shuffle(0, 3, 0), 0);
        assert_eq!(unshuffle(0, 3, 0), 0);
    }

    /// Brute-force verification of Lemma 2 for all m ≤ 12 and all k.
    #[test]
    fn lemma2_max_hamming_exact() {
        for m in 1..=12u32 {
            for k in 0..m {
                let brute = (0..(1u64 << m)).map(|w| hamming(w, shuffle(w, k, m))).max().unwrap();
                assert_eq!(brute, max_hamming_shuffle(m, k), "lemma 2 mismatch at m={m} k={k}");
            }
        }
    }

    /// Lemma 3: for 0 ≤ k < m, max_w Hamming(w, sh^k w) ≥ k.
    #[test]
    fn lemma3_lower_bound() {
        for m in 1..=32u32 {
            for k in 1..m {
                assert!(max_hamming_shuffle(m, k) >= k, "lemma 3 violated at m={m} k={k}");
            }
        }
    }

    /// Corollary 2: for even m, the half-rotation attains Hamming distance m.
    #[test]
    fn corollary2_half_rotation() {
        for m in (2..=16u32).step_by(2) {
            assert_eq!(max_hamming_shuffle(m, m / 2), m);
        }
    }

    #[test]
    fn witness_attains_lemma2_for_k1() {
        for m in 1..=16u32 {
            let w = max_hamming_witness_sh1(m);
            assert_eq!(
                hamming(w, shuffle(w, 1, m)),
                max_hamming_shuffle(m, 1),
                "witness fails at m={m}"
            );
        }
    }
}
