//! Necklace (cyclic-rotation) utilities for spanning balanced *n*-tree
//! routing.
//!
//! The SBnT transpose algorithm of the paper labels each relative address
//! `j ≠ 0` with its *base*: "the minimum number of right rotations of `j`
//! which yields the minimum value among all rotations of `j`". Messages for
//! destination `j` leave the source on port `base(j)`, which splits the
//! node set into `n` approximately equal subtrees. Forwarding then moves
//! along the 1-bits of the relative address, cyclically.

use crate::{check_dims, shuffle::shuffle, unshuffle};

/// The minimum value among all cyclic rotations of the `n`-bit string `j`
/// (the *necklace representative*).
pub fn necklace_min(j: u64, n: u32) -> u64 {
    check_dims(n);
    (0..n).map(|k| unshuffle(j, k, n)).min().unwrap_or(j)
}

/// `base(j)`: the minimum number of right rotations of `j` that yields
/// [`necklace_min`] (paper's SBnT algorithm).
///
/// `base(0)` is defined as 0.
pub fn base(j: u64, n: u32) -> u32 {
    check_dims(n);
    let mut best = (j, 0);
    for k in 1..n {
        let r = unshuffle(j, k, n);
        if r < best.0 {
            best = (r, k);
        }
    }
    best.1
}

/// The number of distinct cyclic rotations of `j` (its cyclic period).
///
/// Subtree sizes of the spanning balanced *n*-tree are governed by how many
/// addresses share each necklace; full-period necklaces contribute one node
/// to each of the `n` subtrees.
pub fn cyclic_period(j: u64, n: u32) -> u32 {
    check_dims(n);
    for p in 1..=n {
        if n.is_multiple_of(p) && shuffle(j, p, n) == j {
            return p;
        }
    }
    n.max(1)
}

/// The position of the 1-bit of `w` nearest to the left of bit `i`,
/// cyclically (paper's SBnT forwarding rule: "the bit position of
/// relative-addr which is the nearest 1-bit to the left of the j-th bit
/// cyclically").
///
/// Returns `None` when `w` has no 1-bit.
pub fn nearest_one_left_cyclic(w: u64, i: u32, n: u32) -> Option<u32> {
    check_dims(n);
    if w == 0 {
        return None;
    }
    for step in 1..=n {
        let d = (i + step) % n;
        if (w >> d) & 1 == 1 {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn necklace_min_examples() {
        // Rotations of 0b0110 (n=4): 0110, 0011, 1001, 1100 → min 0011.
        assert_eq!(necklace_min(0b0110, 4), 0b0011);
        assert_eq!(necklace_min(0b1000, 4), 0b0001);
        assert_eq!(necklace_min(0, 4), 0);
        assert_eq!(necklace_min(0b1111, 4), 0b1111);
    }

    #[test]
    fn base_reaches_min() {
        for n in 1..=8u32 {
            for j in 0..(1u64 << n) {
                let b = base(j, n);
                assert_eq!(unshuffle(j, b, n), necklace_min(j, n), "n={n} j={j:#b}");
                // Minimality of rotation count.
                for k in 0..b {
                    assert!(unshuffle(j, k, n) > necklace_min(j, n));
                }
            }
        }
    }

    #[test]
    fn base_splits_nodes_into_balanced_classes() {
        // Over all j≠0 of an n-cube, the port assignment base(j) puts at
        // most ceil((2^n - 1)/n) + (number of short-period necklaces)
        // nodes on any port; for the paper's purposes we just check rough
        // balance: max class ≤ 2 × min class for n ≥ 3 where every class is
        // nonempty.
        for n in 3..=9u32 {
            let mut counts = vec![0usize; n as usize];
            for j in 1..(1u64 << n) {
                counts[base(j, n) as usize] += 1;
            }
            let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(*mn > 0, "empty port class at n={n}");
            assert!(*mx <= 2 * *mn, "unbalanced SBnT port classes at n={n}: {counts:?}");
        }
    }

    #[test]
    fn cyclic_period_divides_n() {
        for n in 1..=9u32 {
            for j in 0..(1u64 << n) {
                let p = cyclic_period(j, n);
                assert_eq!(n % p, 0);
                assert_eq!(shuffle(j, p, n), j);
            }
        }
        assert_eq!(cyclic_period(0, 6), 1);
        assert_eq!(cyclic_period(0b010101, 6), 2);
        assert_eq!(cyclic_period(0b011011, 6), 3);
        assert_eq!(cyclic_period(0b000001, 6), 6);
    }

    #[test]
    fn nearest_one_left() {
        // w = 0b0101, n = 4: left of bit 0 is bit 2; left of bit 2 is bit 0
        // (cyclically); left of bit 1 is bit 2; left of bit 3 is bit 0.
        let w = 0b0101;
        assert_eq!(nearest_one_left_cyclic(w, 0, 4), Some(2));
        assert_eq!(nearest_one_left_cyclic(w, 1, 4), Some(2));
        assert_eq!(nearest_one_left_cyclic(w, 2, 4), Some(0));
        assert_eq!(nearest_one_left_cyclic(w, 3, 4), Some(0));
        assert_eq!(nearest_one_left_cyclic(0, 2, 4), None);
        // Self-bit is skipped: starts strictly to the left.
        assert_eq!(nearest_one_left_cyclic(0b0100, 2, 4), Some(2));
    }
}
