//! Proximity-preserving embeddings of rings and meshes into Boolean
//! cubes.
//!
//! The paper's introduction leans on the fact that "multi-dimensional
//! arrays can be embedded in Boolean cubes preserving proximity" (its
//! refs \[13, 14\]): a ring of `2^m` elements maps onto the cube by the
//! binary-reflected Gray code, and a multi-dimensional mesh by a product
//! of Gray codes over disjoint dimension fields. These embeddings are
//! what make the *consecutive, Gray-encoded* matrix layouts neighborly —
//! adjacent stripes or blocks sit on adjacent processors.

use crate::gray::gray;
use crate::{check_dims, concat, hamming, NodeId};

/// The node hosting ring position `i` of a `2^m`-element ring embedded by
/// the Gray code: consecutive ring positions are cube neighbors, as is
/// the wrap-around pair.
pub fn ring_node(i: u64, m: u32) -> NodeId {
    check_dims(m);
    NodeId(gray(i & crate::mask(m)))
}

/// A `2^a × 2^b` mesh embedded into an `(a+b)`-cube by the product of
/// Gray codes: position `(r, c)` maps to `(G(r) ‖ G(c))`.
///
/// Horizontal and vertical mesh neighbors land on cube neighbors; with
/// the wrap-around links included this embeds the torus.
pub fn mesh_node(r: u64, c: u64, a: u32, b: u32) -> NodeId {
    check_dims(a + b);
    NodeId(concat(gray(r & crate::mask(a)), gray(c & crate::mask(b)), b))
}

/// Dilation of an embedding edge: the cube distance between the images
/// of two adjacent guest nodes (1 for a proximity-preserving embedding).
pub fn dilation(x: NodeId, y: NodeId) -> u32 {
    hamming(x.bits(), y.bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_embedding_has_dilation_one() {
        for m in 1..=10u32 {
            let len = 1u64 << m;
            for i in 0..len {
                let here = ring_node(i, m);
                let next = ring_node((i + 1) % len, m);
                assert_eq!(dilation(here, next), 1, "m={m} i={i}");
            }
        }
    }

    #[test]
    fn ring_embedding_is_bijective() {
        let m = 8;
        let mut seen = vec![false; 1 << m];
        for i in 0..(1u64 << m) {
            let x = ring_node(i, m).index();
            assert!(!seen[x]);
            seen[x] = true;
        }
    }

    #[test]
    fn mesh_embedding_dilation_one_both_axes() {
        let (a, b) = (3u32, 4u32);
        for r in 0..(1u64 << a) {
            for c in 0..(1u64 << b) {
                let here = mesh_node(r, c, a, b);
                let right = mesh_node(r, (c + 1) % (1 << b), a, b);
                let down = mesh_node((r + 1) % (1 << a), c, a, b);
                assert_eq!(dilation(here, right), 1, "({r},{c}) →");
                assert_eq!(dilation(here, down), 1, "({r},{c}) ↓");
            }
        }
    }

    #[test]
    fn mesh_embedding_is_bijective() {
        let (a, b) = (3u32, 3u32);
        let mut seen = std::collections::HashSet::new();
        for r in 0..(1u64 << a) {
            for c in 0..(1u64 << b) {
                assert!(seen.insert(mesh_node(r, c, a, b)));
            }
        }
        assert_eq!(seen.len(), 1 << (a + b));
    }

    #[test]
    fn mesh_matches_gray_consecutive_layout_blocks() {
        // The mesh embedding is exactly where a consecutive Gray 2D
        // layout puts its block (r, c): the layout's node for a block is
        // (G(r) ‖ G(c)).
        let (a, b) = (2u32, 2u32);
        for r in 0..4u64 {
            for c in 0..4u64 {
                assert_eq!(mesh_node(r, c, a, b).bits(), (gray(r) << 2) | gray(c));
            }
        }
    }
}
