//! Bit-reversal of address fields (paper §7).
//!
//! The bit-reversal permutation `(x_{n-1} x_{n-2} … x_0) ← (x_0 x_1 … x_{n-1})`
//! is the data reordering of radix-2 FFTs; the paper realizes it on the
//! cube with the *general exchange algorithm* by pairing dimensions
//! `f(i) = i`, `g(i) = n-1-i`. A *reflection* of a graph (Definition 9) is
//! the graph with every address bit-reversed.

use crate::{check_dims, mask};

/// Reverses the low `m` bits of `w` (bits at and above position `m` must be
/// zero).
#[inline]
#[track_caller]
pub fn bit_reverse(w: u64, m: u32) -> u64 {
    check_dims(m);
    debug_assert_eq!(w & !mask(m), 0, "address {w:#b} exceeds {m} bits");
    if m == 0 {
        return 0;
    }
    w.reverse_bits() >> (64 - m)
}

/// The set of fixed points of the `m`-bit reversal is the set of
/// palindromic addresses; this predicate tests membership.
#[inline]
pub fn is_palindrome(w: u64, m: u32) -> bool {
    bit_reverse(w, m) == w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0b1011, 4), 0b1101);
        assert_eq!(bit_reverse(0, 0), 0);
        assert_eq!(bit_reverse(1, 1), 1);
    }

    #[test]
    fn involution() {
        for m in 1..=12u32 {
            for w in 0..(1u64 << m) {
                assert_eq!(bit_reverse(bit_reverse(w, m), m), w);
            }
        }
    }

    #[test]
    fn is_permutation() {
        let m = 10;
        let mut seen = vec![false; 1 << m];
        for w in 0..(1u64 << m) {
            let r = bit_reverse(w, m) as usize;
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn palindromes() {
        assert!(is_palindrome(0b101, 3));
        assert!(is_palindrome(0b0110, 4));
        assert!(!is_palindrome(0b0111, 4));
        // Number of m-bit palindromes is 2^ceil(m/2).
        for m in 1..=10u32 {
            let count = (0..(1u64 << m)).filter(|&w| is_palindrome(w, m)).count();
            assert_eq!(count, 1 << m.div_ceil(2), "m={m}");
        }
    }
}
