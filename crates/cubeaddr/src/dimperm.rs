//! Dimension permutations and parallel swapping (paper §7, Definitions
//! 17–18, Lemma 15).
//!
//! A *dimension permutation* sends the data of processor
//! `(x_{n-1} … x_0)` to processor `(x_{δ(n-1)} … x_{δ(0)})` for a
//! permutation `δ` of `{0, …, n-1}`. Shuffles, bit-reversal and the
//! matrix-transpose processor permutation (for `n_r = n_c`) are all
//! dimension permutations. A *parallel swapping* is a dimension permutation
//! whose `δ` is an involution (`δ(δ(i)) = i`); it is realizable by one pass
//! of the general exchange algorithm in which all transposed dimension
//! pairs are exchanged concurrently.
//!
//! Lemma 15: any dimension permutation on `n` dimensions factors into at
//! most `⌈log₂ n⌉` parallel swappings. [`DimPermutation::parallel_swap_factors`]
//! constructs such a factorization.

use crate::check_dims;

/// A permutation `δ` of the cube dimensions `{0, 1, …, n-1}`.
///
/// Applied to an address, destination bit `i` receives source bit `δ(i)`:
/// `apply(x)_i = x_{δ(i)}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DimPermutation {
    /// `delta[i] = δ(i)`.
    delta: Vec<u32>,
}

impl DimPermutation {
    /// The identity permutation on `n` dimensions.
    pub fn identity(n: u32) -> Self {
        check_dims(n);
        DimPermutation { delta: (0..n).collect() }
    }

    /// Builds a permutation from the map `delta[i] = δ(i)`.
    ///
    /// # Panics
    /// If `delta` is not a permutation of `0..delta.len()`.
    #[track_caller]
    pub fn new(delta: Vec<u32>) -> Self {
        let n = delta.len();
        check_dims(n as u32);
        let mut seen = vec![false; n];
        for &d in &delta {
            assert!(
                (d as usize) < n && !seen[d as usize],
                "{delta:?} is not a permutation of 0..{n}"
            );
            seen[d as usize] = true;
        }
        DimPermutation { delta }
    }

    /// The `k`-step left-rotation permutation, matching the shuffle
    /// operator: `apply(x) = sh^k(x)`.
    ///
    /// `sh^k` moves source bit `i` to position `i + k (mod n)`, so
    /// destination bit `i` receives source bit `i - k (mod n)`.
    pub fn rotation(n: u32, k: u32) -> Self {
        check_dims(n);
        if n == 0 {
            return Self::identity(0);
        }
        let k = k % n;
        DimPermutation { delta: (0..n).map(|i| (i + n - k) % n).collect() }
    }

    /// The bit-reversal permutation `δ(i) = n - 1 - i`.
    pub fn bit_reversal(n: u32) -> Self {
        check_dims(n);
        DimPermutation { delta: (0..n).rev().collect() }
    }

    /// The transpose permutation for a square two-dimensional processor
    /// array with `n/2` row and `n/2` column dimensions:
    /// `tr(x_r || x_c) = (x_c || x_r)`, i.e. `δ(i) = i + n/2 (mod n)`.
    ///
    /// # Panics
    /// If `n` is odd.
    #[track_caller]
    pub fn transpose(n: u32) -> Self {
        assert!(n.is_multiple_of(2), "transpose permutation requires an even number of dimensions");
        Self::rotation(n, n / 2)
    }

    /// Number of dimensions.
    pub fn n(&self) -> u32 {
        self.delta.len() as u32
    }

    /// `δ(i)`.
    #[inline]
    pub fn delta(&self, i: u32) -> u32 {
        self.delta[i as usize]
    }

    /// Access to the full map.
    pub fn as_slice(&self) -> &[u32] {
        &self.delta
    }

    /// Applies the permutation to an address: bit `i` of the result is bit
    /// `δ(i)` of `x`.
    pub fn apply(&self, x: u64) -> u64 {
        debug_assert_eq!(x & !crate::mask(self.n()), 0);
        let mut y = 0u64;
        for (i, &d) in self.delta.iter().enumerate() {
            y |= ((x >> d) & 1) << i;
        }
        y
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.delta.len()];
        for (i, &d) in self.delta.iter().enumerate() {
            inv[d as usize] = i as u32;
        }
        DimPermutation { delta: inv }
    }

    /// Composition such that `a.then(b).apply(x) == b.apply(a.apply(x))`.
    ///
    /// With `apply(x)_i = x_{δ(i)}`, the composed map is
    /// `(a ∘ b)(i) = a(b(i))`.
    #[track_caller]
    pub fn then(&self, next: &DimPermutation) -> Self {
        assert_eq!(self.n(), next.n());
        let delta = (0..self.n()).map(|i| self.delta(next.delta(i))).collect();
        DimPermutation { delta }
    }

    /// True when `δ` is an involution, i.e. a *parallel swapping*
    /// (Definition 18).
    pub fn is_parallel_swapping(&self) -> bool {
        self.delta.iter().enumerate().all(|(i, &d)| self.delta[d as usize] == i as u32)
    }

    /// True when `δ` is the identity.
    pub fn is_identity(&self) -> bool {
        self.delta.iter().enumerate().all(|(i, &d)| d == i as u32)
    }

    /// The transposed pairs `(i, j)` with `i < j`, `δ(i) = j` of a parallel
    /// swapping.
    ///
    /// # Panics
    /// If the permutation is not an involution.
    #[track_caller]
    pub fn swap_pairs(&self) -> Vec<(u32, u32)> {
        assert!(self.is_parallel_swapping(), "not a parallel swapping: {:?}", self.delta);
        self.delta
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| if (i as u32) < d { Some((i as u32, d)) } else { None })
            .collect()
    }

    /// Factors the permutation into at most `⌈log₂ n⌉` parallel swappings
    /// (Lemma 15).
    ///
    /// ```
    /// use cubeaddr::DimPermutation;
    /// let delta = DimPermutation::new(vec![2, 0, 3, 1]);
    /// let factors = delta.parallel_swap_factors();
    /// assert!(factors.len() <= 2); // ⌈log₂ 4⌉
    /// let composed = factors.iter().fold(0b0110, |x, f| f.apply(x));
    /// assert_eq!(composed, delta.apply(0b0110));
    /// ```
    ///
    /// The returned factors `[σ_1, σ_2, …, σ_t]` satisfy
    /// `apply = σ_t.apply ∘ … ∘ σ_1.apply`, i.e. the first factor is the
    /// first swapping executed on the data. Identity factors are omitted,
    /// so the result can be shorter than `⌈log₂ n⌉` (and is empty for the
    /// identity permutation).
    pub fn parallel_swap_factors(&self) -> Vec<DimPermutation> {
        let n = self.n();
        if n <= 1 {
            return Vec::new();
        }
        // Work on a padded power-of-two dimension count, per the lemma's
        // proof ("add virtual elements"): pad with fixed points.
        let padded = (n as usize).next_power_of_two() as u32;
        let mut rho: Vec<u32> = self.delta.clone();
        rho.extend(n..padded);

        // Active blocks at the current level; each block is a contiguous
        // range of *positions* in a working index array. We instead track
        // blocks as sets of dimension indices, halving each level.
        let mut blocks: Vec<Vec<u32>> = vec![(0..padded).collect()];
        let mut factors = Vec::new();

        while blocks[0].len() > 1 {
            // Build one parallel swapping σ that makes ρ block-diagonal on
            // each block's two halves, then ρ ← σ ∘ ρ (σ applied to values).
            let mut sigma: Vec<u32> = (0..padded).collect();
            let mut next_blocks = Vec::with_capacity(blocks.len() * 2);
            for block in &blocks {
                let half = block.len() / 2;
                let (a, b) = block.split_at(half);
                let a_set: std::collections::HashSet<u32> = a.iter().copied().collect();
                // Values that must cross from B's value-side into A and
                // vice versa: positions i∈A with ρ(i)∈B contribute value
                // ρ(i) (in B); positions j∈B with ρ(j)∈A contribute ρ(j)
                // (in A). Pair them up and swap.
                let mut stranded_in_b: Vec<u32> = a
                    .iter()
                    .filter(|&&i| !a_set.contains(&rho[i as usize]))
                    .map(|&i| rho[i as usize])
                    .collect();
                let mut stranded_in_a: Vec<u32> = b
                    .iter()
                    .filter(|&&j| a_set.contains(&rho[j as usize]))
                    .map(|&j| rho[j as usize])
                    .collect();
                debug_assert_eq!(stranded_in_a.len(), stranded_in_b.len());
                // Deterministic pairing for reproducibility.
                stranded_in_a.sort_unstable();
                stranded_in_b.sort_unstable();
                for (&x, &y) in stranded_in_a.iter().zip(&stranded_in_b) {
                    sigma[x as usize] = y;
                    sigma[y as usize] = x;
                }
                next_blocks.push(a.to_vec());
                next_blocks.push(b.to_vec());
            }
            // ρ' = σ ∘ ρ  (σ applied to the values of ρ).
            for v in rho.iter_mut() {
                *v = sigma[*v as usize];
            }
            // Padded dimensions are fixed points of ρ and never cross, so σ
            // only ever swaps real dimensions and truncating to n is safe.
            debug_assert!(sigma[n as usize..].iter().enumerate().all(|(i, &d)| d == n + i as u32));
            let sigma = DimPermutation { delta: sigma[..n as usize].to_vec() };
            if !sigma.is_identity() {
                factors.push(sigma);
            }
            blocks = next_blocks;
        }
        debug_assert!(rho.iter().enumerate().all(|(i, &d)| d == i as u32));
        factors
    }
}

impl std::fmt::Display for DimPermutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "δ = [")?;
        for (i, d) in self.delta.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}←{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bit_reverse, shuffle};

    #[test]
    fn rotation_matches_shuffle() {
        for n in 1..=10u32 {
            for k in 0..n {
                let p = DimPermutation::rotation(n, k);
                for x in 0..(1u64 << n) {
                    assert_eq!(p.apply(x), shuffle(x, k, n), "n={n} k={k} x={x:#b}");
                }
            }
        }
    }

    #[test]
    fn bit_reversal_matches() {
        for n in 1..=10u32 {
            let p = DimPermutation::bit_reversal(n);
            for x in 0..(1u64 << n) {
                assert_eq!(p.apply(x), bit_reverse(x, n));
            }
        }
    }

    #[test]
    fn transpose_swaps_halves() {
        let p = DimPermutation::transpose(6);
        // x = (x_r || x_c) with 3+3 bits; apply = (x_c || x_r).
        assert_eq!(p.apply(0b101_010), 0b010_101);
        assert!(p.is_parallel_swapping());
        assert_eq!(p.swap_pairs(), vec![(0, 3), (1, 4), (2, 5)]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = DimPermutation::new(vec![2, 0, 3, 1, 4]);
        assert!(p.then(&p.inverse()).is_identity());
        assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn then_order() {
        let a = DimPermutation::rotation(4, 1);
        let b = DimPermutation::rotation(4, 2);
        let c = a.then(&b);
        for x in 0..16u64 {
            assert_eq!(c.apply(x), b.apply(a.apply(x)));
            assert_eq!(c.apply(x), shuffle(x, 3, 4));
        }
    }

    fn check_factorization(p: &DimPermutation) {
        let factors = p.parallel_swap_factors();
        let n = p.n();
        let bound = (n.max(1) as usize).next_power_of_two().trailing_zeros();
        assert!(
            factors.len() as u32 <= bound,
            "{} factors exceed ceil(log2 {n}) = {bound}",
            factors.len()
        );
        for f in &factors {
            assert!(f.is_parallel_swapping(), "factor {f:?} not an involution");
        }
        for x in 0..(1u64 << n.min(12)) {
            let mut y = x;
            for f in &factors {
                y = f.apply(y);
            }
            assert_eq!(y, p.apply(x), "factorization wrong for {p:?} at x={x:#b}");
        }
    }

    #[test]
    fn lemma15_rotations_and_reversals() {
        for n in 1..=9u32 {
            for k in 0..n {
                check_factorization(&DimPermutation::rotation(n, k));
            }
            check_factorization(&DimPermutation::bit_reversal(n));
            check_factorization(&DimPermutation::identity(n));
        }
    }

    #[test]
    fn lemma15_exhaustive_small() {
        // All permutations of 4 dimensions.
        fn perms(n: usize) -> Vec<Vec<u32>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, (n - 1) as u32);
                    out.push(q);
                }
            }
            out
        }
        for delta in perms(4) {
            check_factorization(&DimPermutation::new(delta));
        }
    }

    #[test]
    fn lemma15_figure8_example() {
        // Figure 8 permutes 8 dimensions in 3 parallel-swap steps; verify
        // that an arbitrary 8-dimension permutation needs at most 3.
        let p = DimPermutation::new(vec![3, 7, 0, 5, 6, 1, 2, 4]);
        let factors = p.parallel_swap_factors();
        assert!(factors.len() <= 3);
        check_factorization(&p);
    }

    #[test]
    fn identity_has_no_factors() {
        assert!(DimPermutation::identity(8).parallel_swap_factors().is_empty());
    }

    #[test]
    #[should_panic]
    fn new_rejects_non_permutation() {
        DimPermutation::new(vec![0, 0, 1]);
    }
}
