//! Addressing mathematics for Boolean *n*-cube configured ensemble
//! architectures.
//!
//! This crate provides the bit-level machinery used throughout the
//! Johnsson–Ho matrix-transposition algorithms (YALEU/DCS/TR-572, 1987):
//!
//! * node addresses and neighbor relations on the Boolean *n*-cube
//!   ([`NodeId`]),
//! * Hamming distance and parity ([`hamming()`]),
//! * the shuffle operators `sh^k` (cyclic shifts of the address field,
//!   [`shuffle()`]),
//! * the binary-reflected Gray code and its inverse ([`gray()`]),
//! * bit-reversal ([`bitrev`]),
//! * dimension permutations and their decomposition into *parallel
//!   swappings* (paper Lemma 15, [`dimperm`]),
//! * necklace/rotation utilities used by spanning balanced *n*-tree
//!   routing ([`necklace`]),
//! * sets of cube dimensions and subcube enumeration ([`dimset`]),
//! * proximity-preserving ring/mesh embeddings ([`embed`]).
//!
//! Addresses are plain `u64` bit strings; an *m*-bit address space supports
//! `m <= 63`. All operations are `O(1)` or `O(m)` bit manipulation with no
//! allocation, so they can sit on the critical path of a simulator or of a
//! real message-passing runtime.

pub mod bitrev;
pub mod dimperm;
pub mod dimset;
pub mod embed;
pub mod gray;
pub mod hamming;
pub mod necklace;
pub mod node;
pub mod shuffle;

pub use bitrev::bit_reverse;
pub use dimperm::DimPermutation;
pub use dimset::DimSet;
pub use gray::{gray, gray_inverse};
pub use hamming::{hamming, parity};
pub use node::NodeId;
pub use shuffle::{shuffle, unshuffle};

/// Maximum supported number of address bits.
///
/// Addresses are stored in `u64`; one bit is kept in reserve so that
/// intermediate values such as `1 << m` never overflow.
pub const MAX_DIMS: u32 = 63;

/// Panics unless `m` is a valid address-field width.
#[inline]
#[track_caller]
pub fn check_dims(m: u32) {
    assert!(m <= MAX_DIMS, "address field of {m} bits exceeds MAX_DIMS={MAX_DIMS}");
}

/// The low-`m`-bit mask: addresses in an `m`-dimensional field satisfy
/// `w & mask(m) == w`.
#[inline]
pub fn mask(m: u32) -> u64 {
    check_dims(m);
    if m == 0 {
        0
    } else {
        u64::MAX >> (64 - m)
    }
}

/// The number of nodes of an `n`-dimensional Boolean cube, `2^n`, as the
/// `usize` used to size dense per-node tables.
///
/// This is the one audited home for `1 << n` node-count arithmetic: it
/// validates `n` against [`MAX_DIMS`] and (in debug builds) that the
/// count fits the platform's `usize`, instead of silently wrapping.
#[inline]
#[track_caller]
pub fn num_nodes(n: u32) -> usize {
    check_dims(n);
    debug_assert!(
        (n as usize) < usize::BITS as usize,
        "2^{n} nodes overflows usize on this platform"
    );
    1usize << n
}

/// Concatenation of two address fields: `(u || v)` with `v` occupying the
/// `q` low-order bits, as in the paper's element address
/// `(u_{p-1}..u_0 v_{q-1}..v_0)`.
#[inline]
pub fn concat(u: u64, v: u64, q: u32) -> u64 {
    debug_assert_eq!(v & !mask(q), 0, "v does not fit in {q} bits");
    (u << q) | v
}

/// Splits `w` into `(u, v)` such that `w = (u || v)` with `v` the `q`
/// low-order bits. Inverse of [`concat()`].
#[inline]
pub fn split(w: u64, q: u32) -> (u64, u64) {
    (w >> q, w & mask(q))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_widths() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(4), 0b1111);
        assert_eq!(mask(63), u64::MAX >> 1);
    }

    #[test]
    #[should_panic]
    fn mask_rejects_64() {
        mask(64);
    }

    #[test]
    fn concat_split_roundtrip() {
        let (u, v, q) = (0b1011, 0b0110, 4);
        let w = concat(u, v, q);
        assert_eq!(w, 0b1011_0110);
        assert_eq!(split(w, q), (u, v));
    }

    #[test]
    fn concat_zero_width() {
        assert_eq!(concat(0b101, 0, 0), 0b101);
        assert_eq!(split(0b101, 0), (0b101, 0));
    }
}
