//! Hamming distance and parity (paper Definition 4).

/// `Hamming(w, z) = Σ_i (w_i ⊕ z_i)` — the number of bit positions in which
/// `w` and `z` differ.
#[inline]
pub fn hamming(w: u64, z: u64) -> u32 {
    (w ^ z).count_ones()
}

/// Parity of an address: `true` when the number of one bits is odd.
///
/// Used by the combined Gray-code/transpose algorithm of paper §6.3, where
/// column operations are controlled by the parity of the block-column
/// index.
#[inline]
pub fn parity(w: u64) -> bool {
    w.count_ones() % 2 == 1
}

/// Population count restricted to the low `m` bits.
#[inline]
pub fn weight(w: u64, m: u32) -> u32 {
    (w & crate::mask(m)).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basic() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0b1010, 0b0101), 4);
        assert_eq!(hamming(0b1010, 0b1000), 1);
        assert_eq!(hamming(u64::MAX, 0), 64);
    }

    #[test]
    fn hamming_symmetric_triangle() {
        let cases = [0u64, 1, 0b1010, 0b1111, 0xdead_beef];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(hamming(a, b), hamming(b, a));
                for &c in &cases {
                    assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
                }
            }
        }
    }

    #[test]
    fn parity_basic() {
        assert!(!parity(0));
        assert!(parity(1));
        assert!(!parity(0b11));
        assert!(parity(0b111));
        assert!(!parity(0b1111_0000_1111_0000));
    }

    #[test]
    fn weight_masks_high_bits() {
        assert_eq!(weight(0b1111, 2), 2);
        assert_eq!(weight(u64::MAX, 10), 10);
        assert_eq!(weight(0b1000, 3), 0);
    }
}
