//! Property-based tests for the addressing primitives.

use cubeaddr::necklace::{base, cyclic_period, necklace_min};
use cubeaddr::{
    bit_reverse, concat, gray, gray_inverse, hamming, mask, parity, shuffle, split, unshuffle,
    DimPermutation, DimSet,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn concat_split_inverse(q in 0u32..32, u in 0u64..(1 << 20), v_raw in 0u64..(1 << 20)) {
        let v = v_raw & mask(q);
        let u = u & mask(20);
        let w = concat(u, v, q);
        prop_assert_eq!(split(w, q), (u, v));
    }

    #[test]
    fn gray_is_involution_composed_with_inverse(w in any::<u64>()) {
        prop_assert_eq!(gray_inverse(gray(w)), w);
        prop_assert_eq!(gray(gray_inverse(w)), w);
    }

    #[test]
    fn gray_parity_alternates(w in 0u64..(u64::MAX - 1)) {
        // gray(w) and gray(w+1) differ in one bit, so parities alternate.
        prop_assert_ne!(parity(gray(w)), parity(gray(w + 1)));
    }

    #[test]
    fn shuffle_composition(m in 1u32..32, k1 in 0u32..64, k2 in 0u32..64, w_raw in any::<u64>()) {
        let w = w_raw & mask(m);
        prop_assert_eq!(
            shuffle(shuffle(w, k1, m), k2, m),
            shuffle(w, (k1 + k2) % m.max(1), m)
        );
        prop_assert_eq!(unshuffle(shuffle(w, k1, m), k1, m), w);
    }

    #[test]
    fn shuffle_preserves_weight(m in 1u32..32, k in 0u32..32, w_raw in any::<u64>()) {
        let w = w_raw & mask(m);
        prop_assert_eq!(w.count_ones(), shuffle(w, k, m).count_ones());
    }

    #[test]
    fn bit_reverse_involution(m in 1u32..40, w_raw in any::<u64>()) {
        let w = w_raw & mask(m);
        prop_assert_eq!(bit_reverse(bit_reverse(w, m), m), w);
        prop_assert_eq!(w.count_ones(), bit_reverse(w, m).count_ones());
    }

    #[test]
    fn hamming_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(hamming(a, b), hamming(b, a));
        prop_assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
        prop_assert_eq!(hamming(a, a), 0);
    }

    #[test]
    fn necklace_base_reaches_minimum(n in 1u32..16, j_raw in any::<u64>()) {
        let j = j_raw & mask(n);
        let b = base(j, n);
        prop_assert!(b < n.max(1));
        prop_assert_eq!(unshuffle(j, b, n), necklace_min(j, n));
        // The necklace minimum is invariant under rotation.
        prop_assert_eq!(necklace_min(shuffle(j, 3, n), n), necklace_min(j, n));
    }

    #[test]
    fn cyclic_period_consistency(n in 1u32..16, j_raw in any::<u64>()) {
        let j = j_raw & mask(n);
        let p = cyclic_period(j, n);
        prop_assert_eq!(n % p, 0);
        prop_assert_eq!(shuffle(j, p, n), j);
        for q in 1..p {
            prop_assert_ne!(shuffle(j, q, n), j);
        }
    }

    #[test]
    fn dimset_extract_deposit(bits in any::<u64>(), w in any::<u64>()) {
        let s = DimSet(bits & mask(40));
        let packed = s.extract(w);
        prop_assert!(packed < (1u64 << s.len()));
        prop_assert_eq!(s.extract(s.deposit(packed)), packed);
    }

    #[test]
    fn dimperm_inverse_roundtrip(n in 1u32..10, seed in any::<u64>()) {
        let mut delta: Vec<u32> = (0..n).collect();
        let mut s = seed | 1;
        for i in (1..n as usize).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            delta.swap(i, (s >> 33) as usize % (i + 1));
        }
        let p = DimPermutation::new(delta);
        let inv = p.inverse();
        for x_raw in [seed, seed >> 7, !seed] {
            let x = x_raw & mask(n);
            prop_assert_eq!(inv.apply(p.apply(x)), x);
        }
    }
}
