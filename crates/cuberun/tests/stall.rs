//! End-to-end stall-detector coverage: a deliberately deadlocked node
//! program must be *reported*, not hung on — and the report must name
//! the parked nodes and the dimensions they are stuck on, because that
//! is the part a user debugging a real deadlock reads first.

use cuberun::{run_spmd, with_stall_timeout, with_workers};
use std::time::Duration;

/// Extracts the message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .expect("non-string panic payload")
}

/// Both nodes of a 1-cube receive on dim 0 and nobody ever sends: the
/// canonical deadlock. The stall detector must fire within the (tight)
/// timeout and its report must name both parked nodes and the dim.
fn deadlocked_pair_reports_parked_nodes(workers: usize) {
    let caught = std::panic::catch_unwind(|| {
        with_workers(workers, || {
            with_stall_timeout(Duration::from_millis(200), || {
                run_spmd::<u64, u64, _, _>(1, |ctx| async move { ctx.recv(0).await })
            })
        })
    });
    let msg = panic_message(caught.expect_err("deadlocked program must not complete"));
    assert!(msg.contains("SPMD scheduler stalled"), "{msg}");
    assert!(msg.contains("0/2 node programs completed"), "{msg}");
    assert!(msg.contains("2 waiting"), "{msg}");
    assert!(msg.contains("node 0 on dim 0"), "{msg}");
    assert!(msg.contains("node 1 on dim 0"), "{msg}");
    assert!(msg.contains("deadlocked node program?"), "{msg}");
}

#[test]
fn deadlocked_pair_is_reported_with_one_worker() {
    deadlocked_pair_reports_parked_nodes(1);
}

#[test]
fn deadlocked_pair_is_reported_with_two_workers() {
    deadlocked_pair_reports_parked_nodes(2);
}

/// One-sided deadlock: node 1 sends and finishes, node 0 receives twice
/// but only one message ever arrives. The report must show the partial
/// completion and name only the stuck node.
#[test]
fn half_completed_run_names_only_the_stuck_node() {
    let caught = std::panic::catch_unwind(|| {
        with_workers(2, || {
            with_stall_timeout(Duration::from_millis(200), || {
                run_spmd::<u64, u64, _, _>(1, |ctx| async move {
                    if ctx.id().bits() == 1 {
                        ctx.send(0, 7);
                        0
                    } else {
                        let first = ctx.recv(0).await;
                        first + ctx.recv(0).await
                    }
                })
            })
        })
    });
    let msg = panic_message(caught.expect_err("deadlocked program must not complete"));
    assert!(msg.contains("1/2 node programs completed"), "{msg}");
    assert!(msg.contains("node 0 on dim 0"), "{msg}");
    assert!(!msg.contains("node 1 on dim"), "{msg}");
}
