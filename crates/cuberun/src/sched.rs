//! The cooperative virtual-node scheduler behind [`crate::run_spmd`]:
//! a fixed worker pool multiplexing up to 2^16 node contexts.
//!
//! # Data plane
//!
//! * **Mailbox slab** — one FIFO per directed link, stored flat at
//!   `node * ports + port` (the PR-1 `SimNet` layout; on the cube,
//!   `ports = n` and a port is a dimension). `mail[x*ports + p]` holds
//!   what `x`'s neighbor across port `p` sent to `x`. Each slot is
//!   a `Mutex<MailSlot>` (a `VecDeque` plus the receiver's parked flag);
//!   steady-state sends and receives reuse the deque's capacity, so hops
//!   are allocation-free once warm.
//! * **Want cells** — one atomic per node recording what a suspended
//!   node is waiting for (a dimension, or a barrier generation). Written
//!   by the node's own `recv`/`barrier` futures while its worker polls
//!   it; read back by that worker to park it, and by the stall detector
//!   to report *which* nodes wait on *which* dims.
//! * **Ready queues** — one `VecDeque<u32>` of runnable node ids per
//!   worker. A send that finds its receiver parked pushes the receiver
//!   onto the *sender's* queue; idle workers steal from the front of
//!   other queues (half at a time) and, before sleeping, claim
//!   not-yet-spawned nodes from a [`ClaimCursor`] — the same
//!   work-claiming machinery as `cubesim::par`.
//!
//! # Park/wake protocol (two-phase, no lost wakeups)
//!
//! A `recv` on an empty mailbox does **not** publish anything: it
//! records the dimension in the node's want cell and returns `Pending`.
//! Only after the worker has finished with the context (its slab lock is
//! released, so any other worker could run it) does the worker *park*
//! the node: re-lock the mailbox, re-check for a message that raced in
//! (if one did, the node just goes back on the ready queue), otherwise
//! set the slot's parked flag. A sender that sees the flag clears it and
//! enqueues the receiver. Because the flag is only ever set after the
//! context is released, and only the one clearing sender enqueues, each
//! node is owned by at most one worker at a time.
//!
//! # Determinism
//!
//! Results are byte-identical at any worker count because scheduling
//! never influences data: every directed link has exactly one sending
//! node whose messages arrive in its program order, and a `recv` names
//! the one link it consumes from. The scheduler only decides *when* a
//! node runs, never *what* it observes. (Scheduler counters — parks,
//! wakes, steals — are timing-dependent; message and barrier counts are
//! not.)

use cubesim::par::ClaimCursor;
use cubesync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use cubesync::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use cubetopo::{TopoSpec, Topology};
use std::cell::Cell;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Want-cell value: not waiting on anything scheduler-visible.
pub(crate) const WANT_NONE: u64 = u64::MAX;
/// Want-cell flag bit: waiting on the barrier generation in the low bits.
pub(crate) const WANT_BARRIER: u64 = 1 << 63;

/// Locks a mutex, recovering the guard if a panicking node program
/// poisoned it (the panic itself is propagated separately; diagnostic
/// state behind the lock is still worth reading).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One directed link endpoint: the queue of in-flight messages plus the
/// receiver's parked flag.
pub(crate) struct MailSlot<T> {
    pub(crate) queue: VecDeque<T>,
    pub(crate) parked: bool,
}

/// Global barrier state: a generation counter plus the arrival count and
/// parked waiters of the current episode.
pub(crate) struct BarrierState {
    pub(crate) generation: u64,
    pub(crate) arrived: usize,
    pub(crate) waiters: Vec<u32>,
}

/// Stall-detector clock: the last observed progress count and when it
/// last changed. Guarded by the sleep lock (only idle workers look).
pub(crate) struct StallClock {
    last_progress: u64,
    since: Instant,
}

/// Everything the workers and node contexts share for one run.
pub(crate) struct Shared<T> {
    pub(crate) topo: TopoSpec,
    /// Cached `topo.ports()`: the mailbox-slab stride (`n` on the cube).
    pub(crate) ports: u32,
    pub(crate) num: usize,
    pub(crate) workers: usize,
    pub(crate) stall_timeout: Duration,

    /// Mailbox slab, `node * ports + port`.
    mail: Vec<Mutex<MailSlot<T>>>,
    /// Per-node wait reason (see [`WANT_NONE`] / [`WANT_BARRIER`]).
    pub(crate) want: Vec<AtomicU64>,
    pub(crate) barrier: Mutex<BarrierState>,
    /// Mirror of `barrier.generation` for lock-free re-polls.
    pub(crate) barrier_generation: AtomicU64,

    /// Per-worker ready queues of runnable node ids.
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Unspawned-node cursor: nodes start life here, not in a queue.
    pub(crate) cursor: ClaimCursor,
    sleep: Mutex<StallClock>,
    sleep_cv: Condvar,
    sleepers: AtomicUsize,
    done: AtomicBool,
    pub(crate) completed: AtomicUsize,

    // Counters for `RunStats`.
    pub(crate) messages: AtomicU64,
    pub(crate) barriers: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) wakes: AtomicU64,
    pub(crate) steals: Vec<AtomicU64>,
    live: AtomicU32,
    pub(crate) peak_live: AtomicU32,
    /// Bumped on every poll and wake; stillness is what the stall
    /// detector times.
    pub(crate) progress: AtomicU64,
}

thread_local! {
    /// Which worker of the current run this thread is (set by
    /// [`worker_loop`]); sends always enqueue wakes on their own worker's
    /// queue, so no cross-thread queue choice exists.
    static WORKER: Cell<usize> = const { Cell::new(0) };
}

impl<T> Shared<T> {
    pub(crate) fn new(topo: TopoSpec, workers: usize, stall_timeout: Duration) -> Self {
        let num = topo.num_nodes();
        let ports = topo.ports();
        Shared {
            topo,
            ports,
            num,
            workers,
            stall_timeout,
            mail: (0..num * ports as usize)
                .map(|_| Mutex::new(MailSlot { queue: VecDeque::new(), parked: false }))
                .collect(),
            want: (0..num).map(|_| AtomicU64::new(WANT_NONE)).collect(),
            barrier: Mutex::new(BarrierState { generation: 0, arrived: 0, waiters: Vec::new() }),
            barrier_generation: AtomicU64::new(0),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            cursor: ClaimCursor::new(num),
            sleep: Mutex::new(StallClock { last_progress: 0, since: Instant::now() }),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            completed: AtomicUsize::new(0),
            messages: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            live: AtomicU32::new(0),
            peak_live: AtomicU32::new(0),
            progress: AtomicU64::new(0),
        }
    }

    /// The mailbox where `node` receives from its neighbor across `port`.
    pub(crate) fn slot(&self, node: u64, port: u32) -> &Mutex<MailSlot<T>> {
        &self.mail[node as usize * self.ports as usize + port as usize]
    }

    /// Marks a context as spawned for the live/peak accounting.
    pub(crate) fn note_spawned(&self) {
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
    }

    /// Marks a context as finished; returns true when it was the last.
    pub(crate) fn note_completed(&self) -> bool {
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.progress.fetch_add(1, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst) + 1 == self.num
    }

    /// Enqueues `node` on the current worker's ready queue and pokes a
    /// sleeper if one might miss it.
    pub(crate) fn push_ready(&self, node: u32) {
        let w = WORKER.with(Cell::get);
        lock(&self.queues[w]).push_back(node);
        self.notify_sleepers(false);
    }

    /// Wakes a parked node: the caller already cleared its parked flag
    /// (or drained it from the barrier wait list) under the relevant
    /// lock, so exactly one waker enqueues it.
    pub(crate) fn wake(&self, node: u32) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
        self.progress.fetch_add(1, Ordering::SeqCst);
        self.push_ready(node);
    }

    /// Wakes every node on `drained` (barrier release): one queue lock,
    /// one notify.
    pub(crate) fn wake_all(&self, drained: &mut Vec<u32>) {
        self.wakes.fetch_add(drained.len() as u64, Ordering::Relaxed);
        self.progress.fetch_add(drained.len() as u64 + 1, Ordering::SeqCst);
        let w = WORKER.with(Cell::get);
        lock(&self.queues[w]).extend(drained.drain(..));
        self.notify_sleepers(true);
    }

    /// Pokes sleeping workers after new work was enqueued. The sleepers
    /// counter is incremented under the sleep lock *before* a sleeper's
    /// queue re-check, and our queue push precedes this load, so a
    /// sleeper that missed the push is guaranteed visible here (both
    /// operations are SeqCst) — no lost wakeup.
    fn notify_sleepers(&self, all: bool) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(lock(&self.sleep));
            if all {
                self.sleep_cv.notify_all();
            } else {
                self.sleep_cv.notify_one();
            }
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Ends the run (all nodes finished, a stall, or a panic) and
    /// releases every sleeping worker.
    pub(crate) fn finish(&self) {
        self.done.store(true, Ordering::Release);
        drop(lock(&self.sleep));
        self.sleep_cv.notify_all();
    }

    /// Parks `node` according to its want cell — phase two of the
    /// suspend protocol, run only after the node's context is released.
    /// Re-checks the awaited condition under its lock; if it was already
    /// satisfied by a racing sender, the node goes straight back on the
    /// ready queue instead.
    pub(crate) fn park(&self, node: u32) {
        let want = self.want[node as usize].load(Ordering::Relaxed);
        if want == WANT_NONE {
            panic!(
                "node {node} suspended on a foreign future; only NodeCtx recv/barrier may suspend"
            );
        }
        if want & WANT_BARRIER != 0 {
            let generation = want & !WANT_BARRIER;
            let mut b = lock(&self.barrier);
            if b.generation > generation {
                drop(b);
                self.push_ready(node);
            } else {
                b.waiters.push(node);
                self.parks.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            let mut s = lock(self.slot(node as u64, want as u32));
            if s.queue.is_empty() {
                s.parked = true;
                self.parks.fetch_add(1, Ordering::Relaxed);
            } else {
                drop(s);
                self.push_ready(node);
            }
        }
    }

    /// Finds the next node for worker `w` to run: own queue, then a
    /// steal from another worker's queue (front half), then an
    /// unspawned node from the cursor, then sleep. Returns `None` when
    /// the run is over.
    pub(crate) fn next_work(&self, w: usize) -> Option<u32> {
        loop {
            if self.is_done() {
                return None;
            }
            if let Some(x) = lock(&self.queues[w]).pop_front() {
                return Some(x);
            }
            for i in 1..self.workers {
                let victim = (w + i) % self.workers;
                let mut q = lock(&self.queues[victim]);
                if q.is_empty() {
                    continue;
                }
                let take = q.len().div_ceil(2);
                let grabbed: Vec<u32> = q.drain(..take).collect();
                drop(q);
                self.steals[w].fetch_add(grabbed.len() as u64, Ordering::Relaxed);
                let (&first, rest) = grabbed.split_first().expect("took at least one");
                if !rest.is_empty() {
                    lock(&self.queues[w]).extend(rest.iter().copied());
                }
                return Some(first);
            }
            if let Some(i) = self.cursor.claim() {
                return Some(i as u32);
            }
            if !self.sleep(w) {
                return None;
            }
        }
    }

    /// Blocks worker `w` until new work may exist; runs the stall check
    /// on each timeout tick. Returns `false` when the run is over.
    fn sleep(&self, _w: usize) -> bool {
        let mut clock = lock(&self.sleep);
        // Register as a sleeper *before* re-checking the queues: a waker
        // pushes before it reads the sleeper count, so either we see its
        // work here or it sees us and notifies.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let has_work =
            self.queues.iter().any(|q| !lock(q).is_empty()) || !self.cursor.is_exhausted();
        if has_work || self.is_done() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return !self.is_done();
        }
        let tick =
            (self.stall_timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        let (guard, _) =
            self.sleep_cv.wait_timeout(clock, tick).unwrap_or_else(PoisonError::into_inner);
        clock = guard;
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        if self.is_done() {
            return false;
        }
        let current = self.progress.load(Ordering::SeqCst);
        if current != clock.last_progress {
            clock.last_progress = current;
            clock.since = Instant::now();
        } else if clock.since.elapsed() >= self.stall_timeout
            && self.completed.load(Ordering::SeqCst) < self.num
        {
            let report = self.stall_report();
            drop(clock);
            self.finish();
            panic!("{report}");
        }
        true
    }

    /// Formats the stall diagnostic: overall progress plus which nodes
    /// are parked on which dims (first few, then a count).
    fn stall_report(&self) -> String {
        use std::fmt::Write;
        let completed = self.completed.load(Ordering::SeqCst);
        let mut parked = 0usize;
        let mut detail = String::new();
        for (x, cell) in self.want.iter().enumerate() {
            let want = cell.load(Ordering::Relaxed);
            if want == WANT_NONE {
                continue;
            }
            parked += 1;
            if parked <= 12 {
                if parked > 1 {
                    detail.push_str(", ");
                }
                if want & WANT_BARRIER != 0 {
                    let _ = write!(detail, "node {x} on barrier #{}", want & !WANT_BARRIER);
                } else {
                    let _ = write!(detail, "node {x} on dim {want}");
                }
            }
        }
        if parked > 12 {
            let _ = write!(detail, ", … ({} more)", parked - 12);
        }
        format!(
            "SPMD scheduler stalled: no virtual-node progress for {:?} \
             ({completed}/{} node programs completed, {parked} waiting: {detail}) \
             — deadlocked node program?",
            self.stall_timeout, self.num
        )
    }
}

/// One slab entry: the node's suspended program (once spawned) and its
/// result (once finished).
pub(crate) struct VSlot<Fut, R> {
    pub(crate) fut: Option<std::pin::Pin<Box<Fut>>>,
    pub(crate) result: Option<R>,
}

/// The body of one pool worker: claim contexts, poll them until they
/// suspend or finish, park the suspended ones.
pub(crate) fn worker_loop<T, R, Fut, F>(
    w: usize,
    shared: &cubesync::sync::Arc<Shared<T>>,
    slab: &[Mutex<VSlot<Fut, R>>],
    program: &F,
) where
    T: Send,
    R: Send,
    Fut: std::future::Future<Output = R> + Send,
    F: Fn(crate::runtime::NodeCtx<T>) -> Fut + Sync,
{
    use std::task::{Context, Poll, Waker};
    WORKER.with(|c| c.set(w));
    let mut cx = Context::from_waker(Waker::noop());
    while let Some(node) = shared.next_work(w) {
        let mut slot = lock(&slab[node as usize]);
        if slot.fut.is_none() {
            if slot.result.is_some() {
                continue; // already finished (can't normally happen)
            }
            let ctx = crate::runtime::NodeCtx::new(
                cubeaddr::NodeId(node as u64),
                cubesync::sync::Arc::clone(shared),
            );
            slot.fut = Some(Box::pin(program(ctx)));
            shared.note_spawned();
        }
        let fut = slot.fut.as_mut().expect("context spawned above");
        let polled =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match polled {
            Err(payload) => {
                // Release the pool before re-raising so the other
                // workers exit and the scope join can propagate this.
                drop(slot);
                shared.finish();
                std::panic::resume_unwind(payload);
            }
            Ok(Poll::Ready(r)) => {
                slot.fut = None;
                slot.result = Some(r);
                drop(slot);
                shared.want[node as usize].store(WANT_NONE, Ordering::Relaxed);
                if shared.note_completed() {
                    shared.finish();
                }
            }
            Ok(Poll::Pending) => {
                // Phase two of the suspend protocol happens only after
                // the context lock is released (see module docs).
                drop(slot);
                shared.progress.fetch_add(1, Ordering::SeqCst);
                shared.park(node);
            }
        }
    }
}
