//! Collective operations as SPMD node-program building blocks.
//!
//! These are the runtime-level counterparts of the `cubecomm` simulator
//! algorithms: the spanning-binomial-tree broadcast/gather and the
//! dimension-scan all-to-all, written against [`NodeCtx`] so any node
//! program can call them mid-flight (`broadcast(&ctx, root, v).await`).
//! Every collective is synchronous across the cube (all nodes must call
//! it together, like MPI collectives), but each participating virtual
//! node suspends cooperatively — a 64K-node collective runs fine on one
//! worker thread.

use crate::runtime::NodeCtx;
use cubeaddr::NodeId;

/// Broadcast from `root`: every node returns the root's value.
///
/// SBT structure, logical dimensions ascending: after step `j`, the
/// value is present on every node whose relative address uses only the
/// low `j+1` dimensions.
pub async fn broadcast<T: Clone>(ctx: &NodeCtx<Option<T>>, root: NodeId, value: Option<T>) -> T {
    let n = ctx.n();
    let rel = ctx.id().bits() ^ root.bits();
    let mut held: Option<T> = if rel == 0 {
        Some(value.expect("the root must supply the broadcast value"))
    } else {
        None
    };
    for j in 0..n {
        // Nodes with rel using only dims < j hold the value and send it
        // across dim j; their partners (rel bit j set, higher bits clear)
        // receive.
        let low_mask = (1u64 << j) - 1;
        if rel & !low_mask == 0 {
            ctx.send(j, held.clone());
        } else if rel & !(low_mask | (1 << j)) == 0 && rel & (1 << j) != 0 {
            held = ctx.recv(j).await;
        }
    }
    held.expect("broadcast did not reach this node")
}

/// All-to-all personalized exchange: `blocks[d]` is this node's payload
/// for node `d`; returns `result[s]` = the payload node `s` sent here.
///
/// The standard exchange algorithm (§3.2), dimensions descending; each
/// message carries `(origin, dest, payload)` triples.
pub async fn all_to_all<T: Clone + Send + 'static>(
    ctx: &NodeCtx<Vec<(u64, u64, T)>>,
    blocks: Vec<T>,
) -> Vec<T> {
    let n = ctx.n();
    let num = ctx.num_nodes();
    assert_eq!(blocks.len(), num, "one block per destination");
    let me = ctx.id().bits();
    let mut held: Vec<(u64, u64, T)> =
        blocks.into_iter().enumerate().map(|(d, b)| (me, d as u64, b)).collect();
    for j in (0..n).rev() {
        let (keep, send): (Vec<_>, Vec<_>) =
            held.into_iter().partition(|&(_, d, _)| (d >> j) & 1 == (me >> j) & 1);
        held = keep;
        held.extend(ctx.exchange(j, send).await);
    }
    let mut out: Vec<Option<T>> = (0..num).map(|_| None).collect();
    for (s, d, b) in held {
        assert_eq!(d, me, "block for {d} stranded at {me}");
        assert!(out[s as usize].is_none(), "duplicate block from {s}");
        out[s as usize] = Some(b);
    }
    out.into_iter()
        .enumerate()
        .map(|(s, b)| b.unwrap_or_else(|| panic!("missing block from {s}")))
        .collect()
}

/// Gather to `root`: the root returns every node's value in node order;
/// other nodes return `None`. (Reverse SBT flow.)
pub async fn gather<T: Clone>(
    ctx: &NodeCtx<Vec<(u64, T)>>,
    root: NodeId,
    value: T,
) -> Option<Vec<T>> {
    let n = ctx.n();
    let rel = ctx.id().bits() ^ root.bits();
    let mut held: Vec<(u64, T)> = vec![(ctx.id().bits(), value)];
    // Reverse of the broadcast: dimensions descending, the upper half of
    // each relative subcube folds into the lower half.
    for j in (0..n).rev() {
        let low_mask = (1u64 << j) - 1;
        if rel & !(low_mask | (1 << j)) == 0 && rel & (1 << j) != 0 {
            ctx.send(j, std::mem::take(&mut held));
        } else if rel & !low_mask == 0 {
            held.extend(ctx.recv(j).await);
        }
    }
    if rel == 0 {
        let mut all = held;
        all.sort_by_key(|&(s, _)| s);
        Some(all.into_iter().map(|(_, v)| v).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_spmd;

    #[test]
    fn broadcast_reaches_all_from_any_root() {
        for root in [0u64, 5, 7] {
            let (results, _) = run_spmd(3, |ctx| async move {
                let mine = (ctx.id().bits() == root).then(|| format!("hello from {root}"));
                broadcast(&ctx, NodeId(root), mine).await
            });
            assert!(results.iter().all(|r| r == &format!("hello from {root}")));
        }
    }

    #[test]
    fn all_to_all_delivers_everything() {
        let n = 3;
        let (results, _) = run_spmd(n, |ctx| async move {
            let me = ctx.id().bits();
            let blocks: Vec<u64> = (0..ctx.num_nodes() as u64).map(|d| me * 100 + d).collect();
            all_to_all(&ctx, blocks).await
        });
        for (d, got) in results.iter().enumerate() {
            for (s, &v) in got.iter().enumerate() {
                assert_eq!(v, (s * 100 + d) as u64);
            }
        }
    }

    #[test]
    fn gather_collects_in_node_order() {
        for root in [0u64, 6] {
            let (results, _) =
                run_spmd(
                    3,
                    |ctx| async move { gather(&ctx, NodeId(root), ctx.id().bits() * 2).await },
                );
            for (x, r) in results.iter().enumerate() {
                if x as u64 == root {
                    assert_eq!(r.as_ref().unwrap(), &(0..16).step_by(2).collect::<Vec<u64>>());
                } else {
                    assert!(r.is_none());
                }
            }
        }
    }
}
