//! Virtual-node SPMD execution: many cube nodes per worker thread.
//!
//! Node programs are written as `async` blocks against [`NodeCtx`]:
//! `send` is immediate (links are buffered), `recv` *suspends* the node
//! until the message arrives, parking the virtual node and yielding the
//! worker instead of blocking an OS thread. The compiler turns each
//! program into a resumable state machine, so 2^16 suspended nodes cost
//! heap bytes, not stacks — the paper's Connection-Machine scale (n = 16,
//! 64K nodes) runs on a handful of workers. See the `sched` module for the
//! scheduler internals and the determinism argument.
//!
//! The former thread-per-node runtime survives as [`crate::reference`]
//! (equivalence tests and the old-vs-new benchmark run both).

use crate::sched::{self, lock, Shared, VSlot, WANT_BARRIER, WANT_NONE};
use cubeaddr::NodeId;
use cubesync::atomic::Ordering;
use cubesync::sync::{Arc, Mutex, OnceLock};
use cubesync::thread;
use cubetopo::{TopoSpec, Topology};
use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

/// Default for how long the scheduler tolerates a run making no progress
/// before declaring the node programs deadlocked. Algorithms on these
/// cube sizes complete in milliseconds; half a minute of global silence
/// is a bug, and a diagnostic panic beats a hung test suite.
pub(crate) const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

thread_local! {
    /// Worker-count override installed by [`with_workers`].
    static WORKERS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Stall-timeout override installed by [`with_stall_timeout`].
    static STALL_OVERRIDE: Cell<Option<Duration>> = const { Cell::new(None) };
}

/// The worker-pool size for [`run_spmd`]: the [`with_workers`] override
/// if installed, else the `CUBERUN_WORKERS` environment variable, else
/// the ambient `cubesim::par` thread count (`CUBEBENCH_THREADS` /
/// available parallelism) — the pool is sized like the rest of the
/// repo's data-plane fan-out unless explicitly overridden.
///
/// # Panics
/// If `CUBERUN_WORKERS` is set but not a positive integer — a silent
/// one-worker fallback would quietly serialize the run.
pub fn num_workers() -> usize {
    if let Some(w) = WORKERS_OVERRIDE.with(Cell::get) {
        return w;
    }
    match std::env::var("CUBERUN_WORKERS") {
        Ok(v) => parse_worker_count("CUBERUN_WORKERS", &v),
        Err(_) => cubesim::par::num_threads(),
    }
}

/// Strictly parses a worker-pool size from an environment value: any
/// non-integer, `0`, or negative input panics naming the variable and
/// the offending value rather than silently serializing the run.
pub(crate) fn parse_worker_count(var: &str, raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => panic!("{var} must be a positive integer worker count, got {raw:?}"),
    }
}

/// Runs `f` with [`num_workers`] pinned to `workers` on the current
/// thread (restored on exit, even across a panic). Used by the
/// determinism tests to compare 1/2/5-worker runs without mutating the
/// process environment.
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKERS_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(WORKERS_OVERRIDE.with(|o| o.replace(Some(workers.max(1)))));
    f()
}

/// Runs `f` with the scheduler stall timeout pinned to `timeout` on the
/// current thread (restored on exit, even across a panic). Deadlock
/// tests tighten it; loaded CI machines widen it via the environment.
pub fn with_stall_timeout<R>(timeout: Duration, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Duration>);
    impl Drop for Restore {
        fn drop(&mut self) {
            STALL_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(STALL_OVERRIDE.with(|o| o.replace(Some(timeout))));
    f()
}

/// The scheduler stall timeout: the [`with_stall_timeout`] override if
/// installed, else `CUBERUN_STALL_TIMEOUT_MS`, else the historical
/// `CUBERUN_RECV_TIMEOUT_MS` (this detector replaced the per-receive
/// watchdog, which false-positived under heavy oversubscription — a
/// virtual node can legitimately sit parked far longer than any one
/// receive used to take). Unset falls back to
/// [`DEFAULT_STALL_TIMEOUT`]; a set but malformed value panics.
fn stall_timeout() -> Duration {
    if let Some(t) = STALL_OVERRIDE.with(Cell::get) {
        return t;
    }
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        let raw = std::env::var("CUBERUN_STALL_TIMEOUT_MS")
            .map(|v| ("CUBERUN_STALL_TIMEOUT_MS", v))
            .or_else(|_| {
                std::env::var("CUBERUN_RECV_TIMEOUT_MS").map(|v| ("CUBERUN_RECV_TIMEOUT_MS", v))
            });
        match raw {
            Ok((var, value)) => parse_stall_timeout(var, &value),
            Err(_) => DEFAULT_STALL_TIMEOUT,
        }
    })
}

/// Parses a stall-timeout value in milliseconds, clamping to
/// [1 ms, 1 h] so a zero can't turn every run into an instant panic and
/// a stray large number can't hang CI for days.
///
/// # Panics
/// On anything that is not an unsigned integer — a malformed timeout
/// silently widening to 30 s would mask exactly the hangs the variable
/// exists to catch.
pub(crate) fn parse_stall_timeout(var: &str, raw: &str) -> Duration {
    match raw.trim().parse::<u64>() {
        Ok(ms) => Duration::from_millis(ms.clamp(1, 3_600_000)),
        Err(_) => panic!("{var} must be an integer number of milliseconds, got {raw:?}"),
    }
}

/// Aggregate statistics of one SPMD run.
///
/// `messages` and `barriers` are deterministic (scheduling-independent);
/// the scheduler counters (`peak_live`, `parks`, `wakes`, `steals`)
/// depend on timing and worker count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total messages sent over all links.
    pub messages: u64,
    /// Total global barrier episodes.
    pub barriers: u64,
    /// Size of the worker pool that executed the run.
    pub workers: usize,
    /// High-water mark of simultaneously live (spawned, unfinished)
    /// virtual-node contexts — the memory footprint the cooperative
    /// scheduler actually paid for.
    pub peak_live: u32,
    /// Times a virtual node parked (suspended on an empty mailbox or an
    /// incomplete barrier).
    pub parks: u64,
    /// Times a parked node was woken by a message or barrier release.
    pub wakes: u64,
    /// Ready-queue entries each worker stole from its siblings
    /// (`steals[w]` = contexts worker `w` claimed from other queues).
    pub steals: Vec<u64>,
}

/// The per-node handle a node program runs against: its identity plus
/// its communication ports. Obtained from [`run_spmd`] /
/// [`run_spmd_on`]; `recv`, `exchange`, `barrier` and `all_reduce` are
/// `async` and suspend the virtual node, never an OS thread.
///
/// On a hypercube a port *is* a cube dimension and every port is wired;
/// on other topologies (e.g. the Swapped Dragonfly) ports are the
/// [`cubetopo::Topology`] port numbering and some may be unwired —
/// sending or receiving on an unwired port panics immediately rather
/// than deadlocking.
pub struct NodeCtx<T> {
    id: NodeId,
    shared: Arc<Shared<T>>,
}

impl<T> NodeCtx<T> {
    pub(crate) fn new(id: NodeId, shared: Arc<Shared<T>>) -> Self {
        NodeCtx { id, shared }
    }

    /// This node's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The cube dimension `n` — an alias of [`NodeCtx::ports`], kept
    /// for the hypercube node programs the paper is written in.
    pub fn n(&self) -> u32 {
        self.shared.ports
    }

    /// Number of communication ports per node (`n` on the cube).
    pub fn ports(&self) -> u32 {
        self.shared.ports
    }

    /// The topology this run executes on.
    pub fn topology(&self) -> TopoSpec {
        self.shared.topo
    }

    /// Number of nodes in the ensemble (`2^n` on the cube).
    pub fn num_nodes(&self) -> usize {
        self.shared.num
    }

    /// The neighbor across `port`, panicking with a link diagnostic if
    /// the port is out of range or unwired on this topology.
    #[track_caller]
    fn wired_neighbor(&self, port: u32, what: &str) -> u64 {
        let sh = &*self.shared;
        match (port < sh.ports).then(|| sh.topo.neighbor(self.id.bits(), port)).flatten() {
            Some(peer) => peer,
            None => panic!(
                "{what} on port {port} of node {}: no such link on the {}",
                self.id,
                sh.topo.label()
            ),
        }
    }

    /// Sends `msg` to the neighbor across port `dim` (immediate; links
    /// are buffered). If the neighbor is parked on this link, it is
    /// woken onto the sending worker's ready queue.
    #[track_caller]
    pub fn send(&self, dim: u32, msg: T) {
        let peer = self.wired_neighbor(dim, "send");
        let sh = &*self.shared;
        let back =
            sh.topo.reverse_port(self.id.bits(), dim).expect("a wired link has a reverse port");
        sh.messages.fetch_add(1, Ordering::Relaxed);
        let woke = {
            let mut slot = lock(sh.slot(peer, back));
            slot.queue.push_back(msg);
            std::mem::take(&mut slot.parked)
        };
        if woke {
            sh.wake(peer as u32);
        }
    }

    /// Receives the next message from the neighbor across port `dim`,
    /// suspending this virtual node until it arrives.
    ///
    /// # Panics
    /// The run panics if no virtual node makes progress for the stall
    /// timeout (30 s by default; `CUBERUN_STALL_TIMEOUT_MS` /
    /// [`with_stall_timeout`]) — a deadlocked node program — or if any
    /// node program panicked.
    #[track_caller]
    pub fn recv(&self, dim: u32) -> Recv<'_, T> {
        let _ = self.wired_neighbor(dim, "recv");
        Recv { ctx: self, dim }
    }

    /// Bidirectional exchange across the link at port `dim`: sends
    /// `msg` and returns the neighbor's message (full-duplex links —
    /// one exchange costs one send on the paper's machines). The
    /// neighbor must exchange on its own port of the same link.
    pub async fn exchange(&self, dim: u32, msg: T) -> T {
        self.send(dim, msg);
        self.recv(dim).await
    }

    /// Global barrier over all nodes.
    pub fn barrier(&self) -> BarrierWait<'_, T> {
        BarrierWait { ctx: self, joined: None }
    }
}

impl<T: Clone> NodeCtx<T> {
    /// All-reduce by dimension scan: every node contributes `value`;
    /// after `n` exchange steps every node holds the fold of all `2^n`
    /// contributions (`combine` must be associative and commutative).
    ///
    /// This is the classic hypercube reduction the paper's machines used
    /// for global sums and synchronization predicates.
    ///
    /// Per dimension the upper node of each link pair moves its partial
    /// down (by value), the lower node folds the pair once and sends one
    /// copy of the result back, and the upper node swaps that in as its
    /// new accumulator. One clone and one `combine` per link per step —
    /// the minimum for owned channels — instead of a clone and a fold on
    /// both ends.
    ///
    /// # Panics
    /// If the run is not on a hypercube — the scan pairs nodes by
    /// address bits, which only the cube's wiring satisfies.
    pub async fn all_reduce(&self, value: T, mut combine: impl FnMut(T, T) -> T) -> T {
        assert!(
            self.shared.topo.is_hypercube(),
            "all_reduce is a hypercube dimension scan; the {} has no such pairing",
            self.shared.topo.label()
        );
        let mut acc = value;
        for d in 0..self.n() {
            if (self.id.0 >> d) & 1 == 0 {
                let theirs = self.recv(d).await;
                acc = combine(acc, theirs);
                self.send(d, acc.clone());
            } else {
                self.send(d, acc);
                acc = self.recv(d).await;
            }
        }
        acc
    }
}

/// Future of [`NodeCtx::recv`]: ready as soon as the mailbox holds a
/// message, otherwise records the awaited dimension in the node's want
/// cell for the scheduler to park on.
#[must_use = "recv does nothing until awaited"]
pub struct Recv<'a, T> {
    ctx: &'a NodeCtx<T>,
    dim: u32,
}

impl<T> Future for Recv<'_, T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let sh = &*self.ctx.shared;
        let me = self.ctx.id.bits();
        let popped = lock(sh.slot(me, self.dim)).queue.pop_front();
        match popped {
            Some(msg) => {
                sh.want[me as usize].store(WANT_NONE, Ordering::Relaxed);
                Poll::Ready(msg)
            }
            None => {
                // Phase one of the suspend protocol: only record what we
                // wait for; the worker publishes the park after it has
                // released this context (see sched module docs).
                sh.want[me as usize].store(self.dim as u64, Ordering::Relaxed);
                Poll::Pending
            }
        }
    }
}

/// Future of [`NodeCtx::barrier`]: arrives once, then waits for the
/// barrier generation to advance. The last arriver releases everyone.
#[must_use = "barrier does nothing until awaited"]
pub struct BarrierWait<'a, T> {
    ctx: &'a NodeCtx<T>,
    /// The generation this node arrived in, once registered.
    joined: Option<u64>,
}

impl<T> Future for BarrierWait<'_, T> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let sh = &*this.ctx.shared;
        let me = this.ctx.id.bits() as usize;
        if let Some(generation) = this.joined {
            return if sh.barrier_generation.load(Ordering::Acquire) > generation {
                sh.want[me].store(WANT_NONE, Ordering::Relaxed);
                Poll::Ready(())
            } else {
                sh.want[me].store(WANT_BARRIER | generation, Ordering::Relaxed);
                Poll::Pending
            };
        }
        let mut b = lock(&sh.barrier);
        if b.arrived + 1 == sh.num {
            // Last arriver: advance the generation and release everyone.
            b.arrived = 0;
            b.generation += 1;
            sh.barrier_generation.store(b.generation, Ordering::Release);
            sh.barriers.fetch_add(1, Ordering::Relaxed);
            let mut waiters = std::mem::take(&mut b.waiters);
            drop(b);
            sh.wake_all(&mut waiters);
            sh.want[me].store(WANT_NONE, Ordering::Relaxed);
            Poll::Ready(())
        } else {
            b.arrived += 1;
            let generation = b.generation;
            drop(b);
            this.joined = Some(generation);
            sh.want[me].store(WANT_BARRIER | generation, Ordering::Relaxed);
            Poll::Pending
        }
    }
}

/// Runs `program` on every node of an `n`-cube and returns the per-node
/// results in node order plus run statistics.
///
/// Every node is a *virtual* node: a resumable `async` state machine
/// multiplexed, with all its siblings, onto a fixed worker pool
/// ([`num_workers`] threads). `n = 16` — 65 536 virtual nodes, the
/// paper's Connection Machine scale — runs on any pool size, and the
/// results are byte-identical at any worker count.
///
/// The program receives an owned [`NodeCtx`] for its node and returns a
/// future (write it as `|ctx| async move { … }`). Message type `T` and
/// result type `R` are arbitrary `Send` types.
pub fn run_spmd<T, R, F, Fut>(n: u32, program: F) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    F: Fn(NodeCtx<T>) -> Fut + Sync,
    Fut: Future<Output = R> + Send,
{
    cubeaddr::check_dims(n);
    assert!(
        n <= 16,
        "refusing a mailbox slab for 2^{n} virtual nodes; use the simulator for giant cubes"
    );
    run_spmd_on(TopoSpec::hypercube(n), program)
}

/// Runs `program` on every node of an arbitrary [`TopoSpec`] topology —
/// the graph-generic twin of [`run_spmd`], which is exactly
/// `run_spmd_on(TopoSpec::hypercube(n), …)`.
///
/// Port numbering follows the topology's [`cubetopo::Topology`]
/// contract: `ctx.send(p, …)` crosses the link at port `p`, and the
/// message arrives at the neighbor's *reverse* port, so `ctx.recv(q)`
/// receives what the neighbor across port `q` sent. Sends and receives
/// on unwired ports (the Swapped Dragonfly's fixed-point gateway ports)
/// panic with a link diagnostic instead of deadlocking. Everything else
/// — the cooperative scheduler, determinism at any worker count, the
/// stall detector — is shared with the cube entry point.
pub fn run_spmd_on<T, R, F, Fut>(topo: TopoSpec, program: F) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    F: Fn(NodeCtx<T>) -> Fut + Sync,
    Fut: Future<Output = R> + Send,
{
    let num = topo.num_nodes();
    assert!(
        num <= 1 << 16,
        "refusing a mailbox slab for {num} virtual nodes; use the simulator for giant ensembles"
    );
    let workers = num_workers().clamp(1, num);
    let shared = Arc::new(Shared::<T>::new(topo, workers, stall_timeout()));
    let slab: Vec<Mutex<VSlot<Fut, R>>> =
        (0..num).map(|_| Mutex::new(VSlot { fut: None, result: None })).collect();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let shared = &shared;
                let slab = &slab;
                let program = &program;
                scope.spawn(move || sched::worker_loop(w, shared, slab, program))
            })
            .collect();
        // Join explicitly and re-raise the *original* payload (a node
        // program's panic or the stall report), not the scope's generic
        // "a scoped thread panicked". A panicking worker marks the run
        // done first, so the others drain out and this join completes.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });

    let results: Vec<R> = slab
        .into_iter()
        .enumerate()
        .map(|(x, slot)| {
            lock(&slot).result.take().unwrap_or_else(|| panic!("node {x} produced no result"))
        })
        .collect();

    let stats = RunStats {
        messages: shared.messages.load(Ordering::Relaxed),
        barriers: shared.barriers.load(Ordering::Relaxed),
        workers,
        peak_live: shared.peak_live.load(Ordering::Relaxed),
        parks: shared.parks.load(Ordering::Relaxed),
        wakes: shared.wakes.load(Ordering::Relaxed),
        steals: shared.steals.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesync::atomic::AtomicU64;

    /// Extracts the message from a caught panic payload (both literal
    /// and formatted panics appear across these tests).
    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("non-string panic payload")
    }

    #[test]
    fn exchange_swaps_neighbors() {
        let (results, stats) =
            run_spmd(3, |ctx| async move { ctx.exchange(2, ctx.id().bits()).await });
        let expect: Vec<u64> = (0..8).map(|x| x ^ 0b100).collect();
        assert_eq!(results, expect);
        assert_eq!(stats.messages, 8);
        assert!(stats.peak_live >= 2 && stats.peak_live <= 8, "{stats:?}");
    }

    #[test]
    fn single_node_cube_runs() {
        let (results, _) = run_spmd::<u64, _, _, _>(0, |ctx| async move { ctx.id().bits() + 41 });
        assert_eq!(results, vec![41]);
    }

    #[test]
    fn dimension_scan_accumulates_all_ids() {
        // Classic all-reduce by dimension scan: after exchanging partial
        // sums across every dimension, every node holds Σ ids.
        let (results, _) = run_spmd(4, |ctx| async move {
            let mut acc = ctx.id().bits();
            for d in 0..ctx.n() {
                acc += ctx.exchange(d, acc).await;
            }
            acc
        });
        let total: u64 = (0..16).sum();
        assert!(results.iter().all(|&r| r == total), "{results:?}");
    }

    #[test]
    fn all_reduce_sum_and_max() {
        let (sums, _) =
            run_spmd(4, |ctx| async move { ctx.all_reduce(ctx.id().bits(), |a, b| a + b).await });
        let total: u64 = (0..16).sum();
        assert!(sums.iter().all(|&s| s == total));
        let (maxes, _) =
            run_spmd(3, |ctx| async move { ctx.all_reduce(ctx.id().bits(), u64::max).await });
        assert!(maxes.iter().all(|&m| m == 7));
    }

    #[test]
    fn all_reduce_clones_once_per_link_step() {
        static CLONES: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Tracked(u64);
        impl Clone for Tracked {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::Relaxed);
                Tracked(self.0)
            }
        }
        let n = 3u32;
        let (vals, _) = run_spmd(n, |ctx: NodeCtx<Tracked>| async move {
            ctx.all_reduce(Tracked(ctx.id().bits()), |a, b| Tracked(a.0 + b.0)).await.0
        });
        let total: u64 = (0..8).sum();
        assert!(vals.iter().all(|&v| v == total), "{vals:?}");
        // One clone per link per step (the lower node copying the folded
        // pair back), not one per node: 2^(n-1) links × n steps.
        assert_eq!(CLONES.load(Ordering::Relaxed), (1u64 << (n - 1)) * n as u64);
    }

    #[test]
    fn barrier_counts_episodes() {
        let (_, stats) = run_spmd::<u64, _, _, _>(2, |ctx| async move {
            ctx.barrier().await;
            ctx.barrier().await;
        });
        assert_eq!(stats.barriers, 2);
    }

    #[test]
    fn store_and_forward_chain() {
        // Node 0 sends a token around dims 0,1,2; final holder is node 7.
        let (results, _) = run_spmd(3, |ctx| async move {
            let x = ctx.id().bits();
            match x {
                0 => {
                    ctx.send(0, vec![99u64]);
                    None
                }
                1 => {
                    let t = ctx.recv(0).await;
                    ctx.send(1, t);
                    None
                }
                3 => {
                    let t = ctx.recv(1).await;
                    ctx.send(2, t);
                    None
                }
                7 => Some(ctx.recv(2).await),
                _ => None,
            }
        });
        assert_eq!(results[7], Some(vec![99]));
        assert!(results[..7].iter().all(Option::is_none));
    }

    #[test]
    fn messages_preserve_order_per_link() {
        let (results, _) = run_spmd(1, |ctx| async move {
            if ctx.id().bits() == 0 {
                for i in 0..100u64 {
                    ctx.send(0, i);
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..100 {
                    got.push(ctx.recv(0).await);
                }
                got
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn oversubscribed_pool_runs_many_nodes_per_worker() {
        // 1024 virtual nodes on 1, 2 and 5 workers: identical results.
        let mut seen: Option<Vec<u64>> = None;
        for workers in [1usize, 2, 5] {
            let (results, stats) = with_workers(workers, || {
                run_spmd(10, |ctx| async move {
                    ctx.all_reduce(ctx.id().bits(), |a, b| a.wrapping_add(b)).await
                })
            });
            assert_eq!(stats.workers, workers);
            assert!(stats.peak_live >= 2, "pool should oversubscribe: {stats:?}");
            match &seen {
                None => seen = Some(results),
                Some(first) => assert_eq!(&results, first, "workers={workers}"),
            }
        }
    }

    #[test]
    fn giant_cube_rejected() {
        let caught = std::panic::catch_unwind(|| {
            let _ = run_spmd::<u64, _, _, _>(17, |_| async move {});
        });
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("refusing a mailbox slab"), "{msg}");
    }

    #[test]
    fn stall_detector_reports_parked_dims() {
        // Node 0 receives on dim 0 but node 1 never sends: the run makes
        // no progress once everyone else finished, and the detector names
        // the parked node and dimension.
        let caught = std::panic::catch_unwind(|| {
            with_stall_timeout(Duration::from_millis(50), || {
                run_spmd::<u64, _, _, _>(2, |ctx| async move {
                    if ctx.id().bits() == 0 {
                        ctx.recv(0).await;
                    }
                    0u64
                })
            })
        });
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("SPMD scheduler stalled"), "{msg}");
        assert!(msg.contains("node 0 on dim 0"), "{msg}");
        assert!(msg.contains("3/4 node programs completed"), "{msg}");
    }

    #[test]
    fn node_program_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_spmd::<u64, _, _, _>(3, |ctx| async move {
                assert!(ctx.id().bits() != 5, "boom on node 5");
                ctx.id().bits()
            })
        });
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("boom on node 5"), "{msg}");
    }

    #[test]
    fn dragonfly_neighbor_sweep_delivers_on_reverse_ports() {
        // Every Dragonfly node sends its id over every wired port; a
        // recv on port p must yield exactly neighbor(me, p)'s id — the
        // slab indexing and reverse-port resolution in one sweep.
        use cubetopo::SwappedDragonfly;
        let d = SwappedDragonfly::new(2, 3);
        let (results, stats) = run_spmd_on(TopoSpec::dragonfly(2, 3), |ctx| async move {
            let me = ctx.id().bits();
            let wired: Vec<u32> =
                (0..ctx.ports()).filter(|&p| ctx.topology().neighbor(me, p).is_some()).collect();
            for &p in &wired {
                ctx.send(p, me);
            }
            let mut got = Vec::new();
            for &p in &wired {
                got.push(ctx.recv(p).await);
            }
            got
        });
        let mut links = 0u64;
        for x in 0..d.num_nodes() as u64 {
            let expect: Vec<u64> = (0..d.ports()).filter_map(|p| d.neighbor(x, p)).collect();
            links += expect.len() as u64;
            assert_eq!(results[x as usize], expect, "node {x}");
        }
        assert_eq!(stats.messages, links, "one message per wired directed link");
    }

    #[test]
    fn dragonfly_gateway_relay_crosses_groups() {
        // Group 0's router 1 is the gateway toward group 2 on a
        // D3(2,3): node (0,0) hands a token to it over the intra link,
        // the gateway forwards it over its global port, and the arrival
        // router reports what landed — a minimal local-global hop chain
        // through ports the cube runtime never had.
        use cubetopo::SwappedDragonfly;
        let d = SwappedDragonfly::new(2, 3);
        let src = d.node_at(0, 0);
        let gw_router = d.gateway_router(2);
        let gw = d.node_at(0, gw_router);
        let to_gw = d.intra_port(0, gw_router);
        let global = d.global_port_to(gw_router, 2).expect("gateway port is wired");
        // Crossing from group 0, the swap lands on router 0/K = 0.
        let arrival = d.node_at(2, 0);
        let back = d.reverse_port(gw, global).expect("wired link");
        let (results, _) = run_spmd_on(TopoSpec::dragonfly(2, 3), move |ctx| async move {
            let me = ctx.id().bits();
            if me == src {
                ctx.send(to_gw, 99u64);
            } else if me == gw {
                let t = ctx.recv(d.reverse_port(src, to_gw).unwrap()).await;
                ctx.send(global, t);
            } else if me == arrival {
                return Some(ctx.recv(back).await);
            }
            None
        });
        for (x, r) in results.iter().enumerate() {
            assert_eq!(*r, (x as u64 == arrival).then_some(99), "node {x}");
        }
    }

    #[test]
    fn dragonfly_runs_identically_at_any_worker_count() {
        let mut seen: Option<Vec<u64>> = None;
        for workers in [1usize, 2, 5] {
            let (results, stats) = with_workers(workers, || {
                run_spmd_on(TopoSpec::dragonfly(2, 4), |ctx| async move {
                    // Each router rotates its partial around the intra
                    // clique, folding whatever arrives each step.
                    let d = cubetopo::SwappedDragonfly::new(2, 4);
                    let (_, r) = d.coords(ctx.id().bits());
                    let mut acc = ctx.id().bits();
                    for step in 1..4u64 {
                        let to = (r + step) % 4;
                        let from = (r + 4 - step) % 4;
                        ctx.send(d.intra_port(r, to), acc);
                        acc = acc.wrapping_add(ctx.recv(d.intra_port(r, from)).await);
                    }
                    ctx.barrier().await;
                    acc
                })
            });
            assert_eq!(stats.workers, workers);
            assert_eq!(stats.barriers, 1);
            match &seen {
                None => seen = Some(results),
                Some(first) => assert_eq!(&results, first, "workers={workers}"),
            }
        }
    }

    #[test]
    fn unwired_port_panics_with_a_link_diagnostic() {
        // Port 1 of node (0, 0) is group 0's swap fixed point on a
        // D3(2,2): unwired, so a send must fail loudly, not deadlock.
        let caught = std::panic::catch_unwind(|| {
            run_spmd_on(TopoSpec::dragonfly(2, 2), |ctx| async move {
                if ctx.id().bits() == 0 {
                    ctx.send(1, 7u64);
                }
            })
        });
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("send on port 1 of node 0"), "{msg}");
        assert!(msg.contains("no such link on the D3(2,2)"), "{msg}");
    }

    #[test]
    fn all_reduce_rejects_non_hypercubes() {
        let caught = std::panic::catch_unwind(|| {
            run_spmd_on(TopoSpec::dragonfly(2, 2), |ctx| async move {
                ctx.all_reduce(ctx.id().bits(), |a, b| a + b).await
            })
        });
        let msg = panic_message(caught.unwrap_err());
        assert!(msg.contains("hypercube dimension scan"), "{msg}");
    }

    const STALL_VAR: &str = "CUBERUN_STALL_TIMEOUT_MS";

    #[test]
    fn worker_count_parses_positive_integers() {
        assert_eq!(parse_worker_count("CUBERUN_WORKERS", "4"), 4);
        assert_eq!(parse_worker_count("CUBERUN_WORKERS", " 16 "), 16);
    }

    #[test]
    #[should_panic(
        expected = "CUBERUN_WORKERS must be a positive integer worker count, got \"many\""
    )]
    fn worker_count_rejects_garbage() {
        parse_worker_count("CUBERUN_WORKERS", "many");
    }

    #[test]
    #[should_panic(expected = "CUBERUN_WORKERS must be a positive integer worker count, got \"0\"")]
    fn worker_count_rejects_zero() {
        parse_worker_count("CUBERUN_WORKERS", "0");
    }

    #[test]
    #[should_panic(expected = "got \"-2\"")]
    fn worker_count_rejects_negative() {
        parse_worker_count("CUBERUN_WORKERS", "-2");
    }

    #[test]
    fn stall_timeout_parses_and_clamps() {
        // Plain values parse as milliseconds (whitespace tolerated).
        assert_eq!(parse_stall_timeout(STALL_VAR, "250"), Duration::from_millis(250));
        assert_eq!(parse_stall_timeout(STALL_VAR, " 1500 "), Duration::from_millis(1500));
        // Zero clamps up to 1 ms, absurd values down to an hour.
        assert_eq!(parse_stall_timeout(STALL_VAR, "0"), Duration::from_millis(1));
        assert_eq!(parse_stall_timeout(STALL_VAR, "999999999999"), Duration::from_secs(3600));
    }

    #[test]
    #[should_panic(
        expected = "CUBERUN_STALL_TIMEOUT_MS must be an integer number of milliseconds, got \"fast\""
    )]
    fn stall_timeout_rejects_garbage() {
        parse_stall_timeout(STALL_VAR, "fast");
    }

    #[test]
    #[should_panic(
        expected = "CUBERUN_STALL_TIMEOUT_MS must be an integer number of milliseconds, got \"-5\""
    )]
    fn stall_timeout_rejects_negative() {
        parse_stall_timeout(STALL_VAR, "-5");
    }

    #[test]
    #[should_panic(expected = "must be an integer number of milliseconds, got \"\"")]
    fn stall_timeout_rejects_empty() {
        parse_stall_timeout(STALL_VAR, "");
    }
}
