//! Thread-per-node execution with channel-per-link message passing.

use crossbeam::channel::{unbounded, Receiver, Sender};
use cubeaddr::NodeId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

/// Default for how long a blocking receive waits before declaring the
/// node program deadlocked. Algorithms on these cube sizes complete in
/// milliseconds; half a minute of silence is a bug, and a diagnostic
/// panic beats a hung test suite.
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// The receive timeout, read once per process from the
/// `CUBERUN_RECV_TIMEOUT_MS` environment variable: loaded CI machines
/// widen it, deadlock stress tests tighten it. Unset or unparsable
/// values fall back to [`DEFAULT_RECV_TIMEOUT`].
fn recv_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        parse_recv_timeout(std::env::var("CUBERUN_RECV_TIMEOUT_MS").ok().as_deref())
    })
}

/// Parses a `CUBERUN_RECV_TIMEOUT_MS` value, clamping to [1 ms, 1 h] so a
/// zero can't turn every receive into an instant panic and a stray large
/// number can't hang CI for days.
fn parse_recv_timeout(raw: Option<&str>) -> Duration {
    match raw.and_then(|s| s.trim().parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms.clamp(1, 3_600_000)),
        None => DEFAULT_RECV_TIMEOUT,
    }
}

/// Aggregate statistics of one SPMD run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total messages sent over all links.
    pub messages: u64,
    /// Total global barrier episodes (as counted by node 0).
    pub barriers: u64,
}

/// The per-node handle a node program runs against: its identity plus its
/// `n` communication ports.
pub struct NodeCtx<T> {
    id: NodeId,
    n: u32,
    /// `tx[d]` sends to `id.neighbor(d)`.
    tx: Vec<Sender<T>>,
    /// `rx[d]` receives what `id.neighbor(d)` sent across dimension `d`.
    rx: Vec<Receiver<T>>,
    barrier: Arc<Barrier>,
    messages: Arc<AtomicU64>,
    barriers: Arc<AtomicU64>,
}

impl<T> NodeCtx<T> {
    /// This node's cube address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The cube dimension `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of nodes `2^n`.
    pub fn num_nodes(&self) -> usize {
        1 << self.n
    }

    /// Sends `msg` to the neighbor across dimension `dim` (non-blocking;
    /// links are buffered).
    #[track_caller]
    pub fn send(&self, dim: u32, msg: T) {
        assert!(dim < self.n, "dimension {dim} out of range on node {}", self.id);
        self.messages.fetch_add(1, Ordering::Relaxed);
        // Receivers outlive the scoped threads, so failure means a peer
        // panicked; propagate.
        self.tx[dim as usize].send(msg).expect("peer node terminated");
    }

    /// Receives the next message from the neighbor across dimension
    /// `dim`, blocking until it arrives.
    ///
    /// # Panics
    /// After the receive timeout elapses in silence (30 s by default,
    /// overridable via `CUBERUN_RECV_TIMEOUT_MS`; a deadlocked node
    /// program), or if the peer panicked.
    #[track_caller]
    pub fn recv(&self, dim: u32) -> T {
        assert!(dim < self.n, "dimension {dim} out of range on node {}", self.id);
        self.rx[dim as usize].recv_timeout(recv_timeout()).unwrap_or_else(|e| {
            panic!("node {} recv on dim {dim}: {e} (deadlocked node program?)", self.id)
        })
    }

    /// Bidirectional exchange across `dim`: sends `msg` and returns the
    /// neighbor's message (full-duplex links — one exchange costs one
    /// send on the paper's machines).
    pub fn exchange(&self, dim: u32, msg: T) -> T {
        self.send(dim, msg);
        self.recv(dim)
    }

    /// Global barrier over all nodes.
    pub fn barrier(&self) {
        if self.barrier.wait().is_leader() {
            self.barriers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Clone> NodeCtx<T> {
    /// All-reduce by dimension scan: every node contributes `value`; after
    /// `n` exchange steps every node holds the fold of all `2^n`
    /// contributions (`combine` must be associative and commutative).
    ///
    /// This is the classic hypercube reduction the paper's machines used
    /// for global sums and synchronization predicates.
    ///
    /// Per dimension the upper node of each link pair moves its partial
    /// down (by value), the lower node folds the pair once and sends one
    /// copy of the result back, and the upper node swaps that in as its
    /// new accumulator. One clone and one `combine` per link per step —
    /// the minimum for owned channels — instead of a clone and a fold on
    /// both ends.
    pub fn all_reduce(&self, value: T, mut combine: impl FnMut(T, T) -> T) -> T {
        let mut acc = value;
        for d in 0..self.n {
            if (self.id.0 >> d) & 1 == 0 {
                let theirs = self.recv(d);
                acc = combine(acc, theirs);
                self.send(d, acc.clone());
            } else {
                self.send(d, acc);
                acc = self.recv(d);
            }
        }
        acc
    }
}

/// Runs `program` on every node of an `n`-cube concurrently (one OS
/// thread per node, one channel pair per link) and returns the per-node
/// results in node order plus run statistics.
///
/// The program receives a [`NodeCtx`] for its node. Message type `T` and
/// result type `R` are arbitrary `Send` types.
pub fn run_spmd<T, R, F>(n: u32, program: F) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    F: Fn(&NodeCtx<T>) -> R + Sync,
{
    cubeaddr::check_dims(n);
    let num = 1usize << n;
    assert!(n <= 10, "refusing to spawn {num} threads; use the simulator for giant cubes");

    // links[x][d] = channel whose sender is held by x's neighbor across d
    // and whose receiver is held by x.
    let mut senders: Vec<Vec<Option<Sender<T>>>> =
        (0..num).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<T>>>> =
        (0..num).map(|_| (0..n).map(|_| None).collect()).collect();
    // Indexed loop: each iteration writes both `senders[x]` and
    // `receivers[peer]` for a derived peer index.
    #[allow(clippy::needless_range_loop)]
    for x in 0..num {
        for d in 0..n as usize {
            let peer = NodeId(x as u64).neighbor(d as u32).index();
            let (tx, rx) = unbounded();
            // x sends to peer on dim d; peer receives on dim d.
            senders[x][d] = Some(tx);
            receivers[peer][d] = Some(rx);
        }
    }

    let barrier = Arc::new(Barrier::new(num));
    let messages = Arc::new(AtomicU64::new(0));
    let barriers = Arc::new(AtomicU64::new(0));

    let mut ctxs: Vec<NodeCtx<T>> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(x, (tx, rx))| NodeCtx {
            id: NodeId(x as u64),
            n,
            tx: tx.into_iter().map(Option::unwrap).collect(),
            rx: rx.into_iter().map(Option::unwrap).collect(),
            barrier: Arc::clone(&barrier),
            messages: Arc::clone(&messages),
            barriers: Arc::clone(&barriers),
        })
        .collect();

    let program = &program;
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            ctxs.drain(..).map(|ctx| scope.spawn(move || program(&ctx))).collect();
        handles.into_iter().map(|h| h.join().expect("node program panicked")).collect()
    });

    (
        results,
        RunStats {
            messages: messages.load(Ordering::Relaxed),
            barriers: barriers.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_swaps_neighbors() {
        let (results, stats) = run_spmd(3, |ctx| ctx.exchange(2, ctx.id().bits()));
        let expect: Vec<u64> = (0..8).map(|x| x ^ 0b100).collect();
        assert_eq!(results, expect);
        assert_eq!(stats.messages, 8);
    }

    #[test]
    fn single_node_cube_runs() {
        let (results, _) = run_spmd::<u64, _, _>(0, |ctx| ctx.id().bits() + 41);
        assert_eq!(results, vec![41]);
    }

    #[test]
    fn dimension_scan_accumulates_all_ids() {
        // Classic all-reduce by dimension scan: after exchanging partial
        // sums across every dimension, every node holds Σ ids.
        let (results, _) = run_spmd(4, |ctx| {
            let mut acc = ctx.id().bits();
            for d in 0..ctx.n() {
                acc += ctx.exchange(d, acc);
            }
            acc
        });
        let total: u64 = (0..16).sum();
        assert!(results.iter().all(|&r| r == total), "{results:?}");
    }

    #[test]
    fn all_reduce_sum_and_max() {
        let (sums, _) = run_spmd(4, |ctx| ctx.all_reduce(ctx.id().bits(), |a, b| a + b));
        let total: u64 = (0..16).sum();
        assert!(sums.iter().all(|&s| s == total));
        let (maxes, _) = run_spmd(3, |ctx| ctx.all_reduce(ctx.id().bits(), u64::max));
        assert!(maxes.iter().all(|&m| m == 7));
    }

    #[test]
    fn all_reduce_clones_once_per_link_step() {
        static CLONES: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Tracked(u64);
        impl Clone for Tracked {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::Relaxed);
                Tracked(self.0)
            }
        }
        let n = 3u32;
        let (vals, _) = run_spmd(n, |ctx: &NodeCtx<Tracked>| {
            ctx.all_reduce(Tracked(ctx.id().bits()), |a, b| Tracked(a.0 + b.0)).0
        });
        let total: u64 = (0..8).sum();
        assert!(vals.iter().all(|&v| v == total), "{vals:?}");
        // One clone per link per step (the lower node copying the folded
        // pair back), not one per node: 2^(n-1) links × n steps.
        assert_eq!(CLONES.load(Ordering::Relaxed), (1u64 << (n - 1)) * n as u64);
    }

    #[test]
    fn barrier_counts_episodes() {
        let (_, stats) = run_spmd::<u64, _, _>(2, |ctx| {
            ctx.barrier();
            ctx.barrier();
        });
        assert_eq!(stats.barriers, 2);
    }

    #[test]
    fn store_and_forward_chain() {
        // Node 0 sends a token around dims 0,1,2; final holder is node 7.
        let (results, _) = run_spmd(3, |ctx| {
            let x = ctx.id().bits();
            match x {
                0 => {
                    ctx.send(0, vec![99u64]);
                    None
                }
                1 => {
                    let t = ctx.recv(0);
                    ctx.send(1, t);
                    None
                }
                3 => {
                    let t = ctx.recv(1);
                    ctx.send(2, t);
                    None
                }
                7 => Some(ctx.recv(2)),
                _ => None,
            }
        });
        assert_eq!(results[7], Some(vec![99]));
        assert!(results[..7].iter().all(Option::is_none));
    }

    #[test]
    fn messages_preserve_order_per_link() {
        let (results, _) = run_spmd(1, |ctx| {
            if ctx.id().bits() == 0 {
                for i in 0..100u64 {
                    ctx.send(0, i);
                }
                Vec::new()
            } else {
                (0..100).map(|_| ctx.recv(0)).collect::<Vec<u64>>()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "refusing to spawn")]
    fn giant_cube_rejected() {
        let _ = run_spmd::<u64, _, _>(11, |_| ());
    }

    #[test]
    fn recv_timeout_parses_and_clamps() {
        // Plain values parse as milliseconds (whitespace tolerated).
        assert_eq!(parse_recv_timeout(Some("250")), Duration::from_millis(250));
        assert_eq!(parse_recv_timeout(Some(" 1500 ")), Duration::from_millis(1500));
        // Zero clamps up to 1 ms, absurd values down to an hour.
        assert_eq!(parse_recv_timeout(Some("0")), Duration::from_millis(1));
        assert_eq!(parse_recv_timeout(Some("999999999999")), Duration::from_secs(3600));
        // Unset or garbage falls back to the 30 s default.
        assert_eq!(parse_recv_timeout(None), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout(Some("fast")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout(Some("-5")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout(Some("")), DEFAULT_RECV_TIMEOUT);
    }
}
