//! The original thread-per-node runtime, preserved as the executable
//! reference for the virtual-node scheduler.
//!
//! Every cube node is an OS thread and every directed link a buffered
//! channel — exactly the pre-scheduler `cuberun`. It caps out near
//! `n = 10` (2^n OS threads), which is why [`crate::run_spmd`] replaced
//! it, but within that range it is the simplest possible executable
//! spec: the equivalence tests run the same transposes on both runtimes
//! and require identical results, and the `spmd_runtime` benchmark
//! group reports old-vs-new wall clock.
//!
//! Node programs here are plain blocking closures (`recv` parks the OS
//! thread), with the historical per-receive `CUBERUN_RECV_TIMEOUT_MS`
//! watchdog; the pool runtime replaces that with a scheduler-level
//! stall detector.

use crate::runtime::RunStats;
use cubeaddr::NodeId;
use cubesync::atomic::{AtomicU64, Ordering};
use cubesync::channel::{unbounded, Receiver, Sender};
use cubesync::sync::{Arc, Barrier, OnceLock};
use cubesync::thread;
use std::time::Duration;

/// The receive timeout, read once per process from the
/// `CUBERUN_RECV_TIMEOUT_MS` environment variable: loaded CI machines
/// widen it, deadlock stress tests tighten it. Unset falls back to the
/// shared 30 s default; a set but malformed value panics.
fn recv_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| match std::env::var("CUBERUN_RECV_TIMEOUT_MS") {
        Ok(v) => crate::runtime::parse_stall_timeout("CUBERUN_RECV_TIMEOUT_MS", &v),
        Err(_) => crate::runtime::DEFAULT_STALL_TIMEOUT,
    })
}

/// The per-node handle a blocking node program runs against: its
/// identity plus its `n` communication ports.
pub struct NodeCtx<T> {
    id: NodeId,
    n: u32,
    /// `tx[d]` sends to `id.neighbor(d)`.
    tx: Vec<Sender<T>>,
    /// `rx[d]` receives what `id.neighbor(d)` sent across dimension `d`.
    rx: Vec<Receiver<T>>,
    barrier: Arc<Barrier>,
    messages: Arc<AtomicU64>,
    barriers: Arc<AtomicU64>,
}

impl<T> NodeCtx<T> {
    /// This node's cube address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The cube dimension `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of nodes `2^n`.
    pub fn num_nodes(&self) -> usize {
        1 << self.n
    }

    /// Sends `msg` to the neighbor across dimension `dim` (non-blocking;
    /// links are buffered).
    #[track_caller]
    pub fn send(&self, dim: u32, msg: T) {
        assert!(dim < self.n, "dimension {dim} out of range on node {}", self.id);
        self.messages.fetch_add(1, Ordering::Relaxed);
        // Receivers outlive the scoped threads, so failure means a peer
        // panicked; propagate.
        self.tx[dim as usize].send(msg).expect("peer node terminated");
    }

    /// Receives the next message from the neighbor across dimension
    /// `dim`, blocking this OS thread until it arrives.
    ///
    /// # Panics
    /// After the receive timeout elapses in silence (30 s by default,
    /// overridable via `CUBERUN_RECV_TIMEOUT_MS`; a deadlocked node
    /// program), or if the peer panicked.
    #[track_caller]
    pub fn recv(&self, dim: u32) -> T {
        assert!(dim < self.n, "dimension {dim} out of range on node {}", self.id);
        self.rx[dim as usize].recv_timeout(recv_timeout()).unwrap_or_else(|e| {
            panic!("node {} recv on dim {dim}: {e} (deadlocked node program?)", self.id)
        })
    }

    /// Bidirectional exchange across `dim`: sends `msg` and returns the
    /// neighbor's message.
    pub fn exchange(&self, dim: u32, msg: T) -> T {
        self.send(dim, msg);
        self.recv(dim)
    }

    /// Global barrier over all nodes.
    pub fn barrier(&self) {
        if self.barrier.wait().is_leader() {
            self.barriers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Clone> NodeCtx<T> {
    /// All-reduce by dimension scan (see
    /// [`crate::NodeCtx::all_reduce`]; same wire protocol, blocking).
    pub fn all_reduce(&self, value: T, mut combine: impl FnMut(T, T) -> T) -> T {
        let mut acc = value;
        for d in 0..self.n {
            if (self.id.0 >> d) & 1 == 0 {
                let theirs = self.recv(d);
                acc = combine(acc, theirs);
                self.send(d, acc.clone());
            } else {
                self.send(d, acc);
                acc = self.recv(d);
            }
        }
        acc
    }
}

/// Runs `program` on every node of an `n`-cube concurrently — one OS
/// thread per node, one channel pair per link — and returns the per-node
/// results in node order plus run statistics.
///
/// The scheduler counters in the returned [`RunStats`] describe the
/// degenerate "pool" this runtime is: one worker per node, every context
/// live at once, no parks, wakes or steals.
pub fn run_spmd_threads<T, R, F>(n: u32, program: F) -> (Vec<R>, RunStats)
where
    T: Send,
    R: Send,
    F: Fn(&NodeCtx<T>) -> R + Sync,
{
    cubeaddr::check_dims(n);
    let num = cubeaddr::num_nodes(n);
    assert!(n <= 10, "refusing to spawn {num} threads; use run_spmd for giant cubes");

    // links[x][d] = channel whose sender is held by x's neighbor across d
    // and whose receiver is held by x.
    let mut senders: Vec<Vec<Option<Sender<T>>>> =
        (0..num).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<T>>>> =
        (0..num).map(|_| (0..n).map(|_| None).collect()).collect();
    // Indexed loop: each iteration writes both `senders[x]` and
    // `receivers[peer]` for a derived peer index.
    #[allow(clippy::needless_range_loop)]
    for x in 0..num {
        for d in 0..n as usize {
            let peer = NodeId(x as u64).neighbor(d as u32).index();
            let (tx, rx) = unbounded();
            // x sends to peer on dim d; peer receives on dim d.
            senders[x][d] = Some(tx);
            receivers[peer][d] = Some(rx);
        }
    }

    let barrier = Arc::new(Barrier::new(num));
    let messages = Arc::new(AtomicU64::new(0));
    let barriers = Arc::new(AtomicU64::new(0));

    let mut ctxs: Vec<NodeCtx<T>> = senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(x, (tx, rx))| NodeCtx {
            id: NodeId(x as u64),
            n,
            tx: tx.into_iter().map(Option::unwrap).collect(),
            rx: rx.into_iter().map(Option::unwrap).collect(),
            barrier: Arc::clone(&barrier),
            messages: Arc::clone(&messages),
            barriers: Arc::clone(&barriers),
        })
        .collect();

    let program = &program;
    let results: Vec<R> = thread::scope(|scope| {
        let handles: Vec<_> =
            ctxs.drain(..).map(|ctx| scope.spawn(move || program(&ctx))).collect();
        handles.into_iter().map(|h| h.join().expect("node program panicked")).collect()
    });

    (
        results,
        RunStats {
            messages: messages.load(Ordering::Relaxed),
            barriers: barriers.load(Ordering::Relaxed),
            workers: num,
            peak_live: num as u32,
            parks: 0,
            wakes: 0,
            steals: Vec::new(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_swaps_neighbors() {
        let (results, stats) = run_spmd_threads(3, |ctx| ctx.exchange(2, ctx.id().bits()));
        let expect: Vec<u64> = (0..8).map(|x| x ^ 0b100).collect();
        assert_eq!(results, expect);
        assert_eq!(stats.messages, 8);
    }

    #[test]
    fn store_and_forward_chain() {
        // Node 0 sends a token around dims 0,1,2; final holder is node 7.
        let (results, _) = run_spmd_threads(3, |ctx| {
            let x = ctx.id().bits();
            match x {
                0 => {
                    ctx.send(0, vec![99u64]);
                    None
                }
                1 => {
                    let t = ctx.recv(0);
                    ctx.send(1, t);
                    None
                }
                3 => {
                    let t = ctx.recv(1);
                    ctx.send(2, t);
                    None
                }
                7 => Some(ctx.recv(2)),
                _ => None,
            }
        });
        assert_eq!(results[7], Some(vec![99]));
        assert!(results[..7].iter().all(Option::is_none));
    }

    #[test]
    fn all_reduce_and_barrier_match_pool_runtime() {
        // The same logical program on both runtimes: identical results
        // and deterministic counters.
        let (old, old_stats) = run_spmd_threads(4, |ctx| {
            ctx.barrier();
            ctx.all_reduce(ctx.id().bits(), |a, b| a + b)
        });
        let (new, new_stats) = crate::run_spmd(4, |ctx| async move {
            ctx.barrier().await;
            ctx.all_reduce(ctx.id().bits(), |a, b| a + b).await
        });
        assert_eq!(old, new);
        assert_eq!(old_stats.messages, new_stats.messages);
        assert_eq!(old_stats.barriers, new_stats.barriers);
    }

    #[test]
    #[should_panic(expected = "refusing to spawn")]
    fn giant_cube_rejected() {
        let _ = run_spmd_threads::<u64, _, _>(11, |_| ());
    }
}
