//! A real message-passing SPMD runtime for Boolean *n*-cube node
//! programs, at Connection-Machine scale.
//!
//! Where `cubesim` *simulates* the paper's machines under their cost
//! model, this crate *executes* the same node programs with genuine
//! message passing. Every cube node is a **virtual node**: an `async`
//! node program compiled into a resumable state machine, multiplexed
//! with all its siblings onto a fixed worker pool by a cooperative
//! scheduler (flat per-link mailbox slab, park on empty `recv`, wake on
//! `send` — see `sched`'s module docs for the protocol and the
//! determinism argument). That is how the paper's machines actually
//! worked — many logical processes per physical processor — and it lets
//! `n = 16` (65 536 nodes, the paper's Connection Machine scale) run on
//! a laptop's worth of threads.
//!
//! The paper's pseudo-code — `send(buf, j)`, `recv(tmp, j)`, exchanges
//! on a dimension — maps 1:1 onto [`NodeCtx::send`], [`NodeCtx::recv`]
//! and [`NodeCtx::exchange`], so algorithms validated on the simulator
//! can be run end-to-end with real message passing (the role an iPSC
//! node program or a thin MPI layer plays for the original experiments).
//!
//! ```
//! use cuberun::run_spmd;
//!
//! // Every node swaps a value with its dimension-0 neighbor.
//! let (results, stats) =
//!     run_spmd(3, |ctx| async move { ctx.exchange(0, ctx.id().bits()).await });
//! assert_eq!(results, vec![1, 0, 3, 2, 5, 4, 7, 6]);
//! assert_eq!(stats.messages, 8);
//! ```
//!
//! The worker pool is sized by `CUBERUN_WORKERS` (falling back to the
//! ambient `cubesim::par` thread count); results are byte-identical at
//! any pool size. The pre-scheduler thread-per-node runtime survives in
//! [`mod@reference`] for equivalence tests and old-vs-new benchmarks.
//!
//! The runtime is topology-generic underneath: [`run_spmd`] is the
//! hypercube specialization of [`run_spmd_on`], which runs the same
//! node programs on any [`cubetopo::TopoSpec`] (e.g. the Swapped
//! Dragonfly) with ports in place of dimensions.

pub mod collectives;
pub mod reference;
pub mod runtime;
mod sched;

pub use collectives::{all_to_all, broadcast, gather};
pub use runtime::{
    num_workers, run_spmd, run_spmd_on, with_stall_timeout, with_workers, NodeCtx, RunStats,
};
