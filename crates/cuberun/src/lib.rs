//! A real multithreaded SPMD runtime for Boolean *n*-cube node programs.
//!
//! Where `cubesim` *simulates* the paper's machines under their
//! cost model, this crate *executes* the same node programs with genuine
//! parallelism: every cube node is an OS thread, and every directed cube
//! link is a channel. The paper's pseudo-code — `send(buf, j)`,
//! `recv(tmp, j)`, exchanges on a dimension — maps 1:1 onto
//! [`NodeCtx::send`], [`NodeCtx::recv`] and [`NodeCtx::exchange`], so
//! algorithms validated on the simulator can be run end-to-end with real
//! message passing (the role an iPSC node program or a thin MPI layer
//! plays for the original experiments).
//!
//! ```
//! use cuberun::run_spmd;
//!
//! // Every node swaps a value with its dimension-0 neighbor.
//! let (results, stats) = run_spmd(3, |ctx| ctx.exchange(0, ctx.id().bits()));
//! assert_eq!(results, vec![1, 0, 3, 2, 5, 4, 7, 6]);
//! assert_eq!(stats.messages, 8);
//! ```

pub mod collectives;
pub mod runtime;

pub use collectives::{all_to_all, broadcast, gather};
pub use runtime::{run_spmd, NodeCtx, RunStats};
