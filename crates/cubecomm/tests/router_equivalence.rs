//! Property test: the flat lane-based e-cube router is observationally
//! equivalent to the original full-lattice [`RefRouter`] it replaced —
//! and the topology-generic [`graph_route`], instantiated on the
//! hypercube, is byte-identical to the flat router in turn.
//!
//! All three run identical message sets — random ones plus the
//! transpose and all-to-all patterns the figures use — on recording nets
//! and must produce identical per-node arrivals (same blocks, same
//! order, which subsumes the per-link arrival order) and identical
//! [`CommReport`]s, with the flat and graph routers each checked at 1,
//! 2 and 5 worker threads. The graph router runs through the
//! value-level [`TopoSpec`] dispatch (the form the Dragonfly planners
//! use), so the generic path is held to the hypercube baseline exactly.

use cubeaddr::NodeId;
use cubecomm::block::Block;
use cubecomm::ecube::reference::RefRouter;
use cubecomm::ecube::{ecube_route, RouteMsg};
use cubecomm::graph::graph_route;
use cubesim::{par, CommReport, MachineParams, Payload, PortMode, SimNet};
use cubetopo::TopoSpec;
use proptest::prelude::*;

/// SplitMix64 so message sets are a pure function of the seed
/// (independent of which proptest implementation supplies the seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span
    }
}

/// Random message set: arbitrary src/dst pairs (equal pairs and empty
/// payloads included, since both are router edge cases).
fn random_msgs(rng: &mut Rng, n: u32, count: usize) -> Vec<RouteMsg<u64>> {
    let num = 1u64 << n;
    (0..count)
        .map(|_| {
            let len = rng.below(4) as usize;
            RouteMsg {
                src: NodeId(rng.below(num)),
                dst: NodeId(rng.below(num)),
                data: (0..len).map(|_| rng.next()).collect(),
            }
        })
        .collect()
}

/// The figures' node-permutation transpose pattern `x → tr(x)`.
fn transpose_msgs(n: u32, elems: usize) -> Vec<RouteMsg<u64>> {
    let half = n / 2;
    (0..(1u64 << n))
        .filter_map(|x| {
            let (hi, lo) = cubeaddr::split(x, half);
            let t = cubeaddr::concat(lo, hi, half);
            (t != x).then(|| RouteMsg { src: NodeId(x), dst: NodeId(t), data: vec![x; elems] })
        })
        .collect()
}

/// Every ordered pair, tagged payloads.
fn all_to_all_msgs(n: u32) -> Vec<RouteMsg<u64>> {
    let num = 1u64 << n;
    (0..num)
        .flat_map(|s| {
            (0..num).filter(move |&d| d != s).map(move |d| RouteMsg {
                src: NodeId(s),
                dst: NodeId(d),
                data: vec![s * 1000 + d],
            })
        })
        .collect()
}

fn params(unit: bool) -> MachineParams {
    if unit {
        MachineParams::unit(PortMode::AllPorts)
    } else {
        MachineParams::intel_ipsc().with_ports(PortMode::AllPorts)
    }
}

/// Runs one router on a fresh recording net and returns arrivals + report.
/// Generic over the payload: the flat router carries bare [`Block`]s on
/// the wire, the reference router its original `BlockMsg` batches — the
/// reports compare across the two because both count the same elements.
fn run<P, F>(n: u32, unit: bool, route: F) -> (Vec<Vec<Block<u64>>>, CommReport)
where
    P: Payload,
    F: FnOnce(&mut SimNet<P>) -> Vec<Vec<Block<u64>>>,
{
    let mut net = SimNet::new(n, params(unit));
    net.record_history();
    net.record_links();
    let out = route(&mut net);
    (out, net.finalize())
}

/// Asserts flat ≡ reference ≡ graph-generic for one message set: the
/// reference router runs once, the flat and graph routers at 1, 2 and 5
/// worker threads each. The graph router is given the cube as a
/// [`TopoSpec`], so its minimal-route port choice, lane staging and
/// report accounting all flow through the generic dispatch and still
/// must match the flat e-cube router byte for byte.
fn assert_equivalent(n: u32, unit: bool, msgs: &[RouteMsg<u64>], what: &str) {
    let expect = run(n, unit, |net| RefRouter::route(net, msgs.to_vec()));
    for threads in [1usize, 2, 5] {
        let got =
            par::with_threads(threads, || run(n, unit, |net| ecube_route(net, msgs.to_vec())));
        assert_eq!(got.0, expect.0, "{what}: arrivals diverge (n {n}, {threads} threads)");
        assert_eq!(got.1, expect.1, "{what}: reports diverge (n {n}, {threads} threads)");
        let graph = par::with_threads(threads, || {
            let mut net: SimNet<Block<u64>, TopoSpec> =
                SimNet::on_topology(TopoSpec::hypercube(n), params(unit));
            net.record_history();
            net.record_links();
            let out = graph_route(&mut net, msgs.to_vec());
            (out, net.finalize())
        });
        assert_eq!(graph.0, expect.0, "{what}: graph arrivals diverge (n {n}, {threads} threads)");
        assert_eq!(graph.1, expect.1, "{what}: graph reports diverge (n {n}, {threads} threads)");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random message sets: identical arrivals and reports at every
    /// thread count.
    #[test]
    fn flat_matches_reference_on_random_messages(
        seed in 0u64..u64::MAX,
        n in 2u32..=5,
        count in 1usize..=24,
        unit in prop::bool::ANY,
    ) {
        let msgs = random_msgs(&mut Rng(seed), n, count);
        assert_equivalent(n, unit, &msgs, "random");
    }
}

#[test]
fn flat_matches_reference_on_transpose_pattern() {
    for n in [2u32, 4, 6] {
        assert_equivalent(n, true, &transpose_msgs(n, 4), "transpose");
        assert_equivalent(n, false, &transpose_msgs(n, 4), "transpose");
    }
}

#[test]
fn flat_matches_reference_on_all_to_all() {
    for n in [2u32, 3, 4] {
        assert_equivalent(n, true, &all_to_all_msgs(n), "all-to-all");
        assert_equivalent(n, false, &all_to_all_msgs(n), "all-to-all");
    }
}
