//! Property tests pinning the factored, parallel plan builders to their
//! reference implementations — the `plan_reference` discipline.
//!
//! Three properties, each over every planner:
//!
//! 1. **Reference equivalence:** the fast skeleton-based builders in
//!    `cubecomm::plan` emit [`CommSchedule`]s byte-identical to the
//!    original per-node simulations preserved in
//!    `cubecomm::plan::reference` (same rounds, same message order, same
//!    block ids, same copies).
//! 2. **Cold = cached:** a warm [`PlanCache`] hit returns a plan
//!    byte-identical to an uncached construction of the same inputs
//!    (and the very same `Arc` on the second fetch).
//! 3. **Thread independence:** construction under
//!    `cubesim::par::with_threads` at 1, 2 and 5 workers produces
//!    identical output — the parallel merge is deterministic.

use cubeaddr::{DimSet, NodeId};
use cubecomm::exchange::BufferPolicy;
use cubecomm::plan::{self, reference, BlockMeta, CommSchedule, PlanCache};
use cubecomm::sbt::Sbt;
use cubesim::{par, PortMode};
use cubesync::sync::Arc;
use proptest::prelude::*;

/// Deterministic pseudo-random size matrix (zeros allowed — dropped
/// blocks), the same generator idiom as `tests/props.rs`.
fn random_sizes(n: u32, seed: u64, max_b: u64) -> Vec<Vec<u64>> {
    let num = 1usize << n;
    (0..num as u64)
        .map(|s| {
            (0..num as u64)
                .map(|d| {
                    let h =
                        (s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(d).wrapping_mul(seed | 1))
                            >> 33;
                    h % (max_b + 1)
                })
                .collect()
        })
        .collect()
}

fn random_vec(n: u32, seed: u64, max_b: u64) -> Vec<u64> {
    random_sizes(n, seed, max_b).swap_remove(0)
}

/// A seed-shuffled permutation of the dimensions (Fisher–Yates with a
/// splitmix-style stream).
fn random_dims(n: u32, seed: u64) -> Vec<u32> {
    let mut dims: Vec<u32> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..dims.len()).rev() {
        state = state.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xD1B54A32D192ED03);
        dims.swap(i, (state >> 33) as usize % (i + 1));
    }
    dims
}

/// Exchange blocks with pairwise distinct (src, dst): the nonzero
/// entries of a random size matrix.
fn random_blocks(n: u32, seed: u64, max_b: u64) -> Vec<BlockMeta> {
    let mut blocks = Vec::new();
    for (s, row) in random_sizes(n, seed, max_b).into_iter().enumerate() {
        for (d, elems) in row.into_iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: NodeId(s as u64), dst: NodeId(d as u64), elems });
            }
        }
    }
    blocks
}

fn random_msgs(n: u32, seed: u64, max_b: u64) -> Vec<(NodeId, NodeId, u64)> {
    let num = 1u64 << n;
    random_vec(n, seed, max_b)
        .into_iter()
        .enumerate()
        .map(|(i, h)| (NodeId(i as u64), NodeId(h.wrapping_mul(i as u64 + 1) % num), h))
        .collect()
}

/// Asserts byte-identity field by field so a mismatch names the layer.
fn assert_identical(fast: &CommSchedule, reference: &CommSchedule, what: &str) {
    assert_eq!(fast.topo, reference.topo, "{what}: topo");
    assert_eq!(fast.name, reference.name, "{what}: name");
    assert_eq!(fast.ports, reference.ports, "{what}: ports");
    assert_eq!(fast.dimension_ordered, reference.dimension_ordered, "{what}: dimension_ordered");
    assert_eq!(fast.blocks, reference.blocks, "{what}: blocks");
    assert_eq!(fast.rounds.len(), reference.rounds.len(), "{what}: round count");
    for (i, (f, r)) in fast.rounds.iter().zip(&reference.rounds).enumerate() {
        assert_eq!(f, r, "{what}: round {i}");
    }
}

/// Every planner as a boxed closure over shared random inputs, paired
/// with its reference twin (where one exists).
type Planner = (&'static str, Box<dyn Fn() -> CommSchedule>, Option<Box<dyn Fn() -> CommSchedule>>);

fn planners(n: u32, seed: u64, max_b: u64, policy: BufferPolicy) -> Vec<Planner> {
    let sizes = random_sizes(n, seed, max_b);
    let blocks = random_blocks(n, seed, max_b);
    let dims = random_dims(n, seed);
    let root = NodeId(seed % (1 << n));
    let one_sizes = random_vec(n, seed, max_b);
    let msgs = random_msgs(n, seed, max_b);
    let rotated: Vec<Sbt> = (0..n).map(|k| Sbt::rotated(n, root, k)).collect();
    let k_dims = DimSet::from_dims((0..n).filter(|d| (seed >> d) & 1 == 1));
    let l_dims = k_dims.complement(n);

    let mut out: Vec<Planner> = Vec::new();
    {
        let (b, d) = (blocks.clone(), dims.clone());
        out.push((
            "exchange",
            Box::new(move || {
                plan::exchange_plan(n, b.clone(), &d, policy, PortMode::OnePort, "prop/exchange")
            }),
            Some({
                let (b, d) = (blocks.clone(), dims.clone());
                Box::new(move || {
                    reference::exchange_plan(
                        n,
                        b.clone(),
                        &d,
                        policy,
                        PortMode::OnePort,
                        "prop/exchange",
                    )
                })
            }),
        ));
    }
    {
        let s = sizes.clone();
        out.push((
            "all_to_all_exchange",
            Box::new(move || plan::all_to_all_exchange_plan(n, &s, policy, PortMode::OnePort)),
            None, // delegates to exchange_plan; covered by the twin above
        ));
    }
    {
        let s = sizes.clone();
        out.push((
            "some_to_all",
            Box::new(move || {
                let rows = 1usize << (n - k_dims.len());
                plan::some_to_all_plan(n, l_dims, k_dims, &s[..rows], policy, PortMode::OnePort)
            }),
            None, // delegates to exchange_plan
        ));
    }
    {
        let s = one_sizes.clone();
        out.push((
            "one_to_all_sbt",
            Box::new(move || plan::one_to_all_sbt_plan(n, root, &s)),
            Some({
                let s = one_sizes.clone();
                Box::new(move || reference::one_to_all_sbt_plan(n, root, &s))
            }),
        ));
    }
    {
        let (s, t) = (one_sizes.clone(), rotated.clone());
        out.push((
            "one_to_all_trees",
            Box::new(move || plan::one_to_all_trees_plan(n, &s, &t)),
            Some({
                let (s, t) = (one_sizes.clone(), rotated.clone());
                Box::new(move || reference::one_to_all_trees_plan(n, &s, &t))
            }),
        ));
    }
    {
        let s = sizes.clone();
        out.push((
            "all_to_all_sbnt",
            Box::new(move || plan::all_to_all_sbnt_plan(n, &s)),
            Some({
                let s = sizes.clone();
                Box::new(move || reference::all_to_all_sbnt_plan(n, &s))
            }),
        ));
    }
    {
        let m = msgs.clone();
        out.push((
            "ecube_route",
            Box::new(move || plan::ecube_route_plan(n, &m)),
            Some({
                let m = msgs.clone();
                Box::new(move || reference::ecube_route_plan(n, &m))
            }),
        ));
    }
    out
}

fn policy_strategy() -> impl Strategy<Value = BufferPolicy> {
    (0u64..17).prop_map(|v| match v {
        0 => BufferPolicy::Ideal,
        1 => BufferPolicy::Unbuffered,
        m => BufferPolicy::Buffered { min_direct: (m - 1) as usize },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1: fast builders == reference simulations, byte for
    /// byte, for random inputs under every buffering policy.
    #[test]
    fn factored_builders_match_reference(
        n in 1u32..5,
        seed in any::<u64>(),
        max_b in 0u64..6,
        policy in policy_strategy(),
    ) {
        for (what, fast, twin) in planners(n, seed, max_b, policy) {
            if let Some(twin) = twin {
                assert_identical(&fast(), &twin(), what);
            }
        }
    }

    /// Property 2: a cache hit is byte-identical to a cold build, and a
    /// repeat fetch returns the very same `Arc`.
    #[test]
    fn cached_plans_match_cold_construction(
        n in 1u32..5,
        seed in any::<u64>(),
        max_b in 0u64..6,
        policy in policy_strategy(),
    ) {
        let cache = PlanCache::new(16);
        let sizes = random_sizes(n, seed, max_b);
        let blocks = random_blocks(n, seed, max_b);
        let dims = random_dims(n, seed);
        let root = NodeId(seed % (1 << n));
        let one_sizes = random_vec(n, seed, max_b);
        let msgs = random_msgs(n, seed, max_b);
        let trees: Vec<Sbt> = (0..n).map(|k| Sbt::rotated(n, root, k)).collect();
        let k_dims = DimSet::from_dims((0..n).filter(|d| (seed >> d) & 1 == 1));
        let l_dims = k_dims.complement(n);
        let rows = 1usize << (n - k_dims.len());

        let pairs: Vec<(&str, CommSchedule, Arc<CommSchedule>, Arc<CommSchedule>)> = vec![
            (
                "exchange",
                plan::exchange_plan(
                    n, blocks.clone(), &dims, policy, PortMode::OnePort, "prop/exchange",
                ),
                plan::exchange_plan_cached(
                    &cache, n, &blocks, &dims, policy, PortMode::OnePort, "prop/exchange",
                ),
                plan::exchange_plan_cached(
                    &cache, n, &blocks, &dims, policy, PortMode::OnePort, "prop/exchange",
                ),
            ),
            (
                "all_to_all_exchange",
                plan::all_to_all_exchange_plan(n, &sizes, policy, PortMode::OnePort),
                plan::all_to_all_exchange_plan_cached(&cache, n, &sizes, policy, PortMode::OnePort),
                plan::all_to_all_exchange_plan_cached(&cache, n, &sizes, policy, PortMode::OnePort),
            ),
            (
                "some_to_all",
                plan::some_to_all_plan(n, l_dims, k_dims, &sizes[..rows], policy, PortMode::OnePort),
                plan::some_to_all_plan_cached(
                    &cache, n, l_dims, k_dims, &sizes[..rows], policy, PortMode::OnePort,
                ),
                plan::some_to_all_plan_cached(
                    &cache, n, l_dims, k_dims, &sizes[..rows], policy, PortMode::OnePort,
                ),
            ),
            (
                "one_to_all_sbt",
                plan::one_to_all_sbt_plan(n, root, &one_sizes),
                plan::one_to_all_sbt_plan_cached(&cache, n, root, &one_sizes),
                plan::one_to_all_sbt_plan_cached(&cache, n, root, &one_sizes),
            ),
            (
                "one_to_all_trees",
                plan::one_to_all_trees_plan(n, &one_sizes, &trees),
                plan::one_to_all_trees_plan_cached(&cache, n, &one_sizes, &trees),
                plan::one_to_all_trees_plan_cached(&cache, n, &one_sizes, &trees),
            ),
            (
                "all_to_all_sbnt",
                plan::all_to_all_sbnt_plan(n, &sizes),
                plan::all_to_all_sbnt_plan_cached(&cache, n, &sizes),
                plan::all_to_all_sbnt_plan_cached(&cache, n, &sizes),
            ),
            (
                "ecube_route",
                plan::ecube_route_plan(n, &msgs),
                plan::ecube_route_plan_cached(&cache, n, &msgs),
                plan::ecube_route_plan_cached(&cache, n, &msgs),
            ),
        ];
        for (what, cold, first, second) in &pairs {
            assert_identical(first, cold, what);
            assert!(Arc::ptr_eq(first, second), "{what}: repeat fetch must hit");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, pairs.len() as u64, "one miss per planner");
        assert_eq!(stats.hits, pairs.len() as u64, "one hit per planner");
    }

    /// Property 3: construction is byte-identical at 1, 2 and 5 worker
    /// threads for every planner.
    #[test]
    fn construction_is_thread_count_independent(
        n in 1u32..5,
        seed in any::<u64>(),
        max_b in 0u64..6,
        policy in policy_strategy(),
    ) {
        for (what, fast, _) in planners(n, seed, max_b, policy) {
            let serial = par::with_threads(1, &fast);
            for threads in [2usize, 5] {
                let parallel = par::with_threads(threads, &fast);
                assert_identical(&parallel, &serial, &format!("{what} @ {threads} threads"));
            }
        }
    }
}
