//! Time-bounded performance smoke test for the schedule executor.
//!
//! Runs the full n = 10 all-to-all personalized exchange (1024 nodes,
//! ~one million blocks through the flat-indexed `SimNet`) and fails if
//! it takes longer than a generous wall-clock bound. Ignored by default
//! so ordinary debug test runs stay fast; `scripts/ci.sh` runs it in
//! release mode with `--ignored`.

use cubecomm::exchange::{all_to_all_exchange, BufferPolicy};
use cubecomm::BlockMsg;
use cubesim::{MachineParams, PortMode, SimNet};
use std::time::{Duration, Instant};

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn n10_all_to_all_completes_within_bound() {
    let n = 10u32;
    let num = 1usize << n;
    let blocks: Vec<Vec<Vec<u64>>> =
        (0..num as u64).map(|s| (0..num as u64).map(|d| vec![s * 1000 + d]).collect()).collect();

    let mut net: SimNet<BlockMsg<u64>> =
        SimNet::new(n, MachineParams::intel_ipsc().with_ports(PortMode::AllPorts));
    let start = Instant::now();
    let result = all_to_all_exchange(&mut net, blocks, BufferPolicy::Ideal);
    let report = net.finalize();
    let elapsed = start.elapsed();

    assert_eq!(report.rounds, n as usize);
    assert!(result.iter().all(|per_node| per_node.len() == num));
    // ~0.2 s on a modest core; the bound only catches order-of-magnitude
    // regressions (e.g. accidental per-round allocation or quadratic
    // bookkeeping), not scheduler jitter.
    assert!(elapsed < Duration::from_secs(30), "n=10 all-to-all took {elapsed:?}");
}

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn n12_router_transpose_completes_within_bound() {
    use cubeaddr::NodeId;
    use cubecomm::ecube::{ecube_route, RouteMsg};
    use cubecomm::Block;

    // The FIG16-18 workload one size below the headline: the
    // node-permutation transpose pattern on a 12-cube (4096 messages,
    // heavy link contention) through the flat lane-based router.
    let n = 12u32;
    let half = n / 2;
    let msgs: Vec<RouteMsg<u64>> = (0..(1u64 << n))
        .filter_map(|x| {
            let (hi, lo) = cubeaddr::split(x, half);
            let t = cubeaddr::concat(lo, hi, half);
            (t != x).then(|| RouteMsg { src: NodeId(x), dst: NodeId(t), data: vec![x; 4] })
        })
        .collect();

    let mut net: SimNet<Block<u64>> = SimNet::new(n, MachineParams::connection_machine());
    let start = Instant::now();
    let arrivals = ecube_route(&mut net, msgs);
    let report = net.finalize();
    let elapsed = start.elapsed();

    let delivered: usize = arrivals.iter().map(Vec::len).sum();
    assert_eq!(delivered, (1usize << n) - (1usize << half));
    assert!(report.rounds > 0);
    // ~3 ms on a modest core; the bound only catches order-of-magnitude
    // regressions (e.g. a return to full-lattice scans), not jitter.
    assert!(elapsed < Duration::from_secs(10), "n=12 router transpose took {elapsed:?}");
}

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn n12_warm_cache_fetch_beats_cold_build_10x() {
    use cubeaddr::NodeId;
    use cubecomm::plan::{ecube_route_plan, ecube_route_plan_cached, PlanCache};

    // The figure workload: node-permutation transpose flight plan on a
    // 12-cube. A warm cache hit must be at least 10x faster than the
    // cold construction it replaces — the wedge the ISSUE-6 cache exists
    // to provide. Medians over several trials keep scheduler jitter out.
    let n = 12u32;
    let half = n / 2;
    let msgs: Vec<(NodeId, NodeId, u64)> = (0..(1u64 << n))
        .filter_map(|x| {
            let (hi, lo) = cubeaddr::split(x, half);
            let t = cubeaddr::concat(lo, hi, half);
            (t != x).then_some((NodeId(x), NodeId(t), 4))
        })
        .collect();

    let median = |mut v: Vec<Duration>| -> Duration {
        v.sort();
        v[v.len() / 2]
    };
    let trials = 5;

    let cold = median(
        (0..trials)
            .map(|_| {
                let start = Instant::now();
                let plan = ecube_route_plan(n, &msgs);
                assert!(!plan.rounds.is_empty());
                start.elapsed()
            })
            .collect(),
    );

    let cache = PlanCache::new(4);
    let first = ecube_route_plan_cached(&cache, n, &msgs);
    let warm = median(
        (0..trials)
            .map(|_| {
                let start = Instant::now();
                let plan = ecube_route_plan_cached(&cache, n, &msgs);
                let elapsed = start.elapsed();
                assert!(cubesync::sync::Arc::ptr_eq(&plan, &first), "fetch must hit the cache");
                elapsed
            })
            .collect(),
    );

    assert_eq!(cache.stats().misses, 1);
    // Measured ~2.3 ms cold vs ~65 µs warm (the hit is dominated by
    // fingerprinting the 4032-message input): ~35x. The 10x bound only
    // catches a broken cache (rebuilds on hit) or a construction-cost
    // regression, not jitter.
    assert!(
        warm * 10 <= cold,
        "warm cache fetch ({warm:?}) is not 10x faster than cold build ({cold:?})"
    );
}
