//! Property-based tests for the personalized-communication algorithms:
//! random block matrices, random machines, random dimension splits.

use cubeaddr::{DimSet, NodeId};
use cubecomm::exchange::{all_to_all_exchange, BufferPolicy};
use cubecomm::one_to_all::{one_to_all_rotated_sbts, one_to_all_sbt};
use cubecomm::sbnt::all_to_all_sbnt;
use cubecomm::some_to_all::some_to_all;
use cubesim::{MachineParams, PortMode, SimNet};
use proptest::prelude::*;

/// Deterministic pseudo-random block sizes from a seed: blocks[s][d] has
/// `hash(s, d, seed) % max_b` elements (zeros allowed — virtual
/// elements).
fn random_blocks(n: u32, seed: u64, max_b: u64) -> Vec<Vec<Vec<u64>>> {
    let num = 1usize << n;
    (0..num as u64)
        .map(|s| {
            (0..num as u64)
                .map(|d| {
                    let h =
                        (s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(d).wrapping_mul(seed | 1))
                            >> 33;
                    let len = h % (max_b + 1);
                    (0..len).map(|i| s * 1_000_000 + d * 1000 + i).collect()
                })
                .collect()
        })
        .collect()
}

fn check_delivery(n: u32, blocks: &[Vec<Vec<u64>>], result: &[Vec<cubecomm::Block<u64>>]) {
    let num = 1usize << n;
    for d in 0..num {
        let mut got: Vec<(u64, Vec<u64>)> = result[d]
            .iter()
            .map(|b| {
                assert_eq!(b.dst.index(), d);
                (b.src.bits(), b.data.clone())
            })
            .collect();
        got.sort();
        let mut want: Vec<(u64, Vec<u64>)> = (0..num as u64)
            .filter(|&s| !blocks[s as usize][d].is_empty())
            .map(|s| (s, blocks[s as usize][d].clone()))
            .collect();
        want.sort();
        assert_eq!(got, want, "destination {d}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exchange algorithm delivers arbitrary (ragged, sparse) block
    /// matrices under every buffering policy, and its time respects the
    /// all-to-all lower bound computed from the actual critical volume.
    #[test]
    fn exchange_random_blocks(n in 1u32..5, seed in any::<u64>(), max_b in 0u64..6) {
        let blocks = random_blocks(n, seed, max_b);
        for policy in [
            BufferPolicy::Ideal,
            BufferPolicy::Unbuffered,
            BufferPolicy::Buffered { min_direct: 2 },
        ] {
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let result = all_to_all_exchange(&mut net, blocks.clone(), policy);
            check_delivery(n, &blocks, &result);
            let r = net.finalize();
            prop_assert!(r.time >= r.critical_elems as f64);
        }
    }

    /// SBnT routing delivers the same random block matrices (n-port).
    #[test]
    fn sbnt_random_blocks(n in 1u32..5, seed in any::<u64>(), max_b in 0u64..6) {
        let blocks = random_blocks(n, seed, max_b);
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let result = all_to_all_sbnt(&mut net, blocks.clone());
        check_delivery(n, &blocks, &result);
        net.finalize();
    }

    /// Exchange and SBnT agree on total delivered volume.
    #[test]
    fn exchange_and_sbnt_agree(n in 1u32..5, seed in any::<u64>()) {
        let blocks = random_blocks(n, seed, 4);
        let run_elems = |result: Vec<Vec<cubecomm::Block<u64>>>| -> usize {
            result.iter().flatten().map(|b| b.data.len()).sum()
        };
        let mut net1 = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let a = run_elems(all_to_all_exchange(&mut net1, blocks.clone(), BufferPolicy::Ideal));
        let mut net2 = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let b = run_elems(all_to_all_sbnt(&mut net2, blocks));
        prop_assert_eq!(a, b);
    }

    /// One-to-all delivers random per-destination payloads through both
    /// the SBT and the rotated-SBT family, from any root.
    #[test]
    fn one_to_all_random(n in 1u32..6, root_raw in any::<u64>(), len in 0usize..9) {
        let root = NodeId(root_raw & cubeaddr::mask(n));
        let blocks: Vec<Vec<u64>> = (0..(1u64 << n))
            .map(|d| (0..(len as u64 + d % 3)).map(|i| d * 100 + i).collect())
            .collect();
        let mut net1 = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let a = one_to_all_sbt(&mut net1, root, blocks.clone());
        prop_assert_eq!(&a, &blocks);
        net1.finalize();
        let mut net2 = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let b = one_to_all_rotated_sbts(&mut net2, root, blocks.clone());
        prop_assert_eq!(&b, &blocks);
        net2.finalize();
    }

    /// Some-to-all with a random split of the cube dimensions into l and
    /// k sets delivers everything, whatever the subset shape.
    #[test]
    fn some_to_all_random_split(n in 1u32..5, mask_raw in any::<u64>(), seed in any::<u64>()) {
        let l_dims = DimSet(mask_raw & cubeaddr::mask(n));
        let k_dims = l_dims.complement(n);
        let sources = 1usize << l_dims.len();
        let num = 1usize << n;
        let blocks: Vec<Vec<Vec<u64>>> = (0..sources as u64)
            .map(|i| {
                (0..num as u64)
                    .map(|d| {
                        let len = ((i + d + seed) % 4) as usize;
                        vec![i * 100 + d; len]
                    })
                    .collect()
            })
            .collect();
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let result = some_to_all(&mut net, l_dims, k_dims, blocks.clone(), BufferPolicy::Ideal);
        // Every nonempty block arrived at its destination.
        let mut total = 0usize;
        for (d, blks) in result.iter().enumerate() {
            for b in blks {
                prop_assert_eq!(b.dst.index(), d);
                total += b.data.len();
            }
        }
        let want: usize = blocks.iter().flatten().map(Vec::len).sum();
        prop_assert_eq!(total, want);
        net.finalize();
    }
}
