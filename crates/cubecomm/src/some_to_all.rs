//! Some-to-all and all-to-some personalized communication (paper §3.3,
//! Theorem 1, Table 3).
//!
//! When the real-processor dimension sets before and after a
//! rearrangement are disjoint but of different sizes
//! (`|R_b| ≠ |R_a|`, `I = ∅`), the operation decomposes into
//! `k = ||R_b| - |R_a||` steps of one-to-all (splitting) or all-to-one
//! (accumulation) personalized communication and
//! `l = min(|R_b|, |R_a|)` steps of all-to-all personalized
//! communication. Theorem 1: the steps commute, and the transfer time is
//! minimized by splitting *first* (some-to-all) or accumulating *last*
//! (all-to-some).
//!
//! Both phases are realized with the standard exchange kernel
//! ([`exchange_over_dims`]) — a splitting step *is* an exchange step in
//! which only the data-holding half of each pair has anything to send.

use crate::block::{Block, BlockMsg};
use crate::exchange::{exchange_over_dims, BufferPolicy};
use cubeaddr::{DimSet, NodeId};
use cubesim::SimNet;

/// Some-to-all personalized communication: the `2^l` *source* nodes
/// (those whose `k_dims` bits are all zero) each hold one block per node
/// of the cube; afterwards every node holds its blocks.
///
/// `blocks[i][dst]` is the payload from the `i`-th source (sources
/// enumerated in ascending node order) to node `dst`. The dimension sets
/// must partition the cube (`l_dims ∪ k_dims = {0..n}`, disjoint).
///
/// Splitting (over `k_dims`) runs first, per Theorem 1.
pub fn some_to_all<T: Clone + Send + Sync>(
    net: &mut SimNet<BlockMsg<T>>,
    l_dims: DimSet,
    k_dims: DimSet,
    blocks: Vec<Vec<Vec<T>>>,
    policy: BufferPolicy,
) -> Vec<Vec<Block<T>>> {
    let held = seed_sources(net, l_dims, k_dims, blocks);
    let dims = phase_order(l_dims, k_dims, true);
    exchange_over_dims(net, held, &dims, policy)
}

/// The same operation with the phases in the *suboptimal* order
/// (all-to-all first), for demonstrating Theorem 1's claim.
pub fn some_to_all_suboptimal<T: Clone + Send + Sync>(
    net: &mut SimNet<BlockMsg<T>>,
    l_dims: DimSet,
    k_dims: DimSet,
    blocks: Vec<Vec<Vec<T>>>,
    policy: BufferPolicy,
) -> Vec<Vec<Block<T>>> {
    let held = seed_sources(net, l_dims, k_dims, blocks);
    let dims = phase_order(l_dims, k_dims, false);
    exchange_over_dims(net, held, &dims, policy)
}

/// All-to-some personalized communication: every node holds one block per
/// *destination* node (destinations = nodes with zero `k_dims` bits);
/// accumulation over `k_dims` runs last, per Theorem 1.
///
/// `blocks[src][j]` is the payload for the `j`-th destination.
pub fn all_to_some<T: Clone + Send + Sync>(
    net: &mut SimNet<BlockMsg<T>>,
    l_dims: DimSet,
    k_dims: DimSet,
    blocks: Vec<Vec<Vec<T>>>,
    policy: BufferPolicy,
) -> Vec<Vec<Block<T>>> {
    let num = net.num_nodes();
    check_partition(net, l_dims, k_dims);
    assert_eq!(blocks.len(), num);
    let dsts: Vec<NodeId> = subcube_nodes(net.n(), k_dims);
    let held: Vec<Vec<Block<T>>> = blocks
        .into_iter()
        .enumerate()
        .map(|(s, per_dst)| {
            assert_eq!(per_dst.len(), dsts.len(), "one block per destination node");
            per_dst
                .into_iter()
                .zip(&dsts)
                .filter(|(data, _)| !data.is_empty())
                .map(|(data, &d)| Block::new(NodeId(s as u64), d, data))
                .collect()
        })
        .collect();
    // All-to-all over l first, accumulation over k last.
    let mut dims: Vec<u32> = l_dims.iter_desc().collect();
    dims.extend(k_dims.iter_desc());
    exchange_over_dims(net, held, &dims, policy)
}

/// Nodes of the subcube where all `k_dims` bits are zero, ascending.
pub(crate) fn subcube_nodes(n: u32, k_dims: DimSet) -> Vec<NodeId> {
    NodeId::all(n).filter(|x| x.bits() & k_dims.0 == 0).collect()
}

#[track_caller]
fn check_partition<T>(net: &SimNet<BlockMsg<T>>, l_dims: DimSet, k_dims: DimSet) {
    assert!(l_dims.is_disjoint(k_dims), "l and k dimension sets overlap");
    assert_eq!(l_dims.union(k_dims), DimSet::all(net.n()), "l ∪ k must cover the cube dimensions");
}

#[track_caller]
fn seed_sources<T>(
    net: &SimNet<BlockMsg<T>>,
    l_dims: DimSet,
    k_dims: DimSet,
    blocks: Vec<Vec<Vec<T>>>,
) -> Vec<Vec<Block<T>>> {
    check_partition(net, l_dims, k_dims);
    let num = net.num_nodes();
    let sources = subcube_nodes(net.n(), k_dims);
    assert_eq!(blocks.len(), sources.len(), "one block set per source node");
    let mut held: Vec<Vec<Block<T>>> = (0..num).map(|_| Vec::new()).collect();
    for (src, per_dst) in sources.iter().zip(blocks) {
        assert_eq!(per_dst.len(), num, "one (possibly empty) block per destination");
        held[src.index()] = per_dst
            .into_iter()
            .enumerate()
            .filter(|(_, data)| !data.is_empty())
            .map(|(d, data)| Block::new(*src, NodeId(d as u64), data))
            .collect();
    }
    held
}

pub(crate) fn phase_order(l_dims: DimSet, k_dims: DimSet, split_first: bool) -> Vec<u32> {
    let mut dims: Vec<u32> = Vec::new();
    if split_first {
        dims.extend(k_dims.iter_desc());
        dims.extend(l_dims.iter_desc());
    } else {
        dims.extend(l_dims.iter_desc());
        dims.extend(k_dims.iter_desc());
    }
    dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    /// blocks[i][dst] with b elements each.
    fn source_blocks(n_sources: usize, num: usize, b: usize) -> Vec<Vec<Vec<u64>>> {
        (0..n_sources as u64)
            .map(|i| (0..num as u64).map(|d| vec![i * 1000 + d; b]).collect())
            .collect()
    }

    fn check(result: &[Vec<Block<u64>>], n_sources: usize, b: usize) {
        for (d, blks) in result.iter().enumerate() {
            assert_eq!(blks.len(), n_sources, "node {d}");
            for blk in blks {
                assert_eq!(blk.dst.index(), d);
                assert_eq!(blk.data.len(), b);
            }
        }
    }

    #[test]
    fn some_to_all_delivers() {
        // n = 4, l = 2 (dims {0,1}), k = 2 (dims {2,3}): 4 sources.
        let n = 4;
        let (l, k) = (DimSet::from_dims([0, 1]), DimSet::from_dims([2, 3]));
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let result = some_to_all(&mut net, l, k, source_blocks(4, 16, 2), BufferPolicy::Ideal);
        check(&result, 4, 2);
        let r = net.finalize();
        assert_eq!(r.rounds, 4); // k + l steps.
    }

    #[test]
    fn all_to_some_delivers() {
        let n = 3;
        let (l, k) = (DimSet::from_dims([0]), DimSet::from_dims([1, 2]));
        // 2 destinations (nodes 0 and 1); every node sends to both.
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let blocks = source_blocks(8, 2, 3);
        let result = all_to_some(&mut net, l, k, blocks, BufferPolicy::Ideal);
        net.finalize();
        // Destination nodes got 8 blocks each; others none.
        assert_eq!(result[0].len(), 8);
        assert_eq!(result[1].len(), 8);
        for (d, got) in result.iter().enumerate().skip(2) {
            assert!(got.is_empty(), "node {d} should end empty");
        }
    }

    #[test]
    fn theorem1_split_first_is_faster() {
        // Splitting first moves the personalized halves early, so later
        // all-to-all steps transfer less data per exchange than if the
        // whole aggregate bounced around first.
        let n = 4;
        let (l, k) = (DimSet::from_dims([0, 1]), DimSet::from_dims([2, 3]));
        let run = |optimal: bool| {
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let blocks = source_blocks(4, 16, 4);
            let _ = if optimal {
                some_to_all(&mut net, l, k, blocks, BufferPolicy::Ideal)
            } else {
                some_to_all_suboptimal(&mut net, l, k, blocks, BufferPolicy::Ideal)
            };
            net.finalize()
        };
        let good = run(true);
        let bad = run(false);
        assert_eq!(good.rounds, bad.rounds);
        assert!(
            good.transfer_time < bad.transfer_time,
            "theorem 1 violated: split-first {} vs all-to-all-first {}",
            good.transfer_time,
            bad.transfer_time
        );
    }

    #[test]
    fn degenerate_k_zero_is_all_to_all() {
        let n = 2;
        let (l, k) = (DimSet::all(2), DimSet::EMPTY);
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let result = some_to_all(&mut net, l, k, source_blocks(4, 4, 1), BufferPolicy::Ideal);
        check(&result, 4, 1);
        assert_eq!(net.finalize().rounds, 2);
    }

    #[test]
    fn degenerate_l_zero_is_one_to_all() {
        let n = 3;
        let (l, k) = (DimSet::EMPTY, DimSet::all(3));
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let result = some_to_all(&mut net, l, k, source_blocks(1, 8, 2), BufferPolicy::Ideal);
        check(&result, 1, 2);
        assert_eq!(net.finalize().rounds, 3);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_dim_sets_rejected() {
        let mut net: SimNet<BlockMsg<u64>> = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let _ = some_to_all(
            &mut net,
            DimSet::from_dims([0, 1]),
            DimSet::from_dims([1]),
            vec![],
            BufferPolicy::Ideal,
        );
    }
}
