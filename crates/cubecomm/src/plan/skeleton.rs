//! Factored, parallel schedule construction.
//!
//! The original planners (preserved verbatim in [`super::reference`])
//! rebuilt every schedule by simulating the engine: per-node `Vec`s of
//! held blocks, partitioned and re-scattered once per round, across all
//! `2^n` nodes — O(2^n) work and allocations per round even when only a
//! handful of nodes send. The paper's algorithms are node-symmetric by
//! design, so almost all of that work is redundant: a block's entire
//! trajectory is a function of its own addresses, not of the global
//! state.
//!
//! Every builder here is factored into the same two phases:
//!
//! 1. **Skeleton (serial, allocation-light).** The node-independent
//!    round structure is computed once, directly from block addresses:
//!    the exchange family moves a block at step `t` iff bit `dims[t]` of
//!    `src ⊕ dst` is set, and the holder is `src` relabeled by the
//!    already-exchanged dimension mask; SBT/rotated-tree blocks sit at
//!    logical node `l(dst) mod 2^j` in round `j` (instantiated
//!    per-physical-node through the tree's relabeling); SBnT paths
//!    depend only on the relative address `src ⊕ dst`, so each distinct
//!    relative address's path is computed once and shared. Scratch
//!    buffers (`buckets`, `touched`, keep/move lists) are hoisted out of
//!    the round loop and reused.
//! 2. **Instantiation (parallel, deterministic).** The per-round
//!    [`PlanRound`]s — where the allocation-heavy `PlannedMsg`/block-id
//!    vectors are materialized — are fanned over
//!    [`cubesim::par::par_map`], which returns results in input order on
//!    any worker count. Emitted schedules are therefore byte-identical
//!    at any `CUBEBENCH_THREADS`, the same determinism contract the
//!    engines make, and byte-identical to [`super::reference`] (enforced
//!    by the `plan_reference` property tests).
//!
//! The e-cube planner cannot be fully factored — its round structure is
//! a contention simulation — but its simulation loop is rebuilt on the
//! flat router's data plane: intrusive FIFO slabs (`head`/`tail`/`next`
//! arrays, no per-lane `VecDeque`) and a live-lane bitmap, so a round
//! costs O(live lanes), not O(2^n · n) full-lattice scans.

use super::{chunk_ids, BlockMeta, PlanRound, PlannedMsg};
use crate::exchange::BufferPolicy;
use crate::sbnt::sbnt_path_dims;
use crate::sbt::Sbt;
use cubeaddr::NodeId;
use cubesim::par;

/// One exchange step's instantiated skeleton: the dimension crossed, its
/// position in the dimension sequence, and the senders with their block
/// runs (senders ascending, blocks in the engine's held order).
struct ExchangeStep {
    dim: u32,
    step_index: usize,
    /// `(node, start, end)` runs into `movers`, senders ascending.
    senders: Vec<(u64, u32, u32)>,
    /// Moving block ids, grouped by sender.
    movers: Vec<u32>,
}

/// Rounds of [`super::exchange_plan`]: dimension `dims[t]` is exchanged
/// at step `t`, under `policy`.
///
/// A block moves at step `t` iff bit `dims[t]` of `src ⊕ dst` is set and
/// the dimension has not been exchanged before; its holder is `src` with
/// every already-exchanged bit replaced by `dst`'s. The engine's held
/// order (which fixes block order inside a message) is maintained as one
/// global rank list: each step stably partitions it into keepers then
/// movers, whose restriction to any node reproduces that node's list.
pub(super) fn exchange_rounds(
    n: u32,
    blocks: &[BlockMeta],
    dims: &[u32],
    policy: BufferPolicy,
) -> Vec<PlanRound> {
    let num = cubeaddr::num_nodes(n);
    let mut rank: Vec<u32> = (0..blocks.len() as u32).collect();
    // Round-local scratch, hoisted and reused across steps.
    let mut keeps: Vec<u32> = Vec::with_capacity(blocks.len());
    let mut moved: Vec<u32> = Vec::with_capacity(blocks.len());
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num];
    let mut touched: Vec<u64> = Vec::new();
    let mut seen = 0u64;
    let mut steps: Vec<ExchangeStep> = Vec::with_capacity(dims.len());
    for (step_index, &j) in dims.iter().enumerate() {
        assert!(j < n, "exchange dimension {j} outside the {n}-cube");
        let bit = 1u64 << j;
        let fresh = seen & bit == 0;
        keeps.clear();
        moved.clear();
        for &id in &rank {
            let b = &blocks[id as usize];
            if fresh && (b.src.bits() ^ b.dst.bits()) & bit != 0 {
                let loc = (b.src.bits() & !seen) | (b.dst.bits() & seen);
                let slot = &mut buckets[loc as usize];
                if slot.is_empty() {
                    touched.push(loc);
                }
                slot.push(id);
                moved.push(id);
            } else {
                keeps.push(id);
            }
        }
        touched.sort_unstable();
        let mut movers: Vec<u32> = Vec::with_capacity(moved.len());
        let mut senders: Vec<(u64, u32, u32)> = Vec::with_capacity(touched.len());
        for &x in &touched {
            let slot = &mut buckets[x as usize];
            let start = movers.len() as u32;
            movers.extend_from_slice(slot);
            slot.clear();
            senders.push((x, start, movers.len() as u32));
        }
        touched.clear();
        steps.push(ExchangeStep { dim: j, step_index, senders, movers });
        // Keepers first, movers after — the arrival order at every node.
        rank.clear();
        rank.extend_from_slice(&keeps);
        rank.extend_from_slice(&moved);
        seen |= bit;
    }
    par::par_map(&steps, |s| emit_exchange_step(s, blocks, policy)).concat()
}

/// Materializes one exchange step's rounds under the send policy —
/// exactly the engine's per-step emission, restricted to actual senders.
fn emit_exchange_step(
    step: &ExchangeStep,
    blocks: &[BlockMeta],
    policy: BufferPolicy,
) -> Vec<PlanRound> {
    let elems_of = |ids: &[u32]| -> u64 { ids.iter().map(|&i| blocks[i as usize].elems).sum() };
    let run = |&(_, s, e): &(u64, u32, u32)| &step.movers[s as usize..e as usize];
    match policy {
        BufferPolicy::Ideal => {
            // One round per step, sends or not: the engine always pays
            // the round boundary.
            let msgs = step
                .senders
                .iter()
                .map(|sender| PlannedMsg {
                    src: NodeId(sender.0),
                    dim: step.dim,
                    blocks: run(sender).to_vec(),
                })
                .collect();
            vec![PlanRound { msgs, copies: Vec::new() }]
        }
        BufferPolicy::Unbuffered => {
            let chunked: Vec<(u64, Vec<Vec<u32>>)> = step
                .senders
                .iter()
                .map(|sender| (sender.0, chunk_ids(run(sender).to_vec(), step.step_index, blocks)))
                .collect();
            let max_chunks = chunked.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
            // One sub-round per chunk ordinal; a step nobody sends in
            // costs no rounds at all.
            (0..max_chunks)
                .map(|i| PlanRound {
                    msgs: chunked
                        .iter()
                        .filter(|(_, c)| i < c.len())
                        .map(|(x, c)| PlannedMsg {
                            src: NodeId(*x),
                            dim: step.dim,
                            blocks: c[i].clone(),
                        })
                        .collect(),
                    copies: Vec::new(),
                })
                .collect()
        }
        BufferPolicy::Buffered { min_direct } => {
            // (direct chunks, gathered ids) per sender, as the engine
            // splits them.
            let split: Vec<(u64, Vec<Vec<u32>>, Vec<u32>)> = step
                .senders
                .iter()
                .map(|sender| {
                    let mut direct = Vec::new();
                    let mut gathered = Vec::new();
                    for chunk in chunk_ids(run(sender).to_vec(), step.step_index, blocks) {
                        if elems_of(&chunk) >= min_direct as u64 {
                            direct.push(chunk);
                        } else {
                            gathered.extend(chunk);
                        }
                    }
                    (sender.0, direct, gathered)
                })
                .collect();
            let max_direct = split.iter().map(|(_, d, _)| d.len()).max().unwrap_or(0);
            let mut rounds: Vec<PlanRound> = (0..max_direct)
                .map(|i| PlanRound {
                    msgs: split
                        .iter()
                        .filter(|(_, direct, _)| i < direct.len())
                        .map(|(x, direct, _)| PlannedMsg {
                            src: NodeId(*x),
                            dim: step.dim,
                            blocks: direct[i].clone(),
                        })
                        .collect(),
                    copies: Vec::new(),
                })
                .collect();
            if split.iter().any(|(_, _, g)| !g.is_empty()) {
                let mut round = PlanRound::default();
                for (x, _, gathered) in &split {
                    if !gathered.is_empty() {
                        round.copies.push((NodeId(*x), elems_of(gathered)));
                        round.msgs.push(PlannedMsg {
                            src: NodeId(*x),
                            dim: step.dim,
                            blocks: gathered.clone(),
                        });
                    }
                }
                rounds.push(round);
            }
            rounds
        }
    }
}

/// Rounds of [`super::one_to_all_sbt_plan`]: in round `j` the block for
/// logical destination `l` sits at logical node `l mod 2^j` and is sent
/// iff bit `j` of `l` is set. The logical structure is the skeleton; the
/// tree's `physical`/`physical_dim` relabeling instantiates it.
pub(super) fn sbt_rounds(n: u32, blocks: &[BlockMeta], tree: &Sbt) -> Vec<PlanRound> {
    let logical: Vec<u64> = blocks.iter().map(|b| tree.logical(b.dst)).collect();
    let rounds: Vec<u32> = (0..n).collect();
    par::par_map(&rounds, |&j| {
        let dim = tree.physical_dim(j);
        let mut round = PlanRound::default();
        // Movers in id order (= held order: all blocks share the root
        // history), grouped by their logical holder.
        let mut movers: Vec<(u64, u32)> = (0..blocks.len() as u32)
            .filter(|&id| logical[id as usize] >> j & 1 == 1)
            .map(|id| (logical[id as usize] & cubeaddr::mask(j), id))
            .collect();
        movers.sort_by_key(|&(lx, _)| lx);
        emit_grouped(&mut round, &movers, |lx| (tree.physical(lx), dim));
        round
    })
}

/// Rounds of [`super::one_to_all_trees_plan`]: the SBT skeleton of
/// [`sbt_rounds`], once per tree per round, messages in tree-major
/// order. `tree_of[id]` is the tree routing block `id`.
pub(super) fn trees_rounds(
    n: u32,
    blocks: &[BlockMeta],
    trees: &[Sbt],
    tree_of: &[u32],
) -> Vec<PlanRound> {
    // Per-tree id lists (ascending) and logical destinations, computed
    // once and shared by every round.
    let mut ids_by_tree: Vec<Vec<u32>> = vec![Vec::new(); trees.len()];
    let mut logical: Vec<u64> = Vec::with_capacity(blocks.len());
    for (id, (b, &k)) in blocks.iter().zip(tree_of).enumerate() {
        ids_by_tree[k as usize].push(id as u32);
        logical.push(trees[k as usize].logical(b.dst));
    }
    let rounds: Vec<u32> = (0..n).collect();
    par::par_map(&rounds, |&j| {
        let mut round = PlanRound::default();
        for (tree, ids) in trees.iter().zip(&ids_by_tree) {
            let dim = tree.physical_dim(j);
            let mut movers: Vec<(u64, u32)> = ids
                .iter()
                .filter(|&&id| logical[id as usize] >> j & 1 == 1)
                .map(|&id| (logical[id as usize] & cubeaddr::mask(j), id))
                .collect();
            movers.sort_by_key(|&(lx, _)| lx);
            emit_grouped(&mut round, &movers, |lx| (tree.physical(lx), dim));
        }
        round
    })
}

/// Appends one message per `(logical holder)` group of `movers` (sorted
/// by holder, ids in held order within a group) to `round`.
fn emit_grouped(
    round: &mut PlanRound,
    movers: &[(u64, u32)],
    src_dim: impl Fn(u64) -> (NodeId, u32),
) {
    let mut i = 0;
    while i < movers.len() {
        let lx = movers[i].0;
        let start = i;
        while i < movers.len() && movers[i].0 == lx {
            i += 1;
        }
        let (src, dim) = src_dim(lx);
        round.msgs.push(PlannedMsg {
            src,
            dim,
            blocks: movers[start..i].iter().map(|&(_, id)| id).collect(),
        });
    }
}

/// One SBnT round's instantiated skeleton: `(node, dim, start, end)`
/// message groups over the round's active-block snapshot.
struct SbntRound {
    groups: Vec<(u64, u32, u32, u32)>,
    ids: Vec<u32>,
}

/// Rounds of [`super::all_to_all_sbnt_plan`]. The skeleton is the path
/// table: SBnT paths depend only on the relative address `src ⊕ dst`
/// (trees at different roots are translations of each other), so each
/// distinct relative address's path is computed once and shared by all
/// `2^n` source nodes.
pub(super) fn sbnt_rounds(n: u32, blocks: &[BlockMeta]) -> Vec<PlanRound> {
    let num = cubeaddr::num_nodes(n);
    let mut path_of_rel: Vec<Vec<u32>> = vec![Vec::new(); num];
    let mut rel_of: Vec<u64> = Vec::with_capacity(blocks.len());
    let mut cur: Vec<u64> = Vec::with_capacity(blocks.len());
    let mut pos: Vec<u32> = vec![0; blocks.len()];
    let mut rank: Vec<u32> = Vec::new();
    for (id, b) in blocks.iter().enumerate() {
        let rel = b.src.bits() ^ b.dst.bits();
        rel_of.push(rel);
        cur.push(b.src.bits());
        if rel != 0 {
            rank.push(id as u32);
            if path_of_rel[rel as usize].is_empty() {
                path_of_rel[rel as usize] = sbnt_path_dims(b.src, b.dst, n);
            }
        }
    }
    // The dimension block `id` crosses next (its path at its position).
    fn next_dim(path_of_rel: &[Vec<u32>], rel_of: &[u64], pos: &[u32], id: u32) -> u32 {
        path_of_rel[rel_of[id as usize] as usize][pos[id as usize] as usize]
    }
    let mut rounds: Vec<SbntRound> = Vec::new();
    while !rank.is_empty() {
        // Pending order at every node is the restriction of one global
        // rank; grouping by (node, dim) is a stable sort of it.
        let key = |id: u32| (cur[id as usize], next_dim(&path_of_rel, &rel_of, &pos, id));
        rank.sort_by_key(|&id| key(id));
        let mut groups: Vec<(u64, u32, u32, u32)> = Vec::new();
        let mut i = 0;
        while i < rank.len() {
            let k = key(rank[i]);
            let start = i;
            while i < rank.len() && key(rank[i]) == k {
                i += 1;
            }
            groups.push((k.0, k.1, start as u32, i as u32));
        }
        rounds.push(SbntRound { groups, ids: rank.clone() });
        for &id in &rank {
            let d = next_dim(&path_of_rel, &rel_of, &pos, id);
            cur[id as usize] ^= 1u64 << d;
            pos[id as usize] += 1;
        }
        rank.retain(|&id| {
            (pos[id as usize] as usize) < path_of_rel[rel_of[id as usize] as usize].len()
        });
    }
    par::par_map(&rounds, |r| PlanRound {
        msgs: r
            .groups
            .iter()
            .map(|&(x, dim, s, e)| PlannedMsg {
                src: NodeId(x),
                dim,
                blocks: r.ids[s as usize..e as usize].to_vec(),
            })
            .collect(),
        copies: Vec::new(),
    })
}

/// "Empty" sentinel for the intrusive lane FIFOs (block ids are `u32`
/// and `check_blocks` caps the id space below `u32::MAX`).
const NONE: u32 = u32::MAX;

/// Appends `id` to the lane's FIFO, marking the lane live if it was
/// empty.
fn lane_push(
    head: &mut [u32],
    tail: &mut [u32],
    next: &mut [u32],
    live: &mut [u64],
    lane: usize,
    id: u32,
) {
    next[id as usize] = NONE;
    if tail[lane] == NONE {
        head[lane] = id;
        live[lane / 64] |= 1u64 << (lane % 64);
    } else {
        next[tail[lane] as usize] = id;
    }
    tail[lane] = id;
}

/// Rounds of [`super::ecube_route_plan`]: the dimension-ordered router's
/// contention simulation on the flat router's data plane — intrusive
/// per-lane FIFOs (a block sits in at most one queue, so one `next` slot
/// per block suffices) and a live-lane bitmap whose ascending scan
/// reproduces the router's lanes-ascending, dimensions-ascending staging
/// order exactly.
pub(super) fn ecube_rounds(n: u32, blocks: &[BlockMeta]) -> Vec<PlanRound> {
    let nd = n as usize;
    let num = cubeaddr::num_nodes(n);
    let lanes = num * nd;
    let mut head = vec![NONE; lanes];
    let mut tail = vec![NONE; lanes];
    let mut next = vec![NONE; blocks.len()];
    let mut live = vec![0u64; lanes.div_ceil(64)];
    let mut in_flight = 0usize;
    for (id, b) in blocks.iter().enumerate() {
        let diff = b.src.bits() ^ b.dst.bits();
        if diff != 0 {
            let lane = b.src.index() * nd + diff.trailing_zeros() as usize;
            lane_push(&mut head, &mut tail, &mut next, &mut live, lane, id as u32);
            in_flight += 1;
        }
    }
    // Flat staged-hop log: `(src, dim, id)` records in send order, with
    // round boundaries — the whole simulation allocates nothing per hop.
    let mut flat: Vec<(u64, u32, u32)> = Vec::new();
    let mut bounds: Vec<usize> = vec![0];
    let mut commit: Vec<Vec<(u64, u32)>> = vec![Vec::new(); nd];
    while in_flight > 0 {
        // Stage: pop the head of every live lane, lanes ascending (the
        // router's node-major, dimension-minor scan).
        for (w, word) in live.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let lane = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let id = head[lane];
                head[lane] = next[id as usize];
                if head[lane] == NONE {
                    tail[lane] = NONE;
                    *word &= !(1u64 << (lane % 64));
                }
                commit[lane % nd].push(((lane / nd) as u64, id));
            }
        }
        // Commit dimension-major — the router's send order.
        for (d, staged) in commit.iter_mut().enumerate() {
            for (src, id) in staged.drain(..) {
                flat.push((src, d as u32, id));
            }
        }
        // Land in send order: retire arrivals, requeue the rest on their
        // next e-cube dimension.
        for &(src, d, id) in &flat[bounds[bounds.len() - 1]..] {
            let land = src ^ (1u64 << d);
            let diff = land ^ blocks[id as usize].dst.bits();
            if diff == 0 {
                in_flight -= 1;
            } else {
                let lane = land as usize * nd + diff.trailing_zeros() as usize;
                lane_push(&mut head, &mut tail, &mut next, &mut live, lane, id);
            }
        }
        bounds.push(flat.len());
    }
    let ranges: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
    par::par_map(&ranges, |&(s, e)| PlanRound {
        msgs: flat[s..e]
            .iter()
            .map(|&(src, dim, id)| PlannedMsg { src: NodeId(src), dim, blocks: vec![id] })
            .collect(),
        copies: Vec::new(),
    })
}
