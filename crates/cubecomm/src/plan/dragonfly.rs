//! Swapped Dragonfly planners: Draper's routing algorithms on `D3(K,M)`
//! as static [`CommSchedule`]s.
//!
//! Two of the algorithm family from *Four Algorithms on the Swapped
//! Dragonfly* are planned here, both emitting the same link-claim IR the
//! cube planners emit — so the `cubecheck` rule families (port
//! compliance, edge-disjointness, packet budgets, conservation) verify
//! them unchanged, and [`crate::graph::graph_route`]-style executions
//! can be cross-validated against them:
//!
//! * [`dragonfly_direct_plan`] — *direct* (minimal) routing: every
//!   message follows its local–global–local path one hop per round
//!   with per-link FIFO queueing, exactly mirroring
//!   [`crate::graph::graph_route`] on a [`SwappedDragonfly`] net (the
//!   Dragonfly twin of [`crate::plan::ecube_route_plan`]).
//! * [`dragonfly_swap_exchange_plan`] — the scheduled all-to-all: a
//!   rotation schedule of `2M - 1` rounds (gather toward gateways,
//!   one fully parallel global round, distribute from arrival routers)
//!   in which every directed link carries at most one message per
//!   round by construction, rather than by queueing.
//!
//! Neither family is dimension-ordered — local–global–local channel
//! chains revisit intra-group channels, so no fixed channel order
//! covers them; like the SBnT family their deadlock freedom comes from
//! round-synchronous batching, and the plans say so
//! (`dimension_ordered: false`).

use super::{
    check_blocks, fingerprint, BlockMeta, CommSchedule, PlanCache, PlanKey, PlanRound, PlannedMsg,
};
use cubeaddr::NodeId;
use cubesim::PortMode;
use cubesync::sync::Arc;
use cubetopo::{MinimalRoute, SwappedDragonfly, TopoSpec, Topology};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Plans minimal (direct) store-and-forward routing on `D3(K,M)`: every
/// message follows its local–global–local path, one message per
/// directed link per round, FIFO per link — the same decisions in the
/// same order as [`crate::graph::graph_route`] on a Dragonfly net, so
/// the plan's per-round claims coincide with that execution's
/// [`cubesim::CommReport::link_history`].
///
/// `msgs` are `(src, dst, elems)`; zero-element and local messages plan
/// no hops (local blocks still appear in the plan's block list with an
/// empty path — conservation treats them as already delivered).
#[track_caller]
pub fn dragonfly_direct_plan(k: u32, m: u32, msgs: &[(NodeId, NodeId, u64)]) -> CommSchedule {
    let d = SwappedDragonfly::new(k, m);
    let topo = TopoSpec::from(d);
    let blocks: Vec<BlockMeta> = msgs
        .iter()
        .filter(|&&(_, _, elems)| elems > 0)
        .map(|&(src, dst, elems)| BlockMeta { src, dst, elems })
        .collect();
    check_blocks(&topo, &blocks);

    let ports = d.ports() as usize;
    // Per-node, per-port FIFOs of block ids — the planner's stand-in for
    // the router's lanes. `active` tracks nodes with queued blocks, in
    // ascending order (the router's live-lane bitmap reads out sorted).
    let mut queues: BTreeMap<u64, Vec<VecDeque<u32>>> = BTreeMap::new();
    let mut active: BTreeSet<u64> = BTreeSet::new();
    let mut pending = 0usize;
    for (id, b) in blocks.iter().enumerate() {
        if let Some(p) = d.next_port(b.src.bits(), b.dst.bits()) {
            queues.entry(b.src.bits()).or_insert_with(|| vec![VecDeque::new(); ports])[p as usize]
                .push_back(id as u32);
            active.insert(b.src.bits());
            pending += 1;
        }
    }

    let mut rounds = Vec::new();
    while pending > 0 {
        // Stage: one queue head per non-empty outgoing link, nodes
        // ascending, ports ascending per node; commit port-major — the
        // router's exact send order.
        let mut commit: Vec<Vec<(u64, u32)>> = vec![Vec::new(); ports];
        let staging: Vec<u64> = active.iter().copied().collect();
        for x in staging {
            let q = queues.get_mut(&x).expect("active node has queues");
            for (p, fifo) in q.iter_mut().enumerate() {
                if let Some(id) = fifo.pop_front() {
                    commit[p].push((x, id));
                }
            }
            if q.iter().all(VecDeque::is_empty) {
                active.remove(&x);
            }
        }
        let mut round = PlanRound::default();
        for (p, sent) in commit.iter().enumerate() {
            for &(x, id) in sent {
                round.msgs.push(PlannedMsg { src: NodeId(x), dim: p as u32, blocks: vec![id] });
            }
        }
        // Deliver in send order: retire arrivals, requeue the rest.
        for (p, sent) in commit.iter().enumerate() {
            for &(x, id) in sent {
                let at = d.neighbor(x, p as u32).expect("planned route crossed an unwired port");
                match d.next_port(at, blocks[id as usize].dst.bits()) {
                    None => pending -= 1,
                    Some(np) => {
                        queues.entry(at).or_insert_with(|| vec![VecDeque::new(); ports])
                            [np as usize]
                            .push_back(id);
                        active.insert(at);
                    }
                }
            }
        }
        rounds.push(round);
    }

    CommSchedule {
        name: format!("dragonfly_direct/{}", d.label()),
        topo,
        ports: PortMode::AllPorts,
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Plans the scheduled Swapped-Dragonfly all-to-all (`sizes[s][d]`
/// elements from node `s` to node `d`, zeros dropped, the diagonal kept
/// in place): a `2M - 1`-round rotation schedule in which every
/// directed link carries at most one message per round by construction.
///
/// * **Gather** (rounds `t = 1 .. M-1`): router `r` of each group sends
///   one message to router `(r + t) mod M` — the in-group deliveries
///   bound for that router plus the remote-group blocks whose gateway
///   it is. The map `r → (r + t) mod M` is a permutation, so each round
///   uses each directed intra-group link at most once.
/// * **Global** (round `M`): every gateway router forwards each remote
///   group's accumulated blocks over its swap link — all `K·M·(M-1)·K`
///   wired global links fire in the same round, each exactly once.
/// * **Distribute** (rounds `M+1 .. 2M-1`): arrival routers rotate the
///   landed blocks to their final in-group destinations, mirroring the
///   gather phase.
#[track_caller]
pub fn dragonfly_swap_exchange_plan(k: u32, m: u32, sizes: &[Vec<u64>]) -> CommSchedule {
    let d = SwappedDragonfly::new(k, m);
    let topo = TopoSpec::from(d);
    let num = d.num_nodes();
    assert_eq!(sizes.len(), num, "need one size row per source");
    let mut blocks = Vec::new();
    for (s, per_dst) in sizes.iter().enumerate() {
        assert_eq!(per_dst.len(), num, "need one (possibly zero) size per destination");
        for (t, &elems) in per_dst.iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: NodeId(s as u64), dst: NodeId(t as u64), elems });
            }
        }
    }
    check_blocks(&topo, &blocks);

    let mm = u64::from(m);
    let kk = u64::from(k);
    let n_rounds = if m > 1 { 2 * m as usize - 1 } else { 1 };
    let global_round = m as usize - 1;
    // Per-round `(src, port) → block ids` accumulators; BTreeMap order
    // gives rounds with nodes ascending, ports ascending.
    let mut per_round: Vec<BTreeMap<(u64, u32), Vec<u32>>> =
        (0..n_rounds).map(|_| BTreeMap::new()).collect();

    for (id, b) in blocks.iter().enumerate() {
        let id = id as u32;
        let (gs, rs) = d.coords(b.src.bits());
        let (gd, rd) = d.coords(b.dst.bits());
        if b.src == b.dst {
            continue; // diagonal: stays in place, no claims
        }
        if gs == gd {
            // In-group delivery during the gather rotation.
            let t = (rd + mm - rs) % mm;
            per_round[t as usize - 1]
                .entry((b.src.bits(), d.intra_port(rs, rd)))
                .or_default()
                .push(id);
            continue;
        }
        // Remote group: gather to the gateway, cross, distribute.
        let gw = d.gateway_router(gd);
        if rs != gw {
            let t = (gw + mm - rs) % mm;
            per_round[t as usize - 1]
                .entry((b.src.bits(), d.intra_port(rs, gw)))
                .or_default()
                .push(id);
        }
        let gw_node = d.node_at(gs, gw);
        let gp = d.global_port_to(gw, gd).expect("gateway owns the link to gd");
        per_round[global_round].entry((gw_node, gp)).or_default().push(id);
        let ra = gs / kk; // arrival router: the swap of the source group
        if rd != ra {
            let t = (rd + mm - ra) % mm;
            per_round[global_round + t as usize]
                .entry((d.node_at(gd, ra), d.intra_port(ra, rd)))
                .or_default()
                .push(id);
        }
    }

    let rounds: Vec<PlanRound> = per_round
        .into_iter()
        .map(|msgs| PlanRound {
            msgs: msgs
                .into_iter()
                .map(|((src, port), blocks)| PlannedMsg { src: NodeId(src), dim: port, blocks })
                .collect(),
            copies: Vec::new(),
        })
        .collect();

    CommSchedule {
        name: format!("dragonfly_swap_exchange/{}", d.label()),
        topo,
        ports: PortMode::AllPorts,
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// [`dragonfly_direct_plan`] through a [`PlanCache`].
#[track_caller]
pub fn dragonfly_direct_plan_cached(
    cache: &PlanCache,
    k: u32,
    m: u32,
    msgs: &[(NodeId, NodeId, u64)],
) -> Arc<CommSchedule> {
    let key = PlanKey::new("dragonfly_direct", 0)
        .with_shape(u64::from(k), u64::from(m))
        .with_fingerprint(fingerprint(&msgs));
    cache.get_or_build(key, || dragonfly_direct_plan(k, m, msgs))
}

/// [`dragonfly_swap_exchange_plan`] through a [`PlanCache`].
#[track_caller]
pub fn dragonfly_swap_exchange_plan_cached(
    cache: &PlanCache,
    k: u32,
    m: u32,
    sizes: &[Vec<u64>],
) -> Arc<CommSchedule> {
    let key = PlanKey::new("dragonfly_swap_exchange", 0)
        .with_shape(u64::from(k), u64::from(m))
        .with_fingerprint(fingerprint(&sizes));
    cache.get_or_build(key, || dragonfly_swap_exchange_plan(k, m, sizes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_to_all_sizes(num: usize, elems: u64) -> Vec<Vec<u64>> {
        (0..num).map(|s| (0..num).map(|t| if s == t { 0 } else { elems }).collect()).collect()
    }

    #[test]
    fn direct_plan_single_message_takes_lgl_rounds() {
        let d = SwappedDragonfly::new(2, 4);
        // (5,3) -> (2,0): local, global, local (see graph router tests).
        let plan =
            dragonfly_direct_plan(2, 4, &[(NodeId(d.node_at(5, 3)), NodeId(d.node_at(2, 0)), 2)]);
        assert_eq!(plan.rounds.len(), 3);
        for round in &plan.rounds {
            assert_eq!(round.msgs.len(), 1);
        }
        assert!(!plan.dimension_ordered);
        assert_eq!(plan.topo, TopoSpec::dragonfly(2, 4));
    }

    #[test]
    fn direct_plan_contention_serializes() {
        // Both messages inject at group 1's gateway on the same global
        // link (see graph::tests::dragonfly_gateway_contention_serializes).
        let d = SwappedDragonfly::new(1, 3);
        let gw = NodeId(d.node_at(0, 1));
        let plan = dragonfly_direct_plan(
            1,
            3,
            &[(gw, NodeId(d.node_at(1, 0)), 1), (gw, NodeId(d.node_at(1, 2)), 1)],
        );
        assert_eq!(plan.rounds.len(), 3);
        assert_eq!(plan.rounds[0].msgs.len(), 1, "global link serializes");
    }

    #[test]
    fn direct_plan_keeps_local_blocks_pathless() {
        let plan =
            dragonfly_direct_plan(2, 2, &[(NodeId(3), NodeId(3), 5), (NodeId(0), NodeId(7), 0)]);
        assert!(plan.rounds.is_empty());
        assert_eq!(plan.blocks.len(), 1);
    }

    #[test]
    fn swap_exchange_has_2m_minus_1_rounds() {
        let d = SwappedDragonfly::new(2, 4);
        let plan = dragonfly_swap_exchange_plan(2, 4, &all_to_all_sizes(d.num_nodes(), 1));
        assert_eq!(plan.rounds.len(), 7);
        assert_eq!(plan.blocks.len(), d.num_nodes() * (d.num_nodes() - 1));
    }

    #[test]
    fn swap_exchange_rounds_are_edge_disjoint() {
        let d = SwappedDragonfly::new(2, 3);
        let plan = dragonfly_swap_exchange_plan(2, 3, &all_to_all_sizes(d.num_nodes(), 2));
        for (i, round) in plan.rounds.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for msg in &round.msgs {
                assert!(
                    seen.insert((msg.src, msg.dim)),
                    "round {i}: link ({}, {}) claimed twice",
                    msg.src,
                    msg.dim
                );
            }
        }
    }

    #[test]
    fn swap_exchange_global_round_fires_every_wired_global_link() {
        let d = SwappedDragonfly::new(2, 3);
        let plan = dragonfly_swap_exchange_plan(2, 3, &all_to_all_sizes(d.num_nodes(), 1));
        let global = &plan.rounds[d.m() as usize - 1];
        // Every wired global link carries one message: each of the KM
        // groups reaches the other KM - 1 groups over exactly one link.
        let expect = d.groups() * (d.groups() - 1);
        assert_eq!(global.msgs.len() as u64, expect);
        for msg in &global.msgs {
            assert!(msg.dim >= d.m() - 1, "global round uses only swap ports");
        }
    }

    #[test]
    fn swap_exchange_chains_connect_src_to_dst() {
        // Replay each block's claims in round order: the hops must chain
        // from its source to its destination over wired links.
        let d = SwappedDragonfly::new(2, 3);
        let plan = dragonfly_swap_exchange_plan(2, 3, &all_to_all_sizes(d.num_nodes(), 1));
        let mut at: Vec<u64> = plan.blocks.iter().map(|b| b.src.bits()).collect();
        for round in &plan.rounds {
            for msg in &round.msgs {
                for &id in &msg.blocks {
                    assert_eq!(at[id as usize], msg.src.bits(), "block {id} claimed off-node");
                    at[id as usize] = d.neighbor(msg.src.bits(), msg.dim).expect("wired link");
                }
            }
        }
        for (id, b) in plan.blocks.iter().enumerate() {
            assert_eq!(at[id], b.dst.bits(), "block {id} not delivered");
        }
    }

    #[test]
    fn swap_exchange_m1_is_one_global_round() {
        // D3(2,1): 2 groups of one router; the whole all-to-all is the
        // global round.
        let plan = dragonfly_swap_exchange_plan(2, 1, &all_to_all_sizes(2, 3));
        assert_eq!(plan.rounds.len(), 1);
        assert_eq!(plan.rounds[0].msgs.len(), 2);
    }

    #[test]
    fn cached_wrappers_hit_on_repeat() {
        let cache = PlanCache::new(8);
        let d = SwappedDragonfly::new(2, 2);
        let sizes = all_to_all_sizes(d.num_nodes(), 1);
        let a = dragonfly_swap_exchange_plan_cached(&cache, 2, 2, &sizes);
        let b = dragonfly_swap_exchange_plan_cached(&cache, 2, 2, &sizes);
        assert!(Arc::ptr_eq(&a, &b));
        let msgs = [(NodeId(0), NodeId(5), 4)];
        let c = dragonfly_direct_plan_cached(&cache, 2, 2, &msgs);
        let e = dragonfly_direct_plan_cached(&cache, 2, 2, &msgs);
        assert!(Arc::ptr_eq(&c, &e));
    }
}
