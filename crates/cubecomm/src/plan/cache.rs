//! A keyed, bounded plan cache: pay schedule construction once per
//! shape.
//!
//! Plans are pure functions of their inputs — every builder in
//! [`crate::plan`] is deterministic at any thread count — so repeated
//! requests for the same shape (figure sweeps re-linting the same
//! transpose plan at many machine points, `cubecheck` CI workloads, a
//! future service front-end) can share one construction. [`PlanCache`]
//! is a small LRU map from [`PlanKey`] to `Arc<CommSchedule>` with
//! hit/miss/eviction counters ([`CacheStats`]).
//!
//! # Keying and invalidation
//!
//! A [`PlanKey`] names a plan by *shape*, never by payload: the
//! algorithm tag, the cube dimension `n`, an optional `(p, q)` matrix
//! shape, an optional layout tag, an optional machine fingerprint
//! ([`MachineKey`] — [`MachineParams`] with its `f64` fields keyed by
//! bit pattern), and a 64-bit fingerprint of whatever remaining inputs
//! the algorithm takes (block lists, size matrices, dimension
//! sequences, policies). The `*_cached` wrappers below fingerprint the
//! *complete* planner input, so two keys collide only if every input
//! hashes identically — there is no invalidation protocol to run,
//! because nothing a key omits can influence the plan. Callers that key
//! by `(p, q, layout, machine)` instead take responsibility for that
//! tuple determining their inputs. Entries are only ever dropped by LRU
//! eviction (capacity pressure) or [`PlanCache::clear`].
//!
//! Lookups lock a [`Mutex`]; construction on a miss runs *outside* the
//! lock, so a slow build never blocks concurrent hits. Two threads
//! racing on the same missing key may both build — determinism makes
//! both results identical, and the first insert wins.

use super::CommSchedule;
use cubesim::{MachineParams, PortMode};
use cubesync::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};

/// [`MachineParams`] as a hashable cache-key component: `f64` fields
/// are keyed by their bit patterns, so any parameter change — however
/// small — keys a different plan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MachineKey {
    name: String,
    tau: u64,
    t_c: u64,
    max_packet: usize,
    t_copy: u64,
    ports: PortMode,
    pipelined: bool,
}

impl From<&MachineParams> for MachineKey {
    fn from(m: &MachineParams) -> Self {
        MachineKey {
            name: m.name.clone(),
            tau: m.tau.to_bits(),
            t_c: m.t_c.to_bits(),
            max_packet: m.max_packet,
            t_copy: m.t_copy.to_bits(),
            ports: m.ports,
            pipelined: m.pipelined,
        }
    }
}

/// Cache key: the shape of a plan request.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey {
    /// Algorithm tag (`"ecube_route"`, `"exchange"`, …).
    pub algorithm: &'static str,
    /// Cube dimension.
    pub n: u32,
    /// Matrix shape `(p, q)` when the caller addresses plans by shape;
    /// `(0, 0)` otherwise.
    pub shape: (u64, u64),
    /// Data-layout tag (consecutive/cyclic/…, encoded by the caller);
    /// `0` when not layout-addressed.
    pub layout: u64,
    /// Machine fingerprint, when the plan depends on machine parameters.
    pub machine: Option<MachineKey>,
    /// Fingerprint of the remaining planner inputs (see
    /// [`fingerprint`]).
    pub fingerprint: u64,
}

impl PlanKey {
    /// A key with neither shape, layout, machine nor fingerprint —
    /// refine with the builder methods.
    pub fn new(algorithm: &'static str, n: u32) -> Self {
        PlanKey { algorithm, n, shape: (0, 0), layout: 0, machine: None, fingerprint: 0 }
    }

    /// Keys the plan by matrix shape `(p, q)`.
    pub fn with_shape(mut self, p: u64, q: u64) -> Self {
        self.shape = (p, q);
        self
    }

    /// Keys the plan by a caller-encoded layout tag.
    pub fn with_layout(mut self, layout: u64) -> Self {
        self.layout = layout;
        self
    }

    /// Keys the plan by machine parameters.
    pub fn with_machine(mut self, m: &MachineParams) -> Self {
        self.machine = Some(m.into());
        self
    }

    /// Keys the plan by a fingerprint of arbitrary extra inputs.
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = fingerprint;
        self
    }
}

/// Hashes any planner input into a key fingerprint (std's SipHash —
/// deterministic within a process, which is all a cache key needs).
pub fn fingerprint(value: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Hit/miss/eviction counters of a [`PlanCache`], plus its current
/// occupancy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Plans currently held.
    pub entries: usize,
    /// Maximum plans held.
    pub capacity: usize,
}

struct Entry {
    plan: Arc<CommSchedule>,
    last_used: u64,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe LRU cache of built plans.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot hold any plan");
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking builder never holds the lock, so a poisoned mutex
        // only means a panic elsewhere mid-bookkeeping; the map is still
        // structurally sound.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cached plan for `key`, if present (counts as a hit/miss).
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CommSchedule>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let plan = inner.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.plan)
        });
        match plan {
            Some(_) => inner.hits += 1,
            None => inner.misses += 1,
        }
        plan
    }

    /// The plan for `key`, building (outside the lock) and inserting it
    /// on a miss.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> CommSchedule,
    ) -> Arc<CommSchedule> {
        if let Some(plan) = self.get(&key) {
            return plan;
        }
        let plan = Arc::new(build());
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(&key) {
            // A racing builder got here first; its plan is identical.
            e.last_used = tick;
            return Arc::clone(&e.plan);
        }
        if inner.map.len() >= self.capacity {
            // Evict the least recently used entry (linear scan: the
            // cache is small and insertions are already paying a build).
            if let Some(lru) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                inner.evictions += 1;
            }
        }
        inner.map.insert(key, Entry { plan: Arc::clone(&plan), last_used: tick });
        plan
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of plans currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no plan is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::super::{all_to_all_exchange_plan_cached, ecube_route_plan_cached};
    use super::*;
    use crate::BufferPolicy;
    use cubeaddr::NodeId;

    fn probe(n: u32, tag: u64) -> PlanKey {
        PlanKey::new("probe", n).with_fingerprint(tag)
    }

    fn tiny(n: u32) -> CommSchedule {
        super::super::ecube_route_plan(n, &[(NodeId(0), NodeId(1), 1)])
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let cache = PlanCache::new(4);
        let a = cache.get_or_build(probe(2, 1), || tiny(2));
        let b = cache.get_or_build(probe(2, 1), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2);
        cache.get_or_build(probe(2, 1), || tiny(2));
        cache.get_or_build(probe(2, 2), || tiny(2));
        // Touch 1 so 2 is the LRU, then insert 3.
        assert!(cache.get(&probe(2, 1)).is_some());
        cache.get_or_build(probe(2, 3), || tiny(2));
        assert!(cache.get(&probe(2, 1)).is_some(), "recently used entry survived");
        assert!(cache.get(&probe(2, 2)).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = PlanCache::new(8);
        let by_n = cache.get_or_build(probe(2, 1), || tiny(2));
        let other = cache.get_or_build(probe(3, 1), || tiny(3));
        assert_ne!(by_n.topo, other.topo);
        let params = MachineParams::intel_ipsc();
        let with_machine = PlanKey::new("probe", 2).with_machine(&params);
        assert_ne!(with_machine, PlanKey::new("probe", 2));
        assert_ne!(
            PlanKey::new("probe", 2).with_shape(4, 8),
            PlanKey::new("probe", 2).with_shape(8, 4)
        );
    }

    #[test]
    fn cached_wrappers_key_on_full_inputs() {
        let cache = PlanCache::new(8);
        let msgs = vec![(NodeId(0), NodeId(3), 2u64)];
        let a = ecube_route_plan_cached(&cache, 2, &msgs);
        let b = ecube_route_plan_cached(&cache, 2, &msgs);
        assert!(Arc::ptr_eq(&a, &b));
        // Changing one element count is a different plan.
        let c = ecube_route_plan_cached(&cache, 2, &[(NodeId(0), NodeId(3), 3u64)]);
        assert!(!Arc::ptr_eq(&a, &c));
        let sizes = vec![vec![1u64; 4]; 4];
        let d = all_to_all_exchange_plan_cached(
            &cache,
            2,
            &sizes,
            BufferPolicy::Ideal,
            PortMode::OnePort,
        );
        let e = all_to_all_exchange_plan_cached(
            &cache,
            2,
            &sizes,
            BufferPolicy::Unbuffered,
            PortMode::OnePort,
        );
        assert!(!Arc::ptr_eq(&d, &e), "policy is part of the key");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _ = PlanCache::new(0);
    }
}
