//! The original, unfactored planners — kept as the executable
//! specification of the fast builders in the `skeleton` module.
//!
//! Each function here is the pre-optimization implementation, verbatim:
//! a direct simulation of its engine's control flow over per-node held
//! lists (or, for the router, a full `2^n · n` queue lattice). They are
//! O(2^n) per round and allocation-heavy, which is exactly why the
//! public builders no longer use them — but their output *defines*
//! correctness: the `plan_reference` property tests in
//! `crates/cubecomm/tests` require the fast builders to emit
//! byte-identical [`CommSchedule`]s, the same discipline
//! [`crate::ecube::reference::RefRouter`] applies to the flat router.

use super::{chunk_ids, BlockMeta, CommSchedule, PlanRound, PlannedMsg};
use crate::exchange::BufferPolicy;
use crate::sbnt::sbnt_path_dims;
use crate::sbt::Sbt;
use cubeaddr::NodeId;
use cubesim::PortMode;
use std::collections::{BTreeMap, VecDeque};

/// Reference twin of [`super::exchange_plan`] (same input contract; the
/// caller validates blocks).
pub fn exchange_plan(
    n: u32,
    blocks: Vec<BlockMeta>,
    dims: &[u32],
    policy: BufferPolicy,
    ports: PortMode,
    name: impl Into<String>,
) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    let mut held: Vec<Vec<u32>> = vec![Vec::new(); num];
    for (i, b) in blocks.iter().enumerate() {
        held[b.src.index()].push(i as u32);
    }
    let elems_of = |ids: &[u32]| -> u64 { ids.iter().map(|&i| blocks[i as usize].elems).sum() };
    let mut rounds: Vec<PlanRound> = Vec::new();
    for (step_index, &j) in dims.iter().enumerate() {
        // Partition each node's holdings into keep / send on the dst bit.
        let mut to_send: Vec<Vec<u32>> = Vec::with_capacity(num);
        for (x, slot) in held.iter_mut().enumerate() {
            let xbit = (x as u64 >> j) & 1;
            let (keep, send): (Vec<u32>, Vec<u32>) =
                slot.drain(..).partition(|&i| (blocks[i as usize].dst.bits() >> j) & 1 == xbit);
            *slot = keep;
            to_send.push(send);
        }
        match policy {
            BufferPolicy::Ideal => {
                // One round per dimension, sends or not: the engine
                // always pays the round boundary.
                let msgs = to_send
                    .iter()
                    .enumerate()
                    .filter(|(_, send)| !send.is_empty())
                    .map(|(x, send)| PlannedMsg {
                        src: NodeId(x as u64),
                        dim: j,
                        blocks: send.clone(),
                    })
                    .collect();
                rounds.push(PlanRound { msgs, copies: Vec::new() });
            }
            BufferPolicy::Unbuffered => {
                let chunked: Vec<Vec<Vec<u32>>> = to_send
                    .iter()
                    .map(|send| chunk_ids(send.clone(), step_index, &blocks))
                    .collect();
                let max_chunks = chunked.iter().map(Vec::len).max().unwrap_or(0);
                // One sub-round per chunk ordinal; a step nobody sends in
                // costs no rounds at all (max_chunks = 0).
                for i in 0..max_chunks {
                    let msgs = chunked
                        .iter()
                        .enumerate()
                        .filter(|(_, chunks)| i < chunks.len())
                        .map(|(x, chunks)| PlannedMsg {
                            src: NodeId(x as u64),
                            dim: j,
                            blocks: chunks[i].clone(),
                        })
                        .collect();
                    rounds.push(PlanRound { msgs, copies: Vec::new() });
                }
            }
            BufferPolicy::Buffered { min_direct } => {
                // (direct chunks, gathered ids) per node, as the engine
                // splits them.
                let split: Vec<(Vec<Vec<u32>>, Vec<u32>)> = to_send
                    .iter()
                    .map(|send| {
                        let mut direct = Vec::new();
                        let mut gathered = Vec::new();
                        for chunk in chunk_ids(send.clone(), step_index, &blocks) {
                            if elems_of(&chunk) >= min_direct as u64 {
                                direct.push(chunk);
                            } else {
                                gathered.extend(chunk);
                            }
                        }
                        (direct, gathered)
                    })
                    .collect();
                let max_direct = split.iter().map(|(d, _)| d.len()).max().unwrap_or(0);
                for i in 0..max_direct {
                    let msgs = split
                        .iter()
                        .enumerate()
                        .filter(|(_, (direct, _))| i < direct.len())
                        .map(|(x, (direct, _))| PlannedMsg {
                            src: NodeId(x as u64),
                            dim: j,
                            blocks: direct[i].clone(),
                        })
                        .collect();
                    rounds.push(PlanRound { msgs, copies: Vec::new() });
                }
                if split.iter().any(|(_, g)| !g.is_empty()) {
                    let mut round = PlanRound::default();
                    for (x, (_, gathered)) in split.iter().enumerate() {
                        if !gathered.is_empty() {
                            round.copies.push((NodeId(x as u64), elems_of(gathered)));
                            round.msgs.push(PlannedMsg {
                                src: NodeId(x as u64),
                                dim: j,
                                blocks: gathered.clone(),
                            });
                        }
                    }
                    rounds.push(round);
                }
            }
        }
        // The step's sends land at the dimension-j neighbor. (Within a
        // step the engine delivers per sub-round, but delivered blocks
        // never re-send in the same step, so moving them once at the end
        // plans identically.)
        for (x, send) in to_send.into_iter().enumerate() {
            held[x ^ (1usize << j)].extend(send);
        }
    }
    CommSchedule {
        name: name.into(),
        topo: cubetopo::TopoSpec::hypercube(n),
        ports,
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

/// Reference twin of [`super::one_to_all_sbt_plan`].
pub fn one_to_all_sbt_plan(n: u32, root: NodeId, sizes: &[u64]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "one size per destination node");
    let tree = Sbt::new(n, root);
    let blocks: Vec<BlockMeta> = sizes
        .iter()
        .enumerate()
        .filter(|&(_, &e)| e > 0)
        .map(|(d, &elems)| BlockMeta { src: root, dst: NodeId(d as u64), elems })
        .collect();
    let mut held: Vec<Vec<u32>> = vec![Vec::new(); num];
    held[root.index()] = (0..blocks.len() as u32).collect();
    let mut rounds = Vec::new();
    for j in 0..n {
        let mut round = PlanRound::default();
        let dim = tree.physical_dim(j);
        for lx in 0..(1u64 << j) {
            let x = tree.physical(lx);
            let (keep, send): (Vec<u32>, Vec<u32>) = held[x.index()]
                .drain(..)
                .partition(|&i| (tree.logical(blocks[i as usize].dst) >> j) & 1 == 0);
            held[x.index()] = keep;
            if !send.is_empty() {
                held[x.neighbor(dim).index()].extend(&send);
                round.msgs.push(PlannedMsg { src: x, dim, blocks: send });
            }
        }
        rounds.push(round);
    }
    CommSchedule {
        name: format!("one_to_all_sbt/n{n}/root{root}"),
        topo: cubetopo::TopoSpec::hypercube(n),
        ports: PortMode::OnePort,
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

/// Reference twin of [`super::one_to_all_trees_plan`].
pub fn one_to_all_trees_plan(n: u32, sizes: &[u64], trees: &[Sbt]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "one size per destination node");
    assert!(!trees.is_empty());
    let root = trees[0].root();
    let k_trees = trees.len() as u64;
    // Block per (destination, tree) slice, mirroring split_even sizing.
    let mut blocks = Vec::new();
    let mut held: Vec<Vec<Vec<u32>>> = (0..trees.len()).map(|_| vec![Vec::new(); num]).collect();
    for (d, &total) in sizes.iter().enumerate() {
        let (base, extra) = (total / k_trees, total % k_trees);
        for k in 0..k_trees {
            let elems = base + u64::from(k < extra);
            if elems > 0 {
                held[k as usize][root.index()].push(blocks.len() as u32);
                blocks.push(BlockMeta { src: root, dst: NodeId(d as u64), elems });
            }
        }
    }
    let mut rounds = Vec::new();
    for j in 0..n {
        let mut round = PlanRound::default();
        for (k, tree) in trees.iter().enumerate() {
            let dim = tree.physical_dim(j);
            for lx in 0..(1u64 << j) {
                let x = tree.physical(lx);
                let (keep, send): (Vec<u32>, Vec<u32>) = held[k][x.index()]
                    .drain(..)
                    .partition(|&i| (tree.logical(blocks[i as usize].dst) >> j) & 1 == 0);
                held[k][x.index()] = keep;
                if !send.is_empty() {
                    held[k][x.neighbor(dim).index()].extend(&send);
                    round.msgs.push(PlannedMsg { src: x, dim, blocks: send });
                }
            }
        }
        rounds.push(round);
    }
    CommSchedule {
        name: format!("one_to_all_trees/n{n}/root{root}/k{}", trees.len()),
        topo: cubetopo::TopoSpec::hypercube(n),
        ports: PortMode::AllPorts,
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Reference twin of [`super::all_to_all_sbnt_plan`].
pub fn all_to_all_sbnt_plan(n: u32, sizes: &[Vec<u64>]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "one size row per source");
    struct InFlight {
        id: u32,
        dims: Vec<u32>,
        pos: usize,
    }
    let mut blocks = Vec::new();
    let mut pending: Vec<Vec<InFlight>> = (0..num).map(|_| Vec::new()).collect();
    for (s, per_dst) in sizes.iter().enumerate() {
        assert_eq!(per_dst.len(), num, "one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems == 0 {
                continue;
            }
            let (src, dst) = (NodeId(s as u64), NodeId(d as u64));
            let id = blocks.len() as u32;
            blocks.push(BlockMeta { src, dst, elems });
            if s != d {
                pending[s].push(InFlight { id, dims: sbnt_path_dims(src, dst, n), pos: 0 });
            }
        }
    }
    let mut rounds = Vec::new();
    while pending.iter().any(|p| !p.is_empty()) {
        let mut round = PlanRound::default();
        let mut hops: Vec<(NodeId, u32, Vec<InFlight>)> = Vec::new();
        for (x, slot) in pending.iter_mut().enumerate() {
            let mut by_dim: BTreeMap<u32, Vec<InFlight>> = BTreeMap::new();
            for f in slot.drain(..) {
                by_dim.entry(f.dims[f.pos]).or_default().push(f);
            }
            for (dim, group) in by_dim {
                hops.push((NodeId(x as u64), dim, group));
            }
        }
        for (x, dim, group) in &hops {
            round.msgs.push(PlannedMsg {
                src: *x,
                dim: *dim,
                blocks: group.iter().map(|f| f.id).collect(),
            });
        }
        rounds.push(round);
        for (x, dim, group) in hops {
            let land = x.neighbor(dim);
            for mut f in group {
                f.pos += 1;
                if f.pos < f.dims.len() {
                    pending[land.index()].push(f);
                }
            }
        }
    }
    CommSchedule {
        name: format!("all_to_all_sbnt/n{n}"),
        topo: cubetopo::TopoSpec::hypercube(n),
        ports: PortMode::AllPorts,
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Reference twin of [`super::ecube_route_plan`]: the full `2^n · n`
/// queue lattice, scanned whole every round.
pub fn ecube_route_plan(n: u32, msgs: &[(NodeId, NodeId, u64)]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    let nd = n as usize;
    // One FIFO per (node, dim); only paths' nodes ever queue, but the
    // flat lattice keeps the planner simple — empty VecDeques do not
    // allocate.
    let mut queues: Vec<VecDeque<u32>> = (0..num * nd.max(1)).map(|_| VecDeque::new()).collect();
    let mut blocks = Vec::new();
    let mut in_flight = 0usize;
    for &(src, dst, elems) in msgs {
        if elems == 0 {
            continue;
        }
        let id = blocks.len() as u32;
        blocks.push(BlockMeta { src, dst, elems });
        let diff = src.bits() ^ dst.bits();
        if diff != 0 {
            queues[src.index() * nd + diff.trailing_zeros() as usize].push_back(id);
            in_flight += 1;
        }
    }
    let mut rounds = Vec::new();
    // Per-dimension commit buffers: heads pop lanes-ascending then
    // dims-ascending, commit dimension-major — the router's send order.
    let mut commit: Vec<Vec<(NodeId, u32)>> = (0..nd).map(|_| Vec::new()).collect();
    while in_flight > 0 {
        for x in 0..num {
            for d in 0..nd {
                if let Some(&id) = queues[x * nd + d].front() {
                    queues[x * nd + d].pop_front();
                    commit[d].push((NodeId(x as u64), id));
                }
            }
        }
        let mut round = PlanRound::default();
        for (d, staged) in commit.iter().enumerate() {
            for &(src, id) in staged {
                round.msgs.push(PlannedMsg { src, dim: d as u32, blocks: vec![id] });
            }
        }
        rounds.push(round);
        // Land in send order: retire arrivals, requeue the rest on their
        // next e-cube dimension.
        for (d, staged) in commit.iter_mut().enumerate() {
            for (src, id) in staged.drain(..) {
                let land = src.neighbor(d as u32);
                let diff = land.bits() ^ blocks[id as usize].dst.bits();
                if diff == 0 {
                    in_flight -= 1;
                } else {
                    queues[land.index() * nd + diff.trailing_zeros() as usize].push_back(id);
                }
            }
        }
    }
    CommSchedule {
        name: format!("ecube_route/n{n}"),
        topo: cubetopo::TopoSpec::hypercube(n),
        ports: PortMode::AllPorts,
        dimension_ordered: true,
        blocks,
        rounds,
    }
}
