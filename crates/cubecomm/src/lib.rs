//! Generic personalized-communication algorithms on Boolean *n*-cubes
//! (paper §3).
//!
//! Everything here moves *source-tagged blocks* ([`block::Block`]) between
//! nodes of a simulated cube ([`cubesim::SimNet`]), charging the paper's
//! cost model while really moving the data:
//!
//! * [`sbt`] — spanning binomial trees: standard, translated, rotated and
//!   reflected variants (Definitions 8–9).
//! * [`one_to_all`] — one-to-all personalized communication: SBT routing
//!   for one-port, `n` rotated SBTs for n-port.
//! * [`exchange`] — the standard exchange algorithm for all-to-all
//!   personalized communication (one-port), with the unbuffered, buffered
//!   and idealized send policies of §8.1.
//! * [`sbnt`] — spanning balanced *n*-tree routing: path generation by the
//!   paper's `base`/nearest-one forwarding rule and an n-port all-to-all
//!   built on it.
//! * [`some_to_all`] — some-to-all / all-to-some personalized
//!   communication as `k` splitting (or accumulation) steps composed with
//!   `l` all-to-all steps in the order of Theorem 1.
//! * [`ecube`] — a dimension-ordered store-and-forward router, the
//!   "routing logic" baseline of the experiments.
//! * [`graph`] — the same router lifted to any
//!   [`cubetopo::MinimalRoute`] topology (e.g. the Swapped Dragonfly).
//! * [`plan`] — static, payload-free introspection of all the above: the
//!   schedules as first-class data, for the `cubecheck` invariant
//!   checkers and for planning-cost benchmarks.

pub mod block;
pub mod ecube;
pub mod exchange;
pub mod graph;
pub mod one_to_all;
pub mod plan;
pub mod sbnt;
pub mod sbt;
pub mod some_to_all;

pub use block::{Block, BlockMsg};
pub use exchange::BufferPolicy;
