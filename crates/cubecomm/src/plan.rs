//! Static schedule introspection: metadata-only communication plans.
//!
//! Every routing engine in this crate executes a *schedule* — a sequence
//! of synchronous rounds, each moving a set of `(source, dimension)`
//! messages — but historically only exposed the execution interface:
//! the schedule existed implicitly, observable solely through
//! [`cubesim::SimNet`]'s dynamic accounting. The builders here produce
//! the same schedules as first-class data ([`CommSchedule`]) without a
//! simulator and without payloads: blocks are `(src, dst, elems)`
//! records ([`BlockMeta`]), and each planned round lists which block ids
//! cross which directed links.
//!
//! Each builder mirrors its engine's control flow *exactly* — the same
//! partitioning, chunking, grouping and FIFO order — so that a plan's
//! per-round link claims coincide, round for round and link for link,
//! with the [`cubesim::CommReport::link_history`] an execution records.
//! The `cubecheck` crate's equivalence property tests enforce this
//! coincidence on random schedules; its static checkers then prove the
//! paper's structural invariants (port legality, edge-disjointness,
//! `B_m` packet budgets, conservation, deadlock freedom) on the plan
//! alone.
//!
//! Construction is factored and fast (see the `skeleton` module): the
//! node-independent round structure is computed once directly from
//! block addresses and instantiated per node by relabeling, with the
//! allocation-heavy per-round materialization fanned over
//! [`cubesim::par`] (byte-identical output at any `CUBEBENCH_THREADS`).
//! The pre-optimization planners survive verbatim in [`mod@reference`],
//! pinned to the fast builders by equivalence property tests. A keyed
//! LRU [`PlanCache`] (see [`cache`]) plus the `*_cached` wrappers below
//! make repeated requests for the same shape pay construction once.
//!
//! Builders never panic on *invariant* violations (a plan for a broken
//! schedule is still a plan — `cubecheck` reports the breakage as
//! diagnostics); they only assert on malformed inputs (shape mismatches,
//! zero-element blocks).

pub mod cache;
pub mod dragonfly;
pub mod reference;
mod skeleton;

pub use cache::{fingerprint, CacheStats, MachineKey, PlanCache, PlanKey};
pub use dragonfly::{
    dragonfly_direct_plan, dragonfly_direct_plan_cached, dragonfly_swap_exchange_plan,
    dragonfly_swap_exchange_plan_cached,
};

use crate::exchange::BufferPolicy;
use crate::sbt::Sbt;
use crate::some_to_all;
use cubeaddr::{DimSet, NodeId};
use cubesim::PortMode;
use cubesync::sync::Arc;
use cubetopo::{TopoSpec, Topology};

/// A block's metadata: everything the cost model and the invariants see.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BlockMeta {
    /// Originating node (also the initial holder in every built plan).
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Payload size in matrix elements (must be positive).
    pub elems: u64,
}

/// One planned message: the blocks crossing one directed link in one
/// round. Block ids index [`CommSchedule::blocks`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlannedMsg {
    /// Sending node.
    pub src: NodeId,
    /// Port crossed — on the cube, the dimension (the receiver is
    /// `src.neighbor(dim)`); generally, the receiver is
    /// `topo.neighbor(src, dim)` of the schedule's topology.
    pub dim: u32,
    /// Ids of the blocks travelling in this message.
    pub blocks: Vec<u32>,
}

/// One planned round: its messages plus any local-copy work charged in
/// the same round (the gather pass of the buffered exchange policy).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PlanRound {
    /// Messages sent this round, in the engine's send order.
    pub msgs: Vec<PlannedMsg>,
    /// `(node, elements)` local-copy charges for this round.
    pub copies: Vec<(NodeId, u64)>,
}

/// A complete static communication schedule.
#[derive(Clone, PartialEq, Debug)]
pub struct CommSchedule {
    /// Human-readable schedule name (carried into diagnostics).
    pub name: String,
    /// The machine graph the schedule targets. Link claims name
    /// `(src, port)` pairs of this topology.
    pub topo: TopoSpec,
    /// Port discipline the schedule claims to satisfy.
    pub ports: PortMode,
    /// True when the schedule routes every block through a dimension
    /// order consistent with a fixed channel order (the e-cube router's
    /// ascending scan, the exchange family's fixed dimension sequence,
    /// the unrotated SBT's logical order) — the precondition of the
    /// channel-dependency-graph deadlock-freedom check. Cyclic-shift
    /// families (SBnT, rotated-tree sets) are *not* dimension-ordered;
    /// their safety comes from round-synchronous batching instead.
    pub dimension_ordered: bool,
    /// The blocks moved by the schedule; ids are indices into this list.
    pub blocks: Vec<BlockMeta>,
    /// The rounds, in execution order. Rounds with no messages are
    /// real: an execution still pays a round boundary there.
    pub rounds: Vec<PlanRound>,
}

impl CommSchedule {
    /// Total elements carried by one planned message.
    pub fn msg_elems(&self, msg: &PlannedMsg) -> u64 {
        msg.blocks.iter().map(|&i| self.blocks[i as usize].elems).sum()
    }

    /// Total messages over all rounds.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.msgs.len() as u64).sum()
    }

    /// Total elements over all links over all rounds.
    pub fn total_elems(&self) -> u64 {
        self.rounds.iter().flat_map(|r| &r.msgs).map(|m| self.msg_elems(m)).sum()
    }
}

/// Validates block metadata shared by every builder: positive sizes and
/// in-range endpoints.
#[track_caller]
pub(crate) fn check_blocks(topo: &TopoSpec, blocks: &[BlockMeta]) {
    let num = topo.num_nodes() as u64;
    assert!(blocks.len() < u32::MAX as usize, "block id space exhausted");
    for b in blocks {
        assert!(b.elems > 0, "zero-element block {} -> {}: drop virtual blocks", b.src, b.dst);
        assert!(
            b.src.bits() < num && b.dst.bits() < num,
            "block endpoints outside the {}",
            topo.label()
        );
    }
}

/// Mirrors `exchange::memory_chunks` on block ids: sort by
/// `(dst, src)` (the local storage order of the blocked array) and split
/// into the `2^step` near-equal runs the iPSC implementation sees.
fn chunk_ids(mut ids: Vec<u32>, step_index: usize, blocks: &[BlockMeta]) -> Vec<Vec<u32>> {
    if ids.is_empty() {
        return Vec::new();
    }
    ids.sort_by_key(|&i| (blocks[i as usize].dst, blocks[i as usize].src));
    let want = 1usize << step_index.min(62);
    let chunks = want.min(ids.len());
    let per = ids.len().div_ceil(chunks);
    ids.chunks(per).map(<[u32]>::to_vec).collect()
}

/// Plans [`crate::exchange::exchange_over_dims`]: the standard exchange
/// algorithm over `dims` in order, starting from every block at its
/// source, under the given send policy.
///
/// Blocks must have pairwise distinct `(src, dst)` pairs — the engine's
/// in-place partition does not preserve the order of equal `(dst, src)`
/// sort keys, so duplicate pairs could chunk differently in the plan
/// than in the execution.
#[track_caller]
pub fn exchange_plan(
    n: u32,
    blocks: Vec<BlockMeta>,
    dims: &[u32],
    policy: BufferPolicy,
    ports: PortMode,
    name: impl Into<String>,
) -> CommSchedule {
    check_blocks(&TopoSpec::hypercube(n), &blocks);
    {
        let mut pairs: Vec<(NodeId, NodeId)> = blocks.iter().map(|b| (b.src, b.dst)).collect();
        pairs.sort_unstable();
        assert!(
            pairs.windows(2).all(|w| w[0] != w[1]),
            "exchange plans need pairwise distinct (src, dst) block pairs"
        );
    }
    let rounds = skeleton::exchange_rounds(n, &blocks, dims, policy);
    CommSchedule {
        name: name.into(),
        topo: TopoSpec::hypercube(n),
        ports,
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

/// Plans [`crate::exchange::all_to_all_exchange`]: one block per
/// `(src, dst)` pair (zero sizes dropped, the diagonal kept in place),
/// exchanged over all `n` dimensions highest first.
#[track_caller]
pub fn all_to_all_exchange_plan(
    n: u32,
    sizes: &[Vec<u64>],
    policy: BufferPolicy,
    ports: PortMode,
) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "need one size row per source");
    let mut blocks = Vec::new();
    for (s, per_dst) in sizes.iter().enumerate() {
        assert_eq!(per_dst.len(), num, "need one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: NodeId(s as u64), dst: NodeId(d as u64), elems });
            }
        }
    }
    let dims: Vec<u32> = (0..n).rev().collect();
    exchange_plan(n, blocks, &dims, policy, ports, format!("all_to_all_exchange/n{n}"))
}

/// Plans [`crate::some_to_all::some_to_all`]: sources are the nodes whose
/// `k_dims` bits are zero (ascending); splitting over `k_dims` runs
/// first (Theorem 1), then all-to-all over `l_dims`, both highest
/// dimension first.
#[track_caller]
pub fn some_to_all_plan(
    n: u32,
    l_dims: DimSet,
    k_dims: DimSet,
    sizes: &[Vec<u64>],
    policy: BufferPolicy,
    ports: PortMode,
) -> CommSchedule {
    assert!(l_dims.is_disjoint(k_dims), "l and k dimension sets overlap");
    assert_eq!(l_dims.union(k_dims), DimSet::all(n), "l ∪ k must cover the cube dimensions");
    let num = cubeaddr::num_nodes(n);
    let sources = some_to_all::subcube_nodes(n, k_dims);
    assert_eq!(sizes.len(), sources.len(), "one size row per source node");
    let mut blocks = Vec::new();
    for (src, per_dst) in sources.iter().zip(sizes) {
        assert_eq!(per_dst.len(), num, "one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: *src, dst: NodeId(d as u64), elems });
            }
        }
    }
    let dims = some_to_all::phase_order(l_dims, k_dims, true);
    exchange_plan(n, blocks, &dims, policy, ports, format!("some_to_all/n{n}/k{:#b}", k_dims.0))
}

/// Plans [`crate::one_to_all::one_to_all_sbt`]: SBT routing from `root`,
/// one round per logical dimension, subtree data sent all at once.
/// `sizes[d]` is the element count destined to node `d` (zeros dropped).
#[track_caller]
pub fn one_to_all_sbt_plan(n: u32, root: NodeId, sizes: &[u64]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "one size per destination node");
    let tree = Sbt::new(n, root);
    let blocks: Vec<BlockMeta> = sizes
        .iter()
        .enumerate()
        .filter(|&(_, &e)| e > 0)
        .map(|(d, &elems)| BlockMeta { src: root, dst: NodeId(d as u64), elems })
        .collect();
    check_blocks(&TopoSpec::hypercube(n), &blocks);
    let rounds = skeleton::sbt_rounds(n, &blocks, &tree);
    CommSchedule {
        name: format!("one_to_all_sbt/n{n}/root{root}"),
        topo: TopoSpec::hypercube(n),
        ports: PortMode::OnePort,
        // The unrotated, unreflected SBT routes logical = physical
        // dimensions in ascending order.
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

/// Plans [`crate::one_to_all::one_to_all_trees`]: every destination's
/// data split into `trees.len()` near-equal parts (first parts take the
/// remainder), each part routed down its own tree, all trees
/// concurrently (n-port).
///
/// Also plans the derived families: pass `n` rotated trees for
/// [`crate::one_to_all::one_to_all_rotated_sbts`], or the standard +
/// reflected pair for [`crate::one_to_all::one_to_all_reflected_pair`].
#[track_caller]
pub fn one_to_all_trees_plan(n: u32, sizes: &[u64], trees: &[Sbt]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "one size per destination node");
    assert!(!trees.is_empty());
    let root = trees[0].root();
    for t in trees {
        assert_eq!(t.n(), n, "tree on the wrong cube");
        assert_eq!(t.root(), root, "trees must share the root");
    }
    let k_trees = trees.len() as u64;
    // Block per (destination, tree) slice, mirroring split_even sizing:
    // part k of a total gets `total/k_trees` plus one of the first
    // `total mod k_trees` remainders.
    let mut blocks = Vec::new();
    let mut tree_of: Vec<u32> = Vec::new();
    for (d, &total) in sizes.iter().enumerate() {
        let (base, extra) = (total / k_trees, total % k_trees);
        for k in 0..k_trees {
            let elems = base + u64::from(k < extra);
            if elems > 0 {
                tree_of.push(k as u32);
                blocks.push(BlockMeta { src: root, dst: NodeId(d as u64), elems });
            }
        }
    }
    check_blocks(&TopoSpec::hypercube(n), &blocks);
    let rounds = skeleton::trees_rounds(n, &blocks, trees, &tree_of);
    CommSchedule {
        name: format!("one_to_all_trees/n{n}/root{root}/k{}", trees.len()),
        topo: TopoSpec::hypercube(n),
        ports: PortMode::AllPorts,
        // Rotated/reflected trees cross dimensions in cyclically shifted
        // orders; no single channel order covers the family.
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Plans [`crate::sbnt::all_to_all_sbnt`]: every block follows its SBnT
/// path one hop per round, blocks queued at a node for the same port
/// travelling as one message.
#[track_caller]
pub fn all_to_all_sbnt_plan(n: u32, sizes: &[Vec<u64>]) -> CommSchedule {
    let num = cubeaddr::num_nodes(n);
    assert_eq!(sizes.len(), num, "one size row per source");
    let mut blocks = Vec::new();
    for (s, per_dst) in sizes.iter().enumerate() {
        assert_eq!(per_dst.len(), num, "one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: NodeId(s as u64), dst: NodeId(d as u64), elems });
            }
        }
    }
    check_blocks(&TopoSpec::hypercube(n), &blocks);
    let rounds = skeleton::sbnt_rounds(n, &blocks);
    CommSchedule {
        name: format!("all_to_all_sbnt/n{n}"),
        topo: TopoSpec::hypercube(n),
        ports: PortMode::AllPorts,
        // SBnT forwarding follows set bits cyclically to the left from
        // the base port — not consistent with any fixed channel order.
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Plans [`crate::ecube::ecube_route`]: dimension-ordered store-and-
/// forward routing, one message per directed link per round, FIFO per
/// link, with the flat router's exact staging order (lanes ascending,
/// dimensions ascending per lane, commits dimension-major).
///
/// `msgs` are `(src, dst, elems)`; zero-element and local messages plan
/// no hops (local blocks still appear in the plan's block list, with an
/// empty path — conservation treats them as already delivered).
#[track_caller]
pub fn ecube_route_plan(n: u32, msgs: &[(NodeId, NodeId, u64)]) -> CommSchedule {
    let blocks: Vec<BlockMeta> = msgs
        .iter()
        .filter(|&&(_, _, elems)| elems > 0)
        .map(|&(src, dst, elems)| BlockMeta { src, dst, elems })
        .collect();
    check_blocks(&TopoSpec::hypercube(n), &blocks);
    let rounds = skeleton::ecube_rounds(n, &blocks);
    CommSchedule {
        name: format!("ecube_route/n{n}"),
        topo: TopoSpec::hypercube(n),
        ports: PortMode::AllPorts,
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

// --- Cached front-ends -------------------------------------------------
//
// One wrapper per planner: the cache key fingerprints the *complete*
// planner input (see `cache` module docs on keying), so a hit is
// guaranteed byte-identical to the cold construction it replaces.

/// [`exchange_plan`] through a [`PlanCache`].
#[track_caller]
pub fn exchange_plan_cached(
    cache: &PlanCache,
    n: u32,
    blocks: &[BlockMeta],
    dims: &[u32],
    policy: BufferPolicy,
    ports: PortMode,
    name: &str,
) -> Arc<CommSchedule> {
    let key = PlanKey::new("exchange", n)
        .with_fingerprint(fingerprint(&(blocks, dims, policy, ports, name)));
    cache.get_or_build(key, || exchange_plan(n, blocks.to_vec(), dims, policy, ports, name))
}

/// [`all_to_all_exchange_plan`] through a [`PlanCache`].
#[track_caller]
pub fn all_to_all_exchange_plan_cached(
    cache: &PlanCache,
    n: u32,
    sizes: &[Vec<u64>],
    policy: BufferPolicy,
    ports: PortMode,
) -> Arc<CommSchedule> {
    let key = PlanKey::new("all_to_all_exchange", n)
        .with_fingerprint(fingerprint(&(sizes, policy, ports)));
    cache.get_or_build(key, || all_to_all_exchange_plan(n, sizes, policy, ports))
}

/// [`some_to_all_plan`] through a [`PlanCache`].
#[track_caller]
pub fn some_to_all_plan_cached(
    cache: &PlanCache,
    n: u32,
    l_dims: DimSet,
    k_dims: DimSet,
    sizes: &[Vec<u64>],
    policy: BufferPolicy,
    ports: PortMode,
) -> Arc<CommSchedule> {
    let key = PlanKey::new("some_to_all", n)
        .with_fingerprint(fingerprint(&(l_dims.0, k_dims.0, sizes, policy, ports)));
    cache.get_or_build(key, || some_to_all_plan(n, l_dims, k_dims, sizes, policy, ports))
}

/// [`one_to_all_sbt_plan`] through a [`PlanCache`].
#[track_caller]
pub fn one_to_all_sbt_plan_cached(
    cache: &PlanCache,
    n: u32,
    root: NodeId,
    sizes: &[u64],
) -> Arc<CommSchedule> {
    let key = PlanKey::new("one_to_all_sbt", n).with_fingerprint(fingerprint(&(root, sizes)));
    cache.get_or_build(key, || one_to_all_sbt_plan(n, root, sizes))
}

/// [`one_to_all_trees_plan`] through a [`PlanCache`].
#[track_caller]
pub fn one_to_all_trees_plan_cached(
    cache: &PlanCache,
    n: u32,
    sizes: &[u64],
    trees: &[Sbt],
) -> Arc<CommSchedule> {
    let key = PlanKey::new("one_to_all_trees", n).with_fingerprint(fingerprint(&(sizes, trees)));
    cache.get_or_build(key, || one_to_all_trees_plan(n, sizes, trees))
}

/// [`all_to_all_sbnt_plan`] through a [`PlanCache`].
#[track_caller]
pub fn all_to_all_sbnt_plan_cached(
    cache: &PlanCache,
    n: u32,
    sizes: &[Vec<u64>],
) -> Arc<CommSchedule> {
    let key = PlanKey::new("all_to_all_sbnt", n).with_fingerprint(fingerprint(&sizes));
    cache.get_or_build(key, || all_to_all_sbnt_plan(n, sizes))
}

/// [`ecube_route_plan`] through a [`PlanCache`].
#[track_caller]
pub fn ecube_route_plan_cached(
    cache: &PlanCache,
    n: u32,
    msgs: &[(NodeId, NodeId, u64)],
) -> Arc<CommSchedule> {
    let key = PlanKey::new("ecube_route", n).with_fingerprint(fingerprint(&msgs));
    cache.get_or_build(key, || ecube_route_plan(n, msgs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_plan_counts_match_formula() {
        // n=2 all-to-all, 1 elem per pair, Ideal: 2 rounds, every node
        // sends 2 blocks per round.
        let n = 2;
        let sizes = vec![vec![1u64; 4]; 4];
        let plan = all_to_all_exchange_plan(n, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
        assert_eq!(plan.rounds.len(), 2);
        assert_eq!(plan.blocks.len(), 16);
        for round in &plan.rounds {
            assert_eq!(round.msgs.len(), 4);
            for m in &round.msgs {
                assert_eq!(plan.msg_elems(m), 2);
            }
        }
    }

    #[test]
    fn unbuffered_plan_subrounds_sum_to_n_minus_one() {
        let n = 3;
        let sizes = vec![vec![2u64; 8]; 8];
        let plan = all_to_all_exchange_plan(n, &sizes, BufferPolicy::Unbuffered, PortMode::OnePort);
        assert_eq!(plan.rounds.len(), (1 << n) - 1);
    }

    #[test]
    fn buffered_plan_charges_copies_for_gathered_chunks() {
        // Mirrors exchange::tests::buffered_charges_copy_only_for_small_chunks.
        let n = 3;
        let sizes = vec![vec![4u64; 8]; 8];
        let plan = all_to_all_exchange_plan(
            n,
            &sizes,
            BufferPolicy::Buffered { min_direct: 8 },
            PortMode::OnePort,
        );
        assert_eq!(plan.rounds.len(), 4);
        let copied: u64 = plan.rounds.iter().flat_map(|r| &r.copies).map(|&(_, e)| e).sum();
        // Last step: every node gathers 4 chunks x 4 elements = 16.
        assert_eq!(copied, 16 * 8);
    }

    #[test]
    fn sbt_plan_has_n_rounds_and_conserves_elems() {
        let n = 4;
        let sizes: Vec<u64> = (0..16u64).map(|d| d % 3 + 1).collect();
        let plan = one_to_all_sbt_plan(n, NodeId(5), &sizes);
        assert_eq!(plan.rounds.len(), n as usize);
        let total: u64 = plan.blocks.iter().map(|b| b.elems).sum();
        assert_eq!(total, sizes.iter().sum::<u64>());
    }

    #[test]
    fn trees_plan_splits_like_split_even() {
        let n = 2;
        let trees: Vec<Sbt> = (0..n).map(|k| Sbt::rotated(n, NodeId(0), k)).collect();
        let plan = one_to_all_trees_plan(n, &[0, 5, 2, 1], &trees);
        // dst 1: 5 elems over 2 trees -> 3 + 2; dst 2: 1 + 1; dst 3: 1.
        let sizes: Vec<u64> = plan.blocks.iter().map(|b| b.elems).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 8);
        assert!(sizes.contains(&3) && sizes.contains(&2));
    }

    #[test]
    fn sbnt_plan_round_count_is_max_path_length() {
        let n = 4;
        let sizes = vec![vec![1u64; 16]; 16];
        let plan = all_to_all_sbnt_plan(n, &sizes);
        assert_eq!(plan.rounds.len(), n as usize);
    }

    #[test]
    fn ecube_plan_single_message_takes_distance_rounds() {
        let plan = ecube_route_plan(4, &[(NodeId(0), NodeId(0b1011), 2)]);
        assert_eq!(plan.rounds.len(), 3);
        for round in &plan.rounds {
            assert_eq!(round.msgs.len(), 1);
        }
        // Hops ascend dimensions 0, 1, 3.
        let dims: Vec<u32> = plan.rounds.iter().map(|r| r.msgs[0].dim).collect();
        assert_eq!(dims, vec![0, 1, 3]);
    }

    #[test]
    fn ecube_plan_contention_serializes() {
        // Mirrors ecube::tests::contention_serializes: both messages
        // queue on (1, dim 0); the second waits a round.
        let plan = ecube_route_plan(2, &[(NodeId(1), NodeId(0), 1), (NodeId(1), NodeId(2), 1)]);
        assert_eq!(plan.rounds.len(), 3);
        assert_eq!(plan.rounds[0].msgs.len(), 1);
    }

    #[test]
    fn local_and_empty_router_messages_plan_no_hops() {
        let plan = ecube_route_plan(2, &[(NodeId(2), NodeId(2), 5), (NodeId(0), NodeId(3), 0)]);
        assert!(plan.rounds.is_empty());
        assert_eq!(plan.blocks.len(), 1); // the local block survives; the empty one is dropped
    }

    #[test]
    #[should_panic(expected = "distinct (src, dst)")]
    fn exchange_plan_rejects_duplicate_pairs() {
        let b = BlockMeta { src: NodeId(0), dst: NodeId(1), elems: 1 };
        let _ = exchange_plan(1, vec![b, b], &[0], BufferPolicy::Ideal, PortMode::OnePort, "dup");
    }
}
