//! Static schedule introspection: metadata-only communication plans.
//!
//! Every routing engine in this crate executes a *schedule* — a sequence
//! of synchronous rounds, each moving a set of `(source, dimension)`
//! messages — but historically only exposed the execution interface:
//! the schedule existed implicitly, observable solely through
//! [`cubesim::SimNet`]'s dynamic accounting. The builders here produce
//! the same schedules as first-class data ([`CommSchedule`]) without a
//! simulator and without payloads: blocks are `(src, dst, elems)`
//! records ([`BlockMeta`]), and each planned round lists which block ids
//! cross which directed links.
//!
//! Each builder mirrors its engine's control flow *exactly* — the same
//! partitioning, chunking, grouping and FIFO order — so that a plan's
//! per-round link claims coincide, round for round and link for link,
//! with the [`cubesim::CommReport::link_history`] an execution records.
//! The `cubecheck` crate's equivalence property tests enforce this
//! coincidence on random schedules; its static checkers then prove the
//! paper's structural invariants (port legality, edge-disjointness,
//! `B_m` packet budgets, conservation, deadlock freedom) on the plan
//! alone.
//!
//! Builders never panic on *invariant* violations (a plan for a broken
//! schedule is still a plan — `cubecheck` reports the breakage as
//! diagnostics); they only assert on malformed inputs (shape mismatches,
//! zero-element blocks).

use crate::exchange::BufferPolicy;
use crate::sbnt::sbnt_path_dims;
use crate::sbt::Sbt;
use crate::some_to_all;
use cubeaddr::{DimSet, NodeId};
use cubesim::PortMode;
use std::collections::{BTreeMap, VecDeque};

/// A block's metadata: everything the cost model and the invariants see.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockMeta {
    /// Originating node (also the initial holder in every built plan).
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Payload size in matrix elements (must be positive).
    pub elems: u64,
}

/// One planned message: the blocks crossing one directed link in one
/// round. Block ids index [`CommSchedule::blocks`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlannedMsg {
    /// Sending node.
    pub src: NodeId,
    /// Dimension crossed (the receiver is `src.neighbor(dim)`).
    pub dim: u32,
    /// Ids of the blocks travelling in this message.
    pub blocks: Vec<u32>,
}

/// One planned round: its messages plus any local-copy work charged in
/// the same round (the gather pass of the buffered exchange policy).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PlanRound {
    /// Messages sent this round, in the engine's send order.
    pub msgs: Vec<PlannedMsg>,
    /// `(node, elements)` local-copy charges for this round.
    pub copies: Vec<(NodeId, u64)>,
}

/// A complete static communication schedule.
#[derive(Clone, PartialEq, Debug)]
pub struct CommSchedule {
    /// Human-readable schedule name (carried into diagnostics).
    pub name: String,
    /// Cube dimension.
    pub n: u32,
    /// Port discipline the schedule claims to satisfy.
    pub ports: PortMode,
    /// True when the schedule routes every block through a dimension
    /// order consistent with a fixed channel order (the e-cube router's
    /// ascending scan, the exchange family's fixed dimension sequence,
    /// the unrotated SBT's logical order) — the precondition of the
    /// channel-dependency-graph deadlock-freedom check. Cyclic-shift
    /// families (SBnT, rotated-tree sets) are *not* dimension-ordered;
    /// their safety comes from round-synchronous batching instead.
    pub dimension_ordered: bool,
    /// The blocks moved by the schedule; ids are indices into this list.
    pub blocks: Vec<BlockMeta>,
    /// The rounds, in execution order. Rounds with no messages are
    /// real: an execution still pays a round boundary there.
    pub rounds: Vec<PlanRound>,
}

impl CommSchedule {
    /// Total elements carried by one planned message.
    pub fn msg_elems(&self, msg: &PlannedMsg) -> u64 {
        msg.blocks.iter().map(|&i| self.blocks[i as usize].elems).sum()
    }

    /// Total messages over all rounds.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.msgs.len() as u64).sum()
    }

    /// Total elements over all links over all rounds.
    pub fn total_elems(&self) -> u64 {
        self.rounds.iter().flat_map(|r| &r.msgs).map(|m| self.msg_elems(m)).sum()
    }
}

/// Validates block metadata shared by every builder: positive sizes and
/// in-range endpoints.
#[track_caller]
fn check_blocks(n: u32, blocks: &[BlockMeta]) {
    let num = 1u64 << n;
    assert!(blocks.len() < u32::MAX as usize, "block id space exhausted");
    for b in blocks {
        assert!(b.elems > 0, "zero-element block {} -> {}: drop virtual blocks", b.src, b.dst);
        assert!(b.src.bits() < num && b.dst.bits() < num, "block endpoints outside the {n}-cube");
    }
}

/// Mirrors `exchange::memory_chunks` on block ids: sort by
/// `(dst, src)` (the local storage order of the blocked array) and split
/// into the `2^step` near-equal runs the iPSC implementation sees.
fn chunk_ids(mut ids: Vec<u32>, step_index: usize, blocks: &[BlockMeta]) -> Vec<Vec<u32>> {
    if ids.is_empty() {
        return Vec::new();
    }
    ids.sort_by_key(|&i| (blocks[i as usize].dst, blocks[i as usize].src));
    let want = 1usize << step_index.min(62);
    let chunks = want.min(ids.len());
    let per = ids.len().div_ceil(chunks);
    ids.chunks(per).map(<[u32]>::to_vec).collect()
}

/// Plans [`crate::exchange::exchange_over_dims`]: the standard exchange
/// algorithm over `dims` in order, starting from every block at its
/// source, under the given send policy.
///
/// Blocks must have pairwise distinct `(src, dst)` pairs — the engine's
/// in-place partition does not preserve the order of equal `(dst, src)`
/// sort keys, so duplicate pairs could chunk differently in the plan
/// than in the execution.
#[track_caller]
pub fn exchange_plan(
    n: u32,
    blocks: Vec<BlockMeta>,
    dims: &[u32],
    policy: BufferPolicy,
    ports: PortMode,
    name: impl Into<String>,
) -> CommSchedule {
    check_blocks(n, &blocks);
    {
        let mut pairs: Vec<(NodeId, NodeId)> = blocks.iter().map(|b| (b.src, b.dst)).collect();
        pairs.sort_unstable();
        assert!(
            pairs.windows(2).all(|w| w[0] != w[1]),
            "exchange plans need pairwise distinct (src, dst) block pairs"
        );
    }
    let num = 1usize << n;
    let mut held: Vec<Vec<u32>> = vec![Vec::new(); num];
    for (i, b) in blocks.iter().enumerate() {
        held[b.src.index()].push(i as u32);
    }
    let elems_of = |ids: &[u32]| -> u64 { ids.iter().map(|&i| blocks[i as usize].elems).sum() };
    let mut rounds: Vec<PlanRound> = Vec::new();
    for (step_index, &j) in dims.iter().enumerate() {
        // Partition each node's holdings into keep / send on the dst bit.
        let mut to_send: Vec<Vec<u32>> = Vec::with_capacity(num);
        for (x, slot) in held.iter_mut().enumerate() {
            let xbit = (x as u64 >> j) & 1;
            let (keep, send): (Vec<u32>, Vec<u32>) =
                slot.drain(..).partition(|&i| (blocks[i as usize].dst.bits() >> j) & 1 == xbit);
            *slot = keep;
            to_send.push(send);
        }
        match policy {
            BufferPolicy::Ideal => {
                // One round per dimension, sends or not: the engine
                // always pays the round boundary.
                let msgs = to_send
                    .iter()
                    .enumerate()
                    .filter(|(_, send)| !send.is_empty())
                    .map(|(x, send)| PlannedMsg {
                        src: NodeId(x as u64),
                        dim: j,
                        blocks: send.clone(),
                    })
                    .collect();
                rounds.push(PlanRound { msgs, copies: Vec::new() });
            }
            BufferPolicy::Unbuffered => {
                let chunked: Vec<Vec<Vec<u32>>> = to_send
                    .iter()
                    .map(|send| chunk_ids(send.clone(), step_index, &blocks))
                    .collect();
                let max_chunks = chunked.iter().map(Vec::len).max().unwrap_or(0);
                // One sub-round per chunk ordinal; a step nobody sends in
                // costs no rounds at all (max_chunks = 0).
                for i in 0..max_chunks {
                    let msgs = chunked
                        .iter()
                        .enumerate()
                        .filter(|(_, chunks)| i < chunks.len())
                        .map(|(x, chunks)| PlannedMsg {
                            src: NodeId(x as u64),
                            dim: j,
                            blocks: chunks[i].clone(),
                        })
                        .collect();
                    rounds.push(PlanRound { msgs, copies: Vec::new() });
                }
            }
            BufferPolicy::Buffered { min_direct } => {
                // (direct chunks, gathered ids) per node, as the engine
                // splits them.
                let split: Vec<(Vec<Vec<u32>>, Vec<u32>)> = to_send
                    .iter()
                    .map(|send| {
                        let mut direct = Vec::new();
                        let mut gathered = Vec::new();
                        for chunk in chunk_ids(send.clone(), step_index, &blocks) {
                            if elems_of(&chunk) >= min_direct as u64 {
                                direct.push(chunk);
                            } else {
                                gathered.extend(chunk);
                            }
                        }
                        (direct, gathered)
                    })
                    .collect();
                let max_direct = split.iter().map(|(d, _)| d.len()).max().unwrap_or(0);
                for i in 0..max_direct {
                    let msgs = split
                        .iter()
                        .enumerate()
                        .filter(|(_, (direct, _))| i < direct.len())
                        .map(|(x, (direct, _))| PlannedMsg {
                            src: NodeId(x as u64),
                            dim: j,
                            blocks: direct[i].clone(),
                        })
                        .collect();
                    rounds.push(PlanRound { msgs, copies: Vec::new() });
                }
                if split.iter().any(|(_, g)| !g.is_empty()) {
                    let mut round = PlanRound::default();
                    for (x, (_, gathered)) in split.iter().enumerate() {
                        if !gathered.is_empty() {
                            round.copies.push((NodeId(x as u64), elems_of(gathered)));
                            round.msgs.push(PlannedMsg {
                                src: NodeId(x as u64),
                                dim: j,
                                blocks: gathered.clone(),
                            });
                        }
                    }
                    rounds.push(round);
                }
            }
        }
        // The step's sends land at the dimension-j neighbor. (Within a
        // step the engine delivers per sub-round, but delivered blocks
        // never re-send in the same step, so moving them once at the end
        // plans identically.)
        for (x, send) in to_send.into_iter().enumerate() {
            held[x ^ (1usize << j)].extend(send);
        }
    }
    CommSchedule { name: name.into(), n, ports, dimension_ordered: true, blocks, rounds }
}

/// Plans [`crate::exchange::all_to_all_exchange`]: one block per
/// `(src, dst)` pair (zero sizes dropped, the diagonal kept in place),
/// exchanged over all `n` dimensions highest first.
#[track_caller]
pub fn all_to_all_exchange_plan(
    n: u32,
    sizes: &[Vec<u64>],
    policy: BufferPolicy,
    ports: PortMode,
) -> CommSchedule {
    let num = 1usize << n;
    assert_eq!(sizes.len(), num, "need one size row per source");
    let mut blocks = Vec::new();
    for (s, per_dst) in sizes.iter().enumerate() {
        assert_eq!(per_dst.len(), num, "need one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: NodeId(s as u64), dst: NodeId(d as u64), elems });
            }
        }
    }
    let dims: Vec<u32> = (0..n).rev().collect();
    exchange_plan(n, blocks, &dims, policy, ports, format!("all_to_all_exchange/n{n}"))
}

/// Plans [`crate::some_to_all::some_to_all`]: sources are the nodes whose
/// `k_dims` bits are zero (ascending); splitting over `k_dims` runs
/// first (Theorem 1), then all-to-all over `l_dims`, both highest
/// dimension first.
#[track_caller]
pub fn some_to_all_plan(
    n: u32,
    l_dims: DimSet,
    k_dims: DimSet,
    sizes: &[Vec<u64>],
    policy: BufferPolicy,
    ports: PortMode,
) -> CommSchedule {
    assert!(l_dims.is_disjoint(k_dims), "l and k dimension sets overlap");
    assert_eq!(l_dims.union(k_dims), DimSet::all(n), "l ∪ k must cover the cube dimensions");
    let num = 1usize << n;
    let sources = some_to_all::subcube_nodes(n, k_dims);
    assert_eq!(sizes.len(), sources.len(), "one size row per source node");
    let mut blocks = Vec::new();
    for (src, per_dst) in sources.iter().zip(sizes) {
        assert_eq!(per_dst.len(), num, "one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems > 0 {
                blocks.push(BlockMeta { src: *src, dst: NodeId(d as u64), elems });
            }
        }
    }
    let dims = some_to_all::phase_order(l_dims, k_dims, true);
    exchange_plan(n, blocks, &dims, policy, ports, format!("some_to_all/n{n}/k{:#b}", k_dims.0))
}

/// Plans [`crate::one_to_all::one_to_all_sbt`]: SBT routing from `root`,
/// one round per logical dimension, subtree data sent all at once.
/// `sizes[d]` is the element count destined to node `d` (zeros dropped).
#[track_caller]
pub fn one_to_all_sbt_plan(n: u32, root: NodeId, sizes: &[u64]) -> CommSchedule {
    let num = 1usize << n;
    assert_eq!(sizes.len(), num, "one size per destination node");
    let tree = Sbt::new(n, root);
    let blocks: Vec<BlockMeta> = sizes
        .iter()
        .enumerate()
        .filter(|&(_, &e)| e > 0)
        .map(|(d, &elems)| BlockMeta { src: root, dst: NodeId(d as u64), elems })
        .collect();
    check_blocks(n, &blocks);
    let mut held: Vec<Vec<u32>> = vec![Vec::new(); num];
    held[root.index()] = (0..blocks.len() as u32).collect();
    let mut rounds = Vec::new();
    for j in 0..n {
        let mut round = PlanRound::default();
        let dim = tree.physical_dim(j);
        for lx in 0..(1u64 << j) {
            let x = tree.physical(lx);
            let (keep, send): (Vec<u32>, Vec<u32>) = held[x.index()]
                .drain(..)
                .partition(|&i| (tree.logical(blocks[i as usize].dst) >> j) & 1 == 0);
            held[x.index()] = keep;
            if !send.is_empty() {
                held[x.neighbor(dim).index()].extend(&send);
                round.msgs.push(PlannedMsg { src: x, dim, blocks: send });
            }
        }
        rounds.push(round);
    }
    CommSchedule {
        name: format!("one_to_all_sbt/n{n}/root{root}"),
        n,
        ports: PortMode::OnePort,
        // The unrotated, unreflected SBT routes logical = physical
        // dimensions in ascending order.
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

/// Plans [`crate::one_to_all::one_to_all_trees`]: every destination's
/// data split into `trees.len()` near-equal parts (first parts take the
/// remainder), each part routed down its own tree, all trees
/// concurrently (n-port).
///
/// Also plans the derived families: pass `n` rotated trees for
/// [`crate::one_to_all::one_to_all_rotated_sbts`], or the standard +
/// reflected pair for [`crate::one_to_all::one_to_all_reflected_pair`].
#[track_caller]
pub fn one_to_all_trees_plan(n: u32, sizes: &[u64], trees: &[Sbt]) -> CommSchedule {
    let num = 1usize << n;
    assert_eq!(sizes.len(), num, "one size per destination node");
    assert!(!trees.is_empty());
    let root = trees[0].root();
    for t in trees {
        assert_eq!(t.n(), n, "tree on the wrong cube");
        assert_eq!(t.root(), root, "trees must share the root");
    }
    let k_trees = trees.len() as u64;
    // Block per (destination, tree) slice, mirroring split_even sizing:
    // part k of a total gets `total/k_trees` plus one of the first
    // `total mod k_trees` remainders.
    let mut blocks = Vec::new();
    let mut held: Vec<Vec<Vec<u32>>> = (0..trees.len()).map(|_| vec![Vec::new(); num]).collect();
    for (d, &total) in sizes.iter().enumerate() {
        let (base, extra) = (total / k_trees, total % k_trees);
        for k in 0..k_trees {
            let elems = base + u64::from(k < extra);
            if elems > 0 {
                held[k as usize][root.index()].push(blocks.len() as u32);
                blocks.push(BlockMeta { src: root, dst: NodeId(d as u64), elems });
            }
        }
    }
    check_blocks(n, &blocks);
    let mut rounds = Vec::new();
    for j in 0..n {
        let mut round = PlanRound::default();
        for (k, tree) in trees.iter().enumerate() {
            let dim = tree.physical_dim(j);
            for lx in 0..(1u64 << j) {
                let x = tree.physical(lx);
                let (keep, send): (Vec<u32>, Vec<u32>) = held[k][x.index()]
                    .drain(..)
                    .partition(|&i| (tree.logical(blocks[i as usize].dst) >> j) & 1 == 0);
                held[k][x.index()] = keep;
                if !send.is_empty() {
                    held[k][x.neighbor(dim).index()].extend(&send);
                    round.msgs.push(PlannedMsg { src: x, dim, blocks: send });
                }
            }
        }
        rounds.push(round);
    }
    CommSchedule {
        name: format!("one_to_all_trees/n{n}/root{root}/k{}", trees.len()),
        n,
        ports: PortMode::AllPorts,
        // Rotated/reflected trees cross dimensions in cyclically shifted
        // orders; no single channel order covers the family.
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Plans [`crate::sbnt::all_to_all_sbnt`]: every block follows its SBnT
/// path one hop per round, blocks queued at a node for the same port
/// travelling as one message.
#[track_caller]
pub fn all_to_all_sbnt_plan(n: u32, sizes: &[Vec<u64>]) -> CommSchedule {
    let num = 1usize << n;
    assert_eq!(sizes.len(), num, "one size row per source");
    struct InFlight {
        id: u32,
        dims: Vec<u32>,
        pos: usize,
    }
    let mut blocks = Vec::new();
    let mut pending: Vec<Vec<InFlight>> = (0..num).map(|_| Vec::new()).collect();
    for (s, per_dst) in sizes.iter().enumerate() {
        assert_eq!(per_dst.len(), num, "one (possibly zero) size per destination");
        for (d, &elems) in per_dst.iter().enumerate() {
            if elems == 0 {
                continue;
            }
            let (src, dst) = (NodeId(s as u64), NodeId(d as u64));
            let id = blocks.len() as u32;
            blocks.push(BlockMeta { src, dst, elems });
            if s != d {
                pending[s].push(InFlight { id, dims: sbnt_path_dims(src, dst, n), pos: 0 });
            }
        }
    }
    check_blocks(n, &blocks);
    let mut rounds = Vec::new();
    while pending.iter().any(|p| !p.is_empty()) {
        let mut round = PlanRound::default();
        let mut hops: Vec<(NodeId, u32, Vec<InFlight>)> = Vec::new();
        for (x, slot) in pending.iter_mut().enumerate() {
            let mut by_dim: BTreeMap<u32, Vec<InFlight>> = BTreeMap::new();
            for f in slot.drain(..) {
                by_dim.entry(f.dims[f.pos]).or_default().push(f);
            }
            for (dim, group) in by_dim {
                hops.push((NodeId(x as u64), dim, group));
            }
        }
        for (x, dim, group) in &hops {
            round.msgs.push(PlannedMsg {
                src: *x,
                dim: *dim,
                blocks: group.iter().map(|f| f.id).collect(),
            });
        }
        rounds.push(round);
        for (x, dim, group) in hops {
            let land = x.neighbor(dim);
            for mut f in group {
                f.pos += 1;
                if f.pos < f.dims.len() {
                    pending[land.index()].push(f);
                }
            }
        }
    }
    CommSchedule {
        name: format!("all_to_all_sbnt/n{n}"),
        n,
        ports: PortMode::AllPorts,
        // SBnT forwarding follows set bits cyclically to the left from
        // the base port — not consistent with any fixed channel order.
        dimension_ordered: false,
        blocks,
        rounds,
    }
}

/// Plans [`crate::ecube::ecube_route`]: dimension-ordered store-and-
/// forward routing, one message per directed link per round, FIFO per
/// link, with the flat router's exact staging order (lanes ascending,
/// dimensions ascending per lane, commits dimension-major).
///
/// `msgs` are `(src, dst, elems)`; zero-element and local messages plan
/// no hops (local blocks still appear in the plan's block list, with an
/// empty path — conservation treats them as already delivered).
#[track_caller]
pub fn ecube_route_plan(n: u32, msgs: &[(NodeId, NodeId, u64)]) -> CommSchedule {
    let num = 1usize << n;
    let nd = n as usize;
    // One FIFO per (node, dim); only paths' nodes ever queue, but the
    // flat lattice keeps the planner simple — empty VecDeques do not
    // allocate.
    let mut queues: Vec<VecDeque<u32>> = (0..num * nd.max(1)).map(|_| VecDeque::new()).collect();
    let mut blocks = Vec::new();
    let mut in_flight = 0usize;
    for &(src, dst, elems) in msgs {
        if elems == 0 {
            continue;
        }
        let id = blocks.len() as u32;
        blocks.push(BlockMeta { src, dst, elems });
        let diff = src.bits() ^ dst.bits();
        if diff != 0 {
            queues[src.index() * nd + diff.trailing_zeros() as usize].push_back(id);
            in_flight += 1;
        }
    }
    check_blocks(n, &blocks);
    let mut rounds = Vec::new();
    // Per-dimension commit buffers: heads pop lanes-ascending then
    // dims-ascending, commit dimension-major — the router's send order.
    let mut commit: Vec<Vec<(NodeId, u32)>> = (0..nd).map(|_| Vec::new()).collect();
    while in_flight > 0 {
        for x in 0..num {
            for d in 0..nd {
                if let Some(&id) = queues[x * nd + d].front() {
                    queues[x * nd + d].pop_front();
                    commit[d].push((NodeId(x as u64), id));
                }
            }
        }
        let mut round = PlanRound::default();
        for (d, staged) in commit.iter().enumerate() {
            for &(src, id) in staged {
                round.msgs.push(PlannedMsg { src, dim: d as u32, blocks: vec![id] });
            }
        }
        rounds.push(round);
        // Land in send order: retire arrivals, requeue the rest on their
        // next e-cube dimension.
        for (d, staged) in commit.iter_mut().enumerate() {
            for (src, id) in staged.drain(..) {
                let land = src.neighbor(d as u32);
                let diff = land.bits() ^ blocks[id as usize].dst.bits();
                if diff == 0 {
                    in_flight -= 1;
                } else {
                    queues[land.index() * nd + diff.trailing_zeros() as usize].push_back(id);
                }
            }
        }
    }
    CommSchedule {
        name: format!("ecube_route/n{n}"),
        n,
        ports: PortMode::AllPorts,
        dimension_ordered: true,
        blocks,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_plan_counts_match_formula() {
        // n=2 all-to-all, 1 elem per pair, Ideal: 2 rounds, every node
        // sends 2 blocks per round.
        let n = 2;
        let sizes = vec![vec![1u64; 4]; 4];
        let plan = all_to_all_exchange_plan(n, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
        assert_eq!(plan.rounds.len(), 2);
        assert_eq!(plan.blocks.len(), 16);
        for round in &plan.rounds {
            assert_eq!(round.msgs.len(), 4);
            for m in &round.msgs {
                assert_eq!(plan.msg_elems(m), 2);
            }
        }
    }

    #[test]
    fn unbuffered_plan_subrounds_sum_to_n_minus_one() {
        let n = 3;
        let sizes = vec![vec![2u64; 8]; 8];
        let plan = all_to_all_exchange_plan(n, &sizes, BufferPolicy::Unbuffered, PortMode::OnePort);
        assert_eq!(plan.rounds.len(), (1 << n) - 1);
    }

    #[test]
    fn buffered_plan_charges_copies_for_gathered_chunks() {
        // Mirrors exchange::tests::buffered_charges_copy_only_for_small_chunks.
        let n = 3;
        let sizes = vec![vec![4u64; 8]; 8];
        let plan = all_to_all_exchange_plan(
            n,
            &sizes,
            BufferPolicy::Buffered { min_direct: 8 },
            PortMode::OnePort,
        );
        assert_eq!(plan.rounds.len(), 4);
        let copied: u64 = plan.rounds.iter().flat_map(|r| &r.copies).map(|&(_, e)| e).sum();
        // Last step: every node gathers 4 chunks x 4 elements = 16.
        assert_eq!(copied, 16 * 8);
    }

    #[test]
    fn sbt_plan_has_n_rounds_and_conserves_elems() {
        let n = 4;
        let sizes: Vec<u64> = (0..16u64).map(|d| d % 3 + 1).collect();
        let plan = one_to_all_sbt_plan(n, NodeId(5), &sizes);
        assert_eq!(plan.rounds.len(), n as usize);
        let total: u64 = plan.blocks.iter().map(|b| b.elems).sum();
        assert_eq!(total, sizes.iter().sum::<u64>());
    }

    #[test]
    fn trees_plan_splits_like_split_even() {
        let n = 2;
        let trees: Vec<Sbt> = (0..n).map(|k| Sbt::rotated(n, NodeId(0), k)).collect();
        let plan = one_to_all_trees_plan(n, &[0, 5, 2, 1], &trees);
        // dst 1: 5 elems over 2 trees -> 3 + 2; dst 2: 1 + 1; dst 3: 1.
        let sizes: Vec<u64> = plan.blocks.iter().map(|b| b.elems).collect();
        assert_eq!(sizes.iter().sum::<u64>(), 8);
        assert!(sizes.contains(&3) && sizes.contains(&2));
    }

    #[test]
    fn sbnt_plan_round_count_is_max_path_length() {
        let n = 4;
        let sizes = vec![vec![1u64; 16]; 16];
        let plan = all_to_all_sbnt_plan(n, &sizes);
        assert_eq!(plan.rounds.len(), n as usize);
    }

    #[test]
    fn ecube_plan_single_message_takes_distance_rounds() {
        let plan = ecube_route_plan(4, &[(NodeId(0), NodeId(0b1011), 2)]);
        assert_eq!(plan.rounds.len(), 3);
        for round in &plan.rounds {
            assert_eq!(round.msgs.len(), 1);
        }
        // Hops ascend dimensions 0, 1, 3.
        let dims: Vec<u32> = plan.rounds.iter().map(|r| r.msgs[0].dim).collect();
        assert_eq!(dims, vec![0, 1, 3]);
    }

    #[test]
    fn ecube_plan_contention_serializes() {
        // Mirrors ecube::tests::contention_serializes: both messages
        // queue on (1, dim 0); the second waits a round.
        let plan = ecube_route_plan(2, &[(NodeId(1), NodeId(0), 1), (NodeId(1), NodeId(2), 1)]);
        assert_eq!(plan.rounds.len(), 3);
        assert_eq!(plan.rounds[0].msgs.len(), 1);
    }

    #[test]
    fn local_and_empty_router_messages_plan_no_hops() {
        let plan = ecube_route_plan(2, &[(NodeId(2), NodeId(2), 5), (NodeId(0), NodeId(3), 0)]);
        assert!(plan.rounds.is_empty());
        assert_eq!(plan.blocks.len(), 1); // the local block survives; the empty one is dropped
    }

    #[test]
    #[should_panic(expected = "distinct (src, dst)")]
    fn exchange_plan_rejects_duplicate_pairs() {
        let b = BlockMeta { src: NodeId(0), dst: NodeId(1), elems: 1 };
        let _ = exchange_plan(1, vec![b, b], &[0], BufferPolicy::Ideal, PortMode::OnePort, "dup");
    }
}
