//! Dimension-ordered (e-cube) store-and-forward routing — the "routing
//! logic" baseline used by the paper's Figures 14(b) and 16–18.
//!
//! Every message follows the dimensions of `src ⊕ dst` in ascending
//! order. Each directed link carries one message per round (the router
//! serializes contending messages), which is precisely what makes the
//! naive "just send everything to its destination" transpose slow
//! compared with the scheduled algorithms: contending messages queue.

use crate::block::{Block, BlockMsg};
use cubeaddr::NodeId;
use cubesim::SimNet;
use std::collections::VecDeque;

/// A message handed to the router.
#[derive(Clone, Debug)]
pub struct RouteMsg<T> {
    /// Origin node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The elements.
    pub data: Vec<T>,
}

/// The next dimension an e-cube message crosses from `cur` toward `dst`,
/// or `None` on arrival.
pub fn ecube_next_dim(cur: NodeId, dst: NodeId) -> Option<u32> {
    let diff = cur.bits() ^ dst.bits();
    if diff == 0 {
        None
    } else {
        Some(diff.trailing_zeros())
    }
}

/// Routes all messages to their destinations with dimension-ordered
/// store-and-forward routing, one message per directed link per round
/// (FIFO per link). Returns the blocks received per node, in arrival
/// order.
///
/// The router hardware operates independently on every link, so this is
/// an all-port operation regardless of what the node processors could do;
/// run it on a net with [`cubesim::PortMode::AllPorts`].
pub fn ecube_route<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    msgs: Vec<RouteMsg<T>>,
) -> Vec<Vec<Block<T>>> {
    let n = net.n();
    let num = net.num_nodes();
    let mut result: Vec<Vec<Block<T>>> = vec![Vec::new(); num];
    // queues[node][dim]: messages waiting for that outgoing link.
    let mut queues: Vec<Vec<VecDeque<RouteMsg<T>>>> =
        vec![(0..n).map(|_| VecDeque::new()).collect(); num];

    for m in msgs {
        if m.data.is_empty() {
            continue;
        }
        match ecube_next_dim(m.src, m.dst) {
            None => result[m.dst.index()].push(Block::new(m.src, m.dst, m.data)),
            Some(d) => {
                let src = m.src;
                queues[src.index()][d as usize].push_back(m);
            }
        }
    }

    while queues.iter().flatten().any(|q| !q.is_empty()) {
        for (x, node_queues) in queues.iter_mut().enumerate() {
            for d in 0..n {
                if let Some(m) = node_queues[d as usize].pop_front() {
                    net.send(NodeId(x as u64), d, BlockMsg(vec![Block::new(m.src, m.dst, m.data)]));
                }
            }
        }
        net.finish_round();
        // Drain every delivered message and advance it.
        for x in 0..num {
            let node = NodeId(x as u64);
            for d in 0..n {
                if net.has_message(node, d) {
                    let BlockMsg(blocks) = net.recv(node, d);
                    for b in blocks {
                        match ecube_next_dim(node, b.dst) {
                            None => result[node.index()].push(b),
                            Some(nd) => queues[node.index()][nd as usize].push_back(RouteMsg {
                                src: b.src,
                                dst: b.dst,
                                data: b.data,
                            }),
                        }
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    fn net(n: u32) -> SimNet<BlockMsg<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::AllPorts))
    }

    #[test]
    fn next_dim_is_lowest_differing() {
        assert_eq!(ecube_next_dim(NodeId(0b000), NodeId(0b110)), Some(1));
        assert_eq!(ecube_next_dim(NodeId(0b010), NodeId(0b110)), Some(2));
        assert_eq!(ecube_next_dim(NodeId(0b110), NodeId(0b110)), None);
    }

    #[test]
    fn single_message_takes_distance_rounds() {
        let mut net = net(4);
        let out = ecube_route(
            &mut net,
            vec![RouteMsg { src: NodeId(0), dst: NodeId(0b1011), data: vec![1, 2] }],
        );
        assert_eq!(out[0b1011], vec![Block::new(NodeId(0), NodeId(0b1011), vec![1, 2])]);
        let r = net.finalize();
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn contention_serializes() {
        // Two messages from different sources forced through the same
        // first link (node 1 → node 0): one waits a round.
        let mut net = net(2);
        let msgs = vec![
            RouteMsg { src: NodeId(1), dst: NodeId(0), data: vec![10] },
            RouteMsg { src: NodeId(1), dst: NodeId(2), data: vec![20] },
        ];
        // Both use link (1, dim 0)? dst 0: diff = 1 → dim 0. dst 2:
        // diff = 3 → dim 0 first. Yes: both queue on (1, 0).
        let out = ecube_route(&mut net, msgs);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[2].len(), 1);
        let r = net.finalize();
        // Second message needs round 2 for hop 1 and round 3 for hop 2.
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn all_to_all_by_router_delivers() {
        let n = 3;
        let num = 1usize << n;
        let msgs: Vec<RouteMsg<u64>> = (0..num as u64)
            .flat_map(|s| {
                (0..num as u64).filter(move |&d| d != s).map(move |d| RouteMsg {
                    src: NodeId(s),
                    dst: NodeId(d),
                    data: vec![s * 100 + d],
                })
            })
            .collect();
        let mut net = net(n);
        let out = ecube_route(&mut net, msgs);
        for (d, blks) in out.iter().enumerate() {
            assert_eq!(blks.len(), num - 1, "node {d}");
            for b in blks {
                assert_eq!(b.data, vec![b.src.bits() * 100 + d as u64]);
            }
        }
        net.finalize();
    }

    #[test]
    fn transpose_pattern_congestion_exceeds_distance() {
        // The node-permutation x → tr(x) routed by e-cube suffers link
        // contention: rounds exceed the diameter for n = 6 while the
        // scheduled SPT algorithm needs only n routing steps per packet.
        let n = 6;
        let half = n / 2;
        let msgs: Vec<RouteMsg<u64>> = (0..(1u64 << n))
            .filter_map(|x| {
                let (hi, lo) = cubeaddr::split(x, half);
                let t = cubeaddr::concat(lo, hi, half);
                (t != x).then(|| RouteMsg { src: NodeId(x), dst: NodeId(t), data: vec![x; 8] })
            })
            .collect();
        let mut net = net(n);
        let _ = ecube_route(&mut net, msgs);
        let r = net.finalize();
        assert!(r.rounds >= n as usize, "rounds {} below diameter", r.rounds);
    }

    #[test]
    fn empty_messages_dropped() {
        let mut net = net(2);
        let out = ecube_route(
            &mut net,
            vec![RouteMsg { src: NodeId(0), dst: NodeId(3), data: Vec::<u64>::new() }],
        );
        assert!(out.iter().all(|v| v.is_empty()));
        assert_eq!(net.finalize().rounds, 0);
    }

    #[test]
    fn local_message_arrives_immediately() {
        let mut net = net(2);
        let out =
            ecube_route(&mut net, vec![RouteMsg { src: NodeId(2), dst: NodeId(2), data: vec![5] }]);
        assert_eq!(out[2].len(), 1);
        assert_eq!(net.finalize().rounds, 0);
    }
}
