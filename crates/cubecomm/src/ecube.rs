//! Dimension-ordered (e-cube) store-and-forward routing — the "routing
//! logic" baseline used by the paper's Figures 14(b) and 16–18.
//!
//! Every message follows the dimensions of `src ⊕ dst` in ascending
//! order. Each directed link carries one message per round (the router
//! serializes contending messages), which is precisely what makes the
//! naive "just send everything to its destination" transpose slow
//! compared with the scheduled algorithms: contending messages queue.
//!
//! # Data plane
//!
//! The router keeps its state in the flat style of [`SimNet`]: one *lane*
//! per node that any message path touches, holding that node's outgoing
//! FIFO queues as intrusive lists threaded through a single per-lane slab
//! (inline tail cursors, a free list for retired entries — no per-queue
//! allocation), and a bitmask of the non-empty queues. Blocks travel the
//! wire as bare [`Block`] payloads, so a forwarding hop moves a block
//! from slab to commit buffer to link slot and back — no buffer
//! allocation anywhere on the path. Liveness is a single
//! undelivered-message counter plus a bitmap of lanes with queued blocks,
//! so a round costs O(messages in flight + touched nodes), never
//! O(2^n · n); lanes are built lazily from the injected messages' paths,
//! so a 2-message probe on a 14-cube allocates a handful of queues, not
//! ~230 000.
//!
//! Each round runs a staging/commit split: per-lane work — popping queue
//! heads into staged messages, and advancing landed blocks (next-dim
//! computation, requeueing) — touches only that lane and fans out over
//! [`cubesim::par`] worker threads, while every [`SimNet`] interaction
//! (the [`SimNet::send_batch`] commit, [`SimNet::drain_all`], the cost
//! accounting) stays on the calling thread in a fixed order. Reports and
//! arrivals are therefore byte-identical at every `CUBEBENCH_THREADS`.
//! The pre-rework implementation survives as [`reference::RefRouter`]
//! with an equivalence property test
//! (`crates/cubecomm/tests/router_equivalence.rs`).

pub mod reference;

use crate::block::Block;
use cubeaddr::NodeId;
use cubesim::{par, SimNet};
use cubesync::atomic::{AtomicUsize, Ordering};

/// A message handed to the router.
#[derive(Clone, Debug)]
pub struct RouteMsg<T> {
    /// Origin node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The elements.
    pub data: Vec<T>,
}

/// The next dimension an e-cube message crosses from `cur` toward `dst`,
/// or `None` on arrival.
pub fn ecube_next_dim(cur: NodeId, dst: NodeId) -> Option<u32> {
    let diff = cur.bits() ^ dst.bits();
    if diff == 0 {
        None
    } else {
        Some(diff.trailing_zeros())
    }
}

/// Sentinel for the intrusive FIFO links in a lane's slab.
pub(crate) const NIL: u32 = u32::MAX;

/// Largest cube dimension the router supports: the per-lane FIFO cursors
/// live in inline arrays of this size so building a lane allocates
/// nothing. [`SimNet`]'s dense `2^n · n` lattice runs out of memory long
/// before this bound bites.
pub(crate) const MAX_LANE_DIMS: usize = 32;

/// Per-touched-node router state: the node's outgoing queues plus the
/// round-local staging, landing and arrival buffers its parallel passes
/// write. Everything a worker thread mutates lives in exactly one lane.
///
/// The queues are intrusive circular FIFOs threaded through one slab:
/// `slab[i]` holds a block and the index of its queue successor, the tail
/// entry links back to the head (so one cursor per queue finds both
/// ends), and retired entries chain from `free` for reuse. One growable
/// allocation per lane (often none for pass-through lanes) instead of a
/// `VecDeque` per dimension.
pub(crate) struct Lane<T> {
    /// The node this lane belongs to.
    pub(crate) node: NodeId,
    /// FIFO entries: `(block, next index)`; `next` doubles as the free
    /// list link once the block is taken.
    pub(crate) slab: Vec<(Option<Block<T>>, u32)>,
    /// Head of the slab free list.
    pub(crate) free: u32,
    /// FIFO tail per dimension (`NIL` when that queue is empty); the
    /// head is the tail's successor.
    pub(crate) tails: [u32; MAX_LANE_DIMS],
    /// Bit `d` set ⇔ queue `d` is non-empty (the active-slot list).
    pub(crate) qmask: u64,
    /// Queue heads popped this round, awaiting the serial commit.
    pub(crate) staged: Vec<(u32, Block<T>)>,
    /// Blocks delivered to this node this round, dimension-ascending.
    pub(crate) landed: Vec<(u32, Block<T>)>,
    /// Blocks whose final destination is this node, in arrival order.
    pub(crate) arrived: Vec<Block<T>>,
}

impl<T> Lane<T> {
    pub(crate) fn new(node: NodeId) -> Self {
        Lane {
            node,
            slab: Vec::new(),
            free: NIL,
            tails: [NIL; MAX_LANE_DIMS],
            qmask: 0,
            staged: Vec::new(),
            landed: Vec::new(),
            arrived: Vec::new(),
        }
    }

    /// Appends `block` to the dimension-`dim` FIFO.
    pub(crate) fn push(&mut self, dim: u32, block: Block<T>) {
        let idx = if self.free == NIL {
            self.slab.push((Some(block), NIL));
            (self.slab.len() - 1) as u32
        } else {
            let i = self.free;
            let entry = &mut self.slab[i as usize];
            self.free = entry.1;
            *entry = (Some(block), NIL);
            i
        };
        let d = dim as usize;
        let tail = self.tails[d];
        if tail == NIL {
            self.slab[idx as usize].1 = idx; // 1-entry ring: head == tail
        } else {
            let head = self.slab[tail as usize].1;
            self.slab[idx as usize].1 = head;
            self.slab[tail as usize].1 = idx;
        }
        self.tails[d] = idx;
        self.qmask |= 1 << dim;
    }

    /// Pops the head of the dimension-`dim` FIFO (must be non-empty).
    pub(crate) fn pop(&mut self, dim: u32) -> Block<T> {
        let d = dim as usize;
        let tail = self.tails[d];
        let head = self.slab[tail as usize].1;
        let entry = &mut self.slab[head as usize];
        let block = entry.0.take().expect("qmask bit set on empty queue");
        let next = entry.1;
        entry.1 = self.free;
        self.free = head;
        if head == tail {
            self.tails[d] = NIL;
            self.qmask &= !(1 << dim);
        } else {
            self.slab[tail as usize].1 = next;
        }
        block
    }

    /// [`Lane::stage`] fused with the commit regrouping: pops every
    /// queue head straight into the per-dimension commit buffers. The
    /// single-worker twin of `stage` + regroup; lanes are visited
    /// ascending and `stage` pops dimensions ascending, so the buffer
    /// contents come out identical either way.
    pub(crate) fn stage_into(&mut self, commit: &mut [Vec<(NodeId, Block<T>)>]) {
        let mut mask = self.qmask;
        while mask != 0 {
            let d = mask.trailing_zeros();
            mask &= mask - 1;
            let block = self.pop(d);
            commit[d as usize].push((self.node, block));
        }
    }

    /// Pops the head of every non-empty queue into `staged` (one message
    /// per outgoing link per round). Lane-local; runs on worker threads.
    pub(crate) fn stage(&mut self) {
        let mut mask = self.qmask;
        while mask != 0 {
            let d = mask.trailing_zeros();
            mask &= mask - 1;
            let block = self.pop(d);
            self.staged.push((d, block));
        }
    }

    /// Retires or requeues every block landed this round. Lane-local;
    /// runs on worker threads. The `landed` list is dimension-ascending
    /// (the commit pass sends dimension-major and [`SimNet::drain_all`]
    /// preserves send order), which reproduces the reference router's
    /// requeue order exactly.
    fn advance(&mut self, pending: &AtomicUsize) {
        let mut retired = 0usize;
        // Detach the landed list so the requeues below can borrow self.
        let mut landed = std::mem::take(&mut self.landed);
        for (_, b) in landed.drain(..) {
            match ecube_next_dim(self.node, b.dst) {
                None => {
                    self.arrived.push(b);
                    retired += 1;
                }
                Some(nd) => self.push(nd, b),
            }
        }
        self.landed = landed;
        if retired > 0 {
            pending.fetch_sub(retired, Ordering::Relaxed);
        }
    }
}

/// Every node a message set's e-cube paths visit (sources, intermediate
/// hops and destinations), sorted ascending, deduplicated. Local and
/// empty messages touch nothing. The router sizes its queue storage from
/// this list instead of the full `2^n` lattice.
fn touched_nodes<T>(msgs: &[RouteMsg<T>], num: usize) -> Vec<u64> {
    // Mark path nodes in a bitmap, then read it back in word order: the
    // result comes out sorted and deduplicated without sorting the
    // per-message path multiset. The bitmap is num/64 words — 2 KB on a
    // 14-cube, nothing like the queue lattice this sizing avoids.
    let mut seen = vec![0u64; num.div_ceil(64)];
    for m in msgs {
        if m.data.is_empty() || m.src == m.dst {
            continue;
        }
        let dst = m.dst.bits();
        let mut cur = m.src.bits();
        while cur != dst {
            seen[(cur / 64) as usize] |= 1 << (cur % 64);
            cur ^= 1 << (cur ^ dst).trailing_zeros();
        }
        seen[(dst / 64) as usize] |= 1 << (dst % 64);
    }
    let mut touched = Vec::new();
    for (w, &word) in seen.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            touched.push((w * 64) as u64 + u64::from(bits.trailing_zeros()));
            bits &= bits - 1;
        }
    }
    touched
}

/// Reads the set bits of `bits` into `out` as sorted indices.
pub(crate) fn bitmap_to_list(bits: &[u64], out: &mut Vec<u32>) {
    out.clear();
    for (w, &word) in bits.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            out.push((w * 64) as u32 + word.trailing_zeros());
            word &= word - 1;
        }
    }
}

/// Routes all messages to their destinations with dimension-ordered
/// store-and-forward routing, one message per directed link per round
/// (FIFO per link). Returns the blocks received per node, in arrival
/// order.
///
/// The router hardware operates independently on every link, so this is
/// an all-port operation regardless of what the node processors could do;
/// run it on a net with [`cubesim::PortMode::AllPorts`].
///
/// Per-node staging and advancement fan out over
/// [`cubesim::par::num_threads`] workers; all cost accounting stays
/// serial, so results and [`cubesim::CommReport`]s do not depend on the
/// thread count.
pub fn ecube_route<T: Send>(
    net: &mut SimNet<Block<T>>,
    msgs: Vec<RouteMsg<T>>,
) -> Vec<Vec<Block<T>>> {
    let n = net.n();
    assert!(
        n as usize <= MAX_LANE_DIMS,
        "router supports cubes up to n = {MAX_LANE_DIMS}, got n = {n}"
    );
    let num = net.num_nodes();
    let mut result: Vec<Vec<Block<T>>> = (0..num).map(|_| Vec::new()).collect();

    // Lazily sized queue storage: one lane per touched node, found by a
    // dense node → lane translation (a single flat u32 array, not a
    // queue lattice).
    let touched = touched_nodes(&msgs, num);
    let mut lane_of: Vec<u32> = vec![u32::MAX; num];
    for (i, &x) in touched.iter().enumerate() {
        lane_of[x as usize] = i as u32;
    }
    let mut lanes: Vec<Lane<T>> = touched.iter().map(|&x| Lane::new(NodeId(x))).collect();

    // Live-lane bitmap: bit set ⇔ that lane has a queued block. Kept in
    // lock-step with the lanes' qmasks; the per-round active list reads
    // off it in word order, sorted for free.
    let mut live = vec![0u64; lanes.len().div_ceil(64)];

    // Inject: local messages arrive immediately; the rest queue at their
    // source on their first dimension, in input order.
    let mut injected = 0usize;
    for m in msgs {
        if m.data.is_empty() {
            continue;
        }
        match ecube_next_dim(m.src, m.dst) {
            None => result[m.dst.index()].push(Block::new(m.src, m.dst, m.data)),
            Some(d) => {
                let li = lane_of[m.src.index()];
                lanes[li as usize].push(d, Block::new(m.src, m.dst, m.data));
                live[(li / 64) as usize] |= 1 << (li % 64);
                injected += 1;
            }
        }
    }

    // Undelivered-message counter: the O(1) liveness test that replaces
    // the reference router's full-lattice queue scan.
    let pending = AtomicUsize::new(injected);
    let mut active: Vec<u32> = Vec::new();
    let mut landed_bits = vec![0u64; live.len()];
    let mut landed_lanes: Vec<u32> = Vec::new();
    // Per-dimension commit buffers, reused across rounds.
    let mut commit: Vec<Vec<(NodeId, Block<T>)>> = (0..n).map(|_| Vec::new()).collect();
    let threads = par::num_threads();

    while pending.load(Ordering::Relaxed) > 0 {
        bitmap_to_list(&live, &mut active);
        // Stage: one queue head per non-empty outgoing link, grouped
        // dimension-major with nodes ascending within each dimension. At
        // one worker the heads go straight into the commit buffers; with
        // more, lanes stage in parallel and a serial pass regroups —
        // either way the commit order is identical.
        // A lane whose queues just drained leaves the live set; it
        // re-enters when a block lands on it below.
        if threads <= 1 {
            for &li in &active {
                let lane = &mut lanes[li as usize];
                lane.stage_into(&mut commit);
                if lane.qmask == 0 {
                    live[(li / 64) as usize] &= !(1 << (li % 64));
                }
            }
        } else {
            par::par_for_each_mut_sparse(&mut lanes, &active, Lane::stage);
            for &li in &active {
                let lane = &mut lanes[li as usize];
                for (d, msg) in lane.staged.drain(..) {
                    commit[d as usize].push((lane.node, msg));
                }
                if lane.qmask == 0 {
                    live[(li / 64) as usize] &= !(1 << (li % 64));
                }
            }
        }
        // Commit (serial): batch-send per dimension — all legality
        // checks and cost accounting on this thread, in a fixed order.
        for (d, staged) in commit.iter_mut().enumerate() {
            net.send_batch(d as u32, staged.drain(..));
        }
        net.finish_round();
        // Drain (serial): one pass over the inbox, in send order, so
        // every lane sees its deliveries dimension-ascending.
        if threads <= 1 {
            // Advance inline: retire arrivals, requeue the rest.
            let mut retired = 0usize;
            net.drain_all_with(|dst, _, b| {
                match ecube_next_dim(dst, b.dst) {
                    None => {
                        // Straight into the result: same per-node order
                        // as the split path's arrived buffer.
                        result[dst.index()].push(b);
                        retired += 1;
                    }
                    Some(nd) => {
                        // Only a requeue touches the lane.
                        let li = lane_of[dst.index()];
                        lanes[li as usize].push(nd, b);
                        live[(li / 64) as usize] |= 1 << (li % 64);
                    }
                }
            });
            if retired > 0 {
                pending.fetch_sub(retired, Ordering::Relaxed);
            }
        } else {
            net.drain_all_with(|dst, dim, b| {
                let li = lane_of[dst.index()];
                landed_bits[(li / 64) as usize] |= 1 << (li % 64);
                lanes[li as usize].landed.push((dim, b));
            });
            bitmap_to_list(&landed_bits, &mut landed_lanes);
            landed_bits.fill(0);
            // Advance (parallel): retire arrivals, requeue the rest.
            par::par_for_each_mut_sparse(&mut lanes, &landed_lanes, |lane| lane.advance(&pending));
            for &li in &landed_lanes {
                if lanes[li as usize].qmask != 0 {
                    live[(li / 64) as usize] |= 1 << (li % 64);
                }
            }
        }
    }

    for lane in lanes {
        let x = lane.node.index();
        if result[x].is_empty() {
            result[x] = lane.arrived;
        } else {
            result[x].extend(lane.arrived);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    fn net(n: u32) -> SimNet<Block<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::AllPorts))
    }

    #[test]
    fn next_dim_is_lowest_differing() {
        assert_eq!(ecube_next_dim(NodeId(0b000), NodeId(0b110)), Some(1));
        assert_eq!(ecube_next_dim(NodeId(0b010), NodeId(0b110)), Some(2));
        assert_eq!(ecube_next_dim(NodeId(0b110), NodeId(0b110)), None);
    }

    #[test]
    fn lane_fifo_preserves_order_across_reuse() {
        let mut lane: Lane<u64> = Lane::new(NodeId(0));
        for v in 0..5u64 {
            lane.push(2, Block::new(NodeId(0), NodeId(4), vec![v]));
        }
        lane.push(0, Block::new(NodeId(0), NodeId(1), vec![9]));
        assert_eq!(lane.qmask, 0b101);
        for v in 0..5u64 {
            assert_eq!(lane.pop(2).data, vec![v]);
        }
        assert_eq!(lane.qmask, 0b001);
        // Freed slots get reused without disturbing FIFO order.
        let before = lane.slab.len();
        for v in 5..8u64 {
            lane.push(2, Block::new(NodeId(0), NodeId(4), vec![v]));
        }
        assert_eq!(lane.slab.len(), before);
        assert_eq!(lane.pop(0).data, vec![9]);
        for v in 5..8u64 {
            assert_eq!(lane.pop(2).data, vec![v]);
        }
        assert_eq!(lane.qmask, 0);
    }

    #[test]
    fn single_message_takes_distance_rounds() {
        let mut net = net(4);
        let out = ecube_route(
            &mut net,
            vec![RouteMsg { src: NodeId(0), dst: NodeId(0b1011), data: vec![1, 2] }],
        );
        assert_eq!(out[0b1011], vec![Block::new(NodeId(0), NodeId(0b1011), vec![1, 2])]);
        let r = net.finalize();
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn contention_serializes() {
        // Two messages from different sources forced through the same
        // first link (node 1 → node 0): one waits a round.
        let mut net = net(2);
        let msgs = vec![
            RouteMsg { src: NodeId(1), dst: NodeId(0), data: vec![10] },
            RouteMsg { src: NodeId(1), dst: NodeId(2), data: vec![20] },
        ];
        // Both use link (1, dim 0)? dst 0: diff = 1 → dim 0. dst 2:
        // diff = 3 → dim 0 first. Yes: both queue on (1, 0).
        let out = ecube_route(&mut net, msgs);
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[2].len(), 1);
        let r = net.finalize();
        // Second message needs round 2 for hop 1 and round 3 for hop 2.
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn all_to_all_by_router_delivers() {
        let n = 3;
        let num = cubeaddr::num_nodes(n);
        let msgs: Vec<RouteMsg<u64>> = (0..num as u64)
            .flat_map(|s| {
                (0..num as u64).filter(move |&d| d != s).map(move |d| RouteMsg {
                    src: NodeId(s),
                    dst: NodeId(d),
                    data: vec![s * 100 + d],
                })
            })
            .collect();
        let mut net = net(n);
        let out = ecube_route(&mut net, msgs);
        for (d, blks) in out.iter().enumerate() {
            assert_eq!(blks.len(), num - 1, "node {d}");
            for b in blks {
                assert_eq!(b.data, vec![b.src.bits() * 100 + d as u64]);
            }
        }
        net.finalize();
    }

    #[test]
    fn transpose_pattern_congestion_exceeds_distance() {
        // The node-permutation x → tr(x) routed by e-cube suffers link
        // contention: rounds exceed the diameter for n = 6 while the
        // scheduled SPT algorithm needs only n routing steps per packet.
        let n = 6;
        let half = n / 2;
        let msgs: Vec<RouteMsg<u64>> = (0..(1u64 << n))
            .filter_map(|x| {
                let (hi, lo) = cubeaddr::split(x, half);
                let t = cubeaddr::concat(lo, hi, half);
                (t != x).then(|| RouteMsg { src: NodeId(x), dst: NodeId(t), data: vec![x; 8] })
            })
            .collect();
        let mut net = net(n);
        let _ = ecube_route(&mut net, msgs);
        let r = net.finalize();
        assert!(r.rounds >= n as usize, "rounds {} below diameter", r.rounds);
    }

    #[test]
    fn empty_messages_dropped() {
        let mut net = net(2);
        let out = ecube_route(
            &mut net,
            vec![RouteMsg { src: NodeId(0), dst: NodeId(3), data: Vec::<u64>::new() }],
        );
        assert!(out.iter().all(|v| v.is_empty()));
        assert_eq!(net.finalize().rounds, 0);
    }

    #[test]
    fn local_message_arrives_immediately() {
        let mut net = net(2);
        let out =
            ecube_route(&mut net, vec![RouteMsg { src: NodeId(2), dst: NodeId(2), data: vec![5] }]);
        assert_eq!(out[2].len(), 1);
        assert_eq!(net.finalize().rounds, 0);
    }

    #[test]
    fn touched_nodes_covers_paths_only() {
        // Two messages on a 14-cube touch at most their two e-cube
        // paths, not the 2^14-node lattice: the lazily sized router
        // allocates queues for a handful of lanes.
        let msgs = vec![
            RouteMsg { src: NodeId(0), dst: NodeId(0b101), data: vec![1u64] },
            RouteMsg { src: NodeId(0b11_0000_0000_0000), dst: NodeId(1), data: vec![2] },
        ];
        let touched = touched_nodes(&msgs, 1 << 14);
        // Message 1: 0 → 1 → 101 touches {0, 1, 101}. Message 2 crosses
        // dims {0, 12, 13}: 4 nodes. Node 1 is shared.
        assert_eq!(touched.len(), 3 + 4 - 1);
        assert!(touched.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        for m in &msgs {
            assert!(touched.contains(&m.src.bits()));
            assert!(touched.contains(&m.dst.bits()));
        }
    }

    #[test]
    fn touched_nodes_skips_local_and_empty() {
        let msgs = vec![
            RouteMsg { src: NodeId(5), dst: NodeId(5), data: vec![1u64] },
            RouteMsg { src: NodeId(0), dst: NodeId(7), data: Vec::new() },
        ];
        assert!(touched_nodes(&msgs, 8).is_empty());
    }

    #[test]
    fn sparse_probe_on_large_cube_is_cheap_and_correct() {
        // The lazy sizing must not change behavior: a 2-message probe on
        // an n=14 net routes exactly as on a small one.
        let mut net = net(14);
        let far = (1u64 << 14) - 1;
        let out = ecube_route(
            &mut net,
            vec![
                RouteMsg { src: NodeId(0), dst: NodeId(far), data: vec![7, 8] },
                RouteMsg { src: NodeId(far), dst: NodeId(0), data: vec![9] },
            ],
        );
        assert_eq!(out[far as usize], vec![Block::new(NodeId(0), NodeId(far), vec![7, 8])]);
        assert_eq!(out[0], vec![Block::new(NodeId(far), NodeId(0), vec![9])]);
        let r = net.finalize();
        assert_eq!(r.rounds, 14);
        assert_eq!(r.total_messages, 28);
    }

    #[test]
    fn arrival_order_interleaves_rounds_by_dimension() {
        // Three messages with the same destination but different last
        // hops: arrivals at the destination come out round-major, then
        // dimension-ascending within a round — the reference router's
        // order.
        let mut net = net(3);
        let msgs = vec![
            // 1 hop on dim 2: arrives round 1 via dim 2.
            RouteMsg { src: NodeId(0b011), dst: NodeId(0b111), data: vec![1] },
            // 1 hop on dim 0: arrives round 1 via dim 0.
            RouteMsg { src: NodeId(0b110), dst: NodeId(0b111), data: vec![2] },
            // 2 hops (dims 0 then 1): arrives round 2.
            RouteMsg { src: NodeId(0b100), dst: NodeId(0b111), data: vec![3] },
        ];
        let out = ecube_route(&mut net, msgs);
        let got: Vec<u64> = out[0b111].iter().map(|b| b.data[0]).collect();
        assert_eq!(got, vec![2, 1, 3]);
        net.finalize();
    }
}
