//! The standard exchange algorithm for all-to-all personalized
//! communication (paper §3.2, §8.1).
//!
//! One dimension is processed per step: every node holding blocks whose
//! destination differs from its own address in that dimension exchanges
//! them with its neighbor across the dimension. Scanning all `n` real
//! processor dimensions realizes all-to-all personalized communication in
//! `n` exchanges of `PQ/2N` elements each (one-port optimal within a
//! factor of 2); scanning a subset realizes the splitting/accumulation
//! phases of some-to-all communication.
//!
//! The per-step *send policy* models the Intel iPSC implementation choices
//! of §8.1: the data to exchange occupies `2^j` non-contiguous chunks of
//! the local array at step `j`, which may be sent individually
//! (unbuffered: more start-ups, no copy), gathered into a buffer (one
//! message, significant copy time), or — the optimum — gathered only when
//! a chunk is smaller than the break-even block size `B_copy = τ/t_copy`.

use crate::block::{Block, BlockMsg};
use cubeaddr::NodeId;
use cubesim::{BufferPool, SimNet};

/// Splits the step's outgoing blocks into the number of memory-contiguous
/// chunks the iPSC implementation sees.
///
/// The exchange algorithm works in place: at the `k`-th exchange step
/// (0-based) the elements to send occupy `2^k` equal non-contiguous runs
/// of the local array, because `k` already-processed address bits sit
/// above the bit being exchanged (§8.1: "the local array is partitioned
/// into `2^j` same-sized blocks during step `j`"). Blocks are grouped in
/// destination order, which is the local storage order of the blocked
/// array.
fn memory_chunks<T>(
    blocks: &mut Vec<Block<T>>,
    step_index: usize,
    pool: &mut BufferPool<Block<T>>,
) -> Vec<Vec<Block<T>>> {
    blocks.sort_by_key(|b| (b.dst, b.src));
    let want = 1usize << step_index.min(62);
    let chunks = want.min(blocks.len().max(1));
    let per = blocks.len().div_ceil(chunks);
    let mut out: Vec<Vec<Block<T>>> = Vec::with_capacity(chunks);
    for b in blocks.drain(..) {
        match out.last_mut() {
            Some(chunk) if chunk.len() < per => chunk.push(b),
            _ => {
                let mut chunk = pool.take();
                chunk.push(b);
                out.push(chunk);
            }
        }
    }
    out
}

/// Send policy for one exchange step (paper §8.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BufferPolicy {
    /// One message per step, no copy charged: the idealized model used in
    /// the complexity sections (equivalently: copy time ignored).
    Ideal,
    /// Every memory-contiguous chunk is its own message: no copy time,
    /// start-ups grow linearly in the number of chunks (≈ `N` total over
    /// a full all-to-all).
    Unbuffered,
    /// Chunks of at least `min_direct` elements are sent directly; the
    /// rest are gathered into one buffer (copy time charged per element)
    /// and sent as a single trailing message. `min_direct = B_copy`
    /// is the optimum of §8.1.
    Buffered {
        /// Minimum chunk size (elements) sent without buffering.
        min_direct: usize,
    },
}

/// Runs exchange steps over `dims` (in the given order) on an arbitrary
/// initial placement of blocks.
///
/// `held[x]` are the blocks initially at node `x`; on return, every block
/// has been routed to its destination and `result[x]` holds node `x`'s
/// incoming blocks. The dimension sequence must cover every bit in which
/// any block's source and destination differ.
///
/// Each step is one-port legal: a node only touches the step's dimension.
///
/// # Panics
/// If some block's destination is unreachable through `dims` (left
/// stranded), or on cost-model violations.
#[track_caller]
pub fn exchange_over_dims<T: Clone + Send + Sync>(
    net: &mut SimNet<BlockMsg<T>>,
    mut held: Vec<Vec<Block<T>>>,
    dims: &[u32],
    policy: BufferPolicy,
) -> Vec<Vec<Block<T>>> {
    assert_eq!(held.len(), net.num_nodes());
    // Spare block vectors recycled across steps and sub-rounds: after the
    // first step primes the pool, partitioning and message assembly reuse
    // delivered buffers instead of allocating.
    let mut pool: BufferPool<Block<T>> = BufferPool::new();
    let mut to_send: Vec<Vec<Block<T>>> = Vec::with_capacity(held.len());
    // Per-node (keep, send) pairs staged for the parallel partition.
    type Partitioned<T> = Vec<(Vec<Block<T>>, Vec<Block<T>>)>;
    let mut work: Partitioned<T> = Vec::with_capacity(held.len());
    for (step_index, &j) in dims.iter().enumerate() {
        // Partition each node's holdings into keep / send: an in-place
        // swap-to-tail partition (keeps never move off the slot; the send
        // tail drains into a pooled buffer), fanned out per node. Block
        // order within a list is not preserved — no consumer depends on
        // it (`memory_chunks` re-sorts by destination).
        to_send.clear();
        work.clear();
        work.extend(held.iter_mut().map(|slot| (std::mem::take(slot), pool.take())));
        cubesim::par::par_for_each_mut(&mut work, |x, (slot, send)| {
            let xbit = (x as u64 >> j) & 1;
            let mut i = 0;
            let mut end = slot.len();
            while i < end {
                if (slot[i].dst.bits() >> j) & 1 == xbit {
                    i += 1;
                } else {
                    end -= 1;
                    slot.swap(i, end);
                }
            }
            send.extend(slot.drain(end..));
        });
        for (x, (slot, send)) in work.drain(..).enumerate() {
            held[x] = slot;
            to_send.push(send);
        }
        match policy {
            BufferPolicy::Ideal => {
                for (x, send) in to_send.drain(..).enumerate() {
                    if send.is_empty() {
                        pool.put(send);
                    } else {
                        net.send(NodeId(x as u64), j, BlockMsg(send));
                    }
                }
                deliver_round(net, &mut held, j, &mut pool);
            }
            BufferPolicy::Unbuffered => {
                let mut chunked: Vec<Vec<Vec<Block<T>>>> = to_send
                    .drain(..)
                    .map(|mut s| {
                        let chunks = memory_chunks(&mut s, step_index, &mut pool);
                        pool.put(s);
                        chunks
                    })
                    .collect();
                let max_chunks = chunked.iter().map(|c| c.len()).max().unwrap_or(0);
                // One sub-round per chunk ordinal, synchronized across the
                // machine (all nodes have symmetric chunk structure in the
                // uniform case).
                for i in 0..max_chunks {
                    for (x, chunks) in chunked.iter_mut().enumerate() {
                        if i < chunks.len() {
                            let chunk = std::mem::take(&mut chunks[i]);
                            net.send(NodeId(x as u64), j, BlockMsg(chunk));
                        }
                    }
                    deliver_round(net, &mut held, j, &mut pool);
                }
            }
            BufferPolicy::Buffered { min_direct } => {
                // (direct chunks, gathered blocks) per node.
                type Split<T> = Vec<(Vec<Vec<Block<T>>>, Vec<Block<T>>)>;
                let mut split: Split<T> = to_send
                    .drain(..)
                    .map(|mut send| {
                        let mut direct = Vec::new();
                        let mut gathered = pool.take();
                        for mut chunk in memory_chunks(&mut send, step_index, &mut pool) {
                            let elems: usize = chunk.iter().map(|b| b.data.len()).sum();
                            if elems >= min_direct {
                                direct.push(chunk);
                            } else {
                                gathered.append(&mut chunk);
                                pool.put(chunk);
                            }
                        }
                        pool.put(send);
                        (direct, gathered)
                    })
                    .collect();
                let max_direct = split.iter().map(|(d, _)| d.len()).max().unwrap_or(0);
                for i in 0..max_direct {
                    for (x, (direct, _)) in split.iter_mut().enumerate() {
                        if i < direct.len() {
                            let chunk = std::mem::take(&mut direct[i]);
                            net.send(NodeId(x as u64), j, BlockMsg(chunk));
                        }
                    }
                    deliver_round(net, &mut held, j, &mut pool);
                }
                if split.iter().any(|(_, g)| !g.is_empty()) {
                    for (x, (_, gathered)) in split.iter_mut().enumerate() {
                        let gathered = std::mem::take(gathered);
                        if gathered.is_empty() {
                            pool.put(gathered);
                        } else {
                            let elems: usize = gathered.iter().map(|b| b.data.len()).sum();
                            net.local_copy(NodeId(x as u64), elems);
                            net.send(NodeId(x as u64), j, BlockMsg(gathered));
                        }
                    }
                    deliver_round(net, &mut held, j, &mut pool);
                } else {
                    for (_, gathered) in split {
                        pool.put(gathered);
                    }
                }
            }
        }
    }
    for (x, slot) in held.iter().enumerate() {
        for b in slot {
            assert_eq!(
                b.dst.index(),
                x,
                "block {} -> {} stranded at node {x}: dims {dims:?} do not cover it",
                b.src,
                b.dst
            );
        }
    }
    held
}

/// Finishes the round and folds every delivered message back into `held`,
/// recycling the message buffers through `pool`.
fn deliver_round<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    held: &mut [Vec<Block<T>>],
    j: u32,
    pool: &mut BufferPool<Block<T>>,
) {
    net.finish_round();
    for (x, slot) in held.iter_mut().enumerate() {
        let node = NodeId(x as u64);
        if net.has_message(node, j) {
            let mut msg = net.recv(node, j).0;
            slot.append(&mut msg);
            pool.put(msg);
        }
    }
}

/// All-to-all personalized communication by the standard exchange
/// algorithm over all `n` dimensions, highest first.
///
/// `blocks[src][dst]` is the payload from `src` to `dst` (empty payloads
/// allowed — virtual elements are not communicated). Returns
/// `result[dst]` = the source-tagged blocks received (plus the diagonal
/// block, which never moves).
pub fn all_to_all_exchange<T: Clone + Send + Sync>(
    net: &mut SimNet<BlockMsg<T>>,
    blocks: Vec<Vec<Vec<T>>>,
    policy: BufferPolicy,
) -> Vec<Vec<Block<T>>> {
    let n = net.n();
    assert_eq!(blocks.len(), net.num_nodes());
    let held: Vec<Vec<Block<T>>> = blocks
        .into_iter()
        .enumerate()
        .map(|(s, per_dst)| {
            assert_eq!(per_dst.len(), 1 << n, "need one (possibly empty) block per destination");
            per_dst
                .into_iter()
                .enumerate()
                .filter(|(_, data)| !data.is_empty())
                .map(|(d, data)| Block::new(NodeId(s as u64), NodeId(d as u64), data))
                .collect()
        })
        .collect();
    let dims: Vec<u32> = (0..n).rev().collect();
    exchange_over_dims(net, held, &dims, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    /// blocks[src][dst] = [src*1000 + dst; b]
    fn uniform_blocks(n: u32, b: usize) -> Vec<Vec<Vec<u64>>> {
        let num = cubeaddr::num_nodes(n);
        (0..num as u64).map(|s| (0..num as u64).map(|d| vec![s * 1000 + d; b]).collect()).collect()
    }

    fn check_delivery(n: u32, b: usize, result: &[Vec<Block<u64>>]) {
        let num = cubeaddr::num_nodes(n);
        for (d, blks) in result.iter().enumerate() {
            assert_eq!(blks.len(), num, "node {d} should hold one block per source");
            let mut seen = vec![false; num];
            for blk in blks {
                assert_eq!(blk.dst.index(), d);
                assert_eq!(blk.data, vec![blk.src.bits() * 1000 + d as u64; b]);
                assert!(!seen[blk.src.index()]);
                seen[blk.src.index()] = true;
            }
        }
    }

    #[test]
    fn delivers_all_blocks_every_policy() {
        for policy in [
            BufferPolicy::Ideal,
            BufferPolicy::Unbuffered,
            BufferPolicy::Buffered { min_direct: 3 },
        ] {
            let n = 3;
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let result = all_to_all_exchange(&mut net, uniform_blocks(n, 2), policy);
            check_delivery(n, 2, &result);
            net.finalize();
        }
    }

    #[test]
    fn ideal_time_matches_formula() {
        // T = n(PQ/2N · t_c + τ) for B_m ≥ PQ/2N, unit model.
        let n = 4;
        let b = 4usize; // PQ/N² elements per block
        let num = cubeaddr::num_nodes(n);
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = all_to_all_exchange(&mut net, uniform_blocks(n, b), BufferPolicy::Ideal);
        let r = net.finalize();
        let pq = (b * num * num) as f64;
        let expect = n as f64 * (pq / (2.0 * num as f64) + 1.0);
        assert_eq!(r.rounds, n as usize);
        assert!((r.time - expect).abs() < 1e-9, "{} vs {expect}", r.time);
    }

    #[test]
    fn unbuffered_startups_grow_linearly_in_n_nodes() {
        // Total sub-rounds over the run: Σ_{k=0}^{n-1} 2^k = N - 1.
        let n = 4;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = all_to_all_exchange(&mut net, uniform_blocks(n, 2), BufferPolicy::Unbuffered);
        let r = net.finalize();
        assert_eq!(r.rounds, (1 << n) - 1);
        assert_eq!(r.critical_startups, (1 << n) - 1);
    }

    #[test]
    fn unbuffered_transfer_volume_unchanged() {
        let n = 3;
        let b = 4;
        let run = |policy| {
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let _ = all_to_all_exchange(&mut net, uniform_blocks(n, b), policy);
            net.finalize()
        };
        let ideal = run(BufferPolicy::Ideal);
        let unbuf = run(BufferPolicy::Unbuffered);
        assert_eq!(ideal.critical_elems, unbuf.critical_elems);
        assert_eq!(ideal.total_elems, unbuf.total_elems);
    }

    #[test]
    fn buffered_charges_copy_only_for_small_chunks() {
        let n = 3;
        let b = 4; // chunk sizes at steps: 16, 8, 4 elements
        let params = MachineParams::unit(PortMode::OnePort).with_t_copy(1.0);
        // Threshold 8: the 4-element chunks of the last step are gathered.
        let mut net = SimNet::new(n, params);
        let result = all_to_all_exchange(
            &mut net,
            uniform_blocks(n, b),
            BufferPolicy::Buffered { min_direct: 8 },
        );
        check_delivery(n, b, &result);
        let r = net.finalize();
        // Last step: 4 chunks × 4 elements gathered = 16 elements copied.
        assert_eq!(r.max_node_copy_elems, 16);
        // Rounds: step0 = 1 direct; step1 = 2 direct; step2 = 1 gathered.
        assert_eq!(r.rounds, 4);
    }

    #[test]
    fn buffered_with_huge_threshold_equals_one_message_per_step() {
        let n = 3;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort).with_t_copy(0.0));
        let _ = all_to_all_exchange(
            &mut net,
            uniform_blocks(n, 2),
            BufferPolicy::Buffered { min_direct: usize::MAX },
        );
        let r = net.finalize();
        assert_eq!(r.rounds, n as usize);
    }

    #[test]
    fn buffered_with_zero_threshold_equals_unbuffered() {
        let n = 3;
        let run = |policy| {
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let _ = all_to_all_exchange(&mut net, uniform_blocks(n, 2), policy);
            net.finalize()
        };
        let a = run(BufferPolicy::Unbuffered);
        let b = run(BufferPolicy::Buffered { min_direct: 0 });
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn exchange_over_dim_subset_routes_within_subcubes() {
        // Blocks only differ in dims {0, 2}: scanning those two dims
        // suffices; dim 1 coordinates stay fixed.
        let n = 3;
        let num = cubeaddr::num_nodes(n);
        let held: Vec<Vec<Block<u64>>> = (0..num as u64)
            .map(|s| {
                (0..num as u64)
                    .filter(|d| (s ^ d) & 0b010 == 0)
                    .map(|d| Block::new(NodeId(s), NodeId(d), vec![s * 100 + d]))
                    .collect()
            })
            .collect();
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let result = exchange_over_dims(&mut net, held, &[2, 0], BufferPolicy::Ideal);
        for (x, blks) in result.iter().enumerate() {
            assert_eq!(blks.len(), 4);
            for b in blks {
                assert_eq!(b.dst.index(), x);
            }
        }
        net.finalize();
    }

    #[test]
    #[should_panic(expected = "stranded")]
    fn uncovered_dimension_detected() {
        let held: Vec<Vec<Block<u64>>> = vec![
            vec![Block::new(NodeId(0), NodeId(3), vec![7])],
            Vec::new(),
            Vec::new(),
            Vec::new(),
        ];
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let _ = exchange_over_dims(&mut net, held, &[0], BufferPolicy::Ideal);
    }

    #[test]
    fn diagonal_blocks_never_move() {
        let n = 2;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let mut blocks = uniform_blocks(n, 1);
        // Only keep diagonal data.
        for (s, per_dst) in blocks.iter_mut().enumerate() {
            for (d, data) in per_dst.iter_mut().enumerate() {
                if s != d {
                    data.clear();
                }
            }
        }
        let result = all_to_all_exchange(&mut net, blocks, BufferPolicy::Ideal);
        let r = net.finalize();
        assert_eq!(r.total_elems, 0);
        assert_eq!(r.total_messages, 0);
        for (d, blks) in result.iter().enumerate() {
            assert_eq!(blks.len(), 1);
            assert_eq!(blks[0].src.index(), d);
        }
    }
}
