//! Source-tagged data blocks: the payload unit of personalized
//! communication.

use cubeaddr::NodeId;
use cubesim::Payload;

/// One personalized block: `data` travelling from `src` to `dst`.
///
/// The tags are metadata, not charged by the cost model; only
/// `data.len()` counts as elements (headers on the real machines are part
/// of the per-packet start-up `τ`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block<T> {
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// The elements.
    pub data: Vec<T>,
}

impl<T> Block<T> {
    /// Creates a block.
    pub fn new(src: NodeId, dst: NodeId, data: Vec<T>) -> Self {
        Block { src, dst, data }
    }
}

/// A bare block is a message: the store-and-forward router sends one
/// block per link per round, with no batching wrapper (and therefore no
/// per-hop buffer allocation).
impl<T> Payload for Block<T> {
    fn elems(&self) -> usize {
        self.data.len()
    }
}

/// A batch of blocks sent over one link in one round as a single message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockMsg<T>(pub Vec<Block<T>>);

impl<T> Payload for BlockMsg<T> {
    fn elems(&self) -> usize {
        self.0.iter().map(|b| b.data.len()).sum()
    }
}

/// Per-node inventory of blocks held, keyed by destination, used by the
/// exchange-style algorithms.
///
/// Several blocks with the same destination (different sources) may be
/// held at once; they are kept in arrival order.
#[derive(Clone, Debug)]
pub struct BlockStore<T> {
    /// `held[dst] = blocks for that destination`.
    held: Vec<Vec<Block<T>>>,
}

impl<T> BlockStore<T> {
    /// An empty store for an `n`-cube with `2^n` possible destinations.
    pub fn new(num_nodes: usize) -> Self {
        BlockStore { held: (0..num_nodes).map(|_| Vec::new()).collect() }
    }

    /// Adds a block (no-op for empty data).
    pub fn add(&mut self, b: Block<T>) {
        if !b.data.is_empty() {
            self.held[b.dst.index()].push(b);
        }
    }

    /// Removes and returns all held blocks whose destination satisfies
    /// `pred`, in ascending destination order.
    pub fn take_matching(&mut self, mut pred: impl FnMut(NodeId) -> bool) -> Vec<Block<T>> {
        let mut out = Vec::new();
        for (dst, slot) in self.held.iter_mut().enumerate() {
            if !slot.is_empty() && pred(NodeId(dst as u64)) {
                out.append(slot);
            }
        }
        out
    }

    /// All blocks for one destination (e.g. draining the final state).
    pub fn take_for(&mut self, dst: NodeId) -> Vec<Block<T>> {
        std::mem::take(&mut self.held[dst.index()])
    }

    /// Total elements held.
    pub fn total_elems(&self) -> usize {
        self.held.iter().flatten().map(|b| b.data.len()).sum()
    }

    /// True when no blocks are held.
    pub fn is_empty(&self) -> bool {
        self.held.iter().all(|s| s.is_empty())
    }

    /// Destinations currently held, ascending.
    pub fn destinations(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.held.iter().enumerate().filter(|(_, s)| !s.is_empty()).map(|(d, _)| NodeId(d as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(src: u64, dst: u64, len: usize) -> Block<u32> {
        Block::new(NodeId(src), NodeId(dst), vec![0u32; len])
    }

    #[test]
    fn payload_counts_data_only() {
        let msg = BlockMsg(vec![blk(0, 1, 3), blk(0, 2, 5)]);
        assert_eq!(msg.elems(), 8);
    }

    #[test]
    fn store_add_take() {
        let mut s = BlockStore::new(4);
        s.add(blk(0, 1, 2));
        s.add(blk(2, 1, 3));
        s.add(blk(0, 3, 1));
        s.add(blk(0, 2, 0)); // empty: dropped
        assert_eq!(s.total_elems(), 6);
        let odd = s.take_matching(|d| d.bits() % 2 == 1);
        assert_eq!(odd.len(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn take_for_drains_one_destination() {
        let mut s = BlockStore::new(4);
        s.add(blk(0, 2, 2));
        s.add(blk(1, 2, 2));
        s.add(blk(1, 3, 2));
        assert_eq!(s.take_for(NodeId(2)).len(), 2);
        assert_eq!(s.total_elems(), 2);
    }
}
