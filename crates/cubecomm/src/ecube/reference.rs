//! The original per-`(node, dim)` `VecDeque` router, kept verbatim as a
//! semantic reference.
//!
//! [`ecube_route`](super::ecube_route) replaced these full-lattice scans
//! and per-hop allocations with a flat, lane-based data plane; this
//! module preserves the straightforward implementation so property tests
//! can check, message set by message set, that the two produce identical
//! arrivals and identical [`CommReport`](cubesim::CommReport)s. It is not
//! part of the public API surface.

use super::{ecube_next_dim, RouteMsg};
use crate::block::{Block, BlockMsg};
use cubeaddr::NodeId;
use cubesim::SimNet;
use std::collections::VecDeque;

/// The original e-cube router: dense `2^n × n` queue lattice scanned in
/// full every round, one fresh payload vector per message per hop.
#[doc(hidden)]
pub struct RefRouter;

impl RefRouter {
    /// Routes all messages with dimension-ordered store-and-forward
    /// routing; same contract as [`ecube_route`](super::ecube_route).
    pub fn route<T: Clone>(
        net: &mut SimNet<BlockMsg<T>>,
        msgs: Vec<RouteMsg<T>>,
    ) -> Vec<Vec<Block<T>>> {
        let n = net.n();
        let num = net.num_nodes();
        let mut result: Vec<Vec<Block<T>>> = vec![Vec::new(); num];
        // queues[node][dim]: messages waiting for that outgoing link.
        let mut queues: Vec<Vec<VecDeque<RouteMsg<T>>>> =
            vec![(0..n).map(|_| VecDeque::new()).collect(); num];

        for m in msgs {
            if m.data.is_empty() {
                continue;
            }
            match ecube_next_dim(m.src, m.dst) {
                None => result[m.dst.index()].push(Block::new(m.src, m.dst, m.data)),
                Some(d) => {
                    let src = m.src;
                    queues[src.index()][d as usize].push_back(m);
                }
            }
        }

        while queues.iter().flatten().any(|q| !q.is_empty()) {
            for (x, node_queues) in queues.iter_mut().enumerate() {
                for d in 0..n {
                    if let Some(m) = node_queues[d as usize].pop_front() {
                        net.send(
                            NodeId(x as u64),
                            d,
                            BlockMsg(vec![Block::new(m.src, m.dst, m.data)]),
                        );
                    }
                }
            }
            net.finish_round();
            // Drain every delivered message and advance it.
            for x in 0..num {
                let node = NodeId(x as u64);
                for d in 0..n {
                    if net.has_message(node, d) {
                        let BlockMsg(blocks) = net.recv(node, d);
                        for b in blocks {
                            match ecube_next_dim(node, b.dst) {
                                None => result[node.index()].push(b),
                                Some(nd) => queues[node.index()][nd as usize].push_back(RouteMsg {
                                    src: b.src,
                                    dst: b.dst,
                                    data: b.data,
                                }),
                            }
                        }
                    }
                }
            }
        }
        result
    }
}
