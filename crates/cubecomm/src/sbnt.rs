//! Spanning balanced *n*-tree (SBnT) routing (paper §3.1–3.2, §5).
//!
//! The SBnT rooted at a node splits the other `N - 1` nodes into `n`
//! nearly equal subtrees, one per port: the message for relative address
//! `j` leaves on port `base(j)` (the rotation that minimizes `j`), then
//! follows the 1-bits of the remaining relative address cyclically to the
//! left. Used with all ports concurrently this balances load a factor of
//! `n/2` better than the SBT, which is what makes the n-port all-to-all
//! time `T_min ≈ PQ/2N·t_c + n·τ` achievable.

use crate::block::{Block, BlockMsg};
use cubeaddr::necklace::{base, nearest_one_left_cyclic};
use cubeaddr::NodeId;
use cubesim::SimNet;
use std::collections::BTreeMap;

/// The SBnT routing path from `src` to `dst`: the sequence of dimensions
/// crossed, starting with `base(src ⊕ dst)` and then following the set
/// bits of the relative address cyclically to the left (the paper's
/// forwarding rule).
pub fn sbnt_path_dims(src: NodeId, dst: NodeId, n: u32) -> Vec<u32> {
    let rel = src.bits() ^ dst.bits();
    if rel == 0 {
        return Vec::new();
    }
    let first = base(rel, n);
    debug_assert_eq!(rel >> first & 1, 1, "base must point at a set bit");
    let mut dims = vec![first];
    let mut remaining = rel ^ (1u64 << first);
    let mut cur = first;
    while remaining != 0 {
        let next = nearest_one_left_cyclic(remaining, cur, n)
            .expect("remaining bits nonzero but no next dimension");
        dims.push(next);
        remaining ^= 1u64 << next;
        cur = next;
    }
    dims
}

/// All-to-all personalized communication with n-port SBnT routing.
///
/// Every node routes its block for every other node along the SBnT path
/// rooted at itself (the trees at different roots are translations of
/// each other). Blocks advance one hop per round; all blocks queued at a
/// node for the same outgoing dimension travel as one message (one
/// start-up), so the whole operation completes in `max Hamming distance ≤
/// n` rounds with every link busy nearly every round.
///
/// `blocks[src][dst]` as in
/// [`all_to_all_exchange`](crate::exchange::all_to_all_exchange); returns
/// `result[dst]` with source-tagged blocks.
pub fn all_to_all_sbnt<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    blocks: Vec<Vec<Vec<T>>>,
) -> Vec<Vec<Block<T>>> {
    let n = net.n();
    let num = net.num_nodes();
    assert_eq!(blocks.len(), num);

    /// A block in flight with its remaining path.
    struct InFlight<T> {
        block: Block<T>,
        dims: Vec<u32>,
        pos: usize,
    }

    let mut result: Vec<Vec<Block<T>>> = vec![Vec::new(); num];
    // pending[x] = blocks at node x still needing hops.
    let mut pending: Vec<Vec<InFlight<T>>> = (0..num).map(|_| Vec::new()).collect();
    for (s, per_dst) in blocks.into_iter().enumerate() {
        assert_eq!(per_dst.len(), num);
        let src = NodeId(s as u64);
        for (d, data) in per_dst.into_iter().enumerate() {
            if data.is_empty() {
                continue;
            }
            let dst = NodeId(d as u64);
            let block = Block::new(src, dst, data);
            if s == d {
                result[d].push(block);
            } else {
                pending[s].push(InFlight { block, dims: sbnt_path_dims(src, dst, n), pos: 0 });
            }
        }
    }

    while pending.iter().any(|p| !p.is_empty()) {
        // Group every node's pending blocks by next dimension; one message
        // per (node, dim) per round. BTreeMap keeps rounds deterministic.
        let mut hops: Vec<(NodeId, u32, Vec<InFlight<T>>)> = Vec::new();
        for (x, slot) in pending.iter_mut().enumerate() {
            let mut by_dim: BTreeMap<u32, Vec<InFlight<T>>> = BTreeMap::new();
            for f in slot.drain(..) {
                by_dim.entry(f.dims[f.pos]).or_default().push(f);
            }
            for (dim, group) in by_dim {
                hops.push((NodeId(x as u64), dim, group));
            }
        }
        for (x, dim, group) in &hops {
            let msg = BlockMsg(group.iter().map(|f| f.block.clone()).collect());
            net.send(*x, *dim, msg);
        }
        net.finish_round();
        for (x, dim, group) in hops {
            let dst_node = x.neighbor(dim);
            // Drain the delivered message (payload identical to `group`'s
            // blocks; we advance the in-flight records instead).
            let _ = net.recv(dst_node, dim);
            for mut f in group {
                f.pos += 1;
                if f.pos == f.dims.len() {
                    debug_assert_eq!(f.block.dst, dst_node);
                    result[dst_node.index()].push(f.block);
                } else {
                    pending[dst_node.index()].push(f);
                }
            }
        }
    }
    result
}

/// One-to-all personalized communication with n-port SBnT routing
/// (§3.1): the root's blocks fan out over the `n` balanced subtrees, all
/// ports busy from the first round. Blocks queued at a node for the same
/// port travel as one message, so the spanning-tree depth bounds the
/// round count and the balanced port split keeps the root's links within
/// a factor of ~2 of `(1/n)(1 - 1/N)·PQ` elements each.
pub fn one_to_all_sbnt<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    root: NodeId,
    blocks: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    let num = net.num_nodes();
    assert_eq!(blocks.len(), num, "one block per destination");
    let all: Vec<Vec<Vec<T>>> = (0..num)
        .map(|s| {
            if s == root.index() {
                blocks.clone()
            } else {
                (0..num).map(|_| Vec::new()).collect()
            }
        })
        .collect();
    let result = all_to_all_sbnt(net, all);
    result
        .into_iter()
        .map(|blks| {
            let mut out = Vec::new();
            for b in blks {
                debug_assert_eq!(b.src, root);
                out.extend(b.data);
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubeaddr::hamming;
    use cubesim::{MachineParams, PortMode};

    #[test]
    fn path_reaches_destination_and_is_shortest() {
        let n = 5;
        for s in 0..(1u64 << n) {
            for d in 0..(1u64 << n) {
                let dims = sbnt_path_dims(NodeId(s), NodeId(d), n);
                assert_eq!(dims.len() as u32, hamming(s, d), "path not shortest");
                let mut cur = NodeId(s);
                for &dim in &dims {
                    cur = cur.neighbor(dim);
                }
                assert_eq!(cur, NodeId(d));
            }
        }
    }

    #[test]
    fn first_hop_is_base_port() {
        let n = 4;
        for d in 1..(1u64 << n) {
            let dims = sbnt_path_dims(NodeId(0), NodeId(d), n);
            assert_eq!(dims[0], cubeaddr::necklace::base(d, n));
        }
    }

    #[test]
    fn paths_balance_root_ports() {
        // The root's out-port histogram over all destinations is balanced
        // within a factor of 2 (n ≥ 3).
        let n = 6;
        let mut counts = vec![0usize; n as usize];
        for d in 1..(1u64 << n) {
            counts[sbnt_path_dims(NodeId(0), NodeId(d), n)[0] as usize] += 1;
        }
        let (mn, mx) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(mn > 0 && mx <= 2 * mn, "{counts:?}");
    }

    #[test]
    fn translation_invariance() {
        // Tree at root s = tree at 0 translated: path dims are a function
        // of src ⊕ dst only.
        let n = 4;
        for s in 0..(1u64 << n) {
            for d in 0..(1u64 << n) {
                assert_eq!(
                    sbnt_path_dims(NodeId(s), NodeId(d), n),
                    sbnt_path_dims(NodeId(0), NodeId(s ^ d), n)
                );
            }
        }
    }

    fn uniform_blocks(n: u32, b: usize) -> Vec<Vec<Vec<u64>>> {
        let num = cubeaddr::num_nodes(n);
        (0..num as u64).map(|s| (0..num as u64).map(|d| vec![s * 1000 + d; b]).collect()).collect()
    }

    #[test]
    fn all_to_all_delivers_everything() {
        let n = 3;
        let b = 2;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let result = all_to_all_sbnt(&mut net, uniform_blocks(n, b));
        for (d, blks) in result.iter().enumerate() {
            assert_eq!(blks.len(), 1 << n);
            for blk in blks {
                assert_eq!(blk.dst.index(), d);
                assert_eq!(blk.data, vec![blk.src.bits() * 1000 + d as u64; b]);
            }
        }
        net.finalize();
    }

    #[test]
    fn completes_in_n_rounds() {
        let n = 5;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = all_to_all_sbnt(&mut net, uniform_blocks(n, 1));
        let r = net.finalize();
        assert_eq!(r.rounds, n as usize);
    }

    #[test]
    fn n_port_time_beats_one_port_exchange() {
        // For large blocks the SBnT all-to-all transfer time approaches
        // PQ/2N·t_c versus the exchange algorithm's n·PQ/2N·t_c.
        let n = 4;
        let b = 64;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = all_to_all_sbnt(&mut net, uniform_blocks(n, b));
        let r = net.finalize();
        let num = (1 << n) as f64;
        let pq = (b * (1 << n) * (1 << n)) as f64;
        let one_port_transfer = n as f64 * pq / (2.0 * num);
        // Within a factor of 2 of the n-port bound, and clearly below the
        // one-port cost.
        assert!(
            r.transfer_time < one_port_transfer / 2.0,
            "{} vs {}",
            r.transfer_time,
            one_port_transfer
        );
        assert!(r.transfer_time >= pq / (2.0 * num) - 1e-9);
    }

    #[test]
    fn one_to_all_sbnt_delivers() {
        let n = 4;
        let blocks: Vec<Vec<u64>> =
            (0..(1u64 << n)).map(|d| (0..3).map(|i| d * 10 + i).collect()).collect();
        for root in [0u64, 9] {
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
            let got = one_to_all_sbnt(&mut net, NodeId(root), blocks.clone());
            assert_eq!(got, blocks, "root {root}");
            net.finalize();
        }
    }

    #[test]
    fn one_to_all_sbnt_balances_root_ports() {
        // Compared with the SBT (whose heaviest subtree holds half the
        // data), the SBnT splits the root's outflow nearly evenly: the
        // heaviest link carries ≲ 2/n of the total.
        let n = 5;
        let b = 8usize;
        let blocks: Vec<Vec<u64>> = (0..(1u64 << n)).map(|d| vec![d; b]).collect();
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = one_to_all_sbnt(&mut net, NodeId(0), blocks);
        let r = net.finalize();
        let pq = (b << n) as u64;
        assert!(
            r.max_link_elems <= 2 * pq / n as u64,
            "max link load {} vs balanced bound {}",
            r.max_link_elems,
            2 * pq / n as u64
        );
        // Within a small factor of the n-port one-to-all optimum. (The
        // paper's reverse-breadth-first *packet* schedule keeps the root
        // streaming continuously; our level-batched forwarding loses a
        // further constant on the deep subtrees.)
        let params = MachineParams::unit(PortMode::AllPorts);
        let t_opt = cubemodel_one_to_all_min(pq, n, &params);
        assert!(r.time <= 3.0 * t_opt, "{} vs 3×{}", r.time, t_opt);
    }

    /// Local copy of the model formula to avoid a dev-dependency cycle.
    fn cubemodel_one_to_all_min(pq: u64, n: u32, m: &MachineParams) -> f64 {
        let big_n = cubeaddr::num_nodes(n) as u64;
        (1.0 / n as f64) * (1.0 - 1.0 / big_n as f64) * pq as f64 * m.t_c + n as f64 * m.tau
    }

    #[test]
    fn max_link_load_near_balanced_bound() {
        // Total element-hops spread over n·N directed links; the max link
        // load should be within 2× of PQ/2N.
        let n = 4;
        let b = 8;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = all_to_all_sbnt(&mut net, uniform_blocks(n, b));
        let r = net.finalize();
        let per_link_bound = (b * (1 << n)) as u64 / 2; // PQ/2N with PQ = b·N².
        assert!(
            r.max_link_elems <= 2 * per_link_bound,
            "max link load {} vs bound {per_link_bound}",
            r.max_link_elems
        );
    }
}
