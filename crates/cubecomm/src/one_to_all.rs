//! One-to-all personalized communication (paper §3.1).
//!
//! The source node holds a distinct block for every node of the cube;
//! afterwards each node holds its block.
//!
//! * [`one_to_all_sbt`] — spanning-binomial-tree routing with "all data
//!   for a subtree at once" scheduling, the one-port algorithm with
//!   `T_min = (1 - 1/N)·PQ·t_c + n·τ` for `B_m ≥ PQ/2`.
//! * [`one_to_all_rotated_sbts`] — the data of every destination split
//!   into `n` equal parts routed over `n` distinctly rotated SBTs
//!   concurrently (n-port), with
//!   `T_min = (1/n)(1 - 1/N)·PQ·t_c + n·τ` — the same order as the lower
//!   bound.

use crate::block::{Block, BlockMsg};
use crate::sbt::Sbt;
use cubeaddr::{mask, NodeId};
use cubesim::SimNet;

/// Validates and wraps the per-destination payload list.
#[track_caller]
fn check_blocks<T>(net: &SimNet<BlockMsg<T>>, blocks: &[Vec<T>]) {
    assert_eq!(blocks.len(), net.num_nodes(), "need exactly one block per destination node");
}

/// One-to-all personalized communication from `root` by SBT routing,
/// one-port legal (each round uses a single dimension everywhere).
///
/// `blocks[d]` is the payload for physical node `d`; the return value is
/// the payload each node ends up holding (`result[d] == blocks[d]`,
/// physically routed through the cube).
pub fn one_to_all_sbt<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    root: NodeId,
    blocks: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    check_blocks(net, &blocks);
    let n = net.n();
    let tree = Sbt::new(n, root);
    let num = net.num_nodes();

    // held[x] = blocks (dst-tagged) currently at physical node x.
    let mut held: Vec<Vec<Block<T>>> = vec![Vec::new(); num];
    held[root.index()] = blocks
        .into_iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .map(|(d, b)| Block::new(root, NodeId(d as u64), b))
        .collect();

    // Logical dimensions ascending: at step j the active nodes are those
    // whose logical address uses only bits below j; each sends the data
    // for the subtree reached through logical dimension j.
    for j in 0..n {
        for lx in 0..(1u64 << j) {
            let x = tree.physical(lx);
            let (keep, send): (Vec<_>, Vec<_>) =
                held[x.index()].drain(..).partition(|b| (tree.logical(b.dst) >> j) & 1 == 0);
            held[x.index()] = keep;
            if !send.is_empty() {
                net.send(x, tree.physical_dim(j), BlockMsg(send));
            }
        }
        net.finish_round();
        for lx in 0..(1u64 << j) {
            let child = tree.physical(lx | (1 << j));
            let dim = tree.physical_dim(j);
            if net.has_message(child, dim) {
                held[child.index()].extend(net.recv(child, dim).0);
            }
        }
    }

    collect_own(held)
}

/// One-to-all personalized communication from `root` over an arbitrary
/// family of spanning binomial trees running concurrently (n-port).
/// Every destination's block is split into `trees.len()` near-equal
/// parts, one per tree; the family must use pairwise distinct physical
/// dimensions in every logical step (true for distinct rotations and for
/// rotation/reflection pairs on even cubes), or the link-contention check
/// aborts.
pub fn one_to_all_trees<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    blocks: Vec<Vec<T>>,
    trees: &[Sbt],
) -> Vec<Vec<T>> {
    check_blocks(net, &blocks);
    let n = net.n();
    assert!(!trees.is_empty());
    let root = trees[0].root();
    for t in trees {
        assert_eq!(t.n(), n, "tree on the wrong cube");
        assert_eq!(t.root(), root, "trees must share the root");
    }
    if n == 0 {
        return blocks;
    }
    let num = net.num_nodes();
    let k_trees = trees.len();

    // held[k][x] = blocks of tree k at node x. Each tree routes its own
    // slice of every destination block.
    let mut held: Vec<Vec<Vec<Block<T>>>> =
        (0..k_trees).map(|_| (0..num).map(|_| Vec::new()).collect()).collect();
    for (d, data) in blocks.into_iter().enumerate() {
        let parts = split_even(data, k_trees);
        for (k, part) in parts.into_iter().enumerate() {
            if !part.is_empty() {
                held[k][root.index()].push(Block::new(root, NodeId(d as u64), part));
            }
        }
    }

    for j in 0..n {
        for (k, tree) in trees.iter().enumerate() {
            let dim = tree.physical_dim(j);
            for lx in 0..(1u64 << j) {
                let x = tree.physical(lx);
                let (keep, send): (Vec<_>, Vec<_>) =
                    held[k][x.index()].drain(..).partition(|b| (tree.logical(b.dst) >> j) & 1 == 0);
                held[k][x.index()] = keep;
                if !send.is_empty() {
                    net.send(x, dim, BlockMsg(send));
                }
            }
        }
        net.finish_round();
        for (k, tree) in trees.iter().enumerate() {
            let dim = tree.physical_dim(j);
            for lx in 0..(1u64 << j) {
                let child = tree.physical(lx | (1 << j));
                if net.has_message(child, dim) {
                    held[k][child.index()].extend(net.recv(child, dim).0);
                }
            }
        }
    }

    // Merge the slices per node, in tree order so the original block is
    // reassembled in order.
    let mut merged: Vec<Vec<Block<T>>> = (0..num).map(|_| Vec::new()).collect();
    for per_node in held {
        for (x, blks) in per_node.into_iter().enumerate() {
            merged[x].extend(blks);
        }
    }
    collect_own(merged)
}

/// One-to-all personalized communication from `root` over `n` distinctly
/// rotated SBTs concurrently (n-port):
/// `T_min = (1/n)(1 - 1/N)·PQ·t_c + n·τ`.
pub fn one_to_all_rotated_sbts<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    root: NodeId,
    blocks: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    let n = net.n();
    if n == 0 {
        return blocks;
    }
    let trees: Vec<Sbt> = (0..n).map(|k| Sbt::rotated(n, root, k)).collect();
    one_to_all_trees(net, blocks, &trees)
}

/// One-to-all over `k < n` *optimally rotated* SBTs (§3.1, the
/// `PQ/N = k < n` regime): trees rotated by multiples of `n/k`.
///
/// # Panics
/// Unless `k` divides `n`.
#[track_caller]
pub fn one_to_all_k_rotated_sbts<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    root: NodeId,
    blocks: Vec<Vec<T>>,
    k: u32,
) -> Vec<Vec<T>> {
    let n = net.n();
    assert!(k >= 1 && n.is_multiple_of(k), "optimal rotation needs k | n");
    let trees: Vec<Sbt> = (0..k).map(|i| Sbt::rotated(n, root, i * (n / k))).collect();
    one_to_all_trees(net, blocks, &trees)
}

/// One-to-all over a *reflected and rotated* SBT pair (§3.1's `k = 2`
/// alternative): the standard tree plus its reflection. For `k = 2` the
/// paper credits reflection with a maximum edge load of `N/2 + 1`
/// element transfers versus `N/2 + √(N/2)` for rotation.
/// # Panics
/// On odd `n` (the two trees would share a dimension in the middle
/// step).
#[track_caller]
pub fn one_to_all_reflected_pair<T: Clone>(
    net: &mut SimNet<BlockMsg<T>>,
    root: NodeId,
    blocks: Vec<Vec<T>>,
) -> Vec<Vec<T>> {
    let n = net.n();
    assert!(n.is_multiple_of(2), "reflected pair needs an even cube dimension");
    let trees = [Sbt::new(n, root), Sbt::reflected(n, root)];
    one_to_all_trees(net, blocks, &trees)
}

/// Splits `data` into `parts` consecutive slices with sizes as equal as
/// possible (first slices get the remainder).
pub(crate) fn split_even<T>(mut data: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let total = data.len();
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = data.split_off(0); // take ownership as a queue
    for k in 0..parts {
        let take = base + usize::from(k < extra);
        let tail = rest.split_off(take.min(rest.len()));
        out.push(rest);
        rest = tail;
    }
    debug_assert!(rest.is_empty());
    out
}

/// Final bookkeeping: every node must hold exactly the blocks destined to
/// itself; returns the concatenated payload per node.
#[track_caller]
fn collect_own<T>(held: Vec<Vec<Block<T>>>) -> Vec<Vec<T>> {
    held.into_iter()
        .enumerate()
        .map(|(x, blks)| {
            let mut out = Vec::new();
            for b in blks {
                assert_eq!(
                    b.dst.index(),
                    x,
                    "routing failure: block for {} stranded at {x}",
                    b.dst
                );
                out.extend(b.data);
            }
            out
        })
        .collect()
}

/// Verifies that the low bits of a logical address are all the caller
/// expects (used in tests).
#[allow(dead_code)]
fn logical_prefix_matches(l: u64, j: u32, lx: u64) -> bool {
    l & mask(j) == lx
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    fn payloads(n: u32, per: usize) -> Vec<Vec<u64>> {
        (0..(1u64 << n)).map(|d| (0..per as u64).map(|i| d * 1000 + i).collect()).collect()
    }

    #[test]
    fn sbt_delivers_every_block() {
        for root in [0u64, 5] {
            let n = 3;
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let got = one_to_all_sbt(&mut net, NodeId(root), payloads(n, 4));
            assert_eq!(got, payloads(n, 4));
            net.finalize();
        }
    }

    #[test]
    fn sbt_time_matches_formula() {
        // Unit model, B_m = ∞: T = n·τ + (1 - 1/N)·PQ·t_c with PQ = N·b.
        let n = 4;
        let b = 8usize;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = one_to_all_sbt(&mut net, NodeId(0), payloads(n, b));
        let r = net.finalize();
        let pq = (b << n) as f64;
        let expect = n as f64 + (1.0 - 1.0 / (1 << n) as f64) * pq;
        assert_eq!(r.rounds, n as usize);
        assert!((r.time - expect).abs() < 1e-9, "time {} vs {}", r.time, expect);
    }

    #[test]
    fn sbt_respects_one_port() {
        // Would panic inside SimNet otherwise; also check the round count.
        let n = 5;
        let mut net = SimNet::new(n, MachineParams::intel_ipsc());
        let _ = one_to_all_sbt(&mut net, NodeId(17), payloads(n, 2));
        assert_eq!(net.finalize().rounds, 5);
    }

    #[test]
    fn rotated_sbts_deliver_every_block() {
        for root in [0u64, 6] {
            let n = 3;
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
            let got = one_to_all_rotated_sbts(&mut net, NodeId(root), payloads(n, 7));
            assert_eq!(got, payloads(n, 7));
            net.finalize();
        }
    }

    #[test]
    fn rotated_sbts_speedup_about_n() {
        // n-port transfer time is 1/n of the one-port SBT's.
        let n = 4;
        let b = 64usize;
        let mut net1 = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = one_to_all_sbt(&mut net1, NodeId(0), payloads(n, b));
        let r1 = net1.finalize();
        let mut net2 = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = one_to_all_rotated_sbts(&mut net2, NodeId(0), payloads(n, b));
        let r2 = net2.finalize();
        let t1 = r1.transfer_time;
        let t2 = r2.transfer_time;
        assert!(
            (t2 - t1 / n as f64).abs() <= t1 * 0.02,
            "expected ~{}x transfer speedup: {t1} vs {t2}",
            n
        );
        assert_eq!(r2.rounds, n as usize);
    }

    #[test]
    fn rotated_sbts_exact_time() {
        // T = n·τ + (1/n)(1 - 1/N)·PQ·t_c when n divides every block.
        let n = 4;
        let b = 8usize; // divisible by n=4? 8/4 = 2 ✓
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = one_to_all_rotated_sbts(&mut net, NodeId(0), payloads(n, b));
        let r = net.finalize();
        let pq = (b << n) as f64;
        let expect = n as f64 + (1.0 / n as f64) * (1.0 - 1.0 / 16.0) * pq;
        assert!((r.time - expect).abs() < 1e-9, "time {} vs {}", r.time, expect);
    }

    #[test]
    fn split_even_sizes() {
        let parts = split_even((0..10).collect::<Vec<_>>(), 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        let flat: Vec<i32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_even_small_data() {
        let parts = split_even(vec![1, 2], 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn k_rotated_trees_deliver() {
        let n = 6;
        for k in [1u32, 2, 3, 6] {
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
            let got = one_to_all_k_rotated_sbts(&mut net, NodeId(0), payloads(n, k as usize), k);
            assert_eq!(got, payloads(n, k as usize), "k={k}");
            net.finalize();
        }
    }

    #[test]
    fn reflected_pair_delivers() {
        let n = 6;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let got = one_to_all_reflected_pair(&mut net, NodeId(3), payloads(n, 2));
        assert_eq!(got, payloads(n, 2));
        net.finalize();
    }

    /// §3.1, k = 2 regime: the reflected pairing balances edge loads
    /// better than the optimally rotated pairing — the paper credits
    /// reflection with a maximum of N/2 + 1 element transfers over any
    /// edge versus N/2 + √(N/2) for rotation.
    #[test]
    fn k2_reflection_beats_rotation_on_edge_load() {
        let n = 6; // N = 64
        let big_n = cubeaddr::num_nodes(n) as u64;
        // One element per destination per tree (PQ/N = 2, k = 2).
        let blocks = payloads(n, 2);

        let mut net_rot = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = one_to_all_k_rotated_sbts(&mut net_rot, NodeId(0), blocks.clone(), 2);
        let rot = net_rot.finalize();

        let mut net_ref = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let _ = one_to_all_reflected_pair(&mut net_ref, NodeId(0), blocks);
        let refl = net_ref.finalize();

        assert_eq!(
            refl.max_link_elems,
            big_n / 2 + 1,
            "reflection max edge load should be N/2 + 1"
        );
        assert!(
            rot.max_link_elems > refl.max_link_elems,
            "rotation load {} should exceed reflection load {}",
            rot.max_link_elems,
            refl.max_link_elems
        );
    }

    #[test]
    #[should_panic(expected = "k | n")]
    fn k_rotated_requires_divisor() {
        let mut net: SimNet<BlockMsg<u64>> =
            SimNet::new(6, MachineParams::unit(PortMode::AllPorts));
        let _ = one_to_all_k_rotated_sbts(&mut net, NodeId(0), payloads(6, 4), 4);
    }

    #[test]
    fn empty_blocks_skipped() {
        // Virtual elements need not be communicated: zero-length blocks
        // cost nothing and arrive as empty.
        let n = 2;
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let blocks = vec![vec![1u64], vec![], vec![3], vec![]];
        let got = one_to_all_sbt(&mut net, NodeId(0), blocks.clone());
        assert_eq!(got, blocks);
        let r = net.finalize();
        assert_eq!(r.total_elems, 1); // only dst 2's block moved (dst 0 stays).
    }
}
