//! Graph-generic store-and-forward routing over any [`MinimalRoute`]
//! topology — the [`ecube`](crate::ecube) router lifted off the cube.
//!
//! [`graph_route`] runs the same data plane as
//! [`ecube_route`](crate::ecube::ecube_route) — lazily built per-node
//! lanes of intrusive port FIFOs, a live-lane bitmap, an
//! undelivered-message counter, the staging/commit split that keeps
//! every [`SimNet`] interaction serial and deterministic — but asks the
//! topology's [`MinimalRoute::next_port`] for each forwarding decision
//! instead of hard-coding the e-cube rule. On a [`Hypercube`] net the
//! two routers take identical decisions in identical order, so their
//! arrivals and [`cubesim::CommReport`]s are byte-identical at every
//! thread count (property-tested in
//! `crates/cubecomm/tests/graph_router_equivalence.rs`); on a
//! [`cubetopo::SwappedDragonfly`] the same loop routes Draper's minimal
//! local–global–local paths with per-link FIFO contention.
//!
//! [`Hypercube`]: cubetopo::Hypercube

use crate::block::Block;
use crate::ecube::{bitmap_to_list, Lane, RouteMsg, MAX_LANE_DIMS};
use cubeaddr::NodeId;
use cubesim::{par, SimNet};
use cubesync::atomic::{AtomicUsize, Ordering};
use cubetopo::MinimalRoute;

impl<T> Lane<T> {
    /// [`Lane::advance`](crate::ecube) generalized: retires or requeues
    /// every landed block by the topology's routing function instead of
    /// the e-cube rule. Lane-local; runs on worker threads.
    fn advance_graph<G: MinimalRoute>(&mut self, topo: &G, pending: &AtomicUsize) {
        let mut retired = 0usize;
        let mut landed = std::mem::take(&mut self.landed);
        for (_, b) in landed.drain(..) {
            match topo.next_port(self.node.bits(), b.dst.bits()) {
                None => {
                    self.arrived.push(b);
                    retired += 1;
                }
                Some(p) => self.push(p, b),
            }
        }
        self.landed = landed;
        if retired > 0 {
            pending.fetch_sub(retired, Ordering::Relaxed);
        }
    }
}

/// Every node a message set's routes visit under `topo`'s routing
/// function, sorted ascending, deduplicated — the graph twin of the
/// e-cube router's path walker. Local and empty messages touch nothing.
fn touched_nodes<T, G: MinimalRoute>(topo: &G, msgs: &[RouteMsg<T>], num: usize) -> Vec<u64> {
    let mut seen = vec![0u64; num.div_ceil(64)];
    for m in msgs {
        if m.data.is_empty() || m.src == m.dst {
            continue;
        }
        let dst = m.dst.bits();
        let mut cur = m.src.bits();
        while let Some(p) = topo.next_port(cur, dst) {
            seen[(cur / 64) as usize] |= 1 << (cur % 64);
            cur = topo.neighbor(cur, p).unwrap_or_else(|| {
                panic!("{}: route for {cur} -> {dst} uses unwired port {p}", topo.label())
            });
        }
        seen[(dst / 64) as usize] |= 1 << (dst % 64);
    }
    let mut touched = Vec::new();
    for (w, &word) in seen.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            touched.push((w * 64) as u64 + u64::from(bits.trailing_zeros()));
            bits &= bits - 1;
        }
    }
    touched
}

/// Routes all messages to their destinations over `net`'s topology with
/// minimal-path store-and-forward routing, one message per directed
/// link per round (FIFO per link). Returns the blocks received per
/// node, in arrival order.
///
/// Like the e-cube router this models independent per-link router
/// hardware — run it on a net with [`cubesim::PortMode::AllPorts`]. Per-
/// node staging and advancement fan out over
/// [`cubesim::par::num_threads`] workers; all cost accounting stays
/// serial, so results and [`cubesim::CommReport`]s do not depend on the
/// thread count.
pub fn graph_route<T: Send, G: MinimalRoute>(
    net: &mut SimNet<Block<T>, G>,
    msgs: Vec<RouteMsg<T>>,
) -> Vec<Vec<Block<T>>> {
    let topo = net.topology().clone();
    let ports = net.ports() as usize;
    assert!(
        ports <= MAX_LANE_DIMS,
        "router supports up to {MAX_LANE_DIMS} ports per node; the {} has {ports}",
        topo.label()
    );
    let num = net.num_nodes();
    let mut result: Vec<Vec<Block<T>>> = (0..num).map(|_| Vec::new()).collect();

    // Lazily sized queue storage, exactly as in the e-cube router.
    let touched = touched_nodes(&topo, &msgs, num);
    let mut lane_of: Vec<u32> = vec![u32::MAX; num];
    for (i, &x) in touched.iter().enumerate() {
        lane_of[x as usize] = i as u32;
    }
    let mut lanes: Vec<Lane<T>> = touched.iter().map(|&x| Lane::new(NodeId(x))).collect();
    let mut live = vec![0u64; lanes.len().div_ceil(64)];

    // Inject: local messages arrive immediately; the rest queue at their
    // source on their first port, in input order.
    let mut injected = 0usize;
    for m in msgs {
        if m.data.is_empty() {
            continue;
        }
        match topo.next_port(m.src.bits(), m.dst.bits()) {
            None => result[m.dst.index()].push(Block::new(m.src, m.dst, m.data)),
            Some(p) => {
                let li = lane_of[m.src.index()];
                lanes[li as usize].push(p, Block::new(m.src, m.dst, m.data));
                live[(li / 64) as usize] |= 1 << (li % 64);
                injected += 1;
            }
        }
    }

    let pending = AtomicUsize::new(injected);
    let mut active: Vec<u32> = Vec::new();
    let mut landed_bits = vec![0u64; live.len()];
    let mut landed_lanes: Vec<u32> = Vec::new();
    let mut commit: Vec<Vec<(NodeId, Block<T>)>> = (0..ports).map(|_| Vec::new()).collect();
    let threads = par::num_threads();

    while pending.load(Ordering::Relaxed) > 0 {
        bitmap_to_list(&live, &mut active);
        // Stage: one queue head per non-empty outgoing link, grouped
        // port-major with nodes ascending within each port.
        if threads <= 1 {
            for &li in &active {
                let lane = &mut lanes[li as usize];
                lane.stage_into(&mut commit);
                if lane.qmask == 0 {
                    live[(li / 64) as usize] &= !(1 << (li % 64));
                }
            }
        } else {
            par::par_for_each_mut_sparse(&mut lanes, &active, Lane::stage);
            for &li in &active {
                let lane = &mut lanes[li as usize];
                for (p, msg) in lane.staged.drain(..) {
                    commit[p as usize].push((lane.node, msg));
                }
                if lane.qmask == 0 {
                    live[(li / 64) as usize] &= !(1 << (li % 64));
                }
            }
        }
        // Commit (serial): batch-send per port, fixed order.
        for (p, staged) in commit.iter_mut().enumerate() {
            net.send_batch(p as u32, staged.drain(..));
        }
        net.finish_round();
        // Drain (serial): one pass over the inbox, in send order.
        if threads <= 1 {
            let mut retired = 0usize;
            net.drain_all_with(|dst, _, b| match topo.next_port(dst.bits(), b.dst.bits()) {
                None => {
                    result[dst.index()].push(b);
                    retired += 1;
                }
                Some(np) => {
                    let li = lane_of[dst.index()];
                    lanes[li as usize].push(np, b);
                    live[(li / 64) as usize] |= 1 << (li % 64);
                }
            });
            if retired > 0 {
                pending.fetch_sub(retired, Ordering::Relaxed);
            }
        } else {
            net.drain_all_with(|dst, port, b| {
                let li = lane_of[dst.index()];
                landed_bits[(li / 64) as usize] |= 1 << (li % 64);
                lanes[li as usize].landed.push((port, b));
            });
            bitmap_to_list(&landed_bits, &mut landed_lanes);
            landed_bits.fill(0);
            par::par_for_each_mut_sparse(&mut lanes, &landed_lanes, |lane| {
                lane.advance_graph(&topo, &pending)
            });
            for &li in &landed_lanes {
                if lanes[li as usize].qmask != 0 {
                    live[(li / 64) as usize] |= 1 << (li % 64);
                }
            }
        }
    }

    for lane in lanes {
        let x = lane.node.index();
        if result[x].is_empty() {
            result[x] = lane.arrived;
        } else {
            result[x].extend(lane.arrived);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};
    use cubetopo::{SwappedDragonfly, Topology};

    fn dragonfly_net(k: u32, m: u32) -> SimNet<Block<u64>, SwappedDragonfly> {
        SimNet::on_topology(SwappedDragonfly::new(k, m), MachineParams::unit(PortMode::AllPorts))
    }

    #[test]
    fn dragonfly_single_message_takes_lgl_rounds() {
        let d = SwappedDragonfly::new(2, 4);
        let mut net = dragonfly_net(2, 4);
        // (g=5, r=3) -> (g=2, r=0): gateway of group 2 is router 1, so
        // local (3 -> 1), global (5 -> 2, arriving at router 2), local
        // (2 -> 0): three rounds.
        let src = NodeId(d.node_at(5, 3));
        let dst = NodeId(d.node_at(2, 0));
        let out = graph_route(&mut net, vec![RouteMsg { src, dst, data: vec![7u64, 8] }]);
        assert_eq!(out[dst.index()], vec![Block::new(src, dst, vec![7, 8])]);
        let r = net.finalize();
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn dragonfly_all_to_all_delivers() {
        let d = SwappedDragonfly::new(2, 3);
        let num = d.num_nodes();
        let msgs: Vec<RouteMsg<u64>> = (0..num as u64)
            .flat_map(|s| {
                (0..num as u64).filter(move |&t| t != s).map(move |t| RouteMsg {
                    src: NodeId(s),
                    dst: NodeId(t),
                    data: vec![s * 1000 + t],
                })
            })
            .collect();
        let mut net = dragonfly_net(2, 3);
        let out = graph_route(&mut net, msgs);
        for (t, blks) in out.iter().enumerate() {
            assert_eq!(blks.len(), num - 1, "node {t}");
            for b in blks {
                assert_eq!(b.data, vec![b.src.bits() * 1000 + t as u64]);
            }
        }
        net.finalize();
    }

    #[test]
    fn dragonfly_gateway_contention_serializes() {
        // Two messages injected at group 1's gateway (router 1 of group
        // 0 when K = 1) bound for different routers of group 1: both
        // queue on the single global link, so the second crosses a round
        // late and still needs its intra hop after arrival.
        let d = SwappedDragonfly::new(1, 3);
        let mut net = dragonfly_net(1, 3);
        let gw = NodeId(d.node_at(0, 1));
        let msgs = vec![
            RouteMsg { src: gw, dst: NodeId(d.node_at(1, 0)), data: vec![1u64] },
            RouteMsg { src: gw, dst: NodeId(d.node_at(1, 2)), data: vec![2] },
        ];
        let out = graph_route(&mut net, msgs);
        assert_eq!(out[d.node_at(1, 0) as usize].len(), 1);
        assert_eq!(out[d.node_at(1, 2) as usize].len(), 1);
        let r = net.finalize();
        // Round 1: first message crosses (arriving at router 0, its
        // destination). Round 2: second crosses. Round 3: its intra hop.
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn local_and_empty_messages_short_circuit() {
        let mut net = dragonfly_net(2, 2);
        let out = graph_route(
            &mut net,
            vec![
                RouteMsg { src: NodeId(3), dst: NodeId(3), data: vec![5u64] },
                RouteMsg { src: NodeId(0), dst: NodeId(7), data: Vec::new() },
            ],
        );
        assert_eq!(out[3].len(), 1);
        assert_eq!(out[7].len(), 0);
        assert_eq!(net.finalize().rounds, 0);
    }

    #[test]
    fn hypercube_net_runs_the_graph_router_too() {
        let mut net: SimNet<Block<u64>> = SimNet::new(3, MachineParams::unit(PortMode::AllPorts));
        let out = graph_route(
            &mut net,
            vec![RouteMsg { src: NodeId(0), dst: NodeId(0b101), data: vec![9u64] }],
        );
        assert_eq!(out[0b101].len(), 1);
        assert_eq!(net.finalize().rounds, 2);
    }
}
