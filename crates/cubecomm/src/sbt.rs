//! Spanning binomial trees (SBTs) and their rotations, reflections and
//! translations.
//!
//! The SBT rooted at node 0 of an `n`-cube contains every node; node `r`
//! (`r ≠ 0`) hangs below its parent `r` with the *highest* set bit
//! cleared, equivalently the children of `r` are `r | 2^i` for every
//! `i` above `r`'s highest set bit ("complementing leading zeroes"). Half
//! of all nodes sit in the root's subtree across the lowest dimension
//! (the child whose remaining address space is widest).
//!
//! * A tree rooted at `s` is the *translation* of the tree rooted at 0:
//!   every address XORed with `s`.
//! * A *rotated* SBT (Definition 8) relabels dimensions by a cyclic shift
//!   `sh^k`; `n` distinctly rotated SBTs give edge-disjoint concurrent
//!   routing for n-port one-to-all communication.
//! * A *reflected* SBT (Definition 9) bit-reverses the addresses —
//!   equivalently, complements trailing instead of leading zeroes.

use cubeaddr::{bit_reverse, mask, shuffle, unshuffle, NodeId};

/// A spanning binomial tree on an `n`-cube: root node, dimension rotation
/// `k`, and optional reflection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sbt {
    n: u32,
    root: NodeId,
    rotation: u32,
    reflected: bool,
}

impl Sbt {
    /// The standard SBT rooted at `root`.
    pub fn new(n: u32, root: NodeId) -> Self {
        cubeaddr::check_dims(n);
        Sbt { n, root, rotation: 0, reflected: false }
    }

    /// A rotated SBT: logical dimension `j` lives on physical dimension
    /// `(j + k) mod n`.
    pub fn rotated(n: u32, root: NodeId, k: u32) -> Self {
        let mut t = Self::new(n, root);
        t.rotation = if n == 0 { 0 } else { k % n };
        t
    }

    /// A reflected SBT (addresses bit-reversed).
    pub fn reflected(n: u32, root: NodeId) -> Self {
        let mut t = Self::new(n, root);
        t.reflected = true;
        t
    }

    /// Cube dimension.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Maps a physical node address to its *logical* relative address in
    /// the canonical (root-0, unrotated, unreflected) tree.
    pub fn logical(&self, x: NodeId) -> u64 {
        self.to_logical(x)
    }

    /// Inverse of [`Sbt::logical`].
    pub fn physical(&self, logical: u64) -> NodeId {
        self.to_physical(logical)
    }

    fn to_logical(self, x: NodeId) -> u64 {
        let rel = x.bits() ^ self.root.bits();
        let rel = unshuffle(rel, self.rotation, self.n);
        if self.reflected {
            bit_reverse(rel, self.n)
        } else {
            rel
        }
    }

    /// Inverse of `to_logical`.
    fn to_physical(self, logical: u64) -> NodeId {
        let rel = if self.reflected { bit_reverse(logical, self.n) } else { logical };
        let rel = shuffle(rel, self.rotation, self.n);
        NodeId(rel ^ self.root.bits())
    }

    /// The physical dimension carrying logical dimension `j`.
    pub fn physical_dim(&self, j: u32) -> u32 {
        let j = if self.reflected { self.n - 1 - j } else { j };
        (j + self.rotation) % self.n
    }

    /// Parent of `x`, or `None` for the root.
    pub fn parent(&self, x: NodeId) -> Option<NodeId> {
        let l = self.to_logical(x);
        if l == 0 {
            return None;
        }
        let msb = 63 - l.leading_zeros();
        Some(self.to_physical(l & !(1u64 << msb)))
    }

    /// Children of `x`, in ascending logical-dimension order.
    pub fn children(&self, x: NodeId) -> Vec<NodeId> {
        let l = self.to_logical(x);
        let lo = if l == 0 { 0 } else { 64 - l.leading_zeros() };
        (lo..self.n).map(|i| self.to_physical(l | (1u64 << i))).collect()
    }

    /// Depth of `x` (number of edges to the root) — its logical weight.
    pub fn depth(&self, x: NodeId) -> u32 {
        self.to_logical(x).count_ones()
    }

    /// Number of nodes in the subtree rooted at `x` (including `x`):
    /// `2^(number of logical leading zeroes available)`.
    pub fn subtree_size(&self, x: NodeId) -> u64 {
        let l = self.to_logical(x);
        let lo = if l == 0 { 0 } else { 64 - l.leading_zeros() };
        1u64 << (self.n - lo)
    }

    /// True when `dst` lies in the subtree hanging below `x`'s logical
    /// dimension-`j` child position, i.e. `dst`'s logical address extends
    /// `x`'s with bit `j` set and higher bits free.
    pub fn in_subtree(&self, x: NodeId, dst: NodeId) -> bool {
        let lx = self.to_logical(x);
        let ld = self.to_logical(dst);
        let lo = if lx == 0 { 0 } else { 64 - lx.leading_zeros() };
        // dst's low bits must equal x's logical address.
        ld & mask(lo) == lx
    }

    /// The tree path from the root to `dst`, as the sequence of physical
    /// dimensions routed (lowest logical dimension first — the order the
    /// SBT builds addresses).
    pub fn path_dims(&self, dst: NodeId) -> Vec<u32> {
        let l = self.to_logical(dst);
        (0..self.n).filter(|&i| (l >> i) & 1 == 1).map(|i| self.physical_dim(i)).collect()
    }

    /// Iterates all nodes grouped by depth (BFS order): element `d` of the
    /// result holds the nodes at depth `d`.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels = vec![Vec::new(); self.n as usize + 1];
        for x in NodeId::all(self.n) {
            levels[self.depth(x) as usize].push(x);
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_tree_structure() {
        let t = Sbt::new(3, NodeId(0));
        // Children of the root are 1, 2, 4.
        assert_eq!(t.children(NodeId(0)), vec![NodeId(1), NodeId(2), NodeId(4)]);
        // Children of 1 (msb 0): 3, 5; of 2: 6; of 4: none.
        assert_eq!(t.children(NodeId(1)), vec![NodeId(3), NodeId(5)]);
        assert_eq!(t.children(NodeId(2)), vec![NodeId(6)]);
        assert_eq!(t.children(NodeId(4)), vec![]);
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(0)), None);
    }

    #[test]
    fn parent_child_consistency() {
        for &tree in &[
            Sbt::new(4, NodeId(0b0110)),
            Sbt::rotated(4, NodeId(3), 2),
            Sbt::reflected(4, NodeId(9)),
        ] {
            for x in NodeId::all(4) {
                for c in tree.children(x) {
                    assert_eq!(tree.parent(c), Some(x), "tree {tree:?} child {c:?}");
                    assert!(x.is_neighbor(c), "non-neighbor edge in {tree:?}");
                }
                if let Some(p) = tree.parent(x) {
                    assert!(tree.children(p).contains(&x));
                    assert_eq!(tree.depth(x), tree.depth(p) + 1);
                }
            }
        }
    }

    #[test]
    fn spans_all_nodes() {
        let t = Sbt::rotated(5, NodeId(7), 3);
        let total: usize = t.levels().iter().map(|l| l.len()).sum();
        assert_eq!(total, 32);
        // Every non-root has a parent chain to the root.
        for x in NodeId::all(5) {
            let mut cur = x;
            let mut hops = 0;
            while let Some(p) = t.parent(cur) {
                cur = p;
                hops += 1;
                assert!(hops <= 5);
            }
            assert_eq!(cur, t.root());
        }
    }

    #[test]
    fn half_the_nodes_in_top_subtree() {
        // "Half of the nodes of a SBT are in one of the subtrees of the
        // root node": the child across the lowest logical dimension keeps
        // all higher address bits free.
        let t = Sbt::new(5, NodeId(0));
        let kids = t.children(NodeId(0));
        assert_eq!(t.subtree_size(kids[0]), 16);
        // Subtree sizes halve: 16, 8, 4, 2, 1.
        let sizes: Vec<u64> = kids.iter().map(|&c| t.subtree_size(c)).collect();
        assert_eq!(sizes, vec![16, 8, 4, 2, 1]);
        assert_eq!(t.subtree_size(NodeId(0)), 32);
    }

    #[test]
    fn subtree_membership() {
        let t = Sbt::new(4, NodeId(0));
        // Subtree of node 1 = all odd logical addresses.
        for x in NodeId::all(4) {
            assert_eq!(t.in_subtree(NodeId(1), x), x.bits() & 1 == 1);
        }
        assert!(t.in_subtree(NodeId(0), NodeId(13)));
    }

    #[test]
    fn path_dims_reach_destination() {
        for &tree in
            &[Sbt::new(4, NodeId(5)), Sbt::rotated(4, NodeId(0), 1), Sbt::reflected(4, NodeId(2))]
        {
            for dst in NodeId::all(4) {
                let mut cur = tree.root();
                for d in tree.path_dims(dst) {
                    cur = cur.neighbor(d);
                }
                assert_eq!(cur, dst, "path fails in {tree:?}");
                assert_eq!(tree.path_dims(dst).len() as u32, tree.depth(dst));
            }
        }
    }

    #[test]
    fn rotations_permute_dimension_usage() {
        // The n rotated trees use distinct physical dimensions for the same
        // logical step — the basis of conflict-free concurrent routing.
        let n = 5;
        for j in 0..n {
            let dims: Vec<u32> =
                (0..n).map(|k| Sbt::rotated(n, NodeId(0), k).physical_dim(j)).collect();
            let mut sorted = dims.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len() as u32, n, "logical dim {j}: {dims:?}");
        }
    }

    #[test]
    fn reflection_complements_trailing_zeros() {
        // In the reflected tree rooted at 0, the root's children are
        // reached through the *low* bits first: children of logical 0 in
        // physical space are 2^(n-1), 2^(n-2), ..., matching "complementing
        // trailing zeroes" of the reversed addresses.
        let t = Sbt::reflected(3, NodeId(0));
        let kids = t.children(NodeId(0));
        assert_eq!(kids.len(), 3);
        for k in kids {
            assert_eq!(t.parent(k), Some(NodeId(0)));
        }
        // Node with logical msb set ↔ physical bit 0 set.
        assert_eq!(t.depth(NodeId(0b001)), 1);
    }
}
