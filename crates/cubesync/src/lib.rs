//! The workspace's single audited concurrency surface.
//!
//! Every crate in the workspace that needs a lock, a condition
//! variable, an atomic, or a thread imports it from here instead of
//! `std::sync` / `std::thread` (a CI grep gate enforces this). The
//! facade has two backends:
//!
//! * **Production** (default): pure re-exports of `std` — zero cost, no
//!   wrappers, no branches. `cubesync::sync::Mutex` *is*
//!   `std::sync::Mutex`.
//! * **Model checking** (`RUSTFLAGS="--cfg cubesync_model"`): the same
//!   names resolve to instrumented types from [`model`] that route
//!   every visible operation (lock, unlock, condvar wait/notify, atomic
//!   access, spawn, join, yield) through a deterministic user-level
//!   scheduler. [`model::check`] then runs a closed concurrent test
//!   body under *every* bounded-preemption thread interleaving (with a
//!   seeded-random fallback past a schedule budget), detecting
//!   deadlocks, lost wakeups (a condvar wait no future signal can
//!   reach), livelocks, panics on rare interleavings, and result
//!   non-determinism across schedules.
//!
//! The [`model`] module itself is compiled unconditionally — its own
//! engine tests and the seeded-mutation suite (which model-check small
//! *copies* of the repo's protocols with known bugs re-introduced) run
//! in the normal `cargo test` pass. The `--cfg cubesync_model` build is
//! only needed to re-thread the *real* `cubesim::par` / `cuberun` /
//! `cubecomm::plan::cache` code onto the instrumented types, which
//! `crates/cubesync/tests/real_protocols.rs` does in CI's `model-check`
//! step.
//!
//! # What is modeled, and what is passed through
//!
//! Modeled under `cubesync_model`: [`sync::Mutex`], [`sync::Condvar`],
//! the [`atomic`] integer/bool types, [`thread::spawn`] /
//! [`thread::scope`] / [`thread::yield_now`] / [`thread::sleep`].
//! Passed through to `std` in *both* backends (not modeled, documented
//! here so the audit surface is explicit):
//!
//! * [`sync::Arc`] — reference counting is `std`'s problem, not a
//!   protocol under test.
//! * [`sync::OnceLock`], [`sync::Barrier`] — used only on cold setup
//!   paths (env-var parsing, the legacy thread-per-node reference
//!   runtime) that the model suite never exercises.
//! * [`channel`] — the crossbeam-shim MPSC channels of the legacy
//!   reference runtime.
//!
//! `Condvar::wait_timeout` under the model never times out: the model
//! explores schedules, not wall-clock time, so a protocol whose
//! liveness depends on a timeout backstop shows up as the deadlock it
//! really is. That is exactly the property the `cuberun` sleep protocol
//! is checked for — no lost wakeups *without* the stall-detector tick.

pub mod model;

/// Locks, guards and shared-ownership types.
///
/// `Mutex`/`Condvar`/`MutexGuard`/`WaitTimeoutResult` switch backends
/// with `--cfg cubesync_model`; `Arc`, `OnceLock`, `Barrier`,
/// `PoisonError` and `LockResult` are always `std`'s (see the crate
/// docs for why).
pub mod sync {
    pub use std::sync::{Arc, Barrier, LockResult, OnceLock, PoisonError, Weak};

    #[cfg(not(cubesync_model))]
    pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    #[cfg(cubesync_model)]
    pub use crate::model::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
}

/// Atomic integers and the `Ordering` enum.
///
/// Under the model backend every access is a scheduling point, and
/// loads with an ordering weaker than `SeqCst` may (when the checked
/// body opts into weak-memory exploration) return stale values — see
/// [`model::Config::weak_memory`].
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    #[cfg(not(cubesync_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(cubesync_model)]
    pub use crate::model::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
}

/// Thread spawning, scoped threads, and yields.
pub mod thread {
    pub use std::thread::available_parallelism;

    #[cfg(not(cubesync_model))]
    pub use std::thread::{scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle};

    #[cfg(cubesync_model)]
    pub use crate::model::thread::{
        scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
    };
}

/// MPSC channels (the crossbeam-shim subset the legacy thread-per-node
/// runtime uses). Never modeled: the reference runtime exists for
/// equivalence tests, not model checking, and its correctness argument
/// is one-OS-thread-per-node blocking receives.
pub mod channel {
    pub use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
}
