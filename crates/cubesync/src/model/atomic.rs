//! Instrumented atomics for the model backend.
//!
//! Every access is a schedule point. The real `std` atomic performs the
//! operation (after the point returns, while the caller still holds the
//! baton, so no model thread can interleave), and the engine records the
//! result in a per-location modification history. Under
//! [`super::Config::weak_memory`], loads with an ordering weaker than
//! `SeqCst` may then return stale values from that history; all
//! read-modify-writes and `SeqCst` loads observe the newest value (as
//! C11 requires of RMWs).
//!
//! `new` stays `const` (the repo keeps atomics in statics) by assigning
//! the engine object id lazily through a `OnceLock`.

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use super::engine::{current, next_object_id};

macro_rules! model_atomic {
    ($name:ident, $std:ty, $prim:ty, $from_u64:expr, $to_u64:expr) => {
        pub struct $name {
            id: OnceLock<u64>,
            inner: $std,
        }

        impl $name {
            pub const fn new(value: $prim) -> Self {
                $name { id: OnceLock::new(), inner: <$std>::new(value) }
            }

            fn id(&self) -> u64 {
                *self.id.get_or_init(next_object_id)
            }

            pub fn load(&self, order: Ordering) -> $prim {
                let Some((engine, me)) = current() else { return self.inner.load(order) };
                let id = self.id();
                if !engine.atomic_point(me, id, "load") {
                    return self.inner.load(order);
                }
                let newest = self.inner.load(order);
                if matches!(order, Ordering::SeqCst) {
                    engine.atomic_observe_latest(me, id, ($to_u64)(newest));
                    newest
                } else {
                    ($from_u64)(engine.atomic_weak_read(me, id, ($to_u64)(newest)))
                }
            }

            pub fn store(&self, value: $prim, order: Ordering) {
                let Some((engine, me)) = current() else { return self.inner.store(value, order) };
                let id = self.id();
                if !engine.atomic_point(me, id, "store") {
                    return self.inner.store(value, order);
                }
                let prev = self.inner.load(Ordering::SeqCst);
                self.inner.store(value, order);
                engine.atomic_record_write(me, id, ($to_u64)(prev), ($to_u64)(value));
            }

            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                let Some((engine, me)) = current() else { return self.inner.swap(value, order) };
                let id = self.id();
                if !engine.atomic_point(me, id, "swap") {
                    return self.inner.swap(value, order);
                }
                let prev = self.inner.swap(value, order);
                engine.atomic_record_write(me, id, ($to_u64)(prev), ($to_u64)(value));
                prev
            }

            pub fn compare_exchange(
                &self,
                expected: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let Some((engine, me)) = current() else {
                    return self.inner.compare_exchange(expected, new, success, failure);
                };
                let id = self.id();
                if !engine.atomic_point(me, id, "compare_exchange") {
                    return self.inner.compare_exchange(expected, new, success, failure);
                }
                let result = self.inner.compare_exchange(expected, new, success, failure);
                match result {
                    Ok(prev) => engine.atomic_record_write(me, id, ($to_u64)(prev), ($to_u64)(new)),
                    Err(prev) => engine.atomic_observe_latest(me, id, ($to_u64)(prev)),
                }
                result
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }

            /// Shared body of the `fetch_*` family: a schedule point,
            /// the real RMW, then a history record of `prev -> new`.
            fn rmw(
                &self,
                what: &'static str,
                order: Ordering,
                op: impl Fn(&$std, Ordering) -> $prim,
                new_of: impl Fn($prim) -> $prim,
            ) -> $prim {
                let Some((engine, me)) = current() else { return op(&self.inner, order) };
                let id = self.id();
                if !engine.atomic_point(me, id, what) {
                    return op(&self.inner, order);
                }
                let prev = op(&self.inner, order);
                engine.atomic_record_write(me, id, ($to_u64)(prev), ($to_u64)(new_of(prev)));
                prev
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(&self.inner, f)
            }
        }
    };
}

macro_rules! model_atomic_int_ops {
    ($name:ident, $std:ty, $prim:ty) => {
        impl $name {
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_add", order, |a, o| a.fetch_add(v, o), |p| p.wrapping_add(v))
            }

            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_sub", order, |a, o| a.fetch_sub(v, o), |p| p.wrapping_sub(v))
            }

            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_max", order, |a, o| a.fetch_max(v, o), |p| p.max(v))
            }

            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_min", order, |a, o| a.fetch_min(v, o), |p| p.min(v))
            }

            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_or", order, |a, o| a.fetch_or(v, o), |p| p | v)
            }

            pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw("fetch_and", order, |a, o| a.fetch_and(v, o), |p| p & v)
            }
        }
    };
}

model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool, |v: u64| v != 0, |v: bool| v as u64);

impl AtomicBool {
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.rmw("fetch_or", order, |a, o| a.fetch_or(v, o), |p| p | v)
    }

    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.rmw("fetch_and", order, |a, o| a.fetch_and(v, o), |p| p & v)
    }
}

model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32, |v: u64| v as u32, |v: u32| v as u64);
model_atomic_int_ops!(AtomicU32, std::sync::atomic::AtomicU32, u32);

model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64, |v: u64| v, |v: u64| v);
model_atomic_int_ops!(AtomicU64, std::sync::atomic::AtomicU64, u64);

model_atomic!(
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize,
    |v: u64| v as usize,
    |v: usize| v as u64
);
model_atomic_int_ops!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
