//! Instrumented `Mutex` / `Condvar` for the model backend.
//!
//! Each wrapper pairs a real `std` primitive (for storage and for
//! pass-through when code runs outside a [`super::check`] body) with a
//! global object id the engine keys its protocol state on. Under a
//! check, the engine decides ownership and blocking *first* — the real
//! inner lock is then always uncontended, which is what lets these
//! types stay `unsafe`-free: the data really is protected by a real
//! `std::sync::Mutex`, the model merely forces who gets it when.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, LockResult, PoisonError};
use std::time::Duration;

use super::engine::{current, next_object_id, Engine};

/// Drop-in replacement for [`std::sync::Mutex`] whose lock ordering is
/// decided by the model engine inside a check body.
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// Drop-in replacement for [`std::sync::MutexGuard`]. Releases model
/// ownership (a schedule point) before the real inner guard on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `None` only while a `Condvar::wait` has taken the real guard out
    /// (the defused state) — never observable to callers.
    real: Option<std::sync::MutexGuard<'a, T>>,
    ctx: Option<(Arc<Engine>, usize)>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { id: next_object_id(), inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = current();
        if let Some((engine, me)) = &ctx {
            engine.mutex_lock(*me, self.id);
        }
        let real = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { lock: self, real: Some(real), ctx })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).field("inner", &&self.inner).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard is not defused outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard is not defused outside Condvar::wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.real.is_none() {
            return; // defused: Condvar::wait owns the handoff
        }
        if let Some((engine, me)) = &self.ctx {
            // Model release first: the baton guarantees no other model
            // thread can contend for the real lock until our *next*
            // schedule point, long after `self.real` drops below.
            engine.mutex_unlock(*me, self.lock.id);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Mirror of [`std::sync::WaitTimeoutResult`] (std's cannot be
/// constructed). Under the model a wait never times out — see the crate
/// docs — so `timed_out()` is only `true` on the pass-through path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Drop-in replacement for [`std::sync::Condvar`]. Inside a check body
/// the engine parks and wakes waiters (which waiter a `notify_one`
/// reaches is an explored choice); `wait_timeout` never times out, so
/// timeout-backstopped liveness bugs surface as the deadlocks they are.
pub struct Condvar {
    id: u64,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { id: next_object_id(), inner: std::sync::Condvar::new() }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.ctx.clone() {
            Some((engine, me)) => {
                let lock = guard.lock;
                // Drop the real guard now; no other model thread can
                // run until the engine call below parks us.
                drop(guard.real.take());
                drop(guard); // defused: no model release
                engine.condvar_wait(me, self.id, lock.id);
                // Model ownership is back; the real lock is free.
                let real = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard { lock, real: Some(real), ctx: Some((engine, me)) })
            }
            None => {
                let lock = guard.lock;
                let real = guard.real.take().expect("guard holds the lock");
                drop(guard);
                let real = match self.inner.wait(real) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Ok(MutexGuard { lock, real: Some(real), ctx: None })
            }
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.ctx.is_some() {
            // Model: timeouts do not exist; this is a plain wait.
            let guard = match self.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            return Ok((guard, WaitTimeoutResult(false)));
        }
        let mut guard = guard;
        let lock = guard.lock;
        let real = guard.real.take().expect("guard holds the lock");
        drop(guard);
        let (real, timed_out) = match self.inner.wait_timeout(real, dur) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                (g, t.timed_out())
            }
        };
        Ok((MutexGuard { lock, real: Some(real), ctx: None }, WaitTimeoutResult(timed_out)))
    }

    pub fn notify_one(&self) {
        match current() {
            Some((engine, me)) => engine.condvar_notify(me, self.id, false),
            None => self.inner.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match current() {
            Some((engine, me)) => engine.condvar_notify(me, self.id, true),
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("id", &self.id).finish()
    }
}
