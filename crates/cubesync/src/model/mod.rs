//! The model-checking backend: a deterministic user-level scheduler
//! that explores thread interleavings of a closed concurrent test body.
//!
//! [`check`] runs the body repeatedly. Model threads are real OS
//! threads, but a single "baton" serializes them: exactly one runs at a
//! time, and at every *visible operation* (lock, unlock, condvar
//! wait/notify, atomic access, spawn, join, yield) the running thread
//! hands control to whichever thread the current *schedule* names next.
//! A schedule is the sequence of such choices; the explorer enumerates
//! schedules depth-first (systematic, preemption-bounded — the CHESS
//! strategy: most concurrency bugs hide behind a small number of
//! preemptions), switching to seeded-random sampling once a schedule
//! budget is exceeded.
//!
//! Detected and reported with the failing schedule's event trail:
//!
//! * **Deadlock** — no thread can run, at least one is blocked.
//! * **Lost wakeup** — the deadlock special case where every blocked
//!   thread sits in a condvar wait that no future signal can reach.
//! * **Livelock** — a schedule exceeds the per-execution step budget.
//! * **Panics** — an assertion that only fails on rare interleavings.
//! * **Result non-determinism** — the body returns a different value
//!   under different schedules (the repo's protocols all promise
//!   byte-identical results at any thread count).
//!
//! # Weak-memory exploration
//!
//! With [`Config::weak_memory`], loads with an ordering weaker than
//! `SeqCst` may additionally return *stale* values: any value the
//! loading thread has not yet been forced to observe (per-location
//! coherence is respected; `SeqCst` loads and all read-modify-writes
//! see the newest value). This is deliberately *stronger* than C11 —
//! it ignores happens-before edges from unrelated locations and
//! mutexes — so it over-reports: a protocol it passes needs no fence
//! argument beyond "the Dekker-style pairs are SeqCst", and a protocol
//! it fails is relying on subtler reasoning that this repo's audit
//! table (DESIGN.md) must then spell out. The seeded
//! `Relaxed`-instead-of-`SeqCst` mutation of the `cuberun` sleeper
//! protocol is caught exactly this way.

pub mod atomic;
mod engine;
pub mod sync;
pub mod thread;

pub(crate) use engine::Engine;

use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration limits and options for one [`check`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum preemptions (switching away from a runnable thread) per
    /// schedule during systematic exploration; `None` removes the bound
    /// (full depth-first search). Two or three preemptions reach the
    /// overwhelming majority of real concurrency bugs at a fraction of
    /// the schedule count.
    pub preemption_bound: Option<usize>,
    /// Systematic-exploration budget: once this many schedules have
    /// run without finishing the depth-first search, fall back to
    /// seeded-random sampling.
    pub max_schedules: usize,
    /// Number of seeded-random schedules to sample after the
    /// systematic budget is spent.
    pub random_schedules: usize,
    /// Seed for the random fallback (and nothing else — systematic
    /// exploration is deterministic).
    pub seed: u64,
    /// Let non-`SeqCst` loads return stale values (see module docs).
    pub weak_memory: bool,
    /// Per-execution step budget; exceeding it is reported as a
    /// possible livelock.
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 50_000,
            random_schedules: 200,
            seed: 0x5EED_C0DE,
            weak_memory: false,
            max_steps: 50_000,
        }
    }
}

/// What one [`check`] call explored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Total schedules executed (systematic + random).
    pub schedules: usize,
    /// Whether the systematic search finished — every schedule within
    /// the preemption bound was executed. `false` means the budget was
    /// hit and the tail of the state space was only sampled.
    pub exhaustive: bool,
}

/// Model-checks `body` under the default [`Config`].
///
/// See [`check_with`].
pub fn check<R, F>(body: F) -> Report
where
    F: Fn() -> R,
    R: Hash + std::fmt::Debug,
{
    check_with(Config::default(), body)
}

/// Model-checks `body`: runs it once per explored schedule and panics
/// with a diagnostic (including the failing schedule's event trail) on
/// deadlock, lost wakeup, livelock, a panic inside the body, or result
/// non-determinism across schedules.
///
/// The body must be *closed* (join every thread it spawns before
/// returning, which `thread::scope` guarantees) and deterministic up to
/// scheduling: same inputs, no ambient randomness or time. Its return
/// value is hashed and compared across schedules.
///
/// # Panics
/// On any detected violation — which is the point: `#[test]` bodies
/// wrap protocol code in `check` and let failures surface as test
/// failures carrying the interleaving that triggered them.
pub fn check_with<R, F>(config: Config, body: F) -> Report
where
    F: Fn() -> R,
    R: Hash + std::fmt::Debug,
{
    let engine = Arc::new(Engine::new(config));
    let mut first: Option<(u64, String)> = None;
    let mut schedules = 0usize;
    loop {
        engine.begin_execution();
        engine::set_current(Some((Arc::clone(&engine), 0)));
        let result = catch_unwind(AssertUnwindSafe(&body));
        engine::set_current(None);
        schedules += 1;
        match result {
            Ok(ref r) => {
                engine.finish_root();
                if let Some(failure) = engine.failure() {
                    panic!("model check failed after {schedules} schedule(s): {failure}");
                }
                let mut h = DefaultHasher::new();
                r.hash(&mut h);
                let digest = h.finish();
                match &first {
                    None => first = Some((digest, format!("{r:?}"))),
                    Some((d0, repr0)) if *d0 != digest => panic!(
                        "model check failed after {schedules} schedule(s): result \
                         non-determinism — schedule 1 returned {repr0}, this schedule \
                         returned {r:?}\n{}",
                        engine.event_trail()
                    ),
                    Some(_) => {}
                }
            }
            Err(payload) => {
                engine.root_panicked(payload);
                let failure = engine
                    .failure()
                    .unwrap_or_else(|| "panic escaped without a recorded failure".into());
                panic!("model check failed after {schedules} schedule(s): {failure}");
            }
        }
        engine.note_budget(schedules);
        if !engine.advance() {
            break;
        }
    }
    Report { schedules, exhaustive: engine.exhausted() }
}
