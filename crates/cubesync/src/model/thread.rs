//! Instrumented `spawn` / `scope` / `yield_now` / `sleep` for the model
//! backend.
//!
//! Model threads are real OS threads, but a freshly spawned one does
//! nothing until the engine schedules it for the first time (the baton
//! serializes everything). Panics inside a child never escape the OS
//! thread: a real assertion failure is recorded as the execution's
//! failure, an `Abort` teardown is swallowed — either way the OS
//! thread retires its model identity and exits cleanly, so `std`'s
//! join (explicit or `scope`-implicit) always succeeds.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use super::engine::{current, set_current, Abort, Engine};

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into())
}

/// Body wrapper for every model child thread: wait to be scheduled,
/// run, classify the outcome, retire. Returns `None` when the body
/// panicked (real failure or abort teardown) — the joiner never sees
/// it, because a real failure aborts the whole execution.
fn run_child<T>(engine: Arc<Engine>, child: usize, f: impl FnOnce() -> T) -> Option<T> {
    set_current(Some((Arc::clone(&engine), child)));
    // `wait_initial` goes *inside* the catch: an execution aborting
    // before this thread is ever scheduled unwinds out of it, and the
    // thread must still retire below or the driver waits forever.
    let result = catch_unwind(AssertUnwindSafe(|| {
        engine.wait_initial(child);
        f()
    }));
    let (ret, panic_msg) = match result {
        Ok(value) => (Some(value), None),
        Err(payload) if payload.downcast_ref::<Abort>().is_some() => (None, None),
        Err(payload) => (None, Some(payload_msg(payload.as_ref()))),
    };
    engine.thread_exit(child, panic_msg);
    set_current(None);
    ret
}

pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    ctx: Option<(Arc<Engine>, usize)>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((engine, child)) = &self.ctx {
            if let Some((_, me)) = current() {
                // Model join first; the OS thread exits moments later,
                // so the real join below never blocks the baton long.
                engine.join(me, &[*child]);
            }
        }
        self.inner
            .join()
            .map(|opt| opt.expect("model child retired without a result (aborting execution)"))
    }

    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some((engine, me)) => {
            let child = engine.register_child(me, false);
            let engine2 = Arc::clone(&engine);
            let inner = std::thread::spawn(move || run_child(engine2, child, f));
            JoinHandle { inner, ctx: Some((engine, child)) }
        }
        None => JoinHandle { inner: std::thread::spawn(move || Some(f())), ctx: None },
    }
}

/// Wrapper around [`std::thread::Scope`]; created only by [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    ctx: Option<(Arc<Engine>, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((engine, child)) = &self.ctx {
            if let Some((_, me)) = current() {
                engine.join(me, &[*child]);
            }
        }
        self.inner
            .join()
            .map(|opt| opt.expect("model child retired without a result (aborting execution)"))
    }

    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match current() {
            Some((engine, me)) => {
                let child = engine.register_child(me, true);
                let engine2 = Arc::clone(&engine);
                let inner = self.inner.spawn(move || run_child(engine2, child, f));
                ScopedJoinHandle { inner, ctx: Some((engine, child)) }
            }
            None => ScopedJoinHandle { inner: self.inner.spawn(move || Some(f())), ctx: None },
        }
    }
}

/// Model-aware [`std::thread::scope`].
///
/// The signature differs from `std`'s in one way: the closure takes the
/// scope by *any* (shorter) borrow rather than exactly `&'scope` —
/// required because the wrapper `Scope` is a local of this function,
/// not something with the full `'scope` lifetime. Call sites written
/// against `std` (`scope(|s| { s.spawn(...); })`) compile unchanged.
///
/// Under the model, scope exit model-joins every child spawned through
/// the wrapper *before* `std`'s implicit OS-level join — otherwise that
/// join would wait on OS threads that are themselves waiting for the
/// scheduling baton the exiting thread holds.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'a, 'scope> FnOnce(&'a Scope<'scope, 'env>) -> T,
{
    match current() {
        Some((engine, me)) => {
            engine.push_scope(me);
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                match catch_unwind(AssertUnwindSafe(|| f(&wrapper))) {
                    Ok(value) => {
                        let children = engine.pop_scope(me);
                        engine.join(me, &children);
                        value
                    }
                    Err(payload) => {
                        // Abort everything so std's implicit join can
                        // complete while this panic propagates.
                        let msg = if payload.downcast_ref::<Abort>().is_some() {
                            None
                        } else {
                            Some(payload_msg(payload.as_ref()))
                        };
                        engine.panic_abort(me, msg);
                        resume_unwind(payload)
                    }
                }
            })
        }
        None => std::thread::scope(|s| f(&Scope { inner: s })),
    }
}

pub fn yield_now() {
    match current() {
        Some((engine, me)) => engine.yield_now(me),
        None => std::thread::yield_now(),
    }
}

/// Under the model, sleeping is just yielding: the explorer owns time,
/// and a protocol whose correctness needs a real delay is a bug the
/// model should surface, not mask.
pub fn sleep(dur: Duration) {
    match current() {
        Some((engine, me)) => engine.yield_now(me),
        None => std::thread::sleep(dur),
    }
}
