//! The deterministic scheduler and schedule explorer.
//!
//! One `Engine` lives per [`super::check_with`] call. Model threads are
//! OS threads serialized by a baton: `st.active` names the only thread
//! allowed to execute; everyone else waits on the engine condvar. Each
//! visible operation calls [`Engine::sched`], which charges a step,
//! records the event, consults the schedule for who runs next, and
//! hands the baton over if the choice differs from the caller.
//!
//! Schedules are explored depth-first over the recorded choice points
//! (only points with more than one option are recorded, so replay
//! positions are stable across executions of a deterministic body).
//! Backtracking bumps the deepest choice with an untried alternative
//! and replays the prefix. Preemption bounding prunes at generation
//! time: once the bound is spent, a runnable thread's schedule point
//! offers no alternatives.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to tear model threads down once a failure is
/// recorded or exploration is aborted; never shown to the user (the
/// diagnostic travels via `EngineState::failure`). Raised with
/// `resume_unwind` so the panic hook stays silent.
pub(crate) struct Abort;

/// Global id source for model sync objects (mutexes, condvars,
/// atomics). Monotonic across the process; never reset — replay only
/// depends on choice *positions*, not ids.
static OBJECT_IDS: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_object_id() -> u64 {
    OBJECT_IDS.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The engine this OS thread is a model thread of, plus its model
    /// thread id. `None` outside model executions: the facade types
    /// fall back to plain `std` behavior.
    static CURRENT: RefCell<Option<(Arc<Engine>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<(Arc<Engine>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(ctx: Option<(Arc<Engine>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// A visible operation, for event trails and diagnostics.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    Lock(u64),
    Unlock(u64),
    CvWait { cv: u64 },
    CvNotify { cv: u64, all: bool },
    Atomic { id: u64, what: &'static str },
    Yield,
    Spawn { child: usize },
    Join,
    Exit,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Lock(m) => write!(f, "lock Mutex#{m}"),
            Op::Unlock(m) => write!(f, "unlock Mutex#{m}"),
            Op::CvWait { cv } => write!(f, "wait Condvar#{cv}"),
            Op::CvNotify { cv, all: false } => write!(f, "notify_one Condvar#{cv}"),
            Op::CvNotify { cv, all: true } => write!(f, "notify_all Condvar#{cv}"),
            Op::Atomic { id, what } => write!(f, "{what} Atomic#{id}"),
            Op::Yield => write!(f, "yield"),
            Op::Spawn { child } => write!(f, "spawn T{child}"),
            Op::Join => write!(f, "join"),
            Op::Exit => write!(f, "exit"),
        }
    }
}

/// Why a model thread cannot run.
#[derive(Clone, Debug)]
enum Block {
    Mutex(u64),
    Condvar { cv: u64 },
    Join(Vec<usize>),
}

#[derive(Clone, Debug)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadState {
    status: Status,
}

#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
    waiters: Vec<usize>,
}

#[derive(Default)]
struct CvState {
    /// Threads parked in a wait on this condvar (not yet notified).
    waiters: Vec<usize>,
}

#[derive(Default)]
struct AtomicState {
    /// Modification order of the location (weak-memory mode only).
    history: Vec<u64>,
    /// Per-thread index of the oldest store the thread may still read.
    obs: Vec<usize>,
}

/// One recorded multi-option choice.
struct TracePoint {
    options: usize,
    chosen: usize,
}

pub(crate) struct EngineState {
    threads: Vec<ThreadState>,
    active: usize,
    abort: bool,
    failure: Option<String>,
    /// True once every thread of the current execution finished.
    all_done: bool,

    // Schedule exploration.
    trace: Vec<TracePoint>,
    replay: Vec<usize>,
    pos: usize,
    preemptions: usize,
    steps: u64,
    rng: u64,
    random_mode: bool,
    random_left: usize,
    exhausted: bool,

    // Per-execution object state, keyed by global object id.
    mutexes: HashMap<u64, MutexState>,
    condvars: HashMap<u64, CvState>,
    atomics: HashMap<u64, AtomicState>,
    /// Open scope frames per thread: children spawned inside a
    /// `thread::scope` body, joined at scope exit.
    scopes: HashMap<usize, Vec<Vec<usize>>>,

    /// Rolling event trail `(thread, op)` for diagnostics.
    events: Vec<(usize, Op)>,
}

const EVENT_CAP: usize = 4096;
const EVENT_SHOWN: usize = 60;

impl EngineState {
    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| matches!(self.threads[t].status, Status::Runnable))
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| matches!(t.status, Status::Finished))
    }

    fn note_event(&mut self, thread: usize, op: Op) {
        if self.events.len() >= EVENT_CAP {
            self.events.drain(..EVENT_CAP / 2);
        }
        self.events.push((thread, op));
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64: tiny, seedable, good enough to scatter schedules.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn format_events(&self) -> String {
        use std::fmt::Write;
        let skipped = self.events.len().saturating_sub(EVENT_SHOWN);
        let mut out = String::from("schedule event trail");
        if skipped > 0 {
            let _ = write!(out, " (last {EVENT_SHOWN} of {} events)", self.events.len());
        }
        out.push(':');
        for (t, op) in self.events.iter().skip(skipped) {
            let _ = write!(out, "\n  T{t}: {op}");
        }
        out
    }

    /// Formats the blocked threads for a deadlock report and classifies
    /// the deadlock: if at least one thread is stuck in a condvar wait
    /// and the rest are only joining (no mutex cycles), the signal that
    /// would have woken it was lost (or never sent).
    fn deadlock_report(&self) -> String {
        use std::fmt::Write;
        let mut saw_condvar = false;
        let mut saw_mutex = false;
        let mut detail = String::new();
        for (t, th) in self.threads.iter().enumerate() {
            let Status::Blocked(b) = &th.status else { continue };
            if !detail.is_empty() {
                detail.push_str(", ");
            }
            match b {
                Block::Mutex(m) => {
                    saw_mutex = true;
                    let holder = self
                        .mutexes
                        .get(m)
                        .and_then(|s| s.owner)
                        .map_or("nobody".to_string(), |o| format!("T{o}"));
                    let _ = write!(detail, "T{t} on Mutex#{m} (held by {holder})");
                }
                Block::Condvar { cv } => {
                    saw_condvar = true;
                    let _ = write!(detail, "T{t} in wait on Condvar#{cv}");
                }
                Block::Join(children) => {
                    let _ = write!(detail, "T{t} joining {children:?}");
                }
            }
        }
        let kind = if saw_condvar && !saw_mutex {
            "lost wakeup: a condvar wait no future signal can reach"
        } else {
            "deadlock: no thread can make progress"
        };
        format!("{kind} — {detail}\n{}", self.format_events())
    }
}

pub(crate) struct Engine {
    cfg: super::Config,
    st: Mutex<EngineState>,
    cv: Condvar,
}

impl Engine {
    pub(crate) fn new(cfg: super::Config) -> Self {
        let seed = cfg.seed;
        Engine {
            cfg,
            st: Mutex::new(EngineState {
                threads: Vec::new(),
                active: 0,
                abort: false,
                failure: None,
                all_done: false,
                trace: Vec::new(),
                replay: Vec::new(),
                pos: 0,
                preemptions: 0,
                steps: 0,
                rng: seed,
                random_mode: false,
                random_left: 0,
                exhausted: false,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                atomics: HashMap::new(),
                scopes: HashMap::new(),
                events: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // ---- execution lifecycle (driver side) ----

    /// Resets per-execution state; the caller's thread becomes model
    /// thread 0 and holds the baton.
    pub(crate) fn begin_execution(&self) {
        let mut st = self.lock();
        st.threads = vec![ThreadState { status: Status::Runnable }];
        st.active = 0;
        st.abort = false;
        st.all_done = false;
        st.trace.clear();
        st.pos = 0;
        st.preemptions = 0;
        st.steps = 0;
        st.mutexes.clear();
        st.condvars.clear();
        st.atomics.clear();
        st.scopes.clear();
        st.events.clear();
    }

    /// Thread 0's body returned: retire it, keep scheduling any
    /// still-live threads, and wait for the execution to drain.
    pub(crate) fn finish_root(&self) {
        let st = self.lock();
        let st = self.retire(st, 0);
        self.wait_all_finished(st);
    }

    /// Thread 0's body panicked (either a real assertion failure on
    /// this schedule, or an [`Abort`] from a recorded failure).
    pub(crate) fn root_panicked(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut st = self.lock();
        if payload.downcast_ref::<Abort>().is_none() && st.failure.is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            st.failure = Some(format!("panic in model thread T0: {msg}\n{}", st.format_events()));
        }
        st.abort = true;
        st.threads[0].status = Status::Finished;
        self.cv.notify_all();
        self.wait_all_finished(st);
    }

    fn wait_all_finished<'a>(&'a self, mut st: MutexGuard<'a, EngineState>) {
        while !st.all_finished() {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.all_done = true;
    }

    pub(crate) fn failure(&self) -> Option<String> {
        self.lock().failure.clone()
    }

    pub(crate) fn event_trail(&self) -> String {
        self.lock().format_events()
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.lock().exhausted
    }

    /// Computes the next schedule; returns `false` when exploration is
    /// over (search exhausted, or budgets spent).
    pub(crate) fn advance(&self) -> bool {
        let mut st = self.lock();
        if st.random_mode {
            if st.random_left == 0 {
                return false;
            }
            st.random_left -= 1;
            return true;
        }
        // Depth-first backtrack: bump the deepest choice with an
        // untried alternative, replay everything above it.
        while let Some(tp) = st.trace.last() {
            if tp.chosen + 1 < tp.options {
                break;
            }
            st.trace.pop();
        }
        match st.trace.last_mut() {
            None => {
                st.exhausted = true;
                false
            }
            Some(tp) => {
                tp.chosen += 1;
                st.replay = st.trace.iter().map(|tp| tp.chosen).collect();
                st.pos = 0;
                true
            }
        }
    }

    /// Driver hook: called with the number of schedules executed so
    /// far; flips to seeded-random sampling past the systematic budget.
    pub(crate) fn note_budget(&self, schedules: usize) {
        let mut st = self.lock();
        if !st.random_mode && schedules >= self.cfg.max_schedules {
            st.random_mode = true;
            st.random_left = self.cfg.random_schedules;
            st.replay.clear();
        }
    }

    // ---- scheduling core (model-thread side) ----

    /// Tears this thread down if the execution is aborting. Returns
    /// `true` when the caller should fall back to raw (pass-through)
    /// behavior because it is already unwinding.
    fn abort_check<'a>(
        &'a self,
        st: MutexGuard<'a, EngineState>,
    ) -> Option<MutexGuard<'a, EngineState>> {
        if !st.abort {
            return Some(st);
        }
        drop(st);
        if std::thread::panicking() {
            return None; // pass through: drop handlers during unwind
        }
        resume_unwind(Box::new(Abort));
    }

    /// Records a failure, aborts every thread, and unwinds the caller.
    fn fail(&self, mut st: MutexGuard<'_, EngineState>, msg: String) -> ! {
        if st.failure.is_none() {
            let trail = st.format_events();
            st.failure = Some(format!("{msg}\n{trail}"));
        }
        st.abort = true;
        self.cv.notify_all();
        drop(st);
        resume_unwind(Box::new(Abort));
    }

    /// Picks an index among `options` choices: forced during replay,
    /// random in sampling mode, `default` (then alternatives via
    /// backtracking) during systematic search. Single-option points are
    /// not recorded, keeping replay positions stable.
    fn choose(
        &self,
        st: &mut EngineState,
        options: usize,
        default: usize,
    ) -> Result<usize, String> {
        if options <= 1 {
            return Ok(0);
        }
        let chosen = if st.pos < st.replay.len() {
            let c = st.replay[st.pos];
            if c >= options {
                return Err(format!(
                    "replay diverged (choice {} of {options} options) — the checked body \
                     is non-deterministic beyond scheduling",
                    c
                ));
            }
            c
        } else if st.random_mode {
            (st.next_rand() % options as u64) as usize
        } else {
            default
        };
        st.trace.push(TracePoint { options, chosen });
        st.pos += 1;
        Ok(chosen)
    }

    /// Waits until this thread holds the baton again.
    fn wait_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
        me: usize,
    ) -> MutexGuard<'a, EngineState> {
        loop {
            if st.abort {
                drop(st);
                if std::thread::panicking() {
                    // Unwinding already; let drop handlers finish.
                    return self.lock();
                }
                resume_unwind(Box::new(Abort));
            }
            if st.active == me && matches!(st.threads[me].status, Status::Runnable) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The schedule point in front of every visible operation: charge a
    /// step, record the event, let the schedule pick who runs next, and
    /// hand the baton over if it is not the caller. Returns with the
    /// engine lock held and the caller active — or `None` if the
    /// execution is aborting and the caller is mid-unwind.
    pub(crate) fn sched(&self, me: usize, op: Op) -> Option<MutexGuard<'_, EngineState>> {
        let st = self.lock();
        let mut st = self.abort_check(st)?;
        debug_assert_eq!(st.active, me, "a non-active model thread reached a schedule point");
        st.steps += 1;
        st.note_event(me, op);
        if st.steps > self.cfg.max_steps {
            let msg = format!(
                "step budget exceeded ({} visible operations) — possible livelock",
                self.cfg.max_steps
            );
            self.fail(st, msg);
        }
        // Who runs next? The caller first (index 0) so the default
        // schedule is depth-first "run until you block", alternatives
        // are the preemptions.
        let mut options: Vec<usize> = vec![me];
        let under_bound = self.cfg.preemption_bound.is_none_or(|b| st.preemptions < b);
        if under_bound {
            options.extend(st.runnable().into_iter().filter(|&t| t != me));
        }
        let chosen = match self.choose(&mut st, options.len(), 0) {
            Ok(c) => c,
            Err(msg) => self.fail(st, msg),
        };
        let next = options[chosen];
        if next != me {
            st.preemptions += 1;
            st.active = next;
            self.cv.notify_all();
            st = self.wait_turn(st, me);
            if st.abort {
                return None;
            }
        }
        Some(st)
    }

    /// Blocks the caller for `reason` after handing the baton to some
    /// runnable thread (deadlock if there is none); returns once a
    /// waker made the caller runnable and the schedule picked it.
    fn block_on<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
        me: usize,
        reason: Block,
    ) -> MutexGuard<'a, EngineState> {
        st.threads[me].status = Status::Blocked(reason);
        let runnable = st.runnable();
        if runnable.is_empty() {
            let msg = st.deadlock_report();
            self.fail(st, msg);
        }
        let chosen = match self.choose(&mut st, runnable.len(), 0) {
            Ok(c) => c,
            Err(msg) => self.fail(st, msg),
        };
        st.active = runnable[chosen];
        self.cv.notify_all();
        self.wait_turn(st, me)
    }

    /// Marks `me` finished and passes the baton on. Never panics: the
    /// caller is exiting and must unwind nothing. Failures (a deadlock
    /// among the survivors) are recorded for the driver.
    fn retire<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
        me: usize,
    ) -> MutexGuard<'a, EngineState> {
        st.note_event(me, Op::Exit);
        st.threads[me].status = Status::Finished;
        self.promote_joiners(&mut st);
        let runnable = st.runnable();
        if runnable.is_empty() {
            if !st.all_finished() && !st.abort {
                let msg = st.deadlock_report();
                if st.failure.is_none() {
                    st.failure = Some(msg);
                }
                st.abort = true;
            }
            self.cv.notify_all();
            return st;
        }
        let chosen = match self.choose(&mut st, runnable.len(), 0) {
            Ok(c) => c,
            Err(msg) => {
                if st.failure.is_none() {
                    st.failure = Some(msg);
                }
                st.abort = true;
                self.cv.notify_all();
                return st;
            }
        };
        st.active = runnable[chosen];
        self.cv.notify_all();
        st
    }

    /// Wakes any thread joining on children that have all finished.
    fn promote_joiners(&self, st: &mut EngineState) {
        let finished: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t].status, Status::Finished))
            .collect();
        for t in 0..st.threads.len() {
            let unblocked = match &st.threads[t].status {
                Status::Blocked(Block::Join(children)) => {
                    children.iter().all(|c| finished.contains(c))
                }
                _ => false,
            };
            if unblocked {
                st.threads[t].status = Status::Runnable;
            }
        }
    }

    // ---- thread operations ----

    /// Registers a child thread (runnable immediately); called by the
    /// parent at its spawn schedule point. `scoped` children are also
    /// recorded in the parent's open scope frame for the implicit join
    /// at scope exit.
    pub(crate) fn register_child(&self, me: usize, scoped: bool) -> usize {
        let child_hint = { self.lock().threads.len() };
        let st = self.sched(me, Op::Spawn { child: child_hint });
        let Some(mut st) = st else {
            // Aborting mid-unwind: hand out a fresh id anyway so the
            // spawned closure can retire itself cleanly.
            let mut st = self.lock();
            let id = st.threads.len();
            st.threads.push(ThreadState { status: Status::Finished });
            return id;
        };
        let id = st.threads.len();
        st.threads.push(ThreadState { status: Status::Runnable });
        if scoped {
            if let Some(frame) = st.scopes.entry(me).or_default().last_mut() {
                frame.push(id);
            }
        }
        id
    }

    /// First call of a freshly spawned model thread: wait to be
    /// scheduled for the first time.
    pub(crate) fn wait_initial(&self, me: usize) {
        let st = self.lock();
        drop(self.wait_turn(st, me));
    }

    /// Final call of a model thread. `panic_msg` carries a *real* panic
    /// (not an [`Abort`]) that should fail the check.
    pub(crate) fn thread_exit(&self, me: usize, panic_msg: Option<String>) {
        let mut st = self.lock();
        if let Some(msg) = panic_msg {
            if st.failure.is_none() {
                let trail = st.format_events();
                st.failure = Some(format!("panic in model thread T{me}: {msg}\n{trail}"));
            }
            st.abort = true;
        }
        let st = self.retire(st, me);
        drop(st);
    }

    /// Blocks until every thread in `children` has finished.
    pub(crate) fn join(&self, me: usize, children: &[usize]) {
        loop {
            let Some(st) = self.sched(me, Op::Join) else { return };
            let pending: Vec<usize> = children
                .iter()
                .copied()
                .filter(|&c| !matches!(st.threads[c].status, Status::Finished))
                .collect();
            if pending.is_empty() {
                return;
            }
            drop(self.block_on(st, me, Block::Join(pending)));
        }
    }

    pub(crate) fn yield_now(&self, me: usize) {
        drop(self.sched(me, Op::Yield));
    }

    // ---- mutex operations ----

    pub(crate) fn mutex_lock(&self, me: usize, id: u64) {
        loop {
            let Some(mut st) = self.sched(me, Op::Lock(id)) else { return };
            let m = st.mutexes.entry(id).or_default();
            if m.owner.is_none() {
                m.owner = Some(me);
                return;
            }
            if m.owner == Some(me) {
                let msg = format!("T{me} re-locking Mutex#{id} it already holds (self-deadlock)");
                self.fail(st, msg);
            }
            m.waiters.push(me);
            drop(self.block_on(st, me, Block::Mutex(id)));
        }
    }

    pub(crate) fn mutex_unlock(&self, me: usize, id: u64) {
        let Some(mut st) = self.sched(me, Op::Unlock(id)) else { return };
        Self::release_mutex(&mut st, me, id);
    }

    /// Releases ownership and makes every waiter runnable (they contend
    /// again when scheduled — wake order is explored, not decided here).
    fn release_mutex(st: &mut EngineState, me: usize, id: u64) {
        let m = st.mutexes.entry(id).or_default();
        debug_assert_eq!(m.owner, Some(me), "unlock of a mutex the thread does not hold");
        m.owner = None;
        let waiters = std::mem::take(&mut m.waiters);
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
    }

    // ---- condvar operations ----

    /// Atomically releases `mutex` and parks on `cv`; re-acquires the
    /// mutex before returning. The caller must have dropped the *real*
    /// inner guard first (no other model thread can run in between —
    /// the caller still holds the baton).
    pub(crate) fn condvar_wait(&self, me: usize, cv: u64, mutex: u64) {
        {
            let Some(mut st) = self.sched(me, Op::CvWait { cv }) else { return };
            Self::release_mutex(&mut st, me, mutex);
            st.condvars.entry(cv).or_default().waiters.push(me);
            drop(self.block_on(st, me, Block::Condvar { cv }));
        }
        self.mutex_lock(me, mutex);
    }

    /// Notifies one waiter (which one is an explored choice) or all.
    pub(crate) fn condvar_notify(&self, me: usize, cv: u64, all: bool) {
        let Some(mut st) = self.sched(me, Op::CvNotify { cv, all }) else { return };
        let n = st.condvars.entry(cv).or_default().waiters.len();
        if n == 0 {
            return;
        }
        let waiters = if all {
            std::mem::take(&mut st.condvars.get_mut(&cv).expect("entry above").waiters)
        } else {
            // Which waiter the signal reaches is an explored choice.
            let chosen = match self.choose(&mut st, n, 0) {
                Ok(c) => c,
                Err(msg) => self.fail(st, msg),
            };
            vec![st.condvars.get_mut(&cv).expect("entry above").waiters.remove(chosen)]
        };
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
    }

    // ---- atomic operations ----
    //
    // Split in two: `atomic_point` is the schedule point (other threads
    // may run inside it); the wrapper then performs the *real* atomic
    // operation while still holding the baton — no model thread can
    // interleave between the point returning and the op — and finally
    // records the result in the weak-memory history with one of the
    // non-scheduling calls below.

    /// The schedule point in front of an atomic access. Returns `false`
    /// when the execution is aborting (callers fall through to the raw
    /// operation so drop handlers can finish).
    pub(crate) fn atomic_point(&self, me: usize, id: u64, what: &'static str) -> bool {
        self.sched(me, Op::Atomic { id, what }).is_some()
    }

    fn with_atomic<R>(
        st: &mut EngineState,
        me: usize,
        id: u64,
        prev: u64,
        f: impl FnOnce(&mut AtomicState, usize) -> R,
    ) -> R {
        let threads = st.threads.len();
        let a = st.atomics.entry(id).or_default();
        a.obs.resize(threads.max(a.obs.len()), 0);
        if a.history.is_empty() {
            a.history.push(prev);
        }
        f(a, me)
    }

    /// Records a store / read-modify-write: `new` joins the location's
    /// modification history and the writer observes it (weak-memory
    /// mode only; store *re*ordering is not modeled — see module docs).
    pub(crate) fn atomic_record_write(&self, me: usize, id: u64, prev: u64, new: u64) {
        if !self.cfg.weak_memory {
            return;
        }
        let mut st = self.lock();
        Self::with_atomic(&mut st, me, id, prev, |a, me| {
            a.history.push(new);
            a.obs[me] = a.history.len() - 1;
        });
    }

    /// A `SeqCst` load (or the read half of any RMW): observes the
    /// newest value.
    pub(crate) fn atomic_observe_latest(&self, me: usize, id: u64, current: u64) {
        if !self.cfg.weak_memory {
            return;
        }
        let mut st = self.lock();
        Self::with_atomic(&mut st, me, id, current, |a, me| {
            a.obs[me] = a.history.len() - 1;
        });
    }

    /// A load with an ordering weaker than `SeqCst` under weak-memory
    /// exploration: returns any value of the location's history the
    /// thread has not yet moved past — which one is an explored choice
    /// (default = the newest, i.e. the sequentially consistent value,
    /// so stale reads are reached via backtracking).
    pub(crate) fn atomic_weak_read(&self, me: usize, id: u64, current: u64) -> u64 {
        if !self.cfg.weak_memory {
            return current;
        }
        let mut st = self.lock();
        let (oldest, newest) =
            Self::with_atomic(&mut st, me, id, current, |a, me| (a.obs[me], a.history.len() - 1));
        let span = newest - oldest + 1;
        let chosen = match self.choose(&mut st, span, 0) {
            Ok(c) => c,
            Err(msg) => self.fail(st, msg),
        };
        let idx = newest - chosen;
        let a = st.atomics.get_mut(&id).expect("with_atomic created the entry");
        a.obs[me] = idx;
        a.history[idx]
    }

    // ---- scoped-thread bookkeeping ----

    /// Opens a scope frame for `me`: children spawned through a
    /// [`crate::model::thread::Scope`] are recorded in the top frame so
    /// the scope exit can model-join them *before* `std`'s implicit
    /// OS-level join (which would otherwise wait on threads that are
    /// themselves waiting for the baton).
    pub(crate) fn push_scope(&self, me: usize) {
        self.lock().scopes.entry(me).or_default().push(Vec::new());
    }

    /// Closes `me`'s top scope frame, returning the children to join.
    pub(crate) fn pop_scope(&self, me: usize) -> Vec<usize> {
        let mut st = self.lock();
        st.scopes.get_mut(&me).and_then(Vec::pop).unwrap_or_default()
    }

    /// Records a failure (for a real panic unwinding through a scope)
    /// and aborts every thread so `std`'s implicit scope join can
    /// complete while the panic propagates. No-op message for [`Abort`]
    /// payloads (a failure is already recorded).
    pub(crate) fn panic_abort(&self, me: usize, msg: Option<String>) {
        let mut st = self.lock();
        if let Some(msg) = msg {
            if st.failure.is_none() {
                let trail = st.format_events();
                st.failure = Some(format!("panic in model thread T{me}: {msg}\n{trail}"));
            }
        }
        st.abort = true;
        self.cv.notify_all();
    }
}
