//! Seeded-mutation suite: five known concurrency bugs re-introduced
//! into miniature copies of the repo's protocols, each proven *caught*
//! by the model checker — and each correct twin proven clean — so the
//! checker's coverage claims are themselves tested.
//!
//! | mutation | protocol mirrored | detector that fires |
//! |---|---|---|
//! | dropped parked-flag clear      | `cuberun` mailbox park/wake     | lost wakeup |
//! | missing re-check under lock    | `cuberun` two-phase park        | lost wakeup |
//! | barrier generation off-by-one  | `cuberun` generation barrier    | panic (early release) |
//! | Relaxed sleeper registration   | `cuberun` sleeper Dekker pair   | lost wakeup (weak memory) |
//! | cache overwrite without re-check | `PlanCache` build-outside-lock | panic (split identity) |
//!
//! Like the engine suite, this drives [`cubesync::model`] types
//! directly and runs in the plain `cargo test` pass.

use cubesync::model::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use cubesync::model::sync::{Condvar, Mutex};
use cubesync::model::{check, check_with, thread, Config};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Mutations 1 + 2: the mailbox park/wake protocol (cuberun sched.rs).
// A worker publishes "I am parked" under the slot lock and sleeps until
// the flag is cleared; a producer publishes work in an atomic want cell
// and wakes the worker if it finds the flag set.
// ---------------------------------------------------------------------

const WANT_NONE: u64 = u64::MAX;

struct MailSlot {
    want: AtomicU64,
    parked: Mutex<bool>,
    cv: Condvar,
}

/// The park/wake protocol with two seeded mutations behind flags:
/// `clear_on_wake = false` drops the producer's parked-flag clear,
/// `recheck_under_lock = false` parks without the locked re-check of
/// the want cell.
fn park_wake(clear_on_wake: bool, recheck_under_lock: bool) {
    let slot = Arc::new(MailSlot {
        want: AtomicU64::new(WANT_NONE),
        parked: Mutex::new(false),
        cv: Condvar::new(),
    });
    thread::scope(|s| {
        let worker_slot = Arc::clone(&slot);
        s.spawn(move || {
            // Fast path: work already posted.
            if worker_slot.want.load(Ordering::SeqCst) != WANT_NONE {
                return;
            }
            let mut parked = worker_slot.parked.lock().unwrap();
            // Two-phase park: the re-check under the lock closes the
            // window between the fast-path miss and going to sleep.
            if recheck_under_lock && worker_slot.want.load(Ordering::SeqCst) != WANT_NONE {
                return;
            }
            *parked = true;
            while *parked {
                parked = worker_slot.cv.wait(parked).unwrap();
            }
            assert_ne!(
                worker_slot.want.load(Ordering::SeqCst),
                WANT_NONE,
                "woken with nothing to do"
            );
        });

        // Producer: publish work, then wake the worker if it parked.
        slot.want.store(7, Ordering::SeqCst);
        let mut parked = slot.parked.lock().unwrap();
        if *parked {
            if clear_on_wake {
                *parked = false;
            }
            slot.cv.notify_one();
        }
    });
}

#[test]
fn park_wake_protocol_is_clean() {
    let report = check(|| park_wake(true, true));
    assert!(report.exhaustive, "small config must be fully enumerated");
}

#[test]
#[should_panic(expected = "lost wakeup")]
fn mutation_dropped_parked_flag_clear_is_caught() {
    // The producer notifies but leaves `parked` set; the worker's
    // predicate loop re-checks, still sees itself parked, and sleeps
    // through a signal that will never repeat.
    check(|| park_wake(false, true));
}

#[test]
#[should_panic(expected = "lost wakeup")]
fn mutation_missing_recheck_under_lock_is_caught() {
    // Without the locked re-check, work posted between the fast-path
    // miss and the park is invisible: the producer saw `parked ==
    // false` and skipped the notify.
    check(|| park_wake(true, false));
}

// ---------------------------------------------------------------------
// Mutation 3: the generation-counted barrier (cuberun sched.rs).
// ---------------------------------------------------------------------

struct MiniBarrier {
    /// (generation, arrived)
    state: Mutex<(u64, usize)>,
    cv: Condvar,
}

fn barrier_wait(b: &MiniBarrier, parties: usize, off_by_one: bool) {
    let mut st = b.state.lock().unwrap();
    // SEEDED BUG when `off_by_one`: snapshotting the *next* generation
    // makes the wait predicate immediately false — the waiter falls
    // through the barrier before the last arrival.
    let gen = if off_by_one { st.0 + 1 } else { st.0 };
    st.1 += 1;
    if st.1 == parties {
        st.1 = 0;
        st.0 += 1;
        b.cv.notify_all();
    } else {
        while st.0 == gen {
            st = b.cv.wait(st).unwrap();
        }
    }
}

fn barrier_rounds(off_by_one: bool) {
    let barrier = Arc::new(MiniBarrier { state: Mutex::new((0, 0)), cv: Condvar::new() });
    let counter = Arc::new(AtomicUsize::new(0));
    thread::scope(|s| {
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for round in 1..=2u64 {
                    counter.fetch_add(1, Ordering::SeqCst);
                    barrier_wait(&barrier, 2, off_by_one);
                    assert!(
                        counter.load(Ordering::SeqCst) >= 2 * round as usize,
                        "crossed the barrier before every party arrived"
                    );
                }
            });
        }
    });
}

#[test]
fn generation_barrier_is_clean() {
    let report = check(|| barrier_rounds(false));
    assert!(report.exhaustive, "small config must be fully enumerated");
}

#[test]
#[should_panic(expected = "crossed the barrier before every party arrived")]
fn mutation_barrier_generation_off_by_one_is_caught() {
    check(|| barrier_rounds(true));
}

// ---------------------------------------------------------------------
// Mutation 4: the sleeper-registration Dekker pair (cuberun sched.rs
// `sleep`/`notify_sleepers`). Correctness rests on both sides of the
// store/load pair being SeqCst; the mutation downgrades them to
// Relaxed, which weak-memory exploration turns into stale reads.
// ---------------------------------------------------------------------

fn sleeper_protocol(order: Ordering) {
    let work = Arc::new(AtomicBool::new(false));
    let sleepers = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new((Mutex::new(()), Condvar::new()));
    thread::scope(|s| {
        let (work1, sleepers1, gate1) =
            (Arc::clone(&work), Arc::clone(&sleepers), Arc::clone(&gate));
        s.spawn(move || {
            // Register as a sleeper *before* the final work check: the
            // Dekker-style pair with the producer's store/load below.
            sleepers1.store(1, order);
            if !work1.load(order) {
                let (lock, cv) = &*gate1;
                let mut guard = lock.lock().unwrap();
                while !work1.load(Ordering::SeqCst) {
                    guard = cv.wait(guard).unwrap();
                }
            }
        });

        // Producer: publish work, then wake any registered sleeper.
        work.store(true, order);
        if sleepers.load(order) > 0 {
            let (lock, cv) = &*gate;
            let _guard = lock.lock().unwrap();
            cv.notify_all();
        }
    });
}

#[test]
fn seqcst_sleeper_registration_is_clean_under_weak_memory() {
    let report = check_with(Config { weak_memory: true, ..Config::default() }, || {
        sleeper_protocol(Ordering::SeqCst)
    });
    assert!(report.exhaustive, "small config must be fully enumerated");
}

#[test]
#[should_panic(expected = "lost wakeup")]
fn mutation_relaxed_sleeper_registration_is_caught() {
    // Relaxed lets the producer read a stale `sleepers == 0` while the
    // sleeper reads a stale `work == false`: both sides miss each other
    // and the sleeper waits forever.
    check_with(Config { weak_memory: true, ..Config::default() }, || {
        sleeper_protocol(Ordering::Relaxed)
    });
}

// ---------------------------------------------------------------------
// Mutation 5: the plan cache's build-outside-lock protocol
// (cubecomm::plan::cache::PlanCache::get_or_build). Losing the
// racing-builder re-check lets two builders hand out *different* plans
// for the same key.
// ---------------------------------------------------------------------

fn get_or_build(
    cache: &Mutex<HashMap<u64, Arc<usize>>>,
    key: u64,
    builds: &AtomicUsize,
    recheck: bool,
) -> Arc<usize> {
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return Arc::clone(hit);
    }
    // Build outside the lock (the whole point of the protocol: plan
    // construction is expensive and must not serialize readers).
    let plan = Arc::new(builds.fetch_add(1, Ordering::SeqCst));
    let mut map = cache.lock().unwrap();
    if recheck {
        // A racing builder may have inserted while we built: keep the
        // cached plan, discard ours.
        if let Some(existing) = map.get(&key) {
            return Arc::clone(existing);
        }
    }
    map.insert(key, Arc::clone(&plan));
    plan
}

fn cache_race(recheck: bool) {
    let cache = Arc::new(Mutex::new(HashMap::new()));
    let builds = Arc::new(AtomicUsize::new(0));
    let (a, b) = thread::scope(|s| {
        let (cache1, builds1) = (Arc::clone(&cache), Arc::clone(&builds));
        let h = s.spawn(move || get_or_build(&cache1, 7, &builds1, recheck));
        let b = get_or_build(&cache, 7, &builds, recheck);
        (h.join().expect("builder does not panic"), b)
    });
    // Both callers may have built (that is allowed — construction is
    // outside the lock), but they must agree on one canonical plan.
    assert!(builds.load(Ordering::SeqCst) <= 2);
    assert!(Arc::ptr_eq(&a, &b), "two callers hold different plans for the same key");
}

#[test]
fn cache_build_outside_lock_is_clean() {
    let report = check(|| cache_race(true));
    assert!(report.exhaustive, "small config must be fully enumerated");
}

#[test]
#[should_panic(expected = "two callers hold different plans for the same key")]
fn mutation_cache_double_build_without_recheck_is_caught() {
    check(|| cache_race(false));
}
