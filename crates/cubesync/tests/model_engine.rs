//! Engine sanity suite: every detector the model checker advertises —
//! schedule enumeration, deadlock, lost wakeup, panic-on-interleaving,
//! result non-determinism, livelock, weak-memory stale reads — fires on
//! a minimal example, and clean protocols pass exhaustively.
//!
//! Runs in the plain `cargo test` pass: the suite drives the
//! [`cubesync::model`] types directly (they are compiled under both
//! backends), so no `--cfg cubesync_model` build is needed here.

use cubesync::model::atomic::{AtomicBool, AtomicUsize};
use cubesync::model::sync::{Condvar, Mutex};
use cubesync::model::{check, check_with, thread, Config};
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[test]
fn sequential_body_runs_exactly_once() {
    let report = check(|| 42u32);
    assert_eq!(report.schedules, 1);
    assert!(report.exhaustive);
}

#[test]
fn two_racing_increments_explore_more_than_one_schedule() {
    let report = check(|| {
        let total = Arc::new(Mutex::new(0u32));
        thread::scope(|s| {
            for _ in 0..2 {
                let total = Arc::clone(&total);
                s.spawn(move || {
                    *total.lock().unwrap() += 1;
                });
            }
        });
        let n = *total.lock().unwrap();
        assert_eq!(n, 2);
        n
    });
    assert!(report.schedules > 1, "only {} schedule(s) explored", report.schedules);
    assert!(report.exhaustive);
}

#[test]
#[should_panic(expected = "deadlock")]
fn ab_ba_lock_order_deadlock_is_detected() {
    check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        thread::scope(|s| {
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            s.spawn(move || {
                let _ga = a1.lock().unwrap();
                let _gb = b1.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        });
    });
}

#[test]
#[should_panic(expected = "lost wakeup")]
fn missed_signal_before_wait_is_detected() {
    // The classic lost wakeup: the waiter checks the flag *outside* the
    // lock and the signaler can fire in the window before the wait.
    check(|| {
        let ready = Arc::new(AtomicBool::new(false));
        let gate = Arc::new((Mutex::new(()), Condvar::new()));
        thread::scope(|s| {
            let (ready1, gate1) = (Arc::clone(&ready), Arc::clone(&gate));
            s.spawn(move || {
                // BUG under test: no re-check under the lock.
                if !ready1.load(Ordering::SeqCst) {
                    let (lock, cv) = &*gate1;
                    let guard = lock.lock().unwrap();
                    drop(cv.wait(guard).unwrap());
                }
            });
            ready.store(true, Ordering::SeqCst);
            let (lock, cv) = &*gate;
            let _guard = lock.lock().unwrap();
            cv.notify_all();
        });
    });
}

#[test]
#[should_panic(expected = "panic in model thread")]
fn assertion_failing_on_one_interleaving_is_found() {
    check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x1 = Arc::clone(&x);
        thread::scope(|s| {
            s.spawn(move || {
                x1.store(1, Ordering::SeqCst);
            });
            // Fails only on the schedule where the child runs first.
            assert_eq!(x.load(Ordering::SeqCst), 0, "child ran before the main body");
        });
    });
}

#[test]
#[should_panic(expected = "non-determinism")]
fn schedule_dependent_result_is_detected() {
    check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let (x1, x2) = (Arc::clone(&x), Arc::clone(&x));
        thread::scope(|s| {
            s.spawn(move || x1.store(1, Ordering::SeqCst));
            s.spawn(move || x2.store(2, Ordering::SeqCst));
        });
        // 1 or 2 depending on store order: the checker must notice.
        x.load(Ordering::SeqCst)
    });
}

#[test]
#[should_panic(expected = "livelock")]
fn step_budget_overrun_is_reported_as_livelock() {
    check_with(Config { max_steps: 100, ..Config::default() }, || {
        let x = AtomicUsize::new(0);
        loop {
            if x.fetch_add(1, Ordering::SeqCst) > 1_000 {
                break; // unreachable before the step budget trips
            }
        }
    });
}

#[test]
fn condvar_wait_with_recheck_is_clean_and_exhaustive() {
    // The correct form of the protocol from
    // `missed_signal_before_wait_is_detected`: re-check under the lock,
    // predicate loop around the wait. Exhaustively clean.
    let report = check(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        thread::scope(|s| {
            let state1 = Arc::clone(&state);
            s.spawn(move || {
                let (lock, cv) = &*state1;
                let mut ready = lock.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
            let (lock, cv) = &*state;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
    });
    assert!(report.exhaustive);
}

#[test]
fn notify_one_choice_of_waiter_is_explored() {
    // Two waiters, one signal each from two wakers; which waiter each
    // notify_one reaches is a schedule choice — all pairings must drain
    // cleanly (notify under the lock, predicate loops).
    let report = check(|| {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        thread::scope(|s| {
            for _ in 0..2 {
                let state = Arc::clone(&state);
                s.spawn(move || {
                    let (lock, cv) = &*state;
                    let mut tokens = lock.lock().unwrap();
                    while *tokens == 0 {
                        tokens = cv.wait(tokens).unwrap();
                    }
                    *tokens -= 1;
                });
            }
            let (lock, cv) = &*state;
            for _ in 0..2 {
                *lock.lock().unwrap() += 1;
                cv.notify_one();
            }
        });
    });
    assert!(report.exhaustive);
}

#[test]
fn weak_memory_finds_stale_relaxed_read() {
    // Dekker-style flag pair with Relaxed everywhere: under weak-memory
    // exploration both threads may read the other's flag as stale
    // `false`, which the body turns into a panic the checker reports.
    let result = std::panic::catch_unwind(|| {
        check_with(Config { weak_memory: true, ..Config::default() }, || {
            let a = Arc::new(AtomicBool::new(false));
            let b = Arc::new(AtomicBool::new(false));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let neither_seen = Arc::new(AtomicUsize::new(0));
            let ns1 = Arc::clone(&neither_seen);
            thread::scope(|s| {
                s.spawn(move || {
                    a1.store(true, Ordering::Relaxed);
                    if !b1.load(Ordering::Relaxed) {
                        ns1.fetch_add(1, Ordering::SeqCst);
                    }
                });
                b.store(true, Ordering::Relaxed);
                if !a.load(Ordering::Relaxed) {
                    neither_seen.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Under sequential consistency at most one side can miss
            // the other's flag; Relaxed allows both to.
            assert!(neither_seen.load(Ordering::SeqCst) < 2, "both sides read stale flags");
        })
    });
    assert!(result.is_err(), "weak-memory mode failed to surface the stale Relaxed reads");
}

#[test]
fn weak_memory_respects_seqcst() {
    // Same shape, SeqCst flags: no schedule lets both sides miss.
    let report = check_with(Config { weak_memory: true, ..Config::default() }, || {
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let neither_seen = Arc::new(AtomicUsize::new(0));
        let ns1 = Arc::clone(&neither_seen);
        thread::scope(|s| {
            s.spawn(move || {
                a1.store(true, Ordering::SeqCst);
                if !b1.load(Ordering::SeqCst) {
                    ns1.fetch_add(1, Ordering::SeqCst);
                }
            });
            b.store(true, Ordering::SeqCst);
            if !a.load(Ordering::SeqCst) {
                neither_seen.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(neither_seen.load(Ordering::SeqCst) < 2, "both sides read stale flags");
    });
    assert!(report.exhaustive);
}

#[test]
fn plain_spawn_and_join_round_trips_values() {
    let report = check(|| {
        let h = thread::spawn(|| 7u32);
        let v = h.join().expect("child does not panic");
        assert_eq!(v, 7);
        v
    });
    assert!(report.exhaustive);
}

#[test]
fn random_fallback_kicks_in_past_the_systematic_budget() {
    // Three racing mutex threads blow a tiny systematic budget; the
    // explorer must fall back to seeded-random sampling and finish
    // (non-exhaustively) instead of enumerating forever.
    let report =
        check_with(Config { max_schedules: 5, random_schedules: 10, ..Config::default() }, || {
            let total = Arc::new(Mutex::new(0u32));
            thread::scope(|s| {
                for _ in 0..3 {
                    let total = Arc::clone(&total);
                    s.spawn(move || {
                        *total.lock().unwrap() += 1;
                    });
                }
            });
            assert_eq!(*total.lock().unwrap(), 3);
        });
    assert!(!report.exhaustive);
    assert!(report.schedules >= 5);
    assert!(report.schedules <= 5 + 10 + 1);
}
