//! Model-checks the *real* crates' concurrency protocols — not
//! miniature mirrors — by building the whole workspace against the
//! model backend (`RUSTFLAGS="--cfg cubesync_model"`) so every
//! `cubesync` facade call in `cubesim::par`, the `cuberun` scheduler,
//! and `cubecomm`'s plan cache routes through the explorer.
//!
//! Compiled to nothing in the ordinary test pass: these are the CI
//! `model-check` step (`scripts/ci.sh`).
//!
//! Configs here are deliberately tiny (2 threads, 2 virtual nodes, one
//! cache key): the point is enumerating *interleavings* of the actual
//! protocol code, and small configs are where exhaustive or
//! near-exhaustive enumeration is affordable. Where the real scheduler
//! has too many visible operations to finish the DFS inside the
//! budget, the run reports `exhaustive: false` and the tail is
//! seeded-random sampled — still far beyond what stress testing
//! reaches, and every explored schedule checks the full invariant set
//! (deadlock, lost wakeup, livelock, panics, result determinism).
#![cfg(cubesync_model)]

use cubecomm::plan::cache::{PlanCache, PlanKey};
use cubecomm::plan::ecube_route_plan;
use cubesync::model::{check_with, Config};
use cubesync::sync::Arc;
use cubesync::thread;
use std::time::Duration;

/// A budget that keeps each test inside the CI wall-clock bound while
/// still exploring thousands of distinct interleavings of the real
/// code. Step budget is raised: one `run_spmd` execution crosses far
/// more visible operations than the protocol miniatures.
fn budget() -> Config {
    Config { max_schedules: 1_500, random_schedules: 50, max_steps: 500_000, ..Config::default() }
}

// ---------------------------------------------------------------------
// cubesim::par — ClaimCursor work claiming + sleeper park/wake.
// ---------------------------------------------------------------------

#[test]
fn par_map_two_threads_is_deterministic_and_deadlock_free() {
    let report = check_with(budget(), || {
        cubesim::par::with_threads(2, || cubesim::par::par_map(&[1u64, 2, 3], |x| x * 10))
    });
    assert!(report.schedules > 1, "multi-threaded body must have explored interleavings");
}

#[test]
fn par_map_uneven_work_still_returns_input_order() {
    // One expensive item: the claim cursor lets whichever worker is
    // free take the rest, but reassembly must stay positional.
    let report = check_with(budget(), || {
        cubesim::par::with_threads(2, || {
            cubesim::par::par_map(&[5u64, 1, 1, 1], |x| {
                let mut acc = 0u64;
                for i in 0..*x {
                    acc += i;
                }
                acc
            })
        })
    });
    assert!(report.schedules > 1);
}

// ---------------------------------------------------------------------
// cuberun — mailbox park/wake, generation barrier, steal queues, under
// the real virtual-node scheduler with a 2-worker pool.
// ---------------------------------------------------------------------

#[test]
fn spmd_exchange_on_two_nodes_two_workers() {
    let report = check_with(budget(), || {
        cuberun::with_workers(2, || {
            cuberun::with_stall_timeout(Duration::from_secs(3600), || {
                // Results only: scheduler counters (parks/wakes/steals)
                // legitimately vary by interleaving.
                let (results, _stats) = cuberun::run_spmd::<u64, u64, _, _>(1, |ctx| async move {
                    ctx.send(0, ctx.id().bits() + 100);
                    ctx.recv(0).await
                });
                results
            })
        })
    });
    assert!(report.schedules > 1);
}

#[test]
fn spmd_barrier_and_all_reduce_on_two_nodes() {
    let report = check_with(budget(), || {
        cuberun::with_workers(2, || {
            cuberun::with_stall_timeout(Duration::from_secs(3600), || {
                let (results, _stats) = cuberun::run_spmd::<u64, u64, _, _>(1, |ctx| async move {
                    ctx.barrier().await;
                    ctx.all_reduce(ctx.id().bits() + 1, |a, b| a + b).await
                });
                results
            })
        })
    });
    assert!(report.schedules > 1);
}

#[test]
fn spmd_single_worker_cooperative_schedule_is_clean() {
    // One worker, two virtual nodes: the cooperative (non-preemptive)
    // path where a recv must suspend back to the worker loop rather
    // than block it.
    let report = check_with(budget(), || {
        cuberun::with_workers(1, || {
            cuberun::with_stall_timeout(Duration::from_secs(3600), || {
                let (results, _stats) = cuberun::run_spmd::<u64, u64, _, _>(1, |ctx| async move {
                    ctx.send(0, ctx.id().bits());
                    ctx.recv(0).await
                });
                results
            })
        })
    });
    assert!(report.schedules >= 1);
}

// ---------------------------------------------------------------------
// cubecomm::plan::cache — racing get_or_build on one key.
// ---------------------------------------------------------------------

#[test]
fn plan_cache_racing_builders_agree_on_one_plan() {
    let report = check_with(budget(), || {
        let cache = Arc::new(PlanCache::new(4));
        let key = || PlanKey::new("model-probe", 2).with_fingerprint(7);
        let tiny = || ecube_route_plan(2, &[(cubeaddr::NodeId(0), cubeaddr::NodeId(1), 1)]);
        let (a, b) = thread::scope(|s| {
            let cache2 = Arc::clone(&cache);
            let h = s.spawn(move || cache2.get_or_build(key(), tiny));
            let b = cache.get_or_build(key(), tiny);
            (h.join().expect("builder does not panic"), b)
        });
        assert!(
            cubesync::sync::Arc::ptr_eq(&a, &b),
            "racing builders must converge on one canonical plan"
        );
        // Hash the stats that must be schedule-independent: exactly one
        // entry, never an eviction. (Hit/miss split depends on the race.)
        let stats = cache.stats();
        (stats.entries, stats.evictions)
    });
    assert!(report.schedules > 1);
}
