//! Verification helpers: label-tracked transposition checks.
//!
//! Every transpose algorithm in this crate is tested by running it on the
//! *label matrix* — element `(u, v)` carries the value `(u << q) | v` —
//! and checking that position `(v, u)` of the result holds that label.
//! Any misrouted element is then immediately identifiable: the label says
//! exactly which element it is and where it started.

use cubelayout::{DistMatrix, Layout};

/// Builds the label matrix for a layout: element `(u, v)` holds
/// `(u << q) | v`.
pub fn labels(layout: Layout) -> DistMatrix<u64> {
    cubelayout::dist::label_matrix(layout)
}

/// Asserts that `result` (a matrix laid out as `A^T`) holds the transpose
/// of the label matrix built on `before`.
///
/// # Panics
/// With a diagnostic naming the first misplaced element.
#[track_caller]
pub fn assert_transposed(before: &Layout, result: &DistMatrix<u64>) {
    if let Some((u, v, found)) = cubelayout::dist::check_transposed_labels(before, result) {
        panic!(
            "transpose failed: a^T({v}, {u}) should hold label {} (= element ({u}, {v}) of A) \
             but holds {found} (= element ({}, {}))",
            (u << before.q()) | v,
            found >> before.q(),
            found & cubeaddr::mask(before.q()),
        );
    }
}

/// Checks that a dense gathering of `result` equals the mathematical
/// transpose of a dense gathering of `input` (for arbitrary value types).
#[track_caller]
pub fn assert_dense_transposed<T: Copy + PartialEq + std::fmt::Debug>(
    input: &DistMatrix<T>,
    result: &DistMatrix<T>,
) {
    let a = input.gather();
    let b = result.gather();
    assert_eq!(a.len(), b.first().map_or(0, Vec::len), "shape mismatch");
    for (r, row) in b.iter().enumerate() {
        for (c, val) in row.iter().enumerate() {
            assert_eq!(*val, a[c][r], "result[{r}][{c}] ≠ input[{c}][{r}]");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelayout::{Assignment, DistMatrix, Encoding};

    fn layout() -> Layout {
        Layout::square(2, 2, 1, Assignment::Consecutive, Encoding::Binary)
    }

    #[test]
    fn accepts_correct_transpose() {
        let before = layout();
        let after = before.swapped_shape();
        let good = DistMatrix::from_fn(after, |r, c| (c << 2) | r);
        assert_transposed(&before, &good);
    }

    #[test]
    #[should_panic(expected = "transpose failed")]
    fn rejects_identity() {
        let before = layout();
        let after = before.swapped_shape();
        let bad = DistMatrix::from_fn(after, |r, c| (r << 2) | c);
        assert_transposed(&before, &bad);
    }

    #[test]
    fn dense_check() {
        let before = layout();
        let input = DistMatrix::from_fn(before.clone(), |u, v| (u, v));
        let result = DistMatrix::from_fn(before.swapped_shape(), |r, c| (c, r));
        assert_dense_transposed(&input, &result);
    }
}
