//! Storage-form conversion without transposition (§5, Corollaries 6–7).
//!
//! "The conversion of the storage form of a matrix stored in `2^{|R_b|}`
//! processors from any one of the following storage forms — consecutive
//! row, consecutive column, cyclic row, cyclic column, combined cyclic and
//! consecutive row/column storage — to any other of these forms requires
//! communication from each of the processors to `2^{|R_a|} - 1` other
//! processors, if `I = ∅`." The standard exchange algorithm performs any
//! such conversion; this module drives it from a pair of layouts of the
//! *same* matrix.

use crate::one_dim::Routed;
use cubeaddr::NodeId;
use cubecomm::exchange::{exchange_over_dims, BufferPolicy};
use cubecomm::{Block, BlockMsg};
use cubelayout::{DistMatrix, Layout};
use cubesim::SimNet;

/// Moves the matrix from its current layout to `to` (no transposition:
/// element `(u, v)` stays element `(u, v)`), by the standard exchange
/// algorithm over the node dimensions any element actually crosses.
///
/// # Panics
/// If the shapes differ, or on routing violations.
#[track_caller]
pub fn relayout<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    to: &Layout,
    net: &mut SimNet<BlockMsg<Routed<T>>>,
    policy: BufferPolicy,
) -> DistMatrix<T> {
    let from = m.layout();
    assert_eq!((from.p(), from.q()), (to.p(), to.q()), "shape mismatch");
    let num = from.num_nodes().max(to.num_nodes());
    let mut held: Vec<Vec<Block<Routed<T>>>> = (0..num).map(|_| Vec::new()).collect();
    let mut per_pair: Vec<Vec<Vec<Routed<T>>>> =
        (0..num).map(|_| (0..num).map(|_| Vec::new()).collect()).collect();
    for (u, v) in from.elements() {
        let src = from.place(u, v);
        let dst = to.place(u, v);
        let value = m.node(src.node)[src.local as usize];
        per_pair[src.node.index()][dst.node.index()].push((dst.local, value));
    }
    let mut diff = 0u64;
    for (s, per_dst) in per_pair.into_iter().enumerate() {
        for (d, data) in per_dst.into_iter().enumerate() {
            if !data.is_empty() {
                diff |= (s ^ d) as u64;
                held[s].push(Block::new(NodeId(s as u64), NodeId(d as u64), data));
            }
        }
    }
    let dims: Vec<u32> = (0..net.n()).rev().filter(|&d| (diff >> d) & 1 == 1).collect();
    let result = exchange_over_dims(net, held, &dims, policy);

    let mut out = DistMatrix::<T>::zeroed(to.clone());
    for (x, blks) in result.into_iter().enumerate() {
        for b in blks {
            assert_eq!(b.dst.index(), x);
            for (local, value) in b.data {
                out.node_mut(NodeId(x as u64))[local as usize] = value;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelayout::{Assignment, Direction, Encoding, TransposeSpec};
    use cubesim::{MachineParams, PortMode};

    /// The six §5 storage forms on a 2^4 × 2^4 matrix over a 2-cube.
    fn forms() -> Vec<(&'static str, Layout)> {
        vec![
            (
                "consecutive row",
                Layout::one_dim(
                    4,
                    4,
                    Direction::Rows,
                    2,
                    Assignment::Consecutive,
                    Encoding::Binary,
                ),
            ),
            (
                "consecutive column",
                Layout::one_dim(
                    4,
                    4,
                    Direction::Cols,
                    2,
                    Assignment::Consecutive,
                    Encoding::Binary,
                ),
            ),
            (
                "cyclic row",
                Layout::one_dim(4, 4, Direction::Rows, 2, Assignment::Cyclic, Encoding::Binary),
            ),
            (
                "cyclic column",
                Layout::one_dim(4, 4, Direction::Cols, 2, Assignment::Cyclic, Encoding::Binary),
            ),
            (
                "combined row",
                Layout::new(
                    4,
                    4,
                    cubelayout::SubField::contiguous_at(1, 2, 4, Encoding::Binary),
                    cubelayout::SubField::empty(),
                ),
            ),
            (
                "combined column",
                Layout::new(
                    4,
                    4,
                    cubelayout::SubField::empty(),
                    cubelayout::SubField::contiguous_at(1, 2, 4, Encoding::Binary),
                ),
            ),
        ]
    }

    /// Corollary 6: every pair of the six §5 storage forms converts
    /// correctly, and when the real dimension sets are disjoint the
    /// traffic reaches all `2^{|R_a|} - 1` other processors.
    #[test]
    fn corollary6_all_pairs_convert() {
        let all = forms();
        let m0 = DistMatrix::from_fn(all[0].1.clone(), |u, v| (u << 4) | v);
        for (name_from, from) in &all {
            // Re-layout the canonical data into the source form first.
            let mut net0 = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
            let src = relayout(&m0, from, &mut net0, BufferPolicy::Ideal);
            for (name_to, to) in &all {
                let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
                let out = relayout(&src, to, &mut net, BufferPolicy::Ideal);
                for (u, v) in to.elements() {
                    assert_eq!(
                        out.get(u, v),
                        (u << 4) | v,
                        "{name_from} → {name_to} at ({u}, {v})"
                    );
                }
            }
        }
    }

    /// Corollary 7: cyclic ↔ consecutive conversion is all-to-all
    /// personalized communication when `P ≥ N²`.
    #[test]
    fn corollary7_cyclic_consecutive_is_all_to_all() {
        // P = 2^4 = 16, N = 4: P ≥ N².
        let from = Layout::one_dim(4, 2, Direction::Rows, 2, Assignment::Cyclic, Encoding::Binary);
        let to =
            Layout::one_dim(4, 2, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary);
        // Count distinct destinations per source.
        let mut dests = vec![std::collections::HashSet::new(); 4];
        for (u, v) in from.elements() {
            let s = from.place(u, v).node.index();
            let d = to.place(u, v).node.index();
            dests[s].insert(d);
        }
        for (s, ds) in dests.iter().enumerate() {
            assert_eq!(ds.len(), 4, "source {s} must reach all processors");
        }
        // And the conversion executes.
        let m = DistMatrix::from_fn(from.clone(), |u, v| (u, v));
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let out = relayout(&m, &to, &mut net, BufferPolicy::Ideal);
        assert_eq!(out.get(13, 2), (13, 2));
    }

    /// A conversion is *not* a transposition: composing a relayout with
    /// the transpose spec still classifies correctly.
    #[test]
    fn relayout_then_transpose() {
        let a = Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Cyclic, Encoding::Binary);
        let b =
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary);
        let m = crate::verify::labels(a.clone());
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let moved = relayout(&m, &b, &mut net, BufferPolicy::Ideal);
        // Now transpose from the consecutive form.
        let after = b.swapped_shape();
        let spec = TransposeSpec::with_after(b.clone(), after.clone());
        assert_eq!(spec.classify(), cubelayout::CommPattern::AllToAll);
        let mut net2 = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let out =
            crate::one_dim::transpose_1d_exchange(&moved, &after, &mut net2, BufferPolicy::Ideal);
        crate::verify::assert_transposed(&a, &out);
    }

    /// Identity conversion moves nothing.
    #[test]
    fn identity_relayout_is_free() {
        let l = Layout::one_dim(3, 3, Direction::Cols, 2, Assignment::Cyclic, Encoding::Binary);
        let m = crate::verify::labels(l.clone());
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let out = relayout(&m, &l, &mut net, BufferPolicy::Ideal);
        assert_eq!(out, m);
        let r = net.finalize();
        assert_eq!(r.total_elems, 0);
        assert_eq!(r.rounds, 0);
    }
}
