//! Transposition drivers for distributed matrices (§5 and the generic
//! `I = ∅` cases).
//!
//! Three interchangeable engines, all moving real data under the cost
//! model:
//!
//! * [`transpose_1d_exchange`] — the standard exchange algorithm on
//!   destination-tagged blocks (works for *any* pair of layouts,
//!   including Gray-encoded ones), with the §8.1 buffering policies;
//! * [`transpose_1d_sbnt`] — n-port spanning-balanced-n-tree routing of
//!   the same blocks;
//! * [`transpose_stepwise`] — the field-map engine
//!   ([`crate::fieldmap`]): for binary layouts, executes the general
//!   exchange algorithm with exact §8.1 memory-run modeling.
//!
//! All three verify, at assembly time, that every element arrived where
//! `loc(u‖v) ← loc(v‖u)` demands.

use crate::fieldmap::{FieldMap, MappedMatrix, SendPolicy};
use cubeaddr::NodeId;
use cubecomm::exchange::{exchange_over_dims, BufferPolicy};
use cubecomm::sbnt::all_to_all_sbnt;
use cubecomm::{Block, BlockMsg};
use cubelayout::{DistMatrix, Layout, TransposeSpec};
use cubesim::SimNet;

/// A routed element: its destination local address and its value.
pub type Routed<T> = (u64, T);

/// Groups the elements of `m` into per-(source, destination) blocks for
/// the transposition `spec`. `blocks[src][dst]` holds
/// `(dst_local, value)` pairs; empty blocks stay empty (virtual elements
/// are not communicated).
pub fn spec_blocks<T: Copy>(spec: &TransposeSpec, m: &DistMatrix<T>) -> Vec<Vec<Vec<Routed<T>>>> {
    let num = spec.before.num_nodes().max(spec.after.num_nodes());
    let mut blocks: Vec<Vec<Vec<Routed<T>>>> =
        (0..num).map(|_| (0..num).map(|_| Vec::new()).collect()).collect();
    for mv in spec.moves() {
        let value = m.node(mv.src)[mv.src_local as usize];
        blocks[mv.src.index()][mv.dst.index()].push((mv.dst_local, value));
    }
    blocks
}

/// Assembles routed blocks into the output matrix laid out by `after`.
///
/// # Panics
/// If any element is missing or misrouted.
#[track_caller]
pub fn assemble<T: Copy + Default>(
    after: &Layout,
    result: Vec<Vec<Block<Routed<T>>>>,
) -> DistMatrix<T> {
    let mut out = DistMatrix::<T>::zeroed(after.clone());
    let mut filled = vec![vec![false; after.elems_per_node()]; after.num_nodes()];
    for (x, blks) in result.into_iter().enumerate() {
        for b in blks {
            assert_eq!(b.dst.index(), x, "block for {} delivered to {x}", b.dst);
            for (local, value) in b.data {
                assert!(!filled[x][local as usize], "duplicate element at node {x} local {local}");
                filled[x][local as usize] = true;
                out.node_mut(NodeId(x as u64))[local as usize] = value;
            }
        }
    }
    for (x, f) in filled.iter().enumerate() {
        for (l, &got) in f.iter().enumerate() {
            assert!(got, "node {x} local {l} never received its element");
        }
    }
    out
}

/// Transposes `m` into layout `after` with the standard exchange
/// algorithm (§5): all-to-all personalized communication over the node
/// dimensions in which sources and destinations differ, highest first.
/// One-port legal.
///
/// ```
/// use cubelayout::{Assignment, Direction, Encoding, Layout};
/// use cubesim::{MachineParams, PortMode, SimNet};
/// use cubetranspose::{transpose_1d_exchange, verify};
/// use cubecomm::BufferPolicy;
///
/// let before = Layout::one_dim(3, 3, Direction::Rows, 2,
///     Assignment::Consecutive, Encoding::Binary);
/// let after = before.swapped_shape();
/// let matrix = verify::labels(before.clone());
/// let mut net = SimNet::new(2, MachineParams::intel_ipsc());
/// let out = transpose_1d_exchange(&matrix, &after, &mut net, BufferPolicy::Ideal);
/// verify::assert_transposed(&before, &out);
/// assert_eq!(net.finalize().rounds, 2); // n exchange steps
/// ```
pub fn transpose_1d_exchange<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<BlockMsg<Routed<T>>>,
    policy: BufferPolicy,
) -> DistMatrix<T> {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let blocks = spec_blocks(&spec, m);
    let held: Vec<Vec<Block<Routed<T>>>> = blocks
        .into_iter()
        .enumerate()
        .map(|(s, per_dst)| {
            per_dst
                .into_iter()
                .enumerate()
                .filter(|(_, data)| !data.is_empty())
                .map(|(d, data)| Block::new(NodeId(s as u64), NodeId(d as u64), data))
                .collect()
        })
        .collect();
    // Dimensions actually crossed by any block, descending.
    let mut diff = 0u64;
    for slot in &held {
        for b in slot {
            diff |= b.src.bits() ^ b.dst.bits();
        }
    }
    let dims: Vec<u32> = (0..net.n()).rev().filter(|&d| (diff >> d) & 1 == 1).collect();
    let result = exchange_over_dims(net, held, &dims, policy);
    assemble(after, result)
}

/// Transposes `m` into layout `after` with n-port SBnT routing (§5's
/// n-port algorithm, optimum within a factor of 2).
pub fn transpose_1d_sbnt<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<BlockMsg<Routed<T>>>,
) -> DistMatrix<T> {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let blocks = spec_blocks(&spec, m);
    let result = all_to_all_sbnt(net, blocks);
    assemble(after, result)
}

/// The matrix-of-`A` field map that `after` (a layout of `A^T`) induces:
/// element `w = (u ‖ v)` of `A` must end at `after.place(v, u)`.
pub fn fieldmap_after(spec: &TransposeSpec) -> FieldMap {
    let p = spec.before.p();
    let q = spec.before.q();
    // Map a dimension of w' = (v ‖ u) into w = (u ‖ v) space.
    let conv = |d: u32| if d < p { q + d } else { d - p };
    let after_map = FieldMap::from_layout(&spec.after);
    let real = (0..after_map.n()).map(|i| conv(after_map.real_dim(i))).collect();
    let virt = (0..after_map.vp()).map(|j| conv(after_map.virt_dim(j))).collect();
    FieldMap::new(real, virt)
}

/// Transposes `m` into layout `after` with the field-map engine: the
/// standard exchange algorithm on the *blocked array* storage order of
/// §5/§8.1. Binary layouts only.
///
/// The local array is first (freely) viewed in blocked order — the
/// dimensions about to become real processor bits occupy the top of the
/// local address, so exchange step `k` sends exactly `2^k` memory chunks,
/// reproducing the paper's unbuffered/buffered start-up counts. The final
/// local array is re-interpreted in `after`'s order ("implicitly by
/// indirect addressing"), without charge; the interprocessor cost is
/// exactly `cubemodel::one_dim`'s expressions.
///
/// Falls back to the greedy general-exchange plan when the spec also
/// requires real/real swaps (`I ≠ ∅` cases).
pub fn transpose_stepwise<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<Vec<T>>,
    policy: SendPolicy,
) -> DistMatrix<T> {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let start = FieldMap::from_layout(&spec.before);
    let target = fieldmap_after(&spec);
    let mut mapped = MappedMatrix::from_buffers(start.clone(), m.clone().into_buffers());

    // The (real position, dimension) pairs that must be brought in from
    // the virtual side, in descending real-position order (the standard
    // exchange scans from the highest-order dimension).
    let mut incoming: Vec<(u32, u32)> = Vec::new();
    let mut any_real_real = false;
    for i in (0..target.n()).rev() {
        let want = target.real_dim(i);
        match start.locate(want) {
            crate::fieldmap::Role::Real(cur) if cur == i => {}
            crate::fieldmap::Role::Real(_) => any_real_real = true,
            crate::fieldmap::Role::Virt(_) => incoming.push((i, want)),
        }
    }

    if any_real_real {
        // Mixed case: use the generic plan.
        mapped.rearrange_to(net, &target, policy);
        return DistMatrix::from_buffers(after.clone(), mapped.into_buffers());
    }

    // Free relabel into blocked order: the k-th incoming dimension goes to
    // virtual position vp-1-k; the remaining virtual dims keep their
    // relative order below.
    let vp = start.vp();
    let mut perm: Vec<u32> = Vec::with_capacity(vp as usize);
    let in_set: std::collections::HashSet<u32> = incoming.iter().map(|&(_, d)| d).collect();
    let keep: Vec<u32> = (0..vp).filter(|&j| !in_set.contains(&mapped.map().virt_dim(j))).collect();
    perm.extend(&keep);
    for (_, d) in incoming.iter().rev() {
        match mapped.map().locate(*d) {
            crate::fieldmap::Role::Virt(j) => perm.push(j),
            crate::fieldmap::Role::Real(_) => unreachable!(),
        }
    }
    mapped.relabel_virt(&perm);

    // Exchange steps: step k pairs the k-th real position with the k-th
    // virtual position from the top, so the outgoing data forms 2^k runs.
    for (k, &(i, _)) in incoming.iter().enumerate() {
        mapped.exchange_real_virt(net, i, vp - 1 - k as u32, policy);
    }

    // Final free relabel into the after layout's local order.
    let final_perm: Vec<u32> = (0..target.vp())
        .map(|jn| match mapped.map().locate(target.virt_dim(jn)) {
            crate::fieldmap::Role::Virt(jo) => jo,
            crate::fieldmap::Role::Real(_) => unreachable!("real roles already fixed"),
        })
        .collect();
    mapped.relabel_virt(&final_perm);
    debug_assert_eq!(mapped.map(), &target);
    DistMatrix::from_buffers(after.clone(), mapped.into_buffers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_transposed, labels};
    use cubelayout::{Assignment, Direction, Encoding};
    use cubesim::{MachineParams, PortMode};

    fn canonical_1d(p: u32, q: u32, n: u32) -> (Layout, Layout) {
        let before =
            Layout::one_dim(p, q, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
        let after =
            Layout::one_dim(q, p, Direction::Rows, n, Assignment::Consecutive, Encoding::Binary);
        (before, after)
    }

    #[test]
    fn exchange_transposes_consecutive_rows() {
        for (p, q, n) in [(3, 3, 2), (2, 4, 2), (4, 2, 2), (3, 3, 3)] {
            let (before, after) = canonical_1d(p, q, n);
            let m = labels(before.clone());
            let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
            let out = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
            assert_transposed(&before, &out);
            net.finalize();
        }
    }

    #[test]
    fn exchange_time_matches_model() {
        // Ideal policy: T = n(PQ/2N·t_c + τ) exactly.
        let (p, q, n) = (4, 4, 3);
        let (before, after) = canonical_1d(p, q, n);
        let m = labels(before.clone());
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
        let r = net.finalize();
        let expect = cubemodel_exchange(1 << (p + q), n);
        assert_eq!(r.time, expect, "simulated vs model");
        assert_eq!(r.rounds, n as usize);
    }

    fn cubemodel_exchange(pq: u64, n: u32) -> f64 {
        let big_n = cubeaddr::num_nodes(n) as u64;
        n as f64 * (pq as f64 / (2.0 * big_n as f64) + 1.0)
    }

    #[test]
    fn sbnt_transposes_and_beats_exchange_transfer() {
        let (p, q, n) = (4, 4, 3);
        let (before, after) = canonical_1d(p, q, n);
        let m = labels(before.clone());
        let mut net1 = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = transpose_1d_exchange(&m, &after, &mut net1, BufferPolicy::Ideal);
        let r1 = net1.finalize();
        let mut net2 = SimNet::new(n, MachineParams::unit(PortMode::AllPorts));
        let out = transpose_1d_sbnt(&m, &after, &mut net2);
        assert_transposed(&before, &out);
        let r2 = net2.finalize();
        assert!(
            r2.transfer_time < r1.transfer_time,
            "n-port {} vs one-port {}",
            r2.transfer_time,
            r1.transfer_time
        );
    }

    #[test]
    fn stepwise_agrees_with_block_exchange() {
        let (p, q, n) = (3, 3, 2);
        let (before, after) = canonical_1d(p, q, n);
        let m = labels(before.clone());
        let mut net_a = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let a = transpose_1d_exchange(&m, &after, &mut net_a, BufferPolicy::Ideal);
        let mut net_b: SimNet<Vec<u64>> = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let b = transpose_stepwise(&m, &after, &mut net_b, SendPolicy::Ideal);
        assert_transposed(&before, &b);
        assert_eq!(a, b);
        // Same communication totals for the ideal policy.
        let (ra, rb) = (net_a.finalize(), net_b.finalize());
        assert_eq!(ra.total_elems, rb.total_elems);
        assert_eq!(ra.time, rb.time);
    }

    #[test]
    fn stepwise_unbuffered_matches_section81_model() {
        let (p, q, n) = (4, 4, 3);
        let (before, after) = canonical_1d(p, q, n);
        let m = labels(before.clone());
        let params = MachineParams::unit(PortMode::OnePort).with_max_packet(8);
        let mut net: SimNet<Vec<u64>> = SimNet::new(n, params.clone());
        let _ = transpose_stepwise(&m, &after, &mut net, SendPolicy::Unbuffered);
        let r = net.finalize();
        let expect = cubemodel::one_dim::unbuffered(1 << (p + q), n, &params);
        assert!((r.time - expect).abs() < 1e-9, "simulated {} vs model {expect}", r.time);
    }

    #[test]
    fn stepwise_buffered_matches_section81_model() {
        let (p, q, n) = (4, 4, 3);
        let (before, after) = canonical_1d(p, q, n);
        let m = labels(before.clone());
        let params = MachineParams::unit(PortMode::OnePort).with_max_packet(8).with_t_copy(0.25);
        for min_direct in [1usize, 4, 16, 64] {
            let mut net: SimNet<Vec<u64>> = SimNet::new(n, params.clone());
            let out = transpose_stepwise(&m, &after, &mut net, SendPolicy::Buffered { min_direct });
            assert_transposed(&before, &out);
            let r = net.finalize();
            let expect = cubemodel::one_dim::buffered(1 << (p + q), n, &params, min_direct);
            assert!(
                (r.time - expect).abs() < 1e-9,
                "min_direct={min_direct}: simulated {} vs model {expect}",
                r.time
            );
        }
    }

    #[test]
    fn gray_encoded_one_dim_transpose() {
        // The block engine handles Gray layouts directly.
        let before =
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Gray);
        let after =
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Gray);
        let m = labels(before.clone());
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let out = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
        assert_transposed(&before, &out);
        net.finalize();
    }

    #[test]
    fn cyclic_before_consecutive_after() {
        // Lemma 7: transposition combined with change of assignment
        // scheme, still all-to-all.
        let before =
            Layout::one_dim(3, 3, Direction::Cols, 2, Assignment::Cyclic, Encoding::Binary);
        let after =
            Layout::one_dim(3, 3, Direction::Cols, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let out = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
        assert_transposed(&before, &out);
    }

    #[test]
    fn some_to_all_transpose() {
        // q < n ≤ p: only 2^q processors hold data before, all 2^n after
        // (§2: "some-to-all personalized communication"). The exchange
        // driver routes it; splitting steps have one-sided sends.
        let n = 3u32;
        let before =
            Layout::one_dim(4, 2, Direction::Cols, 2, Assignment::Consecutive, Encoding::Binary);
        let after =
            Layout::one_dim(2, 4, Direction::Cols, 3, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let out = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
        assert_transposed(&before, &out);
        net.finalize();
    }

    #[test]
    fn all_to_some_transpose() {
        // The reverse: all 2^3 processors hold data before, 2^2 after —
        // data accumulation (all-to-some personalized communication).
        let n = 3u32;
        let before =
            Layout::one_dim(2, 4, Direction::Cols, 3, Assignment::Consecutive, Encoding::Binary);
        let after =
            Layout::one_dim(4, 2, Direction::Cols, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let out = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
        assert_transposed(&before, &out);
    }

    #[test]
    fn values_follow_labels() {
        // Run with f64 payloads to make sure nothing depends on labels.
        let (before, after) = canonical_1d(3, 3, 2);
        let m = DistMatrix::from_fn(before.clone(), |u, v| (u * 8 + v) as f64 * 0.5);
        let mut net = SimNet::new(2, MachineParams::unit(PortMode::OnePort));
        let out = transpose_1d_exchange(&m, &after, &mut net, BufferPolicy::Ideal);
        crate::verify::assert_dense_transposed(&m, &out);
    }
}
