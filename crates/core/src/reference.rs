//! Element-path reference implementation of the [`MappedMatrix`]
//! primitives.
//!
//! `RefMappedMatrix` preserves the original per-element formulation of
//! the exchange engine — index-filter iterators for the exchanged half,
//! a per-element relocation loop for virtual permutations, one `SimNet`
//! call per node in node order — as the executable specification the
//! block-move data plane in [`crate::fieldmap`] is checked against: the
//! `fieldmap_equivalence` suite drives random schedules through both and
//! requires identical payloads, role maps, and [`cubesim::CommReport`]s
//! at every thread count.
//!
//! Not part of the public API (`doc(hidden)`); exported only for tests
//! and differential experiments.

use crate::fieldmap::{FieldMap, MappedMatrix, Role, SendPolicy};
use cubeaddr::NodeId;
use cubesim::SimNet;

/// The reference twin of [`MappedMatrix`]: same observable behavior,
/// element-at-a-time data plane.
#[derive(Clone, Debug)]
pub struct RefMappedMatrix<T> {
    map: FieldMap,
    /// `data[node][local]`.
    data: Vec<Vec<T>>,
}

impl<T: Copy> RefMappedMatrix<T> {
    /// Adopts existing per-node buffers (placement must already agree
    /// with `map`).
    #[track_caller]
    pub fn from_buffers(map: FieldMap, data: Vec<Vec<T>>) -> Self {
        assert_eq!(data.len(), 1usize << map.n());
        for d in &data {
            assert_eq!(d.len(), 1usize << map.vp());
        }
        RefMappedMatrix { map, data }
    }

    /// Consumes into per-node buffers (node order).
    pub fn into_buffers(self) -> Vec<Vec<T>> {
        self.data
    }

    /// The current role map.
    pub fn map(&self) -> &FieldMap {
        &self.map
    }

    /// Current role vectors, for rebuilding the map after a primitive
    /// (the map's internals are private to `fieldmap`).
    fn roles(&self) -> (Vec<u32>, Vec<u32>) {
        let real = (0..self.map.n()).map(|i| self.map.real_dim(i)).collect();
        let virt = (0..self.map.vp()).map(|j| self.map.virt_dim(j)).collect();
        (real, virt)
    }

    /// Reference [`MappedMatrix::exchange_real_virt`]: filter-iterator
    /// element gather/scatter, one send per node per (sub-)round.
    pub fn exchange_real_virt(
        &mut self,
        net: &mut SimNet<Vec<T>>,
        i: u32,
        j: u32,
        policy: SendPolicy,
    ) {
        assert!(i < self.map.n() && j < self.map.vp());
        let per = 1usize << self.map.vp();
        let run = 1usize << j;
        let num = self.data.len();
        let out_indices = move |x: u64| {
            let want = (((x >> i) & 1) ^ 1) as usize;
            (0..per).filter(move |l| (l >> j) & 1 == want)
        };
        let gathered = match policy {
            SendPolicy::Ideal => true,
            SendPolicy::Unbuffered => false,
            SendPolicy::Buffered { min_direct } => run < min_direct,
        };
        if gathered {
            if matches!(policy, SendPolicy::Buffered { .. }) {
                for x in 0..num as u64 {
                    net.local_copy(NodeId(x), per / 2);
                }
            }
            for x in 0..num as u64 {
                let msg: Vec<T> = out_indices(x).map(|l| self.data[x as usize][l]).collect();
                net.send(NodeId(x), i, msg);
            }
            net.finish_round();
            for x in 0..num as u64 {
                let incoming = net.recv(NodeId(x), i);
                for (l, &v) in out_indices(x).zip(&incoming) {
                    self.data[x as usize][l] = v;
                }
            }
        } else {
            let runs_per_node = per / (run * 2);
            for r in 0..runs_per_node {
                for x in 0..num as u64 {
                    let msg: Vec<T> = out_indices(x)
                        .skip(r * run)
                        .take(run)
                        .map(|l| self.data[x as usize][l])
                        .collect();
                    net.send(NodeId(x), i, msg);
                }
                net.finish_round();
                for x in 0..num as u64 {
                    let incoming = net.recv(NodeId(x), i);
                    for (l, &v) in out_indices(x).skip(r * run).take(run).zip(&incoming) {
                        self.data[x as usize][l] = v;
                    }
                }
            }
        }
        let (mut real, mut virt) = self.roles();
        std::mem::swap(&mut real[i as usize], &mut virt[j as usize]);
        self.map = FieldMap::new(real, virt);
    }

    /// Reference [`MappedMatrix::swap_real_real`].
    pub fn swap_real_real(&mut self, net: &mut SimNet<Vec<T>>, i1: u32, i2: u32) {
        let n = self.map.n();
        assert!(i1 < n && i2 < n && i1 != i2);
        let num = self.data.len();
        let moves = |x: u64| ((x >> i1) & 1) != ((x >> i2) & 1);
        for x in 0..num as u64 {
            if moves(x) {
                let payload = std::mem::take(&mut self.data[x as usize]);
                net.send(NodeId(x), i1, payload);
            }
        }
        net.finish_round();
        let mut in_transit: Vec<Option<Vec<T>>> = (0..num).map(|_| None).collect();
        for x in 0..num as u64 {
            let node = NodeId(x);
            if net.has_message(node, i1) {
                in_transit[x as usize] = Some(net.recv(node, i1));
            }
        }
        for (x, payload) in in_transit.into_iter().enumerate() {
            if let Some(p) = payload {
                net.send(NodeId(x as u64), i2, p);
            }
        }
        net.finish_round();
        for x in 0..num as u64 {
            let node = NodeId(x);
            if net.has_message(node, i2) {
                self.data[x as usize] = net.recv(node, i2);
            }
        }
        let (mut real, virt) = self.roles();
        real.swap(i1 as usize, i2 as usize);
        self.map = FieldMap::new(real, virt);
    }

    /// Reference [`MappedMatrix::relabel_virt`].
    #[track_caller]
    pub fn relabel_virt(&mut self, perm: &[u32]) {
        self.apply_virt_perm(perm);
    }

    /// Reference [`MappedMatrix::permute_virt`].
    #[track_caller]
    pub fn permute_virt(&mut self, net: &mut SimNet<Vec<T>>, perm: &[u32]) {
        if self.apply_virt_perm(perm) {
            for x in 0..self.data.len() {
                net.local_copy(NodeId(x as u64), self.data[x].len());
            }
        }
    }

    #[track_caller]
    fn apply_virt_perm(&mut self, perm: &[u32]) -> bool {
        let vp = self.map.vp();
        assert_eq!(perm.len() as u32, vp);
        let per = 1usize << vp;
        if perm.iter().enumerate().all(|(j, &p)| j as u32 == p) {
            return false;
        }
        let relocate = |old_local: usize| -> usize {
            let mut l = 0usize;
            for (jn, &jo) in perm.iter().enumerate() {
                l |= ((old_local >> jo) & 1) << jn;
            }
            l
        };
        for x in 0..self.data.len() {
            let old = std::mem::take(&mut self.data[x]);
            let mut new = Vec::with_capacity(per);
            new.resize(per, old[0]);
            for (l_old, v) in old.into_iter().enumerate() {
                new[relocate(l_old)] = v;
            }
            self.data[x] = new;
        }
        let (real, virt) = self.roles();
        let new_virt: Vec<u32> = perm.iter().map(|&jo| virt[jo as usize]).collect();
        self.map = FieldMap::new(real, new_virt);
        true
    }

    /// Reference [`MappedMatrix::rearrange_to`] (same greedy plan).
    #[track_caller]
    pub fn rearrange_to(
        &mut self,
        net: &mut SimNet<Vec<T>>,
        target: &FieldMap,
        policy: SendPolicy,
    ) -> usize {
        assert_eq!(self.map.n(), target.n());
        assert_eq!(self.map.vp(), target.vp());
        let mut steps = 0;
        for i in 0..target.n() {
            let want = target.real_dim(i);
            match self.map.locate(want) {
                Role::Real(cur) if cur == i => {}
                Role::Real(cur) => {
                    self.swap_real_real(net, i, cur);
                    steps += 2;
                }
                Role::Virt(j) => {
                    self.exchange_real_virt(net, i, j, policy);
                    steps += 1;
                }
            }
        }
        let perm: Vec<u32> = (0..target.vp())
            .map(|jn| match self.map.locate(target.virt_dim(jn)) {
                Role::Virt(jo) => jo,
                Role::Real(_) => unreachable!("real roles already fixed"),
            })
            .collect();
        self.permute_virt(net, &perm);
        debug_assert_eq!(&self.map, target);
        steps
    }
}

/// Reference twin of a block-move matrix with the same contents.
pub fn ref_twin<T: Copy>(m: &MappedMatrix<T>) -> RefMappedMatrix<T> {
    let map = m.map().clone();
    let data = (0..1u64 << map.n()).map(|x| m.node(NodeId(x)).to_vec()).collect();
    RefMappedMatrix::from_buffers(map, data)
}
