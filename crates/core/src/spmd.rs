//! SPMD node programs: the paper's algorithms with real message passing.
//!
//! The simulator ([`cubesim`]) charges the cost model; these programs run
//! the same algorithms on the [`cuberun`] runtime — every cube node a
//! virtual node multiplexed onto a fixed worker pool — the way an iPSC
//! node program (or a thin MPI layer) executes them. Every node derives
//! its entire behaviour from its own address, exactly like the paper's
//! pseudo-code: there is no global coordinator, and at `n = 16` the full
//! 65 536-node Connection-Machine configuration runs on a handful of
//! worker threads.
//!
//! The results are bit-identical to the simulator drivers, which the test
//! suite checks, and [`spmd_transpose_exchange_threads`] keeps the same
//! exchange program on the pre-scheduler thread-per-node runtime for
//! equivalence tests and old-vs-new benchmarks.

use cubelayout::{DistMatrix, Layout, TransposeSpec};
use cuberun::{run_spmd, RunStats};

/// One routed element in an SPMD message: `(dst_node, dst_local, value)`.
type Elem<T> = (u64, u64, T);

/// Precomputes each node's initial routed elements for an exchange
/// transpose (what the node program would derive from the layout maps).
fn exchange_initial<T: Copy>(
    m: &DistMatrix<T>,
    spec: &TransposeSpec,
    num: usize,
) -> Vec<Vec<Elem<T>>> {
    let mut initial: Vec<Vec<Elem<T>>> = (0..num).map(|_| Vec::new()).collect();
    for mv in spec.moves() {
        let value = m.node(mv.src)[mv.src_local as usize];
        initial[mv.src.index()].push((mv.dst.bits(), mv.dst_local, value));
    }
    initial
}

/// Places a node's final held elements into its local buffer, checking
/// that nothing was misrouted, duplicated or lost.
fn place_held<T: Copy + Default>(me: u64, held: Vec<Elem<T>>, per_after: usize) -> Vec<T> {
    let mut local = vec![T::default(); per_after];
    let mut seen = vec![false; per_after];
    for (dst, dst_local, value) in held {
        assert_eq!(dst, me, "element for {dst} stranded at {me}");
        assert!(!seen[dst_local as usize], "duplicate at local {dst_local}");
        seen[dst_local as usize] = true;
        local[dst_local as usize] = value;
    }
    assert!(seen.iter().all(|&s| s), "node {me} missing elements");
    local
}

/// Runs the standard-exchange transposition as an SPMD program: every
/// node partitions its held elements by the destination's bit in the
/// scanned dimension and exchanges them with its neighbor, one dimension
/// per step, highest first (§5's pseudo-code).
///
/// Returns the transposed matrix and the runtime statistics.
///
/// # Panics
/// If the layouts disagree with `m`, or on element misrouting.
pub fn spmd_transpose_exchange<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
) -> (DistMatrix<T>, RunStats) {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let n = after.n();
    let num = after.num_nodes();
    let per_after = after.elems_per_node();
    let initial = exchange_initial(m, &spec, num);

    let (results, stats) = run_spmd::<Vec<Elem<T>>, _, _, _>(n, |ctx| {
        let initial = &initial;
        async move {
            let me = ctx.id().bits();
            let mut held = initial[ctx.id().index()].clone();
            for j in (0..n).rev() {
                let (keep, send): (Vec<_>, Vec<_>) =
                    held.into_iter().partition(|&(dst, _, _)| (dst >> j) & 1 == (me >> j) & 1);
                held = keep;
                // Both partners always exchange (possibly empty vectors):
                // the synchronous exchange keeps every pair in lock step.
                let incoming = ctx.exchange(j, send).await;
                held.extend(incoming);
            }
            place_held(me, held, per_after)
        }
    });

    (DistMatrix::from_buffers(after.clone(), results), stats)
}

/// The same standard-exchange transposition on the pre-scheduler
/// thread-per-node runtime ([`cuberun::reference`]) — the "before" side
/// of the old-vs-new benchmark, and an equivalence check that the
/// cooperative scheduler changed the execution substrate, not the
/// algorithm. Capped at `n <= 10` by the reference runtime.
pub fn spmd_transpose_exchange_threads<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
) -> (DistMatrix<T>, RunStats) {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let n = after.n();
    let num = after.num_nodes();
    let per_after = after.elems_per_node();
    let initial = exchange_initial(m, &spec, num);

    let (results, stats) = cuberun::reference::run_spmd_threads::<Vec<Elem<T>>, _, _>(n, |ctx| {
        let me = ctx.id().bits();
        let mut held = initial[ctx.id().index()].clone();
        for j in (0..n).rev() {
            let (keep, send): (Vec<_>, Vec<_>) =
                held.into_iter().partition(|&(dst, _, _)| (dst >> j) & 1 == (me >> j) & 1);
            held = keep;
            held.extend(ctx.exchange(j, send));
        }
        place_held(me, held, per_after)
    });

    (DistMatrix::from_buffers(after.clone(), results), stats)
}

/// Runs the step-by-step SPT two-dimensional transpose as an SPMD
/// program: every node's whole array travels hop by hop along its SPT
/// path; every node computes, from addresses alone, whether it must
/// originate, relay, or absorb an array in each routing step (§6.1.1 /
/// §8.2.1).
pub fn spmd_transpose_spt<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
) -> (DistMatrix<T>, RunStats) {
    let before = m.layout().clone();
    let n = before.n();
    assert!(n.is_multiple_of(2), "SPT needs an even cube dimension");
    let half = n / 2;
    let lr = before.local_rows();
    let lc = before.local_cols();
    let num = before.num_nodes();

    let buffers: Vec<Vec<T>> =
        (0..num).map(|x| m.node(cubeaddr::NodeId(x as u64)).to_vec()).collect();

    // Messages are source-tagged: a node may relay several arrays at once
    // (paths are edge-disjoint, not node-disjoint).
    let (results, stats) = run_spmd::<(u64, Vec<T>), _, _, _>(n, |ctx| {
        let buffers = &buffers;
        async move {
            let me = ctx.id().bits();
            // The global schedule: source x's array is at hop `step` of
            // spt_path(x) at the start of step `step`. Every node scans all
            // sources and plays its role — purely address arithmetic, no
            // coordinator.
            let mut held: std::collections::HashMap<u64, Vec<T>> = std::collections::HashMap::new();
            if crate::two_dim::h_of(me, half) > 0 {
                held.insert(me, buffers[me as usize].clone());
            }
            let walk = |x: u64, dims: &[u32]| dims.iter().fold(x, |p, &d| p ^ (1 << d));
            for step in 0..n as usize {
                let mut recv_dims: Vec<u32> = Vec::new();
                for x in 0..(1u64 << n) {
                    let path = crate::two_dim::spt_path(x, half);
                    if step < path.len() {
                        let pos = walk(x, &path[..step]);
                        if pos == me {
                            let arr = held.remove(&x).expect("schedule expects x's array here");
                            ctx.send(path[step], (x, arr));
                        }
                        if pos ^ (1 << path[step]) == me {
                            recv_dims.push(path[step]);
                        }
                    }
                }
                for d in recv_dims {
                    let (x, arr) = ctx.recv(d).await;
                    held.insert(x, arr);
                }
            }
            // The unique source ending here is tr(me) (me itself when H = 0).
            let src = crate::two_dim::tr(me, half);
            let mut arr = if src == me {
                buffers[me as usize].clone()
            } else {
                held.remove(&src).expect("destination array missing")
            };
            assert!(held.is_empty(), "node {me} ended holding stray arrays");
            // In place, serial: the node program already runs inside the
            // worker pool, and the O(mn) staging copy per virtual node is
            // exactly the footprint this kernel exists to avoid.
            crate::inplace::transpose_serial(&mut arr, lr, lc);
            arr
        }
    });

    (DistMatrix::from_buffers(after.clone(), results), stats)
}

/// The §6.3 combined conversion-and-transpose algorithm, transcribed
/// *verbatim* from the paper's pseudo-code, as an SPMD node program:
/// rows binary-encoded, columns Gray-encoded, every node deriving its
/// send/receive/relay role in each iteration from its own address bits
/// and the two running control flags:
///
/// ```text
/// even-block-row := true; even-parity-block-column := true;
/// for j := n/2-1 downto 0 do
///   case (ebr, epbc, bit j+n/2, bit j) of
///     (TT00),(TT11),(FF01),(FF10): recv(tmp, j+n/2); send(tmp, j);
///     (TT01),(TT10),(FF00),(FF11),
///     (TF01),(TF10),(FT00),(FT11): send(buf, j+n/2); recv(buf, j);
///     (TF00),(TF11),(FT01),(FT10): send(buf, j); recv(buf, j+n/2);
///   endcase
///   even-block-row := (bit j+n/2 = 0);
///   if (bit j = 1) then even-parity-block-column := not epbc;
/// endfor
/// ```
///
/// The relay case means a node can hold a transiting block while its own
/// block stays put for the iteration. The test suite checks the result
/// equals the data-driven [`crate::gray::transpose_combined`] exactly —
/// i.e. the paper's control table computes the same moves.
pub fn spmd_transpose_combined_gray<T: Copy + Default + Send + Sync>(
    spec: &crate::gray::MixedSpec,
    m: &DistMatrix<T>,
) -> (DistMatrix<T>, RunStats) {
    use cubelayout::Encoding;
    assert_eq!(spec.row_enc, Encoding::Binary, "the pseudo-code assumes binary rows");
    assert_eq!(spec.col_enc, Encoding::Gray, "the pseudo-code assumes Gray columns");
    let half = spec.half;
    let n = 2 * half;
    let before = spec.before();
    let after = spec.after();
    let (lr, lc) = (before.local_rows(), before.local_cols());
    let num = before.num_nodes();
    let buffers: Vec<Vec<T>> =
        (0..num).map(|x| m.node(cubeaddr::NodeId(x as u64)).to_vec()).collect();

    let (results, stats) = run_spmd::<Vec<T>, _, _, _>(n, |ctx| {
        let buffers = &buffers;
        async move {
            let me = ctx.id().bits();
            let bit = |pos: u32| (me >> pos) & 1 == 1;
            let mut buf = buffers[ctx.id().index()].clone();
            let mut ebr = true; // even-block-row
            let mut epbc = true; // even-parity-block-column
            for j in (0..half).rev() {
                let (hi, lo) = (bit(j + half), bit(j));
                // The three action patterns of the case table.
                enum Action {
                    Relay,
                    RowFirst,
                    ColFirst,
                }
                let action = match (ebr, epbc) {
                    // (TT00),(TT11) relay; (TT01),(TT10) row-first.
                    (true, true) => {
                        if hi == lo {
                            Action::Relay
                        } else {
                            Action::RowFirst
                        }
                    }
                    // (FF01),(FF10) relay; (FF00),(FF11) row-first.
                    (false, false) => {
                        if hi != lo {
                            Action::Relay
                        } else {
                            Action::RowFirst
                        }
                    }
                    // (TF00),(TF11) col-first; (TF01),(TF10) row-first.
                    (true, false) => {
                        if hi == lo {
                            Action::ColFirst
                        } else {
                            Action::RowFirst
                        }
                    }
                    // (FT01),(FT10) col-first; (FT00),(FT11) row-first.
                    (false, true) => {
                        if hi != lo {
                            Action::ColFirst
                        } else {
                            Action::RowFirst
                        }
                    }
                };
                match action {
                    Action::Relay => {
                        let tmp = ctx.recv(j + half).await;
                        ctx.send(j, tmp);
                    }
                    Action::RowFirst => {
                        ctx.send(j + half, std::mem::take(&mut buf));
                        buf = ctx.recv(j).await;
                    }
                    Action::ColFirst => {
                        ctx.send(j, std::mem::take(&mut buf));
                        buf = ctx.recv(j + half).await;
                    }
                }
                ebr = !bit(j + half);
                if bit(j) {
                    epbc = !epbc;
                }
            }
            crate::inplace::transpose_serial(&mut buf, lr, lc);
            buf
        }
    });

    (DistMatrix::from_buffers(after, results), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_transposed, labels};
    use cubelayout::{Assignment, Direction, Encoding};

    #[test]
    fn spmd_exchange_matches_simulator() {
        let before =
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary);
        let after =
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let (out, stats) = spmd_transpose_exchange(&m, &after);
        assert_transposed(&before, &out);
        // Every node exchanges once per dimension: N·n messages.
        assert_eq!(stats.messages, 4 * 2);

        // Identical to the simulator path.
        let mut net =
            cubesim::SimNet::new(2, cubesim::MachineParams::unit(cubesim::PortMode::OnePort));
        let sim = crate::one_dim::transpose_1d_exchange(
            &m,
            &after,
            &mut net,
            cubecomm::BufferPolicy::Ideal,
        );
        assert_eq!(out, sim);
    }

    #[test]
    fn spmd_exchange_larger_cube() {
        let before =
            Layout::one_dim(4, 4, Direction::Cols, 3, Assignment::Cyclic, Encoding::Binary);
        let after = Layout::one_dim(4, 4, Direction::Cols, 3, Assignment::Cyclic, Encoding::Binary);
        let m = labels(before.clone());
        let (out, _) = spmd_transpose_exchange(&m, &after);
        assert_transposed(&before, &out);
    }

    #[test]
    fn threads_reference_matches_pool_runtime() {
        // Same exchange program on both runtimes: identical matrices and
        // deterministic counters, regardless of pool size.
        let before =
            Layout::one_dim(4, 4, Direction::Rows, 4, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let (old, old_stats) = spmd_transpose_exchange_threads(&m, &before);
        let (new, new_stats) = spmd_transpose_exchange(&m, &before);
        assert_eq!(old, new);
        assert_eq!(old_stats.messages, new_stats.messages);
        assert_transposed(&before, &new);
    }

    #[test]
    fn spmd_spt_matches_simulator() {
        let before = Layout::square(3, 3, 1, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let m = labels(before.clone());
        let (out, _) = spmd_transpose_spt(&m, &after);
        assert_transposed(&before, &out);

        let mut net: cubesim::SimNet<crate::two_dim::Packet<u64>> =
            cubesim::SimNet::new(2, cubesim::MachineParams::unit(cubesim::PortMode::AllPorts));
        let sim = crate::two_dim::transpose_spt(&m, &after, &mut net, before.elems_per_node());
        assert_eq!(out, sim);
    }

    #[test]
    fn spmd_spt_four_cube() {
        let before = Layout::square(3, 3, 2, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let m = labels(before.clone());
        let (out, _) = spmd_transpose_spt(&m, &after);
        assert_transposed(&before, &out);
    }

    #[test]
    fn paper_case_table_matches_semantic_combined_transpose() {
        // The literal §6.3 pseudo-code (control-flag case table, on the
        // virtual-node runtime) and the data-driven implementation compute
        // identical results — validating the paper's case analysis.
        for (p, half) in [(3u32, 2u32), (4, 2), (4, 3), (5, 2)] {
            let spec = crate::gray::MixedSpec::binary_rows_gray_cols(p, half);
            let m = labels(spec.before());
            let (spmd_out, stats) = spmd_transpose_combined_gray(&spec, &m);
            let mut net: cubesim::SimNet<crate::gray::BlockFlight<u64>> = cubesim::SimNet::new(
                2 * half,
                cubesim::MachineParams::unit(cubesim::PortMode::AllPorts),
            );
            let semantic = crate::gray::transpose_combined(&spec, &m, &mut net);
            assert_eq!(spmd_out.gather(), semantic.gather(), "p={p} half={half}");
            // n/2 iterations, every node sends exactly once per iteration
            // (each of the three patterns has one send) → N·(n/2)
            // messages, i.e. n routing steps spread over the machine.
            assert_eq!(stats.messages, (1u64 << (2 * half)) * half as u64);
        }
    }

    #[test]
    fn spmd_values_roundtrip() {
        // Double transpose through the SPMD path returns the original.
        let before =
            Layout::one_dim(3, 3, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary);
        let m = DistMatrix::from_fn(before.clone(), |u, v| (u * 31 + v) as f64);
        let (t, _) = spmd_transpose_exchange(&m, &before);
        let (back, _) = spmd_transpose_exchange(&t, &before);
        assert_eq!(m, back);
    }
}
