//! In-node dense matrix transpose kernels.
//!
//! The conversion algorithms of §6.2 interleave interprocessor exchanges
//! with *local* matrix transposes ("transpose the local matrices
//! concurrently"), and the iPSC implementation's copy costs come from
//! exactly this kind of local rearrangement. These kernels provide the
//! local step: a straightforward row-major transpose, a cache-blocked
//! version, an in-place square variant, and a cache-oblivious recursive
//! version for large tiles.

/// A dense row-major matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct Dense<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Dense<T> {
    /// Builds from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Dense { rows, cols, data }
    }

    /// An all-default matrix.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Dense { rows, cols, data: vec![T::default(); rows * cols] }
    }
}

impl<T: Copy> Dense<T> {
    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows·cols`.
    #[track_caller]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Dense { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes into the row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Straightforward out-of-place transpose.
    pub fn transpose_naive(&self) -> Dense<T> {
        let mut out = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                out.push(self.get(r, c));
            }
        }
        Dense { rows: self.cols, cols: self.rows, data: out }
    }

    /// Cache-blocked out-of-place transpose with `tile × tile` tiles.
    #[track_caller]
    pub fn transpose_blocked(&self, tile: usize) -> Dense<T> {
        assert!(tile > 0);
        // Placeholder contents; every position is overwritten below.
        let mut out = Dense { rows: self.cols, cols: self.rows, data: self.data.clone() };
        for rb in (0..self.rows).step_by(tile) {
            for cb in (0..self.cols).step_by(tile) {
                for r in rb..(rb + tile).min(self.rows) {
                    for c in cb..(cb + tile).min(self.cols) {
                        out.set(c, r, self.get(r, c));
                    }
                }
            }
        }
        out
    }

    /// Cache-oblivious recursive transpose (split the longer axis until
    /// the tile fits `base` elements on a side).
    pub fn transpose_cache_oblivious(&self, base: usize) -> Dense<T> {
        let mut out = Dense { rows: self.cols, cols: self.rows, data: self.data.clone() };
        self.co_rec(&mut out, 0, self.rows, 0, self.cols, base.max(1));
        out
    }

    fn co_rec(&self, out: &mut Dense<T>, r0: usize, r1: usize, c0: usize, c1: usize, base: usize) {
        let (dr, dc) = (r1 - r0, c1 - c0);
        if dr <= base && dc <= base {
            for r in r0..r1 {
                for c in c0..c1 {
                    out.set(c, r, self.get(r, c));
                }
            }
        } else if dr >= dc {
            let mid = r0 + dr / 2;
            self.co_rec(out, r0, mid, c0, c1, base);
            self.co_rec(out, mid, r1, c0, c1, base);
        } else {
            let mid = c0 + dc / 2;
            self.co_rec(out, r0, r1, c0, mid, base);
            self.co_rec(out, r0, r1, mid, c1, base);
        }
    }

    /// In-place transpose of a square matrix.
    ///
    /// # Panics
    /// If the matrix is not square.
    #[track_caller]
    pub fn transpose_in_place(&mut self) {
        assert_eq!(self.rows, self.cols, "in-place transpose needs a square matrix");
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                self.data.swap(r * self.cols + c, c * self.cols + r);
            }
        }
    }
}

/// Transposes a flat row-major `rows × cols` buffer (helper for local
/// arrays held as plain slices by the distributed algorithms).
#[track_caller]
pub fn transpose_flat<T: Copy>(data: &[T], rows: usize, cols: usize) -> Vec<T> {
    assert_eq!(data.len(), rows * cols);
    let mut out = Vec::with_capacity(data.len());
    for c in 0..cols {
        for r in 0..rows {
            out.push(data[r * cols + c]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Dense<u64> {
        Dense::from_fn(rows, cols, |r, c| (r * 100 + c) as u64)
    }

    #[test]
    fn naive_transpose_correct() {
        let m = sample(3, 5);
        let t = m.transpose_naive();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
    }

    #[test]
    fn all_kernels_agree() {
        for (rows, cols) in [(1, 1), (4, 4), (8, 2), (3, 7), (16, 16), (5, 32)] {
            let m = sample(rows, cols);
            let expect = m.transpose_naive();
            assert_eq!(m.transpose_blocked(4), expect, "{rows}×{cols} blocked");
            assert_eq!(m.transpose_cache_oblivious(4), expect, "{rows}×{cols} cache-oblivious");
        }
    }

    #[test]
    fn in_place_square() {
        let mut m = sample(8, 8);
        let expect = m.transpose_naive();
        m.transpose_in_place();
        assert_eq!(m, expect);
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = sample(6, 9);
        assert_eq!(m.transpose_naive().transpose_naive(), m);
    }

    #[test]
    fn flat_helper() {
        let data: Vec<u64> = (0..6).collect(); // 2×3: [0 1 2; 3 4 5]
        assert_eq!(transpose_flat(&data, 2, 3), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    #[should_panic]
    fn in_place_rejects_rectangular() {
        sample(2, 3).transpose_in_place();
    }
}
