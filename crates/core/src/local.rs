//! In-node dense matrix transpose kernels.
//!
//! The conversion algorithms of §6.2 interleave interprocessor exchanges
//! with *local* matrix transposes ("transpose the local matrices
//! concurrently"), and the iPSC implementation's copy costs come from
//! exactly this kind of local rearrangement. These kernels provide the
//! local step: a straightforward row-major transpose, a cache-blocked
//! version, an in-place square variant, and a cache-oblivious recursive
//! version for large tiles.

// The workspace denies `unsafe_code` (`[workspace.lints]`); this module
// is the single allowlisted carve-out, for the two uninitialized-output
// `set_len` kernels below (each with its own SAFETY comment). Do not add
// unsafe anywhere else — scripts/ci.sh grep-gates every other file.
#![allow(unsafe_code)]

/// A dense row-major matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct Dense<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Dense<T> {
    /// Builds from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Dense { rows, cols, data }
    }

    /// An all-default matrix.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Dense { rows, cols, data: vec![T::default(); rows * cols] }
    }
}

impl<T: Copy> Dense<T> {
    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows·cols`.
    #[track_caller]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Dense { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes into the row-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Straightforward out-of-place transpose.
    pub fn transpose_naive(&self) -> Dense<T> {
        let mut out = Vec::with_capacity(self.data.len());
        for c in 0..self.cols {
            for r in 0..self.rows {
                out.push(self.get(r, c));
            }
        }
        Dense { rows: self.cols, cols: self.rows, data: out }
    }

    /// Cache-blocked out-of-place transpose with `tile × tile` tiles.
    #[track_caller]
    pub fn transpose_blocked(&self, tile: usize) -> Dense<T> {
        let mut data = Vec::new();
        transpose_flat_blocked_into(&self.data, self.rows, self.cols, tile, &mut data);
        Dense { rows: self.cols, cols: self.rows, data }
    }

    /// Cache-oblivious recursive transpose (split the longer axis until
    /// the tile fits `base` elements on a side).
    pub fn transpose_cache_oblivious(&self, base: usize) -> Dense<T> {
        let mut data = Vec::with_capacity(self.data.len());
        self.co_rec(data.spare_capacity_mut(), 0, self.rows, 0, self.cols, base.max(1));
        // SAFETY: co_rec's recursion partitions the (row, col) index space
        // exactly, so every one of the `rows·cols` destination slots has
        // been written.
        unsafe { data.set_len(self.data.len()) };
        Dense { rows: self.cols, cols: self.rows, data }
    }

    fn co_rec(
        &self,
        out: &mut [std::mem::MaybeUninit<T>],
        r0: usize,
        r1: usize,
        c0: usize,
        c1: usize,
        base: usize,
    ) {
        let (dr, dc) = (r1 - r0, c1 - c0);
        if dr <= base && dc <= base {
            for r in r0..r1 {
                for c in c0..c1 {
                    out[c * self.rows + r].write(self.get(r, c));
                }
            }
        } else if dr >= dc {
            let mid = r0 + dr / 2;
            self.co_rec(out, r0, mid, c0, c1, base);
            self.co_rec(out, mid, r1, c0, c1, base);
        } else {
            let mid = c0 + dc / 2;
            self.co_rec(out, r0, r1, c0, mid, base);
            self.co_rec(out, r0, r1, mid, c1, base);
        }
    }

    /// In-place transpose — any rectangular shape, via the C2R
    /// decomposition ([`crate::inplace`]): O(rows·cols) work,
    /// O(max(rows, cols)) auxiliary space. The square case goes through
    /// the same kernel, so there is exactly one in-place path.
    pub fn transpose_in_place(&mut self) {
        crate::inplace::transpose_serial(&mut self.data, self.rows, self.cols);
        std::mem::swap(&mut self.rows, &mut self.cols);
    }
}

/// Transposes a flat row-major `rows × cols` buffer (helper for local
/// arrays held as plain slices by the distributed algorithms). Delegates
/// to the shared tiling helper with the default tile.
#[track_caller]
pub fn transpose_flat<T: Copy>(data: &[T], rows: usize, cols: usize) -> Vec<T> {
    let mut out = Vec::new();
    transpose_flat_blocked_into(data, rows, cols, 64, &mut out);
    out
}

/// Tiled transpose of a flat row-major `rows × cols` buffer into `out`
/// (cleared first, capacity reused): `out[c·rows + r] = src[r·cols + c]`.
///
/// The destination is written tile by tile — non-sequentially — so the
/// buffer is grown through `spare_capacity_mut` rather than paying a
/// throwaway fill (or clone) of `rows·cols` elements up front.
#[track_caller]
pub fn transpose_flat_blocked_into<T: Copy>(
    src: &[T],
    rows: usize,
    cols: usize,
    tile: usize,
    out: &mut Vec<T>,
) {
    assert_eq!(src.len(), rows * cols);
    assert!(tile > 0);
    out.clear();
    out.reserve(src.len());
    let spare = &mut out.spare_capacity_mut()[..src.len()];
    tiled_transpose_write(src, rows, cols, tile, spare);
    // SAFETY: the tiled loops visit every (r, c) pair exactly once, so
    // all `src.len()` slots of `spare` have been written.
    unsafe { out.set_len(src.len()) };
}

/// The one tiling loop behind the out-of-place transpose family
/// ([`transpose_flat`], [`transpose_flat_blocked_into`],
/// [`Dense::transpose_blocked`]): writes `out[c·rows + r] = src[r·cols
/// + c]` tile by tile, initializing every slot of `out` exactly once.
fn tiled_transpose_write<T: Copy>(
    src: &[T],
    rows: usize,
    cols: usize,
    tile: usize,
    out: &mut [std::mem::MaybeUninit<T>],
) {
    for rb in (0..rows).step_by(tile) {
        for cb in (0..cols).step_by(tile) {
            for r in rb..(rb + tile).min(rows) {
                for c in cb..(cb + tile).min(cols) {
                    out[c * rows + r].write(src[r * cols + c]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Dense<u64> {
        Dense::from_fn(rows, cols, |r, c| (r * 100 + c) as u64)
    }

    #[test]
    fn naive_transpose_correct() {
        let m = sample(3, 5);
        let t = m.transpose_naive();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        for r in 0..3 {
            for c in 0..5 {
                assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
    }

    #[test]
    fn all_kernels_agree() {
        for (rows, cols) in [(1, 1), (4, 4), (8, 2), (3, 7), (16, 16), (5, 32)] {
            let m = sample(rows, cols);
            let expect = m.transpose_naive();
            assert_eq!(m.transpose_blocked(4), expect, "{rows}×{cols} blocked");
            assert_eq!(m.transpose_cache_oblivious(4), expect, "{rows}×{cols} cache-oblivious");
        }
    }

    #[test]
    fn in_place_square() {
        let mut m = sample(8, 8);
        let expect = m.transpose_naive();
        m.transpose_in_place();
        assert_eq!(m, expect);
    }

    #[test]
    fn in_place_rectangular() {
        for (rows, cols) in [(2, 3), (3, 2), (5, 8), (8, 5), (1, 7), (7, 1), (12, 18)] {
            let mut m = sample(rows, cols);
            let expect = m.transpose_naive();
            m.transpose_in_place();
            assert_eq!(m, expect, "{rows}×{cols}");
            m.transpose_in_place();
            assert_eq!(m, sample(rows, cols), "{rows}×{cols} roundtrip");
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = sample(6, 9);
        assert_eq!(m.transpose_naive().transpose_naive(), m);
    }

    #[test]
    fn flat_helper() {
        let data: Vec<u64> = (0..6).collect(); // 2×3: [0 1 2; 3 4 5]
        assert_eq!(transpose_flat(&data, 2, 3), vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn flat_blocked_matches_naive() {
        let mut out = Vec::new();
        for (rows, cols) in [(1, 1), (4, 4), (8, 2), (3, 7), (16, 16), (5, 32)] {
            let data: Vec<u64> = (0..(rows * cols) as u64).collect();
            for tile in [1, 3, 64] {
                transpose_flat_blocked_into(&data, rows, cols, tile, &mut out);
                assert_eq!(out, transpose_flat(&data, rows, cols), "{rows}×{cols} tile {tile}");
            }
        }
    }

    #[test]
    fn flat_blocked_recycles_and_handles_empty() {
        let mut out = vec![99u64; 3]; // stale contents must be discarded
        transpose_flat_blocked_into(&[1u64, 2], 1, 2, 4, &mut out);
        assert_eq!(out, vec![1, 2]);
        transpose_flat_blocked_into(&[], 0, 0, 4, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn flat_delegates_to_tiled_path() {
        for (rows, cols) in [(0, 0), (1, 1), (3, 7), (65, 130)] {
            let data: Vec<u64> = (0..(rows * cols) as u64).collect();
            let got = transpose_flat(&data, rows, cols);
            let mut expect = Vec::with_capacity(data.len());
            for c in 0..cols {
                for r in 0..rows {
                    expect.push(data[r * cols + c]);
                }
            }
            assert_eq!(got, expect, "{rows}×{cols}");
        }
    }
}

/// Allocation gate for the in-place kernel: a counting global allocator
/// (test harness only) that, while armed on the current thread, counts
/// allocations at or above a size threshold. `unsafe impl GlobalAlloc`
/// must live in this module — the workspace denies `unsafe_code`
/// everywhere except this file.
#[cfg(test)]
mod alloc_gate {
    use cubesync::atomic::{AtomicUsize, Ordering};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    /// Allocations of at least [`THRESHOLD`] bytes seen while armed.
    pub static BIG_ALLOCS: AtomicUsize = AtomicUsize::new(0);
    /// Size (bytes) at which an allocation counts as "big".
    pub static THRESHOLD: AtomicUsize = AtomicUsize::new(usize::MAX);

    thread_local! {
        /// Only the thread running the gated test arms itself, so the
        /// rest of the (parallel) test harness doesn't pollute the count.
        pub static ARMED: Cell<bool> = const { Cell::new(false) };
    }

    struct Counting;

    // SAFETY: defers every allocation verbatim to `System`; the only
    // addition is a side-effect-free counter bump.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // try_with: thread-local storage may itself allocate during
            // thread teardown.
            if ARMED.try_with(Cell::get).unwrap_or(false)
                && layout.size() >= THRESHOLD.load(Ordering::Relaxed)
            {
                BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: Counting = Counting;
}

#[cfg(test)]
mod alloc_gate_tests {
    use super::alloc_gate::{ARMED, BIG_ALLOCS, THRESHOLD};
    use cubesync::atomic::Ordering;

    /// The in-place path must never allocate O(mn)-sized scratch after
    /// warmup: with `mn` elements of `u64`, no single allocation may
    /// reach a quarter of the matrix (the kernel's strip scratch is
    /// capped at 64 Ki elements, far below).
    #[test]
    fn inplace_path_allocates_no_mn_scratch() {
        let (rows, cols) = (1 << 10, 1 << 9);
        let mut data: Vec<u64> = (0..(rows * cols) as u64).collect();
        // Warmup: one full transpose before arming.
        crate::inplace::transpose_serial(&mut data, rows, cols);
        THRESHOLD.store(rows * cols * std::mem::size_of::<u64>() / 4, Ordering::SeqCst);
        ARMED.with(|a| a.set(true));
        crate::inplace::transpose_serial(&mut data, cols, rows);
        ARMED.with(|a| a.set(false));
        assert_eq!(
            BIG_ALLOCS.load(Ordering::SeqCst),
            0,
            "in-place kernel allocated O(mn)-sized scratch"
        );
        let expect: Vec<u64> = (0..(rows * cols) as u64).collect();
        assert_eq!(data, expect, "roundtrip while gated");
    }
}
