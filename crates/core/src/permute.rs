//! Using matrix transposition machinery for other permutations (§7).
//!
//! * [`bit_reversal`] — the bit-reversal permutation
//!   `(x_{n-1} … x_0) ← (x_0 … x_{n-1})` realized by the general exchange
//!   algorithm with dimension pairs `f(i) = i`, `g(i) = n-1-i`;
//! * [`dimension_permutation`] — any permutation of the cube dimensions
//!   (Definition 17) realized by `⌈log₂ n⌉` *parallel swappings*
//!   (Lemma 15), each a set of disjoint dimension transpositions;
//! * [`arbitrary_permutation`] — any node-level permutation realized by
//!   two all-to-all personalized communications (message size at least
//!   `N` per node makes the splitting exact).

use cubeaddr::{DimPermutation, NodeId};
use cubecomm::exchange::{all_to_all_exchange, BufferPolicy};
use cubecomm::{Block, BlockMsg};
use cubesim::SimNet;

/// Moves every node's array to the node with the bit-reversed address:
/// `⌊n/2⌋` dimension-pair swaps, each two routing steps, by the general
/// exchange algorithm. Returns the rearranged per-node arrays.
pub fn bit_reversal<T: Clone>(net: &mut SimNet<Vec<T>>, data: Vec<Vec<T>>) -> Vec<Vec<T>> {
    let n = net.n();
    let pairs: Vec<(u32, u32)> = (0..n / 2).map(|i| (i, n - 1 - i)).collect();
    swap_pairs_sequence(net, data, &pairs)
}

/// Realizes the dimension permutation `δ` (node `x`'s data moves to
/// `(x_{δ(n-1)} … x_{δ(0)})`... i.e. to the node `y` with
/// `y = δ⁻¹-gather of x`, matching [`DimPermutation::apply`]'s
/// convention: destination bit `i` = source bit `δ(i)`, so data at `x`
/// ends at the node `y` with `y_i = x_{δ(i)}`).
///
/// Factors `δ` into at most `⌈log₂ n⌉` parallel swappings (Lemma 15) and
/// executes each swapping's disjoint transpositions as distance-2
/// exchanges. Returns the rearranged arrays and the number of parallel
/// swapping steps used.
pub fn dimension_permutation<T: Clone>(
    net: &mut SimNet<Vec<T>>,
    data: Vec<Vec<T>>,
    delta: &DimPermutation,
) -> (Vec<Vec<T>>, usize) {
    assert_eq!(delta.n(), net.n());
    let factors = delta.parallel_swap_factors();
    let steps = factors.len();
    let mut data = data;
    for sigma in &factors {
        data = swap_pairs_sequence(net, data, &sigma.swap_pairs());
    }
    (data, steps)
}

/// Executes a set of disjoint dimension transpositions: for each pair
/// `(i, j)`, every node whose bits `i` and `j` differ relocates its array
/// across a distance-2 path (`i` then `j`). Pairs are processed
/// sequentially (two one-port-legal rounds each); within a pair all
/// affected nodes move concurrently.
fn swap_pairs_sequence<T: Clone>(
    net: &mut SimNet<Vec<T>>,
    mut data: Vec<Vec<T>>,
    pairs: &[(u32, u32)],
) -> Vec<Vec<T>> {
    let num = net.num_nodes();
    assert_eq!(data.len(), num);
    for &(i1, i2) in pairs {
        let moves = |x: u64| ((x >> i1) & 1) != ((x >> i2) & 1);
        for x in 0..num as u64 {
            if moves(x) && !data[x as usize].is_empty() {
                let payload = std::mem::take(&mut data[x as usize]);
                net.send(NodeId(x), i1, payload);
            }
        }
        net.finish_round();
        let mut transit: Vec<Option<Vec<T>>> = (0..num).map(|_| None).collect();
        for x in 0..num as u64 {
            if net.has_message(NodeId(x), i1) {
                transit[x as usize] = Some(net.recv(NodeId(x), i1));
            }
        }
        for (x, t) in transit.into_iter().enumerate() {
            if let Some(p) = t {
                net.send(NodeId(x as u64), i2, p);
            }
        }
        net.finish_round();
        for x in 0..num as u64 {
            if net.has_message(NodeId(x), i2) {
                debug_assert!(moves(x));
                data[x as usize] = net.recv(NodeId(x), i2);
            }
        }
    }
    data
}

/// Routes an arbitrary node permutation `π` with two all-to-all
/// personalized communications (§7, after Stout & Wagar): node `x`'s
/// message for `π(x)` is split into `N` equal pieces; the first all-to-all
/// scatters piece `j` to node `j`, the second forwards each piece to its
/// final destination. Balanced regardless of `π`.
///
/// `data[x]` is `x`'s message; `perm[x] = π(x)` must be a permutation.
/// Message lengths should be multiples of `N` for perfectly equal pieces
/// (smaller messages still work, with ragged pieces).
#[track_caller]
pub fn arbitrary_permutation<T: Clone + Send + Sync>(
    net: &mut SimNet<BlockMsg<(u64, T)>>,
    data: Vec<Vec<T>>,
    perm: &[NodeId],
) -> Vec<Vec<T>> {
    let num = net.num_nodes();
    assert_eq!(data.len(), num);
    assert_eq!(perm.len(), num);
    let mut seen = vec![false; num];
    for d in perm {
        assert!(!seen[d.index()], "perm is not a permutation");
        seen[d.index()] = true;
    }

    // Phase 1: scatter. Piece j of x's message goes to node j, tagged
    // with its position so the final message reassembles in order.
    let mut phase1: Vec<Vec<Vec<(u64, T)>>> =
        (0..num).map(|_| (0..num).map(|_| Vec::new()).collect()).collect();
    for (x, msg) in data.into_iter().enumerate() {
        let total = msg.len();
        let base = total / num;
        let extra = total % num;
        let mut offset = 0usize;
        let mut iter = msg.into_iter();
        for (j, slot) in phase1[x].iter_mut().enumerate() {
            let take = base + usize::from(j < extra);
            let piece: Vec<(u64, T)> =
                (0..take).map(|i| ((offset + i) as u64, iter.next().expect("sized"))).collect();
            offset += take;
            *slot = piece;
        }
    }
    let mid = all_to_all_exchange(net, phase1, BufferPolicy::Ideal);

    // Phase 2: forward. Node j holds one piece per source x; send it to
    // π(x).
    let mut phase2: Vec<Vec<Vec<(u64, T)>>> =
        (0..num).map(|_| (0..num).map(|_| Vec::new()).collect()).collect();
    for (j, blocks) in mid.into_iter().enumerate() {
        for Block { src, data, .. } in blocks {
            let dst = perm[src.index()];
            assert!(
                phase2[j][dst.index()].is_empty() || perm[src.index()] == NodeId(src.bits()),
                "two pieces for one destination in phase 2"
            );
            phase2[j][dst.index()].extend(data);
        }
    }
    let fin = all_to_all_exchange(net, phase2, BufferPolicy::Ideal);

    // Reassemble by tag.
    fin.into_iter()
        .map(|blocks| {
            let mut tagged: Vec<(u64, T)> = blocks.into_iter().flat_map(|b| b.data).collect();
            tagged.sort_by_key(|&(pos, _)| pos);
            for (k, &(pos, _)) in tagged.iter().enumerate() {
                assert_eq!(pos as usize, k, "missing piece at position {k}");
            }
            tagged.into_iter().map(|(_, v)| v).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubeaddr::bit_reverse;
    use cubesim::{MachineParams, PortMode};

    fn unit_net(n: u32) -> SimNet<Vec<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::OnePort))
    }

    fn node_data(n: u32, len: usize) -> Vec<Vec<u64>> {
        (0..(1u64 << n)).map(|x| vec![x; len]).collect()
    }

    #[test]
    fn bit_reversal_places_data() {
        for n in 1..=6u32 {
            let mut net = unit_net(n);
            let out = bit_reversal(&mut net, node_data(n, 3));
            for x in 0..(1u64 << n) {
                assert_eq!(out[x as usize], vec![bit_reverse(x, n); 3], "n={n} x={x:#b}");
            }
            net.finalize();
        }
    }

    #[test]
    fn bit_reversal_round_count() {
        // ⌊n/2⌋ pair swaps × 2 rounds each.
        let n = 6;
        let mut net = unit_net(n);
        let _ = bit_reversal(&mut net, node_data(n, 1));
        assert_eq!(net.finalize().rounds, 6);
    }

    #[test]
    fn dimension_permutation_matches_apply() {
        let n = 5;
        let delta = DimPermutation::new(vec![3, 0, 4, 1, 2]);
        let mut net = unit_net(n);
        let (out, steps) = dimension_permutation(&mut net, node_data(n, 2), &delta);
        assert!(steps <= 3);
        for x in 0..(1u64 << n) {
            // Data of x ends at the node y with y_i = x_{δ(i)}.
            let y = delta.apply(x);
            assert_eq!(out[y as usize], vec![x; 2], "x={x:#b} → y={y:#b}");
        }
        net.finalize();
    }

    #[test]
    fn rotation_as_dimension_permutation() {
        // sh^k as a dimension permutation: data of x ends at sh^k(x).
        let n = 4;
        for k in 0..n {
            let delta = DimPermutation::rotation(n, k);
            let mut net = unit_net(n);
            let (out, _) = dimension_permutation(&mut net, node_data(n, 1), &delta);
            for x in 0..(1u64 << n) {
                assert_eq!(out[cubeaddr::shuffle(x, k, n) as usize], vec![x]);
            }
        }
    }

    #[test]
    fn arbitrary_permutation_delivers() {
        let n = 3;
        let num = 1usize << n;
        // A permutation that is not a dimension permutation: add 3 mod N.
        let perm: Vec<NodeId> = (0..num).map(|x| NodeId(((x + 3) % num) as u64)).collect();
        let data: Vec<Vec<u64>> =
            (0..num as u64).map(|x| (0..num as u64 * 2).map(|i| x * 100 + i).collect()).collect();
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let out = arbitrary_permutation(&mut net, data.clone(), &perm);
        for x in 0..num {
            assert_eq!(out[perm[x].index()], data[x], "x={x}");
        }
        net.finalize();
    }

    #[test]
    fn arbitrary_permutation_time_is_two_all_to_alls() {
        let n = 4;
        let num = 1usize << n;
        let msg = num * 4; // multiple of N → equal pieces
        let perm: Vec<NodeId> = (0..num).map(|x| NodeId(((x * 5 + 2) % num) as u64)).collect();
        let data: Vec<Vec<u64>> = (0..num as u64).map(|x| vec![x; msg]).collect();
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let _ = arbitrary_permutation(&mut net, data, &perm);
        let r = net.finalize();
        // Each all-to-all: n rounds of PQ/2N... here per-node msg M = num·4,
        // pieces of 4: per exchange step M/2 elements: time
        // 2·n·(M/2 + 1) with unit costs.
        let expect = 2.0 * n as f64 * ((msg / 2) as f64 + 1.0);
        assert_eq!(r.time, expect);
        assert_eq!(r.rounds, 2 * n as usize);
    }

    #[test]
    fn ragged_messages_still_arrive() {
        let n = 2;
        let num = 4;
        let perm: Vec<NodeId> = vec![NodeId(2), NodeId(0), NodeId(3), NodeId(1)];
        let data: Vec<Vec<u64>> = (0..num).map(|x| vec![x as u64; 5]).collect(); // 5 not divisible by 4
        let mut net = SimNet::new(n, MachineParams::unit(PortMode::OnePort));
        let out = arbitrary_permutation(&mut net, data.clone(), &perm);
        for x in 0..num {
            assert_eq!(out[perm[x].index()], data[x]);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_rejected() {
        let mut net: SimNet<BlockMsg<(u64, u64)>> =
            SimNet::new(1, MachineParams::unit(PortMode::OnePort));
        let _ = arbitrary_permutation(&mut net, vec![vec![1], vec![2]], &[NodeId(0), NodeId(0)]);
    }

    #[test]
    fn empty_arrays_are_noop() {
        let n = 3;
        let mut net = unit_net(n);
        let data: Vec<Vec<u64>> = (0..8).map(|_| Vec::new()).collect();
        let out = bit_reversal(&mut net, data);
        assert!(out.iter().all(Vec::is_empty));
        let r = net.finalize();
        assert_eq!(r.total_elems, 0);
    }
}
