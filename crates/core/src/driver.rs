//! Algorithm selection: plan the best transpose for a problem and a
//! machine.
//!
//! The paper's guidance, condensed (§5, §6, §9):
//!
//! * pairwise specs (`I = R_b = R_a`, node map `tr`) on n-port machines →
//!   MPT with Theorem 2's packet count; on one-port machines → the
//!   step-by-step SPT;
//! * all-to-all specs (`I = ∅`) on one-port machines → the exchange
//!   algorithm with the optimum buffering threshold `B_copy = τ/t_copy`;
//!   on n-port machines → SBnT routing;
//! * everything else → the exchange algorithm over the covering dimension
//!   set (correct for any pair of layouts).
//!
//! [`plan`] picks; [`execute`] runs the choice and returns the output
//! with the communication report, so callers can audit the decision.

use crate::one_dim::{transpose_1d_exchange, transpose_1d_sbnt, Routed};
use crate::two_dim::{transpose_mpt, transpose_spt_stepwise, Packet};
use cubecomm::{BlockMsg, BufferPolicy};
use cubelayout::{CommPattern, DistMatrix, Layout, TransposeSpec};
use cubesim::{CommReport, MachineParams, PortMode, SimNet};

/// The algorithm a [`plan`] selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Choice {
    /// No data movement needed.
    Local,
    /// Step-by-step Single Path Transpose (pairwise, one-port machines).
    SptStepwise,
    /// Multiple Paths Transpose with the given burst count (pairwise,
    /// n-port machines).
    Mpt {
        /// Bursts per path pair (`k` of §6.1.3).
        k: u32,
    },
    /// Standard exchange algorithm with the optimum buffering threshold.
    ExchangeBuffered {
        /// Minimum chunk size sent without gathering.
        min_direct: usize,
    },
    /// n-port spanning-balanced-n-tree routing.
    Sbnt,
}

/// Chooses an algorithm for transposing `before` into `after` on a
/// machine with the given parameters.
pub fn plan(before: &Layout, after: &Layout, params: &MachineParams) -> Choice {
    let spec = TransposeSpec::with_after(before.clone(), after.clone());
    let n = before.n().max(after.n());
    match spec.classify() {
        CommPattern::Local => Choice::Local,
        CommPattern::PairwiseExchange
            if n >= 2 && n.is_multiple_of(2) && before.n_r() == before.n_c() =>
        {
            match params.ports {
                PortMode::AllPorts => {
                    // Theorem 2's optimal k: ≈ (1/n)·√(PQ·t_c/2Nτ),
                    // clamped to ≥ 1.
                    let pq = 1u64 << (before.p() + before.q());
                    let big_n = before.num_nodes() as f64;
                    let k = ((pq as f64 * params.t_c / (2.0 * big_n * params.tau)).sqrt()
                        / n as f64)
                        .round()
                        .max(1.0) as u32;
                    Choice::Mpt { k }
                }
                PortMode::OnePort => Choice::SptStepwise,
            }
        }
        CommPattern::AllToAll | CommPattern::SomeToAll { .. } => match params.ports {
            PortMode::AllPorts => Choice::Sbnt,
            PortMode::OnePort => Choice::ExchangeBuffered { min_direct: params.b_copy() },
        },
        // Pairwise with odd n or unequal row/column fields, and the
        // general mixed case: the exchange engine routes anything.
        _ => Choice::ExchangeBuffered { min_direct: params.b_copy() },
    }
}

/// Plans and executes the transpose; returns the result, the choice made,
/// and the simulated communication report.
///
/// ```
/// use cubelayout::{Assignment, Encoding, Layout};
/// use cubesim::MachineParams;
/// use cubetranspose::{driver, verify};
///
/// let before = Layout::square(4, 4, 2, Assignment::Consecutive, Encoding::Binary);
/// let after = before.swapped_shape();
/// let matrix = verify::labels(before.clone());
/// let (out, choice, report) = driver::execute(&matrix, &after, &MachineParams::intel_ipsc());
/// verify::assert_transposed(&before, &out);
/// assert_eq!(choice, driver::Choice::SptStepwise); // one-port machine
/// assert!(report.time > 0.0);
/// ```
pub fn execute<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    params: &MachineParams,
) -> (DistMatrix<T>, Choice, CommReport) {
    let choice = plan(m.layout(), after, params);
    let n = m.layout().n().max(after.n());
    match choice {
        Choice::Local => {
            // Same placement for every element: relabel only.
            let out = DistMatrix::from_buffers(after.clone(), m.clone().into_buffers());
            (out, choice, CommReport::default())
        }
        Choice::SptStepwise => {
            // The iPSC implementation overlaps the step's send and receive
            // through the router; model it on all ports (§8.2.1).
            let mut net: SimNet<Packet<T>> =
                SimNet::new(n, params.clone().with_ports(PortMode::AllPorts));
            let out = transpose_spt_stepwise(m, after, &mut net);
            (out, choice, net.finalize())
        }
        Choice::Mpt { k } => {
            let mut net: SimNet<Packet<T>> = SimNet::new(n, params.clone());
            let out = transpose_mpt(m, after, &mut net, k);
            (out, choice, net.finalize())
        }
        Choice::ExchangeBuffered { min_direct } => {
            let mut net: SimNet<BlockMsg<Routed<T>>> = SimNet::new(n, params.clone());
            let out =
                transpose_1d_exchange(m, after, &mut net, BufferPolicy::Buffered { min_direct });
            (out, choice, net.finalize())
        }
        Choice::Sbnt => {
            let mut net: SimNet<BlockMsg<Routed<T>>> = SimNet::new(n, params.clone());
            let out = transpose_1d_sbnt(m, after, &mut net);
            (out, choice, net.finalize())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_transposed, labels};
    use cubelayout::{Assignment, Direction, Encoding};

    #[test]
    fn pairwise_one_port_chooses_spt() {
        let before = Layout::square(4, 4, 2, Assignment::Consecutive, Encoding::Binary);
        let after = before.swapped_shape();
        let params = MachineParams::intel_ipsc();
        assert_eq!(plan(&before, &after, &params), Choice::SptStepwise);
        let m = labels(before.clone());
        let (out, _, report) = execute(&m, &after, &params);
        assert_transposed(&before, &out);
        assert!(report.time > 0.0);
    }

    #[test]
    fn pairwise_all_port_chooses_mpt() {
        let before = Layout::square(5, 5, 2, Assignment::Cyclic, Encoding::Binary);
        let after = before.swapped_shape();
        let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
        match plan(&before, &after, &params) {
            Choice::Mpt { k } => assert!(k >= 1),
            other => panic!("expected MPT, got {other:?}"),
        }
        let m = labels(before.clone());
        let (out, _, _) = execute(&m, &after, &params);
        assert_transposed(&before, &out);
    }

    #[test]
    fn one_dim_chooses_exchange_or_sbnt() {
        let before =
            Layout::one_dim(4, 4, Direction::Rows, 3, Assignment::Consecutive, Encoding::Binary);
        let after =
            Layout::one_dim(4, 4, Direction::Rows, 3, Assignment::Consecutive, Encoding::Binary);
        let one = MachineParams::intel_ipsc();
        assert_eq!(
            plan(&before, &after, &one),
            Choice::ExchangeBuffered { min_direct: one.b_copy() }
        );
        let all = one.clone().with_ports(PortMode::AllPorts);
        assert_eq!(plan(&before, &after, &all), Choice::Sbnt);
        let m = labels(before.clone());
        for params in [one, all] {
            let (out, _, _) = execute(&m, &after, &params);
            assert_transposed(&before, &out);
        }
    }

    #[test]
    fn vector_transpose_is_local() {
        let before =
            Layout::one_dim(0, 4, Direction::Cols, 2, Assignment::Cyclic, Encoding::Binary);
        let after = before.relabeled();
        let params = MachineParams::intel_ipsc();
        assert_eq!(plan(&before, &after, &params), Choice::Local);
        let m = labels(before.clone());
        let (out, _, report) = execute(&m, &after, &params);
        assert_eq!(report.time, 0.0);
        assert_transposed(&before, &out);
    }

    #[test]
    fn mixed_spec_falls_back_to_exchange() {
        // Consecutive rows / cyclic columns: all-to-all (I = ∅) — either
        // branch is exchange-family; just verify execution.
        let before = Layout::two_dim(
            4,
            4,
            (1, Assignment::Consecutive, Encoding::Binary),
            (1, Assignment::Cyclic, Encoding::Binary),
        );
        let after = before.swapped_shape();
        let params = MachineParams::intel_ipsc();
        let m = labels(before.clone());
        let (out, choice, _) = execute(&m, &after, &params);
        assert!(matches!(choice, Choice::ExchangeBuffered { .. }));
        assert_transposed(&before, &out);
    }
}
