//! Two-dimensional-partitioning transposes (§6.1): SPT, DPT and MPT.
//!
//! With the same assignment scheme and the same number of processor
//! dimensions for rows and columns (`n_r = n_c = n/2`), the transpose is
//! communication between distinct source/destination pairs: node
//! `x = (x_r ‖ x_c)` sends its entire local array to `tr(x) = (x_c ‖ x_r)`
//! at Hamming distance `2H(x)`, `H(x) = Hamming(x_r, x_c)`.
//!
//! * **SPT** (Single Path Transpose): one pipelined path per node, the
//!   dimensions routed highest-to-lowest in (row, column) pairs; paths of
//!   different nodes are edge-disjoint, so packets flow every cycle.
//! * **DPT** (Dual Paths): a second path with each (row, column) pair
//!   reversed carries half the data; both paths of all nodes remain
//!   edge-disjoint.
//! * **MPT** (Multiple Paths): `2H(x)` edge-disjoint paths per node —
//!   the rotations of the SPT dimension sequence and their pair-reversed
//!   mirrors. Nodes in the same `~s` equivalence class share edges but in
//!   different cycles ((2, 2H)-disjoint, Lemma 14); different classes are
//!   fully edge-disjoint (Lemma 13). Data goes out in `4kH(x)` packets,
//!   two per path every `2H(x)` cycles, finishing in `2kH(x) + 1` cycles.
//!
//! The simulator enforces the edge-disjointness claims at runtime: any
//! two messages on one directed link in the same round abort the run.

use cubeaddr::NodeId;
use cubelayout::{CommPattern, DistMatrix, Layout, TransposeSpec};
use cubesim::{Payload, SimNet};

/// A pipelined packet: a slice of the source node's local array.
#[derive(Clone, Debug)]
pub struct Packet<T> {
    /// Position of the slice in the source local array.
    pub offset: usize,
    /// The elements.
    pub data: Vec<T>,
}

impl<T> Payload for Packet<T> {
    fn elems(&self) -> usize {
        self.data.len()
    }
}

/// `tr(x) = (x_c ‖ x_r)` for an `n`-cube with `half = n/2` row and column
/// dimensions.
pub fn tr(x: u64, half: u32) -> u64 {
    let (r, c) = cubeaddr::split(x, half);
    cubeaddr::concat(c, r, half)
}

/// `H(x) = Hamming(x_r, x_c)`: half the distance from `x` to `tr(x)`.
pub fn h_of(x: u64, half: u32) -> u32 {
    let (r, c) = cubeaddr::split(x, half);
    cubeaddr::hamming(r, c)
}

/// The α (row) and β (column) dimension sequences of node `x`, indexed as
/// the paper's `α_{H-1} … α_0` / `β_{H-1} … β_0`: `alpha[k] = α_k`, so
/// index `H-1` is the highest differing dimension.
fn alpha_beta(x: u64, half: u32) -> (Vec<u32>, Vec<u32>) {
    let (r, c) = cubeaddr::split(x, half);
    let diff = r ^ c;
    let beta: Vec<u32> = (0..half).filter(|&i| (diff >> i) & 1 == 1).collect();
    let alpha: Vec<u32> = beta.iter().map(|&i| i + half).collect();
    (alpha, beta)
}

/// Path `p ∈ {0, …, 2H(x)-1}` from `x` to `tr(x)` (§6.1.3): the sequence
/// of dimensions routed. Path 0 is the SPT path; paths 0 and `H(x)` are
/// the DPT pair.
pub fn mpt_path(x: u64, half: u32, p: u32) -> Vec<u32> {
    let (alpha, beta) = alpha_beta(x, half);
    let h = alpha.len() as u32;
    if h == 0 {
        return Vec::new();
    }
    assert!(p < 2 * h, "path {p} out of range for H = {h}");
    let mut dims = Vec::with_capacity(2 * h as usize);
    if p < h {
        for step in 0..h {
            let k = ((p + h - 1 - step) % h) as usize;
            dims.push(alpha[k]);
            dims.push(beta[k]);
        }
    } else {
        let j = p - h;
        for step in 0..h {
            let k = ((j + h - 1 - step) % h) as usize;
            dims.push(beta[k]);
            dims.push(alpha[k]);
        }
    }
    dims
}

/// The SPT path of `x`: highest-to-lowest (row, column) dimension pairs.
pub fn spt_path(x: u64, half: u32) -> Vec<u32> {
    let h = h_of(x, half);
    if h == 0 {
        Vec::new()
    } else {
        mpt_path(x, half, 0)
    }
}

/// One pipelined flight: a packet, its path, and its injection cycle.
struct Flight<T> {
    src: NodeId,
    path: std::rc::Rc<Vec<u32>>,
    inject: usize,
    packet: Packet<T>,
}

/// Runs all flights to completion, one hop per cycle starting at each
/// flight's injection cycle, and returns the packets delivered per node.
///
/// Panics (inside the simulator) if the flight set ever contends for a
/// directed link — the runtime check of the edge-disjointness lemmas.
fn run_flights<T: Clone>(
    net: &mut SimNet<Packet<T>>,
    flights: Vec<Flight<T>>,
) -> Vec<Vec<Packet<T>>> {
    let num = net.num_nodes();
    let mut deliveries: Vec<Vec<Packet<T>>> = (0..num).map(|_| Vec::new()).collect();
    // in_flight: (current node, path, pos, packet) for launched flights.
    struct Live<T> {
        at: NodeId,
        path: std::rc::Rc<Vec<u32>>,
        pos: usize,
        packet: Packet<T>,
    }
    // Stable sort by injection cycle, then drain through a cursor: the
    // launch scan is one pass over the schedule instead of re-partitioning
    // (and reallocating) the whole waiting list every cycle.
    let mut waiting = flights;
    waiting.sort_by_key(|f| f.inject);
    let mut waiting = waiting.into_iter().peekable();
    let mut live: Vec<Live<T>> = Vec::new();
    let mut cycle = 0usize;
    while waiting.peek().is_some() || !live.is_empty() {
        // Launch this cycle's injections.
        while let Some(f) = waiting.next_if(|f| f.inject <= cycle) {
            debug_assert_eq!(f.inject, cycle, "missed injection cycle");
            live.push(Live { at: f.src, path: f.path, pos: 0, packet: f.packet });
        }
        // Every live packet advances one hop: the payload itself moves
        // (no per-hop clone) and is reclaimed from the inbox below.
        for l in &mut live {
            let pkt = std::mem::replace(&mut l.packet, Packet { offset: 0, data: Vec::new() });
            net.send(l.at, l.path[l.pos], pkt);
        }
        net.finish_round();
        live.retain_mut(|l| {
            let dim = l.path[l.pos];
            let next = l.at.neighbor(dim);
            l.packet = net.recv(next, dim);
            l.at = next;
            l.pos += 1;
            if l.pos == l.path.len() {
                let pkt = std::mem::replace(&mut l.packet, Packet { offset: 0, data: Vec::new() });
                deliveries[l.at.index()].push(pkt);
                return false;
            }
            true
        });
        cycle += 1;
    }
    deliveries
}

/// Slices `data` into packets of at most `b` elements, tagged with their
/// offsets.
fn packetize<T: Clone>(data: &[T], b: usize) -> Vec<Packet<T>> {
    assert!(b > 0);
    data.chunks(b).enumerate().map(|(i, c)| Packet { offset: i * b, data: c.to_vec() }).collect()
}

/// Slices `data` into exactly `parts` near-equal packets (sizes differing
/// by at most one; trailing parts may be empty when `data.len() < parts`).
fn split_exact<T: Clone>(data: &[T], parts: usize) -> Vec<Packet<T>> {
    let total = data.len();
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut offset = 0usize;
    for k in 0..parts {
        let take = base + usize::from(k < extra);
        out.push(Packet { offset, data: data[offset..offset + take].to_vec() });
        offset += take;
    }
    out
}

/// Shared validation and setup: the spec must be a pairwise exchange with
/// node map `tr`, and `n` even.
#[track_caller]
fn check_pairwise(spec: &TransposeSpec) -> u32 {
    let n = spec.before.n();
    assert!(n >= 2 && n.is_multiple_of(2), "need an even cube dimension, got {n}");
    assert_eq!(
        spec.before.n_r(),
        spec.before.n_c(),
        "SPT/DPT/MPT need equally many row and column processor dimensions"
    );
    assert_eq!(
        spec.classify(),
        CommPattern::PairwiseExchange,
        "layouts do not induce a pairwise exchange"
    );
    let half = n / 2;
    let map = spec.node_map().expect("pairwise spec has a node map");
    for (x, &d) in map.iter().enumerate() {
        assert_eq!(
            d.bits(),
            tr(x as u64, half),
            "node map is not tr(x); use the generic exchange driver instead"
        );
    }
    half
}

/// Rebuilds the output matrix: node `tr(x)` received `x`'s entire local
/// array (as offset-tagged packets); the local 2D array is then
/// transposed (the local step of §6.1), which is exactly `after`'s
/// storage order.
///
/// Each destination's work — sorting its packets by offset, block-copying
/// them into the source array they tile exactly, and the tiled local
/// transpose — is independent, so destinations are processed in parallel.
fn rebuild<T: Copy + Default + Send + Sync>(
    spec: &TransposeSpec,
    m: &DistMatrix<T>,
    deliveries: Vec<Vec<Packet<T>>>,
    half: u32,
) -> DistMatrix<T> {
    let before = &spec.before;
    let per = before.elems_per_node();
    let (rows, cols) = (before.local_rows(), before.local_cols());
    let mut slots: Vec<(Vec<Packet<T>>, Vec<T>)> =
        deliveries.into_iter().map(|pkts| (pkts, Vec::new())).collect();
    cubesim::par::par_for_each_mut(&mut slots, |dst, (pkts, out)| {
        // Each destination receives from exactly one source, tr(dst).
        let src = tr(dst as u64, half);
        let arr: Vec<T> = if src == dst as u64 {
            // Diagonal node (H = 0): its own array, nothing arrived.
            debug_assert!(pkts.is_empty());
            m.node(NodeId(src)).to_vec()
        } else {
            let mut gathered = vec![T::default(); per];
            pkts.sort_unstable_by_key(|p| p.offset);
            let mut covered = 0usize;
            for pkt in pkts.iter() {
                assert_eq!(pkt.offset, covered, "node {dst}: packet gap or overlap at {covered}");
                gathered[covered..covered + pkt.data.len()].copy_from_slice(&pkt.data);
                covered += pkt.data.len();
            }
            assert_eq!(covered, per, "node {dst} missing elements from {src}");
            gathered
        };
        crate::local::transpose_flat_blocked_into(&arr, rows, cols, 64, out);
    });
    let buffers: Vec<Vec<T>> = slots.into_iter().map(|(_, out)| out).collect();
    DistMatrix::from_buffers(spec.after.clone(), buffers)
}

/// Single Path Transpose (§6.1.1): pipelined packets of size `b` along
/// one edge-disjoint path per node. Total routing steps
/// `⌈(PQ/N)/b⌉ + n - 1`.
pub fn transpose_spt<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<Packet<T>>,
    b: usize,
) -> DistMatrix<T> {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let half = check_pairwise(&spec);
    let mut flights = Vec::new();
    for x in 0..spec.before.num_nodes() as u64 {
        if h_of(x, half) == 0 {
            continue;
        }
        let path = std::rc::Rc::new(spt_path(x, half));
        for (i, pkt) in packetize(m.node(NodeId(x)), b).into_iter().enumerate() {
            flights.push(Flight { src: NodeId(x), path: path.clone(), inject: i, packet: pkt });
        }
    }
    let deliveries = run_flights(net, flights);
    rebuild(&spec, m, deliveries, half)
}

/// The iPSC step-by-step SPT (§8.2.1): the whole local array as a single
/// message per routing step (fragmented into `B_m` packets by the cost
/// model), plus the two local rearrangement copies.
pub fn transpose_spt_stepwise<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<Packet<T>>,
) -> DistMatrix<T> {
    let per = m.layout().elems_per_node();
    // Pre-send rearrangement of the 2D local array into a 1D buffer.
    for x in 0..m.layout().num_nodes() as u64 {
        net.local_copy(NodeId(x), per);
    }
    let out = transpose_spt(m, after, net, per);
    // Post-receive rearrangement.
    for x in 0..m.layout().num_nodes() as u64 {
        net.local_copy(NodeId(x), per);
    }
    net.finish_round();
    out
}

/// Dual Paths Transpose (§6.1.2): the data split in two halves pipelined
/// over the SPT path and its pair-reversed mirror.
pub fn transpose_dpt<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<Packet<T>>,
    b: usize,
) -> DistMatrix<T> {
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let half = check_pairwise(&spec);
    let mut flights = Vec::new();
    for x in 0..spec.before.num_nodes() as u64 {
        let h = h_of(x, half);
        if h == 0 {
            continue;
        }
        let data = m.node(NodeId(x));
        let mid = data.len() / 2;
        for (path_id, range) in [(0u32, 0..mid), (h, mid..data.len())] {
            let path = std::rc::Rc::new(mpt_path(x, half, path_id));
            let slice = &data[range.clone()];
            for (i, mut pkt) in packetize(slice, b).into_iter().enumerate() {
                pkt.offset += range.start;
                flights.push(Flight { src: NodeId(x), path: path.clone(), inject: i, packet: pkt });
            }
        }
    }
    let deliveries = run_flights(net, flights);
    rebuild(&spec, m, deliveries, half)
}

/// Multiple Paths Transpose (§6.1.3): `4kH(x)` packets over the `2H(x)`
/// edge-disjoint paths, two per path every `2H(x)` cycles; completes in
/// `2kH(x) + 1` cycles per class.
///
/// ```
/// use cubelayout::{Assignment, Encoding, Layout};
/// use cubesim::{MachineParams, PortMode, SimNet};
/// use cubetranspose::{transpose_mpt, two_dim::Packet, verify};
///
/// let before = Layout::square(4, 4, 2, Assignment::Consecutive, Encoding::Binary);
/// let after = before.swapped_shape();
/// let matrix = verify::labels(before.clone());
/// let mut net: SimNet<Packet<u64>> =
///     SimNet::new(4, MachineParams::unit(PortMode::AllPorts));
/// let out = transpose_mpt(&matrix, &after, &mut net, 1);
/// verify::assert_transposed(&before, &out);
/// assert_eq!(net.finalize().rounds, 5); // 2·k·(n/2) + 1
/// ```
pub fn transpose_mpt<T: Copy + Default + Send + Sync>(
    m: &DistMatrix<T>,
    after: &Layout,
    net: &mut SimNet<Packet<T>>,
    k: u32,
) -> DistMatrix<T> {
    assert!(k >= 1);
    let spec = TransposeSpec::with_after(m.layout().clone(), after.clone());
    let half = check_pairwise(&spec);
    let mut flights = Vec::new();
    for x in 0..spec.before.num_nodes() as u64 {
        let h = h_of(x, half);
        if h == 0 {
            continue;
        }
        let data = m.node(NodeId(x));
        // Classes with small H split into more bursts so every class's
        // packet size stays near PQ/(4·k·(n/2)·N) and all classes finish
        // within 2·k·(n/2) + 1 cycles (the paper's ⌊(n/2)/H⌋·4H packets).
        let k_h = (k * half / h).max(1);
        let n_packets = (4 * k_h * h) as usize;
        let packets = split_exact(data, n_packets);
        let paths: Vec<std::rc::Rc<Vec<u32>>> =
            (0..2 * h).map(|p| std::rc::Rc::new(mpt_path(x, half, p))).collect();
        // Packet ordinal o on path p: o-th of the path's 2·k_h packets,
        // injected at cycle 2H·(o/2) + (o mod 2) — two packets per path
        // every 2H cycles, the (2, 2H)-disjoint schedule of Lemma 14.
        for (idx, pkt) in packets.into_iter().enumerate() {
            if pkt.data.is_empty() {
                continue;
            }
            let p = idx % (2 * h as usize);
            let o = idx / (2 * h as usize);
            let inject = 2 * h as usize * (o / 2) + (o % 2);
            flights.push(Flight { src: NodeId(x), path: paths[p].clone(), inject, packet: pkt });
        }
    }
    let deliveries = run_flights(net, flights);
    rebuild(&spec, m, deliveries, half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_transposed, labels};
    use cubelayout::{Assignment, Encoding};
    use cubesim::{MachineParams, PortMode};
    use std::collections::HashSet;

    fn square(p: u32, half: u32, scheme: Assignment, enc: Encoding) -> (Layout, Layout) {
        let before = Layout::square(p, p, half, scheme, enc);
        let after = before.swapped_shape();
        (before, after)
    }

    fn net(n: u32) -> SimNet<Packet<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::AllPorts))
    }

    #[test]
    fn paper_example_paths() {
        // x = (1001 ‖ 0100): the six paths listed in §6.1.3.
        let x = 0b1001_0100;
        let half = 4;
        assert_eq!(h_of(x, half), 3);
        assert_eq!(tr(x, half), 0b0100_1001);
        assert_eq!(mpt_path(x, half, 0), vec![7, 3, 6, 2, 4, 0]);
        assert_eq!(mpt_path(x, half, 1), vec![4, 0, 7, 3, 6, 2]);
        assert_eq!(mpt_path(x, half, 2), vec![6, 2, 4, 0, 7, 3]);
        assert_eq!(mpt_path(x, half, 3), vec![3, 7, 2, 6, 0, 4]);
        assert_eq!(mpt_path(x, half, 4), vec![0, 4, 3, 7, 2, 6]);
        assert_eq!(mpt_path(x, half, 5), vec![2, 6, 0, 4, 3, 7]);
    }

    #[test]
    fn figure4_paths_from_000111() {
        // Figure 4: 6 edge-disjoint paths from x = (000 ‖ 111) to
        // tr(x) = (111 ‖ 000) on a 6-cube.
        let x = 0b000_111;
        let half = 3;
        assert_eq!(tr(x, half), 0b111_000);
        let mut edges = HashSet::new();
        for p in 0..6 {
            let path = mpt_path(x, half, p);
            assert_eq!(path.len(), 6);
            let mut cur = x;
            for d in path {
                let next = cur ^ (1 << d);
                assert!(edges.insert((cur, next)), "edge reused on path {p}");
                cur = next;
            }
            assert_eq!(cur, 0b111_000, "path {p} misses the destination");
        }
        assert_eq!(edges.len(), 36);
    }

    #[test]
    fn lemma9_paths_edge_disjoint_per_node() {
        let half = 3;
        for x in 0..(1u64 << 6) {
            let h = h_of(x, half);
            let mut edges = HashSet::new();
            for p in 0..2 * h {
                let mut cur = x;
                for d in mpt_path(x, half, p) {
                    let next = cur ^ (1 << d);
                    assert!(edges.insert((cur, next)), "x={x:#b} path {p}");
                    cur = next;
                }
                assert_eq!(cur, tr(x, half));
            }
        }
    }

    #[test]
    fn lemma13_distinct_classes_disjoint() {
        // x' ≁s x'' ⇒ Paths(x') ∩ Paths(x'') = ∅.
        let half = 2;
        let class = |x: u64| {
            let (r, c) = cubeaddr::split(x, half);
            (r + c, x ^ tr(x, half)) // (~ad anti-diagonal, ⊕ signature)
        };
        let all_edges = |x: u64| -> HashSet<(u64, u64)> {
            let mut e = HashSet::new();
            for p in 0..2 * h_of(x, half) {
                let mut cur = x;
                for d in mpt_path(x, half, p) {
                    let next = cur ^ (1 << d);
                    e.insert((cur, next));
                    cur = next;
                }
            }
            e
        };
        for x1 in 0..(1u64 << 4) {
            for x2 in 0..(1u64 << 4) {
                if x1 != x2 && class(x1) != class(x2) {
                    let shared: Vec<_> =
                        all_edges(x1).intersection(&all_edges(x2)).copied().collect();
                    assert!(shared.is_empty(), "x'={x1:#b} x''={x2:#b} share {shared:?}");
                }
            }
        }
    }

    #[test]
    fn spt_transposes_binary_and_gray() {
        for enc in [Encoding::Binary, Encoding::Gray] {
            for scheme in [Assignment::Consecutive, Assignment::Cyclic] {
                let (before, after) = square(3, 2, scheme, enc);
                let m = labels(before.clone());
                let mut net = net(4);
                let out = transpose_spt(&m, &after, &mut net, 4);
                assert_transposed(&before, &out);
                net.finalize();
            }
        }
    }

    #[test]
    fn spt_round_count_matches_pipeline_formula() {
        // rounds = ⌈(PQ/N)/B⌉ + n - 1.
        let (before, after) = square(4, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let b = 4;
        let per = before.elems_per_node();
        let mut net = net(4);
        let _ = transpose_spt(&m, &after, &mut net, b);
        let r = net.finalize();
        assert_eq!(r.rounds, per.div_ceil(b) + 4 - 1);
    }

    #[test]
    fn spt_time_matches_model() {
        let (before, after) = square(4, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let params = MachineParams::unit(PortMode::AllPorts);
        let b = 8;
        let mut net = SimNet::new(4, params.clone());
        let _ = transpose_spt(&m, &after, &mut net, b);
        let r = net.finalize();
        let expect = cubemodel::two_dim::spt(1 << 8, 4, b as u64, &params);
        assert!((r.time - expect).abs() < 1e-9, "{} vs {expect}", r.time);
    }

    #[test]
    fn dpt_transposes_and_halves_transfer() {
        let (before, after) = square(4, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let b = 2;
        let mut net1 = net(4);
        let _ = transpose_spt(&m, &after, &mut net1, b);
        let r1 = net1.finalize();
        let mut net2 = net(4);
        let out = transpose_dpt(&m, &after, &mut net2, b);
        assert_transposed(&before, &out);
        let r2 = net2.finalize();
        // Same packet size: DPT needs about half the rounds for large data.
        assert!(
            r2.rounds < r1.rounds,
            "DPT rounds {} not below SPT rounds {}",
            r2.rounds,
            r1.rounds
        );
    }

    #[test]
    fn mpt_transposes_all_k() {
        for k in 1..=3u32 {
            let (before, after) = square(3, 2, Assignment::Consecutive, Encoding::Binary);
            let m = labels(before.clone());
            let mut net = net(4);
            let out = transpose_mpt(&m, &after, &mut net, k);
            assert_transposed(&before, &out);
            net.finalize();
        }
    }

    #[test]
    fn mpt_rounds_match_2kh_plus_1() {
        // Max class H = n/2: rounds = 2·k·(n/2) + 1 = k·n + 1.
        let (before, after) = square(4, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        for k in 1..=2u32 {
            let mut net = net(4);
            let _ = transpose_mpt(&m, &after, &mut net, k);
            let r = net.finalize();
            assert_eq!(r.rounds, (k * 4 + 1) as usize, "k={k}");
        }
    }

    #[test]
    fn mpt_beats_spt_time_for_big_data() {
        let (before, after) = square(6, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let params = MachineParams::unit(PortMode::AllPorts);
        let pq = 1u64 << 12;
        let b_opt = cubemodel::two_dim::spt_b_opt(pq, 4, &params).round().max(1.0) as usize;
        let mut net1 = SimNet::new(4, params.clone());
        let _ = transpose_spt(&m, &after, &mut net1, b_opt);
        let r1 = net1.finalize();
        let mut net2 = SimNet::new(4, params);
        let _ = transpose_mpt(&m, &after, &mut net2, 2);
        let r2 = net2.finalize();
        assert!(r2.time < r1.time, "MPT {} vs SPT {}", r2.time, r1.time);
    }

    #[test]
    fn stepwise_matches_ipsc_estimate() {
        let (before, after) = square(4, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
        let mut net = SimNet::new(4, params.clone());
        let _ = transpose_spt_stepwise(&m, &after, &mut net);
        let r = net.finalize();
        let expect = cubemodel::two_dim::spt_ipsc_step_by_step(1 << 8, 4, &params);
        assert!((r.time - expect).abs() < 1e-9, "{} vs {expect}", r.time);
    }

    #[test]
    fn anti_diagonal_identity_nodes_keep_data() {
        // Nodes with x_r = x_c never communicate.
        let (before, after) = square(3, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let mut net = net(4);
        let out = transpose_spt(&m, &after, &mut net, 16);
        assert_transposed(&before, &out);
        let r = net.finalize();
        // 4 of 16 nodes have H = 0; total volume = 12 nodes × 16 elems ×
        // path lengths ≥ 2 — just check those 4 contributed nothing.
        assert!(r.total_messages > 0);
    }

    #[test]
    fn rectangular_cyclic_matrix_pairwise() {
        // p ≠ q still yields a pairwise exchange under cyclic square
        // partitioning ("for N < PQ, the argument applies to matrix
        // blocks instead of matrix elements" — rectangular blocks here).
        let before = Layout::square(4, 3, 1, Assignment::Cyclic, Encoding::Binary);
        let after = before.swapped_shape();
        let m = labels(before.clone());
        let mut net = net(2);
        let out = transpose_spt(&m, &after, &mut net, 8);
        assert_transposed(&before, &out);
        assert_ne!(before.local_rows(), before.local_cols());
    }

    #[test]
    fn single_packet_equals_whole_array() {
        // B ≥ PQ/N: one packet per node, rounds = n.
        let (before, after) = square(3, 2, Assignment::Consecutive, Encoding::Binary);
        let m = labels(before.clone());
        let per = before.elems_per_node();
        let mut net = net(4);
        let _ = transpose_spt(&m, &after, &mut net, per * 2);
        assert_eq!(net.finalize().rounds, 4);
    }

    #[test]
    fn dpt_odd_sized_arrays_split_cleanly() {
        // Ragged packets (8 elements in packets of 3) on a rectangular
        // matrix; offsets must still reassemble exactly.
        let before = Layout::square(3, 4, 2, Assignment::Cyclic, Encoding::Binary);
        let after = before.swapped_shape();
        let m = labels(before.clone());
        let mut net = net(4);
        let out = transpose_dpt(&m, &after, &mut net, 3);
        assert_transposed(&before, &out);
    }

    #[test]
    #[should_panic(expected = "pairwise")]
    fn non_pairwise_layout_rejected() {
        // Mixed schemes (consecutive rows / cyclic columns with enough
        // virtual dims) give all-to-all, which SPT cannot route.
        let before = Layout::two_dim(
            4,
            4,
            (1, Assignment::Consecutive, Encoding::Binary),
            (1, Assignment::Cyclic, Encoding::Binary),
        );
        let after = before.swapped_shape();
        let m = labels(before.clone());
        let mut net: SimNet<Packet<u64>> = SimNet::new(2, MachineParams::unit(PortMode::AllPorts));
        let _ = transpose_spt(&m, &after, &mut net, 4);
    }
}
