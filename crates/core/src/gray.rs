//! Combining transpose and Gray-code/binary-code conversion (§6.3).
//!
//! With the row index encoded in binary and the column index in the
//! binary-reflected Gray code, matrix block `(u, v)` lives at processor
//! `(u ‖ G(v))` and must reach processor `(v ‖ G(u))`. Two routes:
//!
//! * the **naive** composition — re-encode the rows binary→Gray and the
//!   columns Gray→binary (each `n/2 - 1` exchange steps), then run the
//!   plain `n`-step pairwise transpose: `2n - 2` routing steps;
//! * the **combined** algorithm — one pass of `n/2` iterations, each
//!   fixing bit `j` of both halves with at most one row-dimension and one
//!   column-dimension routing step per block: `n` routing steps.
//!
//! The implementation drives both from the *block identity*: at every
//! iteration each block knows its `(u, v)` and therefore exactly which of
//! the two hops it needs; the paper's case table (even-block-row /
//! even-parity-block-column flags) is the control-driven computation of
//! the same moves. The simulator's contention checks verify that the
//! schedule stays conflict-free, and the final placement is checked
//! against the mixed-encoding layout of `A^T`.

use cubeaddr::NodeId;
use cubelayout::{Assignment, DistMatrix, Encoding, Layout};
use cubesim::SimNet;

/// One whole-block message (the §6.3 algorithms move entire local blocks).
#[derive(Clone, Debug)]
pub struct BlockFlight<T> {
    /// Block row index `u` (of `A`).
    pub u: u64,
    /// Block column index `v`.
    pub v: u64,
    /// The block's elements (the sender's local array).
    pub data: Vec<T>,
}

impl<T> cubesim::Payload for BlockFlight<T> {
    fn elems(&self) -> usize {
        self.data.len()
    }
}

/// A mixed-encoding square two-dimensional problem: `half` processor
/// dimensions per direction, with chosen encodings before and after.
#[derive(Clone, Copy, Debug)]
pub struct MixedSpec {
    /// Row/column index bits of `A` (square blocks: `p = q`).
    pub p: u32,
    /// Processor dimensions per direction.
    pub half: u32,
    /// Row encoding (before and after — the transpose keeps per-direction
    /// encodings).
    pub row_enc: Encoding,
    /// Column encoding.
    pub col_enc: Encoding,
}

impl MixedSpec {
    /// Standard instance: binary rows, Gray columns (the paper's worked
    /// case).
    pub fn binary_rows_gray_cols(p: u32, half: u32) -> Self {
        MixedSpec { p, half, row_enc: Encoding::Binary, col_enc: Encoding::Gray }
    }

    /// The layout of `A`.
    pub fn before(&self) -> Layout {
        Layout::two_dim(
            self.p,
            self.p,
            (self.half, Assignment::Consecutive, self.row_enc),
            (self.half, Assignment::Consecutive, self.col_enc),
        )
    }

    /// The layout of `A^T` (same per-direction encodings).
    pub fn after(&self) -> Layout {
        self.before().swapped_shape()
    }

    /// Node holding block `(u, v)` of `A`: `(E_r(u) ‖ E_c(v))` over the
    /// *block* indices (the high `half` bits of each matrix index).
    pub fn node_of(&self, bu: u64, bv: u64) -> NodeId {
        NodeId(cubeaddr::concat(self.row_enc.encode(bu), self.col_enc.encode(bv), self.half))
    }
}

/// State for the block-movement pass: the blocks currently at each node.
///
/// A node may transiently hold two blocks between the row and column
/// steps of an iteration — its own (staying this iteration) and one in
/// transit (the paper's relay case, `recv(tmp); send(tmp)`); the link
/// discipline is still enforced by the simulator (one message per
/// directed link per step).
struct Pass<T> {
    /// `at[x]` = blocks currently stored at node `x`.
    at: Vec<Vec<BlockFlight<T>>>,
}

impl<T: Copy> Pass<T> {
    fn seed(spec: &MixedSpec, m: &DistMatrix<T>) -> Self {
        let num = 1usize << (2 * spec.half);
        let mut at: Vec<Vec<BlockFlight<T>>> = (0..num).map(|_| Vec::new()).collect();
        for bu in 0..(1u64 << spec.half) {
            for bv in 0..(1u64 << spec.half) {
                let x = spec.node_of(bu, bv);
                at[x.index()].push(BlockFlight { u: bu, v: bv, data: m.node(x).to_vec() });
            }
        }
        Pass { at }
    }

    /// One synchronized hop: every block for which `dim_of` returns a
    /// dimension moves across it. Blocks without a move stay.
    fn hop(
        &mut self,
        net: &mut SimNet<BlockFlight<T>>,
        mut dim_of: impl FnMut(u64, &BlockFlight<T>) -> Option<u32>,
    ) {
        let mut moving: Vec<(NodeId, u32)> = Vec::new();
        for x in 0..self.at.len() as u64 {
            let mut keep = Vec::new();
            for b in self.at[x as usize].drain(..) {
                match dim_of(x, &b) {
                    Some(d) => {
                        net.send(NodeId(x), d, b);
                        moving.push((NodeId(x).neighbor(d), d));
                    }
                    None => keep.push(b),
                }
            }
            self.at[x as usize] = keep;
        }
        net.finish_round();
        for (dst, d) in moving {
            let b = net.recv(dst, d);
            self.at[dst.index()].push(b);
        }
    }
}

/// Reassembles the output matrix: node `(E_r(v) ‖ E_c(u))` must hold
/// block `(u, v)`'s data, locally transposed.
#[track_caller]
fn rebuild<T: Copy + Default>(spec: &MixedSpec, pass: Pass<T>) -> DistMatrix<T> {
    let after = spec.after();
    let before = spec.before();
    let mut out = DistMatrix::<T>::zeroed(after.clone());
    for (x, mut slot) in pass.at.into_iter().enumerate() {
        assert_eq!(slot.len(), 1, "node {x} ended with {} blocks", slot.len());
        let mut b = slot.pop().expect("checked above");
        let want = spec.node_of(b.v, b.u);
        assert_eq!(want.index(), x, "block ({}, {}) stranded at node {x}", b.u, b.v);
        crate::inplace::transpose_serial(&mut b.data, before.local_rows(), before.local_cols());
        out.node_mut(NodeId(x as u64)).copy_from_slice(&b.data);
    }
    out
}

/// The combined conversion-and-transpose algorithm (§6.3): `n/2`
/// iterations, each fixing bit `j` of the row and column halves —
/// `n = 2·half` routing steps total.
pub fn transpose_combined<T: Copy + Default>(
    spec: &MixedSpec,
    m: &DistMatrix<T>,
    net: &mut SimNet<BlockFlight<T>>,
) -> DistMatrix<T> {
    let half = spec.half;
    let mut pass = Pass::seed(spec, m);
    for j in (0..half).rev() {
        // Row step: block (u, v) must reach row part E_r(v); fix bit j.
        pass.hop(net, |x, b| {
            let target = spec.row_enc.encode(b.v);
            let cur = x >> half;
            (((cur ^ target) >> j) & 1 == 1).then_some(half + j)
        });
        // Column step: fix bit j of the column part toward E_c(u).
        pass.hop(net, |x, b| {
            let target = spec.col_enc.encode(b.u);
            (((x ^ target) >> j) & 1 == 1).then_some(j)
        });
    }
    rebuild(spec, pass)
}

/// The naive composition (§6.3): re-encode the row field to the *column*
/// encoding and the column field to the *row* encoding (so that the plain
/// exchange transpose lands blocks on the right nodes), then transpose:
/// `2n - 2` routing steps when exactly one of the encodings is Gray.
pub fn transpose_naive_mixed<T: Copy + Default>(
    spec: &MixedSpec,
    m: &DistMatrix<T>,
    net: &mut SimNet<BlockFlight<T>>,
) -> DistMatrix<T> {
    let half = spec.half;
    let mut pass = Pass::seed(spec, m);

    // Phase 1a: convert the row field from E_r(u) to E_c(u) (only needed
    // when the encodings differ): per §6.3, a Gray↔binary conversion
    // within every column subcube, half - 1 steps.
    if spec.row_enc != spec.col_enc {
        recode_field(&mut pass, net, half, true, spec.row_enc, spec.col_enc);
        // Phase 1b: convert the column field from E_c(v) to E_r(v).
        recode_field(&mut pass, net, half, false, spec.col_enc, spec.row_enc);
    }

    // Phase 2: plain pairwise transpose — for each j descending, a row
    // hop then a column hop for blocks whose bits differ.
    for j in (0..half).rev() {
        pass.hop(net, |x, b| {
            let target = spec.col_enc.encode(b.v); // row field now holds E_c(u)
            let cur = x >> half;
            (((cur ^ target) >> j) & 1 == 1).then_some(half + j)
        });
        pass.hop(net, |x, b| {
            let target = spec.row_enc.encode(b.u); // column field now holds E_r(v)
            (((x ^ target) >> j) & 1 == 1).then_some(j)
        });
    }
    rebuild_recode(spec, pass)
}

/// Re-encodes one processor subfield in `half - 1` exchange steps: after
/// the pass, the field that encoded `E_from(idx)` encodes `E_to(idx)`.
///
/// Both conversions between binary and the binary-reflected Gray code
/// flip bit `i` exactly when the *binary* value's bit `i+1` is one, so a
/// single sweep (descending for Gray→binary, ascending for
/// binary→Gray) realizes either direction; here the target bit is
/// computed directly from the block identity, which subsumes both sweeps.
fn recode_field<T: Copy>(
    pass: &mut Pass<T>,
    net: &mut SimNet<BlockFlight<T>>,
    half: u32,
    row_field: bool,
    _from: Encoding,
    to: Encoding,
) {
    // Bits half-2 .. 0: the top bit of Gray and binary agree.
    for j in (0..half.saturating_sub(1)).rev() {
        pass.hop(net, |x, b| {
            let idx = if row_field { b.u } else { b.v };
            let target = to.encode(idx);
            let cur = if row_field { x >> half } else { x };
            let dim = if row_field { half + j } else { j };
            (((cur ^ target) >> j) & 1 == 1).then_some(dim)
        });
    }
}

/// Rebuild for the naive path, where the *final* node of block `(u, v)`
/// is `(E_c(v) ‖ E_r(u))` — the re-encoded fields — which is the same
/// physical placement `A^T` wants once its fields are read with the
/// swapped encodings. A last re-encoding pass aligns it with
/// [`MixedSpec::after`].
#[track_caller]
fn rebuild_recode<T: Copy + Default>(spec: &MixedSpec, pass: Pass<T>) -> DistMatrix<T> {
    // After phase 2 the block (u,v) sits at (E_c(v) ‖ E_r(u)); the target
    // layout wants (E_r(v) ‖ E_c(u)). When the encodings differ these are
    // different nodes unless we re-encode back. The paper's accounting
    // (2n - 2 steps) covers getting the data to (E_c(v) ‖ E_r(u)) with
    // the transposed interpretation: the subsequent fields are simply
    // *declared* with the swapped encodings. We instead normalize to
    // `after()` so both algorithms produce identical matrices; the extra
    // steps are physical-placement alignment, counted separately by the
    // caller if desired.
    let after_swapped = Layout::two_dim(
        spec.p,
        spec.p,
        (spec.half, Assignment::Consecutive, spec.col_enc),
        (spec.half, Assignment::Consecutive, spec.row_enc),
    );
    let before = spec.before();
    let mut out = DistMatrix::<T>::zeroed(after_swapped);
    for (x, mut slot) in pass.at.into_iter().enumerate() {
        assert_eq!(slot.len(), 1, "node {x} ended with {} blocks", slot.len());
        let mut b = slot.pop().expect("checked above");
        let want = cubeaddr::concat(spec.col_enc.encode(b.v), spec.row_enc.encode(b.u), spec.half);
        assert_eq!(want, x as u64, "block ({}, {}) stranded at node {x}", b.u, b.v);
        crate::inplace::transpose_serial(&mut b.data, before.local_rows(), before.local_cols());
        out.node_mut(NodeId(x as u64)).copy_from_slice(&b.data);
    }
    out
}

/// Re-encodes a mixed-encoding matrix in place on the cube: converts the
/// row and/or column processor fields between binary and Gray encodings
/// *without* transposing, in at most `half - 1` exchange steps per
/// changed field (the conversion of §6.3's first paragraph; the top bit
/// never moves because binary and Gray codes share it).
///
/// Returns the re-encoded matrix (laid out per the new encodings).
pub fn recode_encodings<T: Copy + Default>(
    spec: &MixedSpec,
    m: &DistMatrix<T>,
    net: &mut SimNet<BlockFlight<T>>,
    row_to: Encoding,
    col_to: Encoding,
) -> DistMatrix<T> {
    let half = spec.half;
    let mut pass = Pass::seed(spec, m);
    if spec.row_enc != row_to {
        recode_field(&mut pass, net, half, true, spec.row_enc, row_to);
    }
    if spec.col_enc != col_to {
        recode_field(&mut pass, net, half, false, spec.col_enc, col_to);
    }
    let new_spec = MixedSpec { p: spec.p, half, row_enc: row_to, col_enc: col_to };
    let mut out = DistMatrix::<T>::zeroed(new_spec.before());
    for (x, mut slot) in pass.at.into_iter().enumerate() {
        assert_eq!(slot.len(), 1, "node {x} ended with {} blocks", slot.len());
        let b = slot.pop().expect("checked above");
        assert_eq!(new_spec.node_of(b.u, b.v).index(), x, "block ({}, {}) stranded", b.u, b.v);
        out.node_mut(NodeId(x as u64)).copy_from_slice(&b.data);
    }
    out
}

/// Verifies a mixed-encoding transpose output against the spec: the
/// element `(r, c)` of the produced `A^T` must equal element `(c, r)` of
/// the label input.
#[track_caller]
pub fn assert_mixed_transposed(
    _spec: &MixedSpec,
    before_labels: &DistMatrix<u64>,
    out: &DistMatrix<u64>,
) {
    let a = before_labels.gather();
    let b = out.gather();
    for (r, row) in b.iter().enumerate() {
        for (c, val) in row.iter().enumerate() {
            assert_eq!(*val, a[c][r], "A^T[{r}][{c}]");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::labels;
    use cubesim::{MachineParams, PortMode};

    fn net(n: u32) -> SimNet<BlockFlight<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::AllPorts))
    }

    #[test]
    fn combined_transposes_binary_rows_gray_cols() {
        for (p, half) in [(3, 2), (4, 2), (4, 3)] {
            let spec = MixedSpec::binary_rows_gray_cols(p, half);
            let m = labels(spec.before());
            let mut net = net(2 * half);
            let out = transpose_combined(&spec, &m, &mut net);
            assert_mixed_transposed(&spec, &m, &out);
            let r = net.finalize();
            assert_eq!(r.rounds, 2 * half as usize, "n routing steps");
        }
    }

    #[test]
    fn combined_handles_all_encoding_pairs() {
        for row_enc in [Encoding::Binary, Encoding::Gray] {
            for col_enc in [Encoding::Binary, Encoding::Gray] {
                let spec = MixedSpec { p: 4, half: 2, row_enc, col_enc };
                let m = labels(spec.before());
                let mut net = net(4);
                let out = transpose_combined(&spec, &m, &mut net);
                assert_mixed_transposed(&spec, &m, &out);
                net.finalize();
            }
        }
    }

    #[test]
    fn naive_matches_combined_result() {
        let spec = MixedSpec::binary_rows_gray_cols(4, 2);
        let m = labels(spec.before());
        let mut net1 = net(4);
        let combined = transpose_combined(&spec, &m, &mut net1);
        let mut net2 = net(4);
        let naive = transpose_naive_mixed(&spec, &m, &mut net2);
        assert_mixed_transposed(&spec, &m, &naive);
        // Same dense content even though the two outputs use swapped
        // field encodings internally.
        assert_eq!(combined.gather(), naive.gather());
    }

    #[test]
    fn naive_needs_2n_minus_2_steps() {
        let spec = MixedSpec::binary_rows_gray_cols(4, 3);
        let n = 2 * spec.half as usize;
        let m = labels(spec.before());
        let mut net2 = net(6);
        let _ = transpose_naive_mixed(&spec, &m, &mut net2);
        let r = net2.finalize();
        assert_eq!(r.rounds, 2 * n - 2, "naive round count");
    }

    #[test]
    fn combined_beats_naive_time() {
        // Figure 15: the combined algorithm's advantage approaches
        // (2n-2)/n for transfer-dominated runs.
        let spec = MixedSpec::binary_rows_gray_cols(5, 2);
        let m = labels(spec.before());
        let params = MachineParams::unit(PortMode::AllPorts);
        let mut net1: SimNet<BlockFlight<u64>> = SimNet::new(4, params.clone());
        let _ = transpose_combined(&spec, &m, &mut net1);
        let r1 = net1.finalize();
        let mut net2: SimNet<BlockFlight<u64>> = SimNet::new(4, params);
        let _ = transpose_naive_mixed(&spec, &m, &mut net2);
        let r2 = net2.finalize();
        assert!(r1.time < r2.time, "combined {} vs naive {}", r1.time, r2.time);
        let ratio = r2.time / r1.time;
        let n = 4.0;
        assert!((ratio - (2.0 * n - 2.0) / n).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn recode_gray_to_binary_and_back() {
        let spec = MixedSpec::binary_rows_gray_cols(4, 3);
        let m = labels(spec.before());
        let mut net1 = net(6);
        // Columns Gray → binary (half - 1 = 2 steps).
        let bin = recode_encodings(&spec, &m, &mut net1, Encoding::Binary, Encoding::Binary);
        let r = net1.finalize();
        assert_eq!(r.rounds, 2, "half - 1 exchange steps");
        // Placement now matches the all-binary layout.
        let bin_spec =
            MixedSpec { p: 4, half: 3, row_enc: Encoding::Binary, col_enc: Encoding::Binary };
        let want = labels(bin_spec.before());
        assert_eq!(bin, want);
        // Back to Gray columns: identity roundtrip.
        let mut net2 = net(6);
        let back = recode_encodings(&bin_spec, &bin, &mut net2, Encoding::Binary, Encoding::Gray);
        assert_eq!(back, m);
    }

    #[test]
    fn recode_both_fields() {
        let spec = MixedSpec { p: 3, half: 2, row_enc: Encoding::Gray, col_enc: Encoding::Gray };
        let m = labels(spec.before());
        let mut net1 = net(4);
        let out = recode_encodings(&spec, &m, &mut net1, Encoding::Binary, Encoding::Binary);
        let r = net1.finalize();
        assert_eq!(r.rounds, 2, "(half-1) per changed field");
        let want_spec =
            MixedSpec { p: 3, half: 2, row_enc: Encoding::Binary, col_enc: Encoding::Binary };
        assert_eq!(out, labels(want_spec.before()));
    }

    #[test]
    fn pure_binary_combined_equals_plain_transpose() {
        // With binary encodings on both sides the combined algorithm is
        // the plain n-step pairwise transpose.
        let spec =
            MixedSpec { p: 4, half: 2, row_enc: Encoding::Binary, col_enc: Encoding::Binary };
        let m = labels(spec.before());
        let mut n1 = net(4);
        let out = transpose_combined(&spec, &m, &mut n1);
        assert_mixed_transposed(&spec, &m, &out);
        let r = n1.finalize();
        assert_eq!(r.rounds, 4);
    }
}
