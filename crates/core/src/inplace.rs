//! In-place local transpose via the C2R/R2C decomposition.
//!
//! Every local transpose in the engine used to round-trip through an
//! `O(mn)` staging buffer: gather the permuted array into a pooled
//! scratch block, copy it back. This module replaces that with the
//! decomposition of Catanzaro, Keller & Garland, *A Decomposition for
//! In-place Matrix Transposition* (PPoPP 2014): transposition of a
//! row-major `m × n` buffer factors into three passes that each permute
//! only **within** rows or only **within** columns,
//!
//! 1. **column rotation** — column `j` rotates up by `⌊j/q⌋` where
//!    `q = n/c`, `c = gcd(m, n)` (the identity when `c = 1`, so the pass
//!    is skipped);
//! 2. **row shuffle** — row `i` scatters its element at column `j` to
//!    column `d_i(j) = (i + jm) mod n` (generalized for `c > 1` by the
//!    rotation term: `d_i(j) = (jm + (i + ⌊j/q⌋) mod m) mod n`);
//! 3. **column shuffle** — column `j` gathers its element for row `i`
//!    from row `g_j(i) = (in + j − ⌊ic/m⌋) mod m`.
//!
//! Because each pass is independent per row (or per column), the passes
//! parallelize over [`cubesim::par`] with no coordination beyond the
//! barrier between passes, and the result is byte-identical at any
//! worker count. Auxiliary space is `O(max(m, n))` per worker (one row
//! or one column-strip staging buffer), never `O(mn)` — the
//! counting-allocator gate in [`crate::local`]'s test module pins this.
//!
//! The closed forms were re-derived for this codebase and are verified
//! exhaustively against the naive out-of-place transpose for every shape
//! up to 24 × 24 (plus degenerate and coprime families) by the unit and
//! property tests.
//!
//! # Index-function derivation (why these closed forms)
//!
//! Label the element at grid position `(i, j)` by its flat address
//! `l = in + j`; after transposition it must sit at `l' = jm + i`
//! (row-major of the `n × m` transpose). Writing `j = wq + t` with
//! `t < q` and using `qm ≡ 0 (mod n)` (`qm = (n/c)m = n(m/c)`), the
//! final column of `l` is `l' mod n ≡ (i + w) mod m (mod c)` — so
//! rotating column `j` by `w = ⌊j/q⌋` makes the destination column a
//! **bijection within every row** (the collisions of the naive
//! `d_i(j) = (i + jm) mod n` for `gcd(m, n) > 1` disappear), and the
//! remaining row fix-up is the affine per-column gather `g_j`.

use cubesim::par;

/// Maximum elements in one column-strip staging buffer (per worker).
/// Strips narrow automatically for tall matrices so the staging stays
/// `O(max(m, n))` with a small constant, never `O(mn)`.
const SCRATCH_ELEMS: usize = 1 << 16;

/// Widest column strip staged at once by the column passes.
const STRIP: usize = 32;

/// Transposes a row-major `rows × cols` buffer in place (the buffer
/// becomes the row-major `cols × rows` transpose), using
/// [`par::num_threads`] workers.
///
/// # Panics
/// If `data.len() != rows · cols`.
#[track_caller]
pub fn transpose<T: Copy + Send>(data: &mut [T], rows: usize, cols: usize) {
    transpose_with(par::num_threads(), data, rows, cols);
}

/// [`transpose`] with an explicit worker count.
#[track_caller]
pub fn transpose_with<T: Copy + Send>(threads: usize, data: &mut [T], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "buffer is not rows x cols");
    if is_trivial(rows, cols) {
        return;
    }
    let geom = Geom::new(rows, cols);
    if threads <= 1 {
        run_serial(data, &geom);
    } else {
        run_parallel(threads, data, &geom);
    }
}

/// Serial [`transpose`]: same permutation, no worker fan-out and no
/// `Send` bound — the entry point for code already running *inside* a
/// parallel region (per-node plan application, SPMD node programs).
#[track_caller]
pub fn transpose_serial<T: Copy>(data: &mut [T], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "buffer is not rows x cols");
    if is_trivial(rows, cols) {
        return;
    }
    run_serial(data, &Geom::new(rows, cols));
}

/// Converts a column-major `m × n` matrix to row-major in place
/// (Catanzaro et al.'s C2R direction). A column-major `m × n` buffer
/// *is* the row-major `n × m` transpose, so this is
/// `transpose(data, n, m)`.
#[track_caller]
pub fn c2r<T: Copy + Send>(data: &mut [T], m: usize, n: usize) {
    transpose(data, n, m);
}

/// Converts a row-major `m × n` matrix to column-major in place (the
/// R2C direction, inverse of [`c2r`] at the same shape).
#[track_caller]
pub fn r2c<T: Copy + Send>(data: &mut [T], m: usize, n: usize) {
    transpose(data, m, n);
}

/// A `1 × k`, `k × 1` or empty buffer transposes to itself.
fn is_trivial(rows: usize, cols: usize) -> bool {
    rows <= 1 || cols <= 1
}

/// Peak auxiliary elements one worker stages while transposing a
/// `rows × cols` buffer — the kernel's scratch footprint, reported by
/// the `local_kernels` bench next to the O(rows·cols) staging of the
/// out-of-place paths. Zero for the square swap path; otherwise the
/// larger of the column-strip buffer and the row-pass buffer.
pub fn scratch_elems(rows: usize, cols: usize) -> usize {
    if is_trivial(rows, cols) || rows == cols {
        return 0;
    }
    if rows.is_multiple_of(cols) || cols.is_multiple_of(rows) {
        // One chunk temporary plus the cycle-following visited bits
        // (counted conservatively as one element per chunk).
        return rows.min(cols) + rows.max(cols);
    }
    let geom = Geom::new(rows, cols);
    (geom.strip() * rows).max(cols)
}

/// Shape constants shared by the three passes.
struct Geom {
    rows: usize,
    cols: usize,
    /// `gcd(rows, cols)`.
    c: usize,
    /// `cols / c`: the rotation amount advances every `q` columns.
    q: usize,
}

impl Geom {
    fn new(rows: usize, cols: usize) -> Geom {
        let c = gcd(rows, cols);
        Geom { rows, cols, c, q: cols / c }
    }

    /// Column-strip width: wide enough to amortize the strided column
    /// walk, narrow enough that `width · rows` staging stays bounded.
    fn strip(&self) -> usize {
        STRIP.min(self.cols).min((SCRATCH_ELEMS / self.rows).max(1))
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn run_serial<T: Copy>(data: &mut [T], geom: &Geom) {
    if geom.rows == geom.cols {
        square_serial(data, geom.rows);
        return;
    }
    if geom.rows.is_multiple_of(geom.cols) || geom.cols.is_multiple_of(geom.rows) {
        divisible_serial(data, geom.rows, geom.cols);
        return;
    }
    let mut scratch: Vec<T> = Vec::new();
    if geom.c > 1 {
        let mut panel = Panel { j0: 0, rows: data.chunks_exact_mut(geom.cols).collect() };
        rotate_panel(&mut panel, geom, &mut scratch);
    }
    for (x, row) in data.chunks_exact_mut(geom.cols).enumerate() {
        shuffle_row(x, row, geom, &mut scratch);
    }
    let mut panel = Panel { j0: 0, rows: data.chunks_exact_mut(geom.cols).collect() };
    col_shuffle_panel(&mut panel, geom, &mut scratch);
}

fn run_parallel<T: Copy + Send>(threads: usize, data: &mut [T], geom: &Geom) {
    if geom.c > 1 {
        let mut panels = vertical_panels(data, geom.cols, threads);
        par::par_for_each_mut_with(threads, &mut panels, |_, panel| {
            rotate_panel(panel, geom, &mut Vec::new());
        });
    }
    {
        // Rows are contiguous: fan static groups of whole rows out, one
        // staging buffer per group.
        let mut rows: Vec<&mut [T]> = data.chunks_exact_mut(geom.cols).collect();
        let group = rows.len().div_ceil(threads.max(1));
        let mut groups: Vec<(usize, &mut [&mut [T]])> = Vec::with_capacity(threads);
        let mut rest = rows.as_mut_slice();
        let mut base = 0;
        while !rest.is_empty() {
            let take = group.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            groups.push((base, head));
            base += take;
            rest = tail;
        }
        par::par_for_each_mut_with(threads, &mut groups, |_, (first, rows)| {
            let mut scratch: Vec<T> = Vec::new();
            for (k, row) in rows.iter_mut().enumerate() {
                shuffle_row(*first + k, row, geom, &mut scratch);
            }
        });
    }
    {
        let mut panels = vertical_panels(data, geom.cols, threads);
        par::par_for_each_mut_with(threads, &mut panels, |_, panel| {
            col_shuffle_panel(panel, geom, &mut Vec::new());
        });
    }
}

/// Square fast path: pairwise element swaps, tiled so both the `(i, j)`
/// read stream and the `(j, i)` write stream stay cache-resident — two
/// triangular sweeps of traffic instead of the three full passes of the
/// general decomposition, and zero scratch.
fn square_serial<T: Copy>(data: &mut [T], n: usize) {
    const TILE: usize = 32;
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + TILE).min(n);
        for i in i0..i1 {
            for j in (i + 1)..i1 {
                data.swap(i * n + j, j * n + i);
            }
        }
        let mut j0 = i1;
        while j0 < n {
            let j1 = (j0 + TILE).min(n);
            for i in i0..i1 {
                for j in j0..j1 {
                    data.swap(i * n + j, j * n + i);
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
}

/// Fast path when one side divides the other (every power-of-two local
/// block in the engine): the matrix splits into square blocks —
/// `rows/cols` stacked vertically when `rows > cols`, `cols/rows` side
/// by side when `cols > rows`. Each square block transposes in place
/// via [`square_serial`], and gluing the block-transposes into the
/// final row-major layout is a *grid* transpose over whole
/// `min(rows, cols)`-element chunks, done by cycle-following with one
/// chunk-sized temporary — every move a contiguous `memcpy`.
fn divisible_serial<T: Copy>(data: &mut [T], rows: usize, cols: usize) {
    if rows > cols {
        // M stacked cols × cols squares. Block i's row k (a cols-chunk at
        // chunk index i·cols + k) belongs at final row k, block-column i
        // (chunk index k·M + i): a chunk-grid transpose of M × cols.
        let m = rows / cols;
        for b in 0..m {
            square_serial(&mut data[b * cols * cols..(b + 1) * cols * cols], cols);
        }
        chunk_grid_transpose(data, m, cols, cols);
    } else {
        // M side-by-side rows × rows squares. Row r holds chunk i of
        // every block (chunk index r·M + i); regrouping block-contiguous
        // (chunk index i·rows + r) is the chunk-grid transpose of
        // rows × M, after which each block transposes in place.
        let m = cols / rows;
        chunk_grid_transpose(data, rows, m, rows);
        for b in 0..m {
            square_serial(&mut data[b * rows * rows..(b + 1) * rows * rows], rows);
        }
    }
}

/// Transposes a `gr × gc` grid of `clen`-element chunks in place by
/// cycle-following: each cycle is peeled with one chunk-sized temporary,
/// every other move a contiguous `copy_within`. Auxiliary space is one
/// chunk plus a visited bit per chunk — O(max(rows, cols)) overall.
fn chunk_grid_transpose<T: Copy>(data: &mut [T], gr: usize, gc: usize, clen: usize) {
    let n = gr * gc;
    debug_assert_eq!(data.len(), n * clen);
    // Position `cur` of the transposed grid receives the chunk at grid
    // position (cur mod gr, cur div gr) of the original.
    let inv = |cur: usize| (cur % gr) * gc + cur / gr;
    let mut visited = vec![false; n];
    let mut tmp: Vec<T> = Vec::with_capacity(clen);
    for s0 in 0..n {
        if visited[s0] {
            continue;
        }
        visited[s0] = true;
        if inv(s0) == s0 {
            continue;
        }
        tmp.clear();
        tmp.extend_from_slice(&data[s0 * clen..(s0 + 1) * clen]);
        let mut cur = s0;
        loop {
            let src = inv(cur);
            if src == s0 {
                data[cur * clen..(cur + 1) * clen].copy_from_slice(&tmp);
                break;
            }
            data.copy_within(src * clen..(src + 1) * clen, cur * clen);
            visited[src] = true;
            cur = src;
        }
    }
}

/// A contiguous range of columns, held as one `&mut` row segment per
/// matrix row — the safe-Rust handle for mutating a vertical stripe of a
/// row-major buffer from its own worker.
struct Panel<'a, T> {
    /// Absolute column index of the panel's first column.
    j0: usize,
    /// `rows[i]` = the panel's segment of matrix row `i`.
    rows: Vec<&'a mut [T]>,
}

/// Splits the buffer into `want` near-equal vertical panels (`O(rows)`
/// slice handles per panel; no elements are copied).
fn vertical_panels<'a, T>(data: &'a mut [T], cols: usize, want: usize) -> Vec<Panel<'a, T>> {
    let k = want.clamp(1, cols);
    let base = cols / k;
    let extra = cols % k;
    let width = |p: usize| base + usize::from(p < extra);
    let mut j0 = 0;
    let mut panels: Vec<Panel<'a, T>> = (0..k)
        .map(|p| {
            let panel = Panel { j0, rows: Vec::new() };
            j0 += width(p);
            panel
        })
        .collect();
    for row in data.chunks_exact_mut(cols) {
        let mut rest = row;
        for (p, panel) in panels.iter_mut().enumerate() {
            let (seg, tail) = rest.split_at_mut(width(p));
            panel.rows.push(seg);
            rest = tail;
        }
    }
    panels
}

/// Pass 1: rotate every column `j` of the panel up by `⌊j/q⌋` rows.
/// Strip-buffered: a strip of columns is staged row-major (sequential
/// reads), then written back rotated with per-column incremental source
/// cursors — no division or multiplication in the element loop.
fn rotate_panel<T: Copy>(panel: &mut Panel<'_, T>, geom: &Geom, scratch: &mut Vec<T>) {
    let rows = geom.rows;
    let width = panel.rows.first().map_or(0, |r| r.len());
    let strip = geom.strip();
    let mut src = vec![0usize; strip];
    let mut s = 0;
    while s < width {
        let w = strip.min(width - s);
        scratch.clear();
        for row in panel.rows.iter() {
            scratch.extend_from_slice(&row[s..s + w]);
        }
        for (jj, slot) in src[..w].iter_mut().enumerate() {
            *slot = (panel.j0 + s + jj) / geom.q; // rotation amount < c <= rows
        }
        for row in panel.rows.iter_mut() {
            for (jj, slot) in row[s..s + w].iter_mut().enumerate() {
                *slot = scratch[src[jj] * w + jj];
                src[jj] += 1;
                if src[jj] == rows {
                    src[jj] = 0;
                }
            }
        }
        s += w;
    }
}

/// Pass 2: scatter row `x`'s element at column `j` to column
/// `d_x(j) = (j·rows + (x + ⌊j/q⌋) mod rows) mod cols`, staging the
/// permuted row in `scratch` and copying it back. All cursor updates are
/// increment-and-wrap.
fn shuffle_row<T: Copy>(x: usize, row: &mut [T], geom: &Geom, scratch: &mut Vec<T>) {
    let (rows, cols, q) = (geom.rows, geom.cols, geom.q);
    scratch.clear();
    scratch.extend_from_slice(row);
    let step = rows % cols;
    let mut t1 = 0usize; // (j·rows) mod cols
    let mut t2 = x; // (x + ⌊j/q⌋) mod rows
    let mut t2m = x % cols; // t2 mod cols
    let mut in_q = 0usize; // j mod q
    for &v in scratch.iter() {
        let mut d = t1 + t2m;
        if d >= cols {
            d -= cols;
        }
        row[d] = v;
        t1 += step;
        if t1 >= cols {
            t1 -= cols;
        }
        in_q += 1;
        if in_q == q {
            in_q = 0;
            t2 += 1;
            if t2 == rows {
                t2 = 0;
                t2m = 0;
            } else {
                t2m += 1;
                if t2m == cols {
                    t2m = 0;
                }
            }
        }
    }
}

/// Pass 3: gather column `j`'s element for row `i` from row
/// `g_j(i) = (i·cols + j − ⌊i·c/rows⌋) mod rows`. Strip-buffered like
/// [`rotate_panel`], with an incremental `(source, remainder)` cursor
/// per column (`⌊i·c/rows⌋` advances by the carry of `rem += c`).
fn col_shuffle_panel<T: Copy>(panel: &mut Panel<'_, T>, geom: &Geom, scratch: &mut Vec<T>) {
    let (rows, cols, c) = (geom.rows, geom.cols, geom.c);
    let width = panel.rows.first().map_or(0, |r| r.len());
    let strip = geom.strip();
    let step = cols % rows;
    let mut src = vec![0usize; strip];
    let mut rem = vec![0usize; strip];
    let mut s = 0;
    while s < width {
        let w = strip.min(width - s);
        scratch.clear();
        for row in panel.rows.iter() {
            scratch.extend_from_slice(&row[s..s + w]);
        }
        for jj in 0..w {
            src[jj] = (panel.j0 + s + jj) % rows; // g_j(0) = j mod rows
            rem[jj] = 0;
        }
        for row in panel.rows.iter_mut() {
            for (jj, slot) in row[s..s + w].iter_mut().enumerate() {
                *slot = scratch[src[jj] * w + jj];
                // Advance to g_j(i+1): add cols, subtract the carry of
                // ⌊(i+1)c/rows⌋, renormalize into [0, rows).
                rem[jj] += c;
                let carry = usize::from(rem[jj] >= rows);
                if carry == 1 {
                    rem[jj] -= rows;
                }
                let mut next = src[jj] + step + rows - carry;
                while next >= rows {
                    next -= rows;
                }
                src[jj] = next;
            }
        }
        s += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive<T: Copy>(data: &[T], rows: usize, cols: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(data.len());
        for c in 0..cols {
            for r in 0..rows {
                out.push(data[r * cols + c]);
            }
        }
        out
    }

    #[test]
    fn matches_naive_for_every_small_shape() {
        for rows in 1..=24 {
            for cols in 1..=24 {
                let data: Vec<u32> = (0..(rows * cols) as u32).collect();
                let mut got = data.clone();
                transpose_with(1, &mut got, rows, cols);
                assert_eq!(got, naive(&data, rows, cols), "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn coprime_and_gcd_families_parallel() {
        for (rows, cols) in [
            (3, 5),
            (5, 3),
            (7, 16),
            (16, 7),
            (12, 8),
            (8, 12),
            (9, 6),
            (64, 48),
            (16, 16),
            (33, 33),
        ] {
            let data: Vec<u64> = (0..(rows * cols) as u64).collect();
            let expect = naive(&data, rows, cols);
            for threads in [1usize, 2, 3, 5] {
                let mut got = data.clone();
                transpose_with(threads, &mut got, rows, cols);
                assert_eq!(got, expect, "{rows}x{cols} at {threads} threads");
            }
        }
    }

    #[test]
    fn degenerate_shapes_are_identity() {
        for (rows, cols) in [(1, 9), (9, 1), (1, 1), (0, 5), (5, 0)] {
            let data: Vec<u64> = (0..(rows * cols) as u64).collect();
            let mut got = data.clone();
            transpose(&mut got, rows, cols);
            assert_eq!(got, data, "{rows}x{cols}");
        }
    }

    #[test]
    fn narrow_strip_path_tall_matrix() {
        // rows large enough that the strip narrows below STRIP.
        let rows = SCRATCH_ELEMS / 8;
        let cols = 24;
        let data: Vec<u32> = (0..(rows * cols) as u32).collect();
        let mut got = data.clone();
        transpose_with(2, &mut got, rows, cols);
        assert_eq!(got, naive(&data, rows, cols));
    }

    #[test]
    fn c2r_r2c_roundtrip() {
        for (m, n) in [(4, 6), (6, 4), (5, 7), (8, 8), (1, 5), (16, 2)] {
            let data: Vec<u64> = (0..(m * n) as u64).collect();
            let mut buf = data.clone();
            r2c(&mut buf, m, n);
            c2r(&mut buf, m, n);
            assert_eq!(buf, data, "{m}x{n}");
        }
    }

    #[test]
    fn square_goes_through_the_same_path() {
        let n = 17;
        let data: Vec<u64> = (0..(n * n) as u64).collect();
        let mut got = data.clone();
        transpose(&mut got, n, n);
        assert_eq!(got, naive(&data, n, n));
    }

    #[test]
    #[should_panic(expected = "rows x cols")]
    fn shape_mismatch_rejected() {
        let mut data = vec![0u8; 5];
        transpose(&mut data, 2, 3);
    }
}
