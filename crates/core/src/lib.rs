//! Matrix transposition algorithms on Boolean *n*-cube configured
//! ensemble architectures — the primary contribution of Johnsson & Ho
//! (YALEU/DCS/TR-572, 1987).
//!
//! The crate provides every transpose algorithm of the paper, executable
//! on the `cubesim` cost-model simulator (data really moves;
//! time, start-ups and link loads are accounted):
//!
//! * [`fieldmap`] — the *general exchange algorithm* engine (Definitions
//!   10–11): any rearrangement expressible as pairings of address-field
//!   dimensions — real↔virtual exchanges (distance 1), real↔real swaps
//!   (distance 2), and free virtual↔virtual relabelings — executed with
//!   exact cost accounting. The standard exchange algorithm, the §6.2
//!   assignment-scheme conversions, bit reversal and dimension
//!   permutations are all instances.
//! * [`one_dim`] — one-dimensional-partitioning transposes (§5): the
//!   standard exchange algorithm with the §8.1 buffering policies, and
//!   the n-port SBnT-routed variant.
//! * [`two_dim`] — the pairwise two-dimensional transposes of §6.1:
//!   Single Path (SPT), Dual Paths (DPT) and Multiple Paths (MPT)
//!   pipelined packet algorithms with their edge-disjoint path systems.
//! * [`convert`] — §6.2: transposition with change of assignment scheme
//!   (consecutive ↔ cyclic), algorithms 1, 2 and 3.
//! * [`gray`] — §6.3: Gray↔binary re-encoding transposes: the naive
//!   `2n - 2`-step composition and the combined `n`-step algorithm.
//! * [`permute`] — §7: bit-reversal, dimension permutations by parallel
//!   swapping (Lemma 15), and arbitrary permutations via two all-to-all
//!   personalized communications.
//! * [`local`] — in-node dense transpose kernels (naive, blocked, and
//!   cache-oblivious) used by the conversion algorithms and examples.
//! * [`inplace`] — the C2R/R2C in-place transpose decomposition
//!   (Catanzaro et al., PPoPP 2014): O(mn) work, O(max(m,n)) auxiliary
//!   space, each pass independently parallel.
//! * [`verify`] — helpers asserting that a distributed matrix really is
//!   the transpose of its input (label tracking).

pub mod convert;
pub mod driver;
pub mod fieldmap;
pub mod gray;
pub mod inplace;
pub mod local;
pub mod one_dim;
pub mod permute;
#[doc(hidden)]
pub mod reference;
pub mod relayout;
pub mod spmd;
pub mod two_dim;
pub mod verify;

pub use driver::{execute, plan, Choice};
pub use fieldmap::{FieldMap, MappedMatrix, SendPolicy};
pub use one_dim::{transpose_1d_exchange, transpose_1d_sbnt, transpose_stepwise};
pub use relayout::relayout;
pub use two_dim::{transpose_dpt, transpose_mpt, transpose_spt, transpose_spt_stepwise};
