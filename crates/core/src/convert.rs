//! Transposition with change of assignment scheme (§6.2).
//!
//! The worked case of the paper: a matrix stored *consecutively* in both
//! directions (two-dimensional partitioning, `n_r = n_c`, `p, q ≥ 2n_r`)
//! must end up transposed and stored *cyclically* in both directions.
//! Writing the address field as `(u1 u2 u3 v1 v2 v3)` — `u1, u3, v1, v3`
//! of `n_r` dimensions each, `u1, v1` real before, `u3, v3` real after —
//! the paper gives three algorithms:
//!
//! 1. consecutive→cyclic rows (`u1 ↔ u3`), consecutive→cyclic columns
//!    (`v1 ↔ v3`), then transpose globally (swap the real halves) and
//!    locally: `2n` communication steps;
//! 2. local transpose first, then `u1 ↔ v3` and `v1 ↔ u3` exchanges, then
//!    local transposes of the `N` small matrices: `n` communication
//!    steps plus two local rearrangements;
//! 3. exchange `u1 ↔ v3` (within column subcubes) and `v1 ↔ u3` (within
//!    row subcubes) directly, then a local shuffle if `p > 2n_r`: `n`
//!    communication steps, no pre-transpose.
//!
//! All three run on the field-map engine and are verified to produce the
//! same distributed matrix.

use crate::fieldmap::{FieldMap, MappedMatrix, SendPolicy};
use crate::one_dim::fieldmap_after;
use cubelayout::{Assignment, DistMatrix, Encoding, Layout, TransposeSpec};
use cubesim::SimNet;

/// The §6.2 problem instance: `2^p × 2^q`, `n_r = n_c` processor
/// dimensions per direction, consecutive before, cyclic after.
#[derive(Clone, Copy, Debug)]
pub struct ConvertSpec {
    /// Row-index bits.
    pub p: u32,
    /// Column-index bits.
    pub q: u32,
    /// Processor dimensions per direction.
    pub n_r: u32,
}

impl ConvertSpec {
    /// Validates `p, q ≥ 2·n_r` (the paper's assumption).
    #[track_caller]
    pub fn new(p: u32, q: u32, n_r: u32) -> Self {
        assert!(p >= 2 * n_r && q >= 2 * n_r, "need p, q ≥ 2·n_r");
        ConvertSpec { p, q, n_r }
    }

    /// The consecutive/consecutive layout of `A`.
    pub fn before(&self) -> Layout {
        Layout::two_dim(
            self.p,
            self.q,
            (self.n_r, Assignment::Consecutive, Encoding::Binary),
            (self.n_r, Assignment::Consecutive, Encoding::Binary),
        )
    }

    /// The cyclic/cyclic layout of `A^T`.
    pub fn after(&self) -> Layout {
        Layout::two_dim(
            self.q,
            self.p,
            (self.n_r, Assignment::Cyclic, Encoding::Binary),
            (self.n_r, Assignment::Cyclic, Encoding::Binary),
        )
    }

    fn spec(&self) -> TransposeSpec {
        TransposeSpec::with_after(self.before(), self.after())
    }

    /// Matrix-address dimensions (in `w = (u‖v)` space) of the four
    /// fields: `(u1, u3, v1, v3)`, each as the list of dims ascending.
    fn fields(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let (p, q, nr) = (self.p, self.q, self.n_r);
        let u1 = (q + p - nr..q + p).collect();
        let u3 = (q..q + nr).collect();
        let v1 = (q - nr..q).collect();
        let v3 = (0..nr).collect();
        (u1, u3, v1, v3)
    }
}

fn start<T: Copy>(spec: &ConvertSpec, m: &DistMatrix<T>) -> MappedMatrix<T> {
    let map = FieldMap::from_layout(&spec.before());
    MappedMatrix::from_buffers(map, m.clone().into_buffers())
}

fn finish<T: Copy + Default + Send + Sync>(
    spec: &ConvertSpec,
    mut mapped: MappedMatrix<T>,
) -> DistMatrix<T> {
    let target = fieldmap_after(&spec.spec());
    // The algorithms leave the real roles correct; align the virtual
    // interpretation for free (indirect addressing).
    let perm: Vec<u32> = (0..target.vp())
        .map(|jn| match mapped.map().locate(target.virt_dim(jn)) {
            crate::fieldmap::Role::Virt(jo) => jo,
            crate::fieldmap::Role::Real(_) => panic!("real roles not fixed"),
        })
        .collect();
    mapped.relabel_virt(&perm);
    assert_eq!(mapped.map(), &target);
    DistMatrix::from_buffers(spec.after(), mapped.into_buffers())
}

/// Swaps the data so that the real position currently encoding matrix
/// dimension `from` encodes `to` instead (which must be virtual).
fn bring_in<T: Copy + Send + Sync>(
    mapped: &mut MappedMatrix<T>,
    net: &mut SimNet<Vec<T>>,
    from: u32,
    to: u32,
    policy: SendPolicy,
) {
    let i = match mapped.map().locate(from) {
        crate::fieldmap::Role::Real(i) => i,
        r => panic!("dimension {from} should be real, is {r:?}"),
    };
    let j = match mapped.map().locate(to) {
        crate::fieldmap::Role::Virt(j) => j,
        r => panic!("dimension {to} should be virtual, is {r:?}"),
    };
    mapped.exchange_real_virt(net, i, j, policy);
}

/// Algorithm 1: convert rows, convert columns, then transpose globally
/// and locally (`2n` communication steps: `2·n_r` exchanges plus `n_r`
/// distance-2 swaps).
pub fn convert_algorithm1<T: Copy + Default + Send + Sync>(
    spec: &ConvertSpec,
    m: &DistMatrix<T>,
    net: &mut SimNet<Vec<T>>,
    policy: SendPolicy,
) -> DistMatrix<T> {
    let (u1, u3, v1, v3) = spec.fields();
    let mut mm = start(spec, m);
    // (u1 u2 u3 v1 v2 v3) → (u1 u2 [u3] v1 v2 v3): rows consecutive→cyclic.
    for (&a, &b) in u1.iter().zip(&u3) {
        bring_in(&mut mm, net, a, b, policy);
    }
    // Columns consecutive→cyclic.
    for (&a, &b) in v1.iter().zip(&v3) {
        bring_in(&mut mm, net, a, b, policy);
    }
    // Global transpose: swap the row-real and column-real halves.
    for (&a, &b) in u3.iter().zip(&v3) {
        let i = match mm.map().locate(a) {
            crate::fieldmap::Role::Real(i) => i,
            _ => unreachable!(),
        };
        let i2 = match mm.map().locate(b) {
            crate::fieldmap::Role::Real(i) => i,
            _ => unreachable!(),
        };
        mm.swap_real_real(net, i, i2);
    }
    finish(spec, mm)
}

/// Algorithm 2: local transpose, `u1 ↔ v3` and `v1 ↔ u3` exchanges, local
/// transposes again (`n` communication steps; the local transposes are
/// charged as full-array copies).
pub fn convert_algorithm2<T: Copy + Default + Send + Sync>(
    spec: &ConvertSpec,
    m: &DistMatrix<T>,
    net: &mut SimNet<Vec<T>>,
    policy: SendPolicy,
) -> DistMatrix<T> {
    let (u1, u3, v1, v3) = spec.fields();
    let mut mm = start(spec, m);
    // Local transpose of each node's (row × column) array: swap the
    // u-virtual and v-virtual halves of the local address.
    let vp = mm.map().vp();
    let vcol = spec.q - spec.n_r; // virtual column bits (low part)
    let perm: Vec<u32> = (vcol..vp).chain(0..vcol).collect();
    mm.permute_virt(net, &perm);
    // Exchanges: u1 ↔ v3 and v1 ↔ u3.
    for (&a, &b) in u1.iter().zip(&v3) {
        bring_in(&mut mm, net, a, b, policy);
    }
    for (&a, &b) in v1.iter().zip(&u3) {
        bring_in(&mut mm, net, a, b, policy);
    }
    // Local transposes of the N small matrices.
    let vp2 = mm.map().vp();
    let split = vp2 - vcol;
    let perm2: Vec<u32> = (split..vp2).chain(0..split).collect();
    mm.permute_virt(net, &perm2);
    net.finish_round();
    finish(spec, mm)
}

/// Algorithm 3: exchange `u1 ↔ v3` within column subcubes and `v1 ↔ u3`
/// within row subcubes directly (`n` communication steps, no local
/// transpose; only a local shuffle if `p > 2n_r`, folded into the final
/// free relabel).
pub fn convert_algorithm3<T: Copy + Default + Send + Sync>(
    spec: &ConvertSpec,
    m: &DistMatrix<T>,
    net: &mut SimNet<Vec<T>>,
    policy: SendPolicy,
) -> DistMatrix<T> {
    let (u1, u3, v1, v3) = spec.fields();
    let mut mm = start(spec, m);
    for (&a, &b) in u1.iter().zip(&v3) {
        bring_in(&mut mm, net, a, b, policy);
    }
    for (&a, &b) in v1.iter().zip(&u3) {
        bring_in(&mut mm, net, a, b, policy);
    }
    finish(spec, mm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{assert_transposed, labels};
    use cubesim::{MachineParams, PortMode};

    fn unit_net(n: u32) -> SimNet<Vec<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::OnePort))
    }

    #[test]
    fn all_three_algorithms_transpose() {
        let spec = ConvertSpec::new(4, 4, 1);
        let m = labels(spec.before());
        type Alg = fn(
            &ConvertSpec,
            &DistMatrix<u64>,
            &mut SimNet<Vec<u64>>,
            SendPolicy,
        ) -> DistMatrix<u64>;
        let algs: [(&str, Alg); 3] = [
            ("alg1", convert_algorithm1),
            ("alg2", convert_algorithm2),
            ("alg3", convert_algorithm3),
        ];
        for (name, alg) in algs {
            let mut net = unit_net(2 * spec.n_r);
            let out = alg(&spec, &m, &mut net, SendPolicy::Ideal);
            assert_transposed(&spec.before(), &out);
            net.finalize();
            let _ = name;
        }
    }

    #[test]
    fn algorithms_agree_elementwise() {
        let spec = ConvertSpec::new(4, 5, 2);
        let m = labels(spec.before());
        type Alg = fn(
            &ConvertSpec,
            &DistMatrix<u64>,
            &mut SimNet<Vec<u64>>,
            SendPolicy,
        ) -> DistMatrix<u64>;
        let run = |alg: Alg| {
            let mut net = unit_net(2 * spec.n_r);
            alg(&spec, &m, &mut net, SendPolicy::Ideal)
        };
        let a = run(convert_algorithm1);
        let b = run(convert_algorithm2);
        let c = run(convert_algorithm3);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn step_counts_match_paper() {
        // Algorithm 1: 2n rounds; algorithms 2 & 3: n rounds (n = 2n_r).
        let spec = ConvertSpec::new(4, 4, 2);
        let n = 2 * spec.n_r as usize;
        let m = labels(spec.before());

        let mut net1 = unit_net(2 * spec.n_r);
        let _ = convert_algorithm1(&spec, &m, &mut net1, SendPolicy::Ideal);
        assert_eq!(net1.finalize().rounds, 2 * n, "algorithm 1");

        let mut net3 = unit_net(2 * spec.n_r);
        let _ = convert_algorithm3(&spec, &m, &mut net3, SendPolicy::Ideal);
        assert_eq!(net3.finalize().rounds, n, "algorithm 3");
    }

    #[test]
    fn algorithm2_charges_local_transposes() {
        let spec = ConvertSpec::new(4, 4, 1);
        let m = labels(spec.before());
        let params = MachineParams::unit(PortMode::OnePort).with_t_copy(1.0);
        let mut net: SimNet<Vec<u64>> = SimNet::new(2, params);
        let _ = convert_algorithm2(&spec, &m, &mut net, SendPolicy::Ideal);
        let r = net.finalize();
        // Two full-array copies of 2^{8-2} = 64 elements each.
        assert_eq!(r.max_node_copy_elems, 64);
        assert_eq!(r.copy_time, 128.0);
    }

    #[test]
    fn algorithm3_cheapest_in_rounds_and_copies() {
        let spec = ConvertSpec::new(5, 5, 2);
        let m = labels(spec.before());
        let params = MachineParams::intel_ipsc();
        type Alg = fn(
            &ConvertSpec,
            &DistMatrix<u64>,
            &mut SimNet<Vec<u64>>,
            SendPolicy,
        ) -> DistMatrix<u64>;
        let run = |alg: Alg| {
            let mut net: SimNet<Vec<u64>> = SimNet::new(4, params.clone());
            let _ = alg(&spec, &m, &mut net, SendPolicy::Ideal);
            net.finalize()
        };
        let r1 = run(convert_algorithm1);
        let r2 = run(convert_algorithm2);
        let r3 = run(convert_algorithm3);
        assert!(r3.time <= r2.time, "alg3 {} vs alg2 {}", r3.time, r2.time);
        assert!(r3.time < r1.time, "alg3 {} vs alg1 {}", r3.time, r1.time);
    }

    #[test]
    fn rectangular_case() {
        let spec = ConvertSpec::new(3, 5, 1);
        let m = labels(spec.before());
        let mut net = unit_net(2);
        let out = convert_algorithm3(&spec, &m, &mut net, SendPolicy::Ideal);
        assert_transposed(&spec.before(), &out);
    }

    #[test]
    #[should_panic(expected = "p, q ≥ 2·n_r")]
    fn too_small_matrix_rejected() {
        let _ = ConvertSpec::new(3, 3, 2);
    }
}
