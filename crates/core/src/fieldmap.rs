//! The general exchange algorithm engine (paper Definitions 10–11).
//!
//! Every data rearrangement in the paper is a permutation of the roles of
//! the `m` matrix-address dimensions: which dimensions select the real
//! processor and which select the local (virtual-processor) address. A
//! [`FieldMap`] records the current role assignment; a [`MappedMatrix`]
//! couples it with per-node data and supports the three primitive moves:
//!
//! * [`MappedMatrix::exchange_real_virt`] — swap a real dimension with a
//!   virtual one: a distance-1 exchange of half of every node's data
//!   (one step of the standard/general exchange algorithm);
//! * [`MappedMatrix::swap_real_real`] — swap two real dimensions: the
//!   affected nodes relocate their whole array over a distance-2 path
//!   (Lemma 6); one (g, f) pair of the SPT algorithm;
//! * [`MappedMatrix::permute_virt`] — reassign virtual dimensions: pure
//!   local data movement (a shuffle of the local array), charged as copy
//!   time.
//!
//! Composing these primitives yields the one-dimensional transpose, the
//! §6.2 conversion algorithms, bit-reversal and every dimension
//! permutation — with the cost model charged exactly as the paper
//! analyzes each.
//!
//! # The block-move data plane
//!
//! The simulated *costs* are those of the paper's model, but the
//! simulator's own wall-clock time is dominated by how the primitives
//! move host memory. Two structural facts keep that cheap:
//!
//! * the half of a node's array that an exchange moves is `2^{vp-j-1}`
//!   *contiguous runs* of `2^j` elements, so gather and scatter are
//!   `copy_from_slice` block moves (a per-element path survives only for
//!   `j = 0`);
//! * a virtual-dimension permutation is node-independent, so its
//!   realization — a cache-aware local transpose for address rotations, a
//!   list of block-move start offsets for run-preserving permutations, or
//!   a full relocation table in the general case — is computed once
//!   (`PermPlan`) and shared by every node.
//!
//! Per-node work (gathering runs into messages, scattering arrivals,
//! applying a permutation plan) touches only that node's buffers, so it
//! fans out across [`cubesim::par`] worker threads; all interaction with
//! the [`SimNet`] — legality checks, cost accounting, the send/recv
//! sequence itself — stays on one thread via the staged
//! [`SimNet::send_batch`] / [`SimNet::drain_dim`] commit rounds, keeping
//! reports deterministic at any thread count.

use std::cell::Cell;

use cubeaddr::NodeId;
use cubelayout::{Encoding, Layout};
use cubesim::{par, BufferPool, SimNet};

/// Default minimum local-array size (elements) for realizing a rotation
/// permutation with the in-place C2R kernel instead of the pooled
/// out-of-place tiled transpose. Below this the blocked copy's better
/// locality wins and the scratch buffer is too small to matter.
const INPLACE_MIN_DEFAULT: usize = 1 << 12;

thread_local! {
    /// Threshold override installed by [`with_inplace_min`].
    static INPLACE_MIN_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Minimum local-array elements at which a rotation permutation is
/// realized in place ([`crate::inplace`]) rather than through a pooled
/// scratch buffer. Overridable with the `CUBEBENCH_INPLACE_MIN`
/// environment variable (for benching both paths at one shape) or,
/// scoped and thread-local, with [`with_inplace_min`].
pub fn inplace_min() -> usize {
    if let Some(v) = INPLACE_MIN_OVERRIDE.with(Cell::get) {
        return v;
    }
    match std::env::var("CUBEBENCH_INPLACE_MIN") {
        Ok(v) => v.parse().unwrap_or(INPLACE_MIN_DEFAULT),
        Err(_) => INPLACE_MIN_DEFAULT,
    }
}

/// Runs `f` with [`inplace_min`] pinned to `min` on the current thread
/// (restored on exit, even across a panic). Tests use this to force the
/// in-place plan on for small arrays, or off entirely (`usize::MAX`).
pub fn with_inplace_min<R>(min: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INPLACE_MIN_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(INPLACE_MIN_OVERRIDE.with(|o| o.replace(Some(min))));
    f()
}

/// Where the bits of the matrix address currently live: node address bits
/// (`real`) and local address bits (`virt`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldMap {
    /// `real[i]` = matrix-address dimension encoded by node-address bit `i`.
    real: Vec<u32>,
    /// `virt[j]` = matrix-address dimension encoded by local-address bit `j`.
    virt: Vec<u32>,
}

impl FieldMap {
    /// Builds a map from explicit role vectors.
    ///
    /// # Panics
    /// Unless `real ∪ virt` is a permutation of `0..(real.len()+virt.len())`.
    #[track_caller]
    pub fn new(real: Vec<u32>, virt: Vec<u32>) -> Self {
        let m = real.len() + virt.len();
        cubeaddr::check_dims(m as u32);
        let mut seen = vec![false; m];
        for &d in real.iter().chain(&virt) {
            assert!((d as usize) < m && !seen[d as usize], "roles are not a permutation");
            seen[d as usize] = true;
        }
        FieldMap { real, virt }
    }

    /// Derives the map from a binary-encoded [`Layout`].
    ///
    /// # Panics
    /// If any subfield uses Gray encoding (a Gray re-encoding is not a
    /// dimension-role permutation).
    #[track_caller]
    pub fn from_layout(layout: &Layout) -> Self {
        for g in layout.row_field().groups().iter().chain(layout.col_field().groups()) {
            assert_eq!(
                g.encoding,
                Encoding::Binary,
                "FieldMap requires binary encodings; convert Gray fields explicitly"
            );
        }
        let q = layout.q();
        // Node address = (row_proc || col_proc); both fields pack their
        // member dims in ascending order.
        let mut real: Vec<u32> = layout.col_field().dims().iter().collect();
        real.extend(layout.row_field().dims().iter().map(|d| d + q));
        // Local address = (vrow || vcol), vcol low.
        let mut virt: Vec<u32> = layout.col_field().dims().complement(q).iter().collect();
        virt.extend(layout.row_field().dims().complement(layout.p()).iter().map(|d| d + q));
        FieldMap::new(real, virt)
    }

    /// Number of real (node) dimensions.
    pub fn n(&self) -> u32 {
        self.real.len() as u32
    }

    /// Number of virtual (local) dimensions.
    pub fn vp(&self) -> u32 {
        self.virt.len() as u32
    }

    /// Total matrix-address bits.
    pub fn m(&self) -> u32 {
        self.n() + self.vp()
    }

    /// The matrix dimension behind node bit `i`.
    pub fn real_dim(&self, i: u32) -> u32 {
        self.real[i as usize]
    }

    /// The matrix dimension behind local bit `j`.
    pub fn virt_dim(&self, j: u32) -> u32 {
        self.virt[j as usize]
    }

    /// Finds the current role of matrix dimension `d`.
    pub fn locate(&self, d: u32) -> Role {
        if let Some(i) = self.real.iter().position(|&x| x == d) {
            Role::Real(i as u32)
        } else if let Some(j) = self.virt.iter().position(|&x| x == d) {
            Role::Virt(j as u32)
        } else {
            panic!("matrix dimension {d} outside this {}-bit map", self.m());
        }
    }

    /// Placement of the element with matrix address `w`.
    pub fn place(&self, w: u64) -> (NodeId, u64) {
        let mut node = 0u64;
        for (i, &d) in self.real.iter().enumerate() {
            node |= ((w >> d) & 1) << i;
        }
        let mut local = 0u64;
        for (j, &d) in self.virt.iter().enumerate() {
            local |= ((w >> d) & 1) << j;
        }
        (NodeId(node), local)
    }

    /// Inverse of [`FieldMap::place`].
    pub fn element_at(&self, node: NodeId, local: u64) -> u64 {
        let mut w = 0u64;
        for (i, &d) in self.real.iter().enumerate() {
            w |= ((node.bits() >> i) & 1) << d;
        }
        for (j, &d) in self.virt.iter().enumerate() {
            w |= ((local >> j) & 1) << d;
        }
        w
    }
}

/// Role of a matrix-address dimension in a [`FieldMap`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Node-address bit position.
    Real(u32),
    /// Local-address bit position.
    Virt(u32),
}

/// Send policy for [`MappedMatrix::exchange_real_virt`], mirroring
/// [`cubecomm::BufferPolicy`] at the memory-layout level: the outgoing
/// half of the local array at virtual position `j` consists of contiguous
/// runs of `2^j` elements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendPolicy {
    /// One message, no copy charged (the idealized complexity model).
    Ideal,
    /// One message per `2^j`-element run.
    Unbuffered,
    /// Runs shorter than `min_direct` elements are gathered (copy charged
    /// on both the gather and the scatter side); longer runs go directly.
    Buffered {
        /// Minimum run length sent without buffering.
        min_direct: usize,
    },
}

/// A distributed data set governed by a [`FieldMap`].
#[derive(Debug)]
pub struct MappedMatrix<T> {
    map: FieldMap,
    /// `data[node][local]`.
    data: Vec<Vec<T>>,
    /// Spare message buffers recycled across exchange rounds. Warmed
    /// lazily by [`MappedMatrix::ensure_warm`] the first time a primitive
    /// actually needs scratch (one full-size prefaulted buffer per node),
    /// so schedules whose permutations all run in place — or matrices
    /// that never communicate — hold zero pooled bytes.
    pool: BufferPool<T>,
    /// Whether [`MappedMatrix::ensure_warm`] has run.
    warmed: bool,
}

impl<T: Copy> Clone for MappedMatrix<T> {
    fn clone(&self) -> Self {
        MappedMatrix {
            map: self.map.clone(),
            data: self.data.clone(),
            pool: BufferPool::new(),
            warmed: false,
        }
    }
}

impl<T: Copy + Default> MappedMatrix<T> {
    /// Builds the matrix by evaluating `f(w)` for every matrix address.
    pub fn from_fn(map: FieldMap, mut f: impl FnMut(u64) -> T) -> Self {
        let num = cubeaddr::num_nodes(map.n());
        let per = 1usize << map.vp();
        let mut data = vec![vec![T::default(); per]; num];
        for w in 0..(1u64 << map.m()) {
            let (node, local) = map.place(w);
            data[node.index()][local as usize] = f(w);
        }
        MappedMatrix { map, data, pool: BufferPool::new(), warmed: false }
    }
}

impl<T: Copy> MappedMatrix<T> {
    /// Adopts existing per-node buffers (placement must already agree
    /// with `map`).
    ///
    /// # Panics
    /// On shape mismatch.
    #[track_caller]
    pub fn from_buffers(map: FieldMap, data: Vec<Vec<T>>) -> Self {
        assert_eq!(data.len(), 1usize << map.n());
        for d in &data {
            assert_eq!(d.len(), 1usize << map.vp());
        }
        MappedMatrix { map, data, pool: BufferPool::new(), warmed: false }
    }

    /// Consumes into per-node buffers (node order).
    pub fn into_buffers(self) -> Vec<Vec<T>> {
        self.data
    }

    /// The current role map.
    pub fn map(&self) -> &FieldMap {
        &self.map
    }

    /// The element with matrix address `w`.
    pub fn get(&self, w: u64) -> T {
        let (node, local) = self.map.place(w);
        self.data[node.index()][local as usize]
    }

    /// One node's local array.
    pub fn node(&self, x: NodeId) -> &[T] {
        &self.data[x.index()]
    }

    /// Elements of scratch capacity currently held by the buffer pool —
    /// zero until a primitive that needs pooled staging runs
    /// (footprint stat for the `local_kernels` bench).
    pub fn pool_capacity_elems(&self) -> usize {
        self.pool.capacity_elems()
    }

    /// Warms the pool on first use: one prefaulted spare buffer per
    /// node, each of full local size — the working set of a gathered
    /// exchange or an out-of-place permutation plan. In-place and
    /// identity plans never call this, so they never pay the O(mn)
    /// pooled footprint.
    fn ensure_warm(&mut self) {
        if !self.warmed {
            self.pool.warm(self.data.len(), 1usize << self.map.vp(), self.data[0][0]);
            self.warmed = true;
        }
    }
}

impl<T: Copy + Send + Sync> MappedMatrix<T> {
    /// Swaps real dimension position `i` with virtual position `j`,
    /// moving half of every node's data across cube dimension `i` — one
    /// step of the general exchange algorithm (distance-1 communication,
    /// one-port legal).
    ///
    /// The outgoing elements occupy `2^{vp-j-1}` contiguous runs of `2^j`
    /// elements in the local array; `policy` decides how the runs become
    /// messages (§8.1).
    pub fn exchange_real_virt(
        &mut self,
        net: &mut SimNet<Vec<T>>,
        i: u32,
        j: u32,
        policy: SendPolicy,
    ) {
        assert!(i < self.map.n() && j < self.map.vp());
        self.ensure_warm();
        let per = 1usize << self.map.vp();
        let run = 1usize << j;
        let num = self.data.len();

        // The vacated half of node x's array: the runs whose local bit j
        // is ¬(node bit i). These are both the send positions and the
        // positions the incoming elements land in.
        let want_of = move |x: usize| (((x as u64 >> i) & 1) ^ 1) as usize;

        let gathered = match policy {
            SendPolicy::Ideal => true,
            SendPolicy::Unbuffered => false,
            SendPolicy::Buffered { min_direct } => run < min_direct,
        };

        if gathered {
            if matches!(policy, SendPolicy::Buffered { .. }) {
                // Gather at the sender; the scatter on arrival is charged
                // symmetrically at the same node (its own gather covers
                // its send; its scatter covers its receive).
                for x in 0..num as u64 {
                    net.local_copy(NodeId(x), per / 2);
                }
            }
            // Stage outgoing messages in parallel (no net access), then
            // commit the whole round serially.
            let mut msgs: Vec<Vec<T>> = (0..num).map(|_| self.pool.take()).collect();
            let data = &self.data;
            par::par_for_each_mut(&mut msgs, |x, msg| gather_half(&data[x], run, want_of(x), msg));
            net.send_batch(i, msgs.into_iter().enumerate().map(|(x, m)| (NodeId(x as u64), m)));
            net.finish_round();
            let mut incoming: Vec<(NodeId, Vec<T>)> = Vec::with_capacity(num);
            net.drain_dim(i, &mut incoming);
            debug_assert_eq!(incoming.len(), num);
            let arrived = &incoming;
            par::par_for_each_mut(&mut self.data, |x, slot| {
                let (dst, msg) = &arrived[x];
                debug_assert_eq!(dst.index(), x);
                debug_assert_eq!(msg.len(), per / 2);
                scatter_half(slot, run, want_of(x), msg);
            });
            for (_, buf) in incoming {
                self.pool.put(buf);
            }
        } else {
            // One synchronized sub-round per run. All sub-rounds' messages
            // are staged in one parallel pass up front, committed serially
            // round by round, and the arrivals scattered in one parallel
            // pass at the end (arrival order is immaterial: sub-round r
            // always carries run r).
            let runs_per_node = per / (run * 2);
            let mut staged: Vec<Vec<Vec<T>>> =
                (0..num).map(|_| (0..runs_per_node).map(|_| self.pool.take()).collect()).collect();
            let data = &self.data;
            par::par_for_each_mut(&mut staged, |x, msgs| {
                let want = want_of(x);
                for (r, msg) in msgs.iter_mut().enumerate() {
                    let s = r * run * 2 + want * run;
                    msg.extend_from_slice(&data[x][s..s + run]);
                }
            });
            let mut landed: Vec<Vec<Vec<T>>> =
                (0..num).map(|_| Vec::with_capacity(runs_per_node)).collect();
            let mut arrivals: Vec<(NodeId, Vec<T>)> = Vec::with_capacity(num);
            for r in 0..runs_per_node {
                net.send_batch(
                    i,
                    staged
                        .iter_mut()
                        .enumerate()
                        .map(|(x, msgs)| (NodeId(x as u64), std::mem::take(&mut msgs[r]))),
                );
                net.finish_round();
                net.drain_dim(i, &mut arrivals);
                debug_assert_eq!(arrivals.len(), num);
                for (dst, msg) in arrivals.drain(..) {
                    landed[dst.index()].push(msg);
                }
            }
            let arrived = &landed;
            par::par_for_each_mut(&mut self.data, |x, slot| {
                let want = want_of(x);
                for (r, msg) in arrived[x].iter().enumerate() {
                    let s = r * run * 2 + want * run;
                    slot[s..s + run].copy_from_slice(msg);
                }
            });
            for msgs in landed {
                for m in msgs {
                    self.pool.put(m);
                }
            }
        }
        std::mem::swap(&mut self.map.real[i as usize], &mut self.map.virt[j as usize]);
    }

    /// Swaps real dimension positions `i1` and `i2`: the nodes whose two
    /// address bits differ relocate their entire local array over a
    /// distance-2 path (first across `i1`, then `i2`) — Lemma 6's
    /// real/real exchange, two one-port rounds.
    pub fn swap_real_real(&mut self, net: &mut SimNet<Vec<T>>, i1: u32, i2: u32) {
        let n = self.map.n();
        assert!(i1 < n && i2 < n && i1 != i2);
        let num = self.data.len();
        let moves = |x: u64| ((x >> i1) & 1) != ((x >> i2) & 1);

        // Hop 1: movers send across i1 to the intermediate node.
        for x in 0..num as u64 {
            if moves(x) {
                let payload = std::mem::take(&mut self.data[x as usize]);
                net.send(NodeId(x), i1, payload);
            }
        }
        net.finish_round();
        // Hop 2: intermediates (bits equal) forward across i2.
        let mut in_transit: Vec<Option<Vec<T>>> = (0..num).map(|_| None).collect();
        for x in 0..num as u64 {
            let node = NodeId(x);
            if net.has_message(node, i1) {
                in_transit[x as usize] = Some(net.recv(node, i1));
            }
        }
        for (x, payload) in in_transit.into_iter().enumerate() {
            if let Some(p) = payload {
                net.send(NodeId(x as u64), i2, p);
            }
        }
        net.finish_round();
        for x in 0..num as u64 {
            let node = NodeId(x);
            if net.has_message(node, i2) {
                debug_assert!(moves(x));
                debug_assert!(self.data[x as usize].is_empty());
                self.data[x as usize] = net.recv(node, i2);
            }
        }
        self.map.real.swap(i1 as usize, i2 as usize);
    }

    /// Re-labels the virtual dimensions without charging any cost: local
    /// bit `j` of the new map reads matrix dimension `virt[perm[j]]` of
    /// the old one.
    ///
    /// This models a change of *storage interpretation* ("implicitly by
    /// indirect addressing", §5): choosing how the local array is ordered
    /// is free — subsequent address arithmetic simply changes. Use
    /// [`MappedMatrix::permute_virt`] when the rearrangement should be
    /// charged as an explicit copy.
    #[track_caller]
    pub fn relabel_virt(&mut self, perm: &[u32]) {
        self.apply_virt_perm(perm);
    }

    /// Applies a permutation of the virtual dimensions: local bit `j` of
    /// the new map reads matrix dimension `virt[perm[j]]` of the old one.
    /// Explicit local data movement; every node is charged a full-array
    /// copy.
    #[track_caller]
    pub fn permute_virt(&mut self, net: &mut SimNet<Vec<T>>, perm: &[u32]) {
        if self.apply_virt_perm(perm) {
            for x in 0..self.data.len() {
                net.local_copy(NodeId(x as u64), self.data[x].len());
            }
        }
    }

    /// Shared implementation: permutes map and data; returns true when the
    /// permutation was not the identity.
    ///
    /// The permutation's realization is node-independent, so one
    /// [`PermPlan`] — a local-transpose call, a block-move schedule, or a
    /// relocation table — is computed once and applied to every node's
    /// array in parallel, writing into pool-recycled buffers.
    #[track_caller]
    fn apply_virt_perm(&mut self, perm: &[u32]) -> bool {
        let vp = self.map.vp();
        assert_eq!(perm.len() as u32, vp);
        let per = 1usize << vp;
        if perm.iter().enumerate().all(|(j, &p)| j as u32 == p) {
            return false;
        }
        let plan = PermPlan::build(perm);
        if let PermPlan::InPlace { rows, cols } = plan {
            // No staging buffers at all: each node's array is transposed
            // where it lives, O(max(rows, cols)) scratch per worker.
            par::par_for_each_mut(&mut self.data, |_, d| {
                debug_assert_eq!(d.len(), per);
                crate::inplace::transpose_serial(d, rows, cols);
            });
        } else {
            self.ensure_warm();
            let mut work: Vec<(Vec<T>, Vec<T>)> = self
                .data
                .iter_mut()
                .map(|d| {
                    debug_assert_eq!(d.len(), per);
                    (std::mem::take(d), self.pool.take())
                })
                .collect();
            par::par_for_each_mut(&mut work, |_, (old, fresh)| plan.apply(old, fresh));
            for (x, (old, fresh)) in work.into_iter().enumerate() {
                self.data[x] = fresh;
                self.pool.put(old);
            }
        }
        let old_virt = self.map.virt.clone();
        for (jn, &jo) in perm.iter().enumerate() {
            self.map.virt[jn] = old_virt[jo as usize];
        }
        true
    }

    /// Rearranges the data until its role map equals `target`, using a
    /// greedy plan: bring each target real dimension into place (by a
    /// real/virt exchange or a real/real swap), then fix the virtual
    /// ordering with one local permutation.
    ///
    /// Returns the number of communication steps used (exchanges count 1,
    /// swaps 2).
    #[track_caller]
    pub fn rearrange_to(
        &mut self,
        net: &mut SimNet<Vec<T>>,
        target: &FieldMap,
        policy: SendPolicy,
    ) -> usize {
        assert_eq!(self.map.n(), target.n());
        assert_eq!(self.map.vp(), target.vp());
        let mut steps = 0;
        for i in 0..target.n() {
            let want = target.real_dim(i);
            match self.map.locate(want) {
                Role::Real(cur) if cur == i => {}
                Role::Real(cur) => {
                    self.swap_real_real(net, i, cur);
                    steps += 2;
                }
                Role::Virt(j) => {
                    self.exchange_real_virt(net, i, j, policy);
                    steps += 1;
                }
            }
        }
        // Local fix-up of the virtual ordering.
        let perm: Vec<u32> = (0..target.vp())
            .map(|jn| match self.map.locate(target.virt_dim(jn)) {
                Role::Virt(jo) => jo,
                Role::Real(_) => unreachable!("real roles already fixed"),
            })
            .collect();
        self.permute_virt(net, &perm);
        debug_assert_eq!(&self.map, target);
        steps
    }
}

/// Start offsets of the `run`-element runs whose local bit `log2(run)`
/// equals `want` — the outgoing (and incoming) half of a node's array in
/// an exchange.
fn run_starts(per: usize, run: usize, want: usize) -> impl Iterator<Item = usize> {
    let stride = run * 2;
    (0..per / stride).map(move |b| b * stride + want * run)
}

/// Appends to `out` the half of `data` selected by (`run`, `want`) as
/// block moves; single-element fallback for `run == 1`.
fn gather_half<T: Copy>(data: &[T], run: usize, want: usize, out: &mut Vec<T>) {
    if run == 1 {
        out.extend(data.iter().skip(want).step_by(2).copied());
    } else {
        out.reserve(data.len() / 2);
        for s in run_starts(data.len(), run, want) {
            out.extend_from_slice(&data[s..s + run]);
        }
    }
}

/// Writes `incoming` back into the half of `data` selected by (`run`,
/// `want`): the inverse of [`gather_half`].
fn scatter_half<T: Copy>(data: &mut [T], run: usize, want: usize, incoming: &[T]) {
    if run == 1 {
        for (slot, &v) in data.iter_mut().skip(want).step_by(2).zip(incoming) {
            *slot = v;
        }
    } else {
        for (s, chunk) in run_starts(data.len(), run, want).zip(incoming.chunks_exact(run)) {
            data[s..s + run].copy_from_slice(chunk);
        }
    }
}

/// Precomputed, node-independent realization of a virtual-dimension
/// permutation, shared by every node in `apply_virt_perm`.
enum PermPlan {
    /// The permutation rotates the local address by `a` positions
    /// (`perm[j] = (j + a) mod vp`): equivalent to transposing the local
    /// array viewed as a row-major `rows × cols` matrix, dispatched to the
    /// cache-aware tiled kernel (out of place, through the pool).
    Transpose {
        /// `2^{vp-a}` rows of the equivalent local matrix.
        rows: usize,
        /// `2^a` columns.
        cols: usize,
    },
    /// A rotation over a local array of at least [`inplace_min`]
    /// elements: realized by the C2R in-place kernel
    /// ([`crate::inplace`]), no pooled staging buffer.
    InPlace {
        /// Rows of the equivalent local matrix.
        rows: usize,
        /// Columns of the equivalent local matrix.
        cols: usize,
    },
    /// The permutation fixes the low `log2(run)` local bits: the new
    /// array is a sequence of `run`-element block moves reading these old
    /// start offsets in order.
    Runs {
        /// Old-array start offset of each block, in new-array order.
        starts: Vec<u32>,
        /// Block length in elements.
        run: usize,
    },
    /// General case: `new[l] = old[table[l]]`, one shared relocation
    /// table.
    Gather {
        /// Old-array index read for each new-array index.
        table: Vec<u32>,
    },
}

impl PermPlan {
    /// Classifies `perm` (not the identity) into the cheapest realization.
    fn build(perm: &[u32]) -> PermPlan {
        let vp = perm.len() as u32;
        let per = 1usize << vp;
        // The element at old local l lands at the new local whose bit jn
        // is l's bit perm[jn]; inverted, new index l reads old index
        // gather(l) with bit perm[jn] = l's bit jn.
        let gather = |l: usize| -> usize {
            let mut g = 0usize;
            for (jn, &jo) in perm.iter().enumerate() {
                g |= ((l >> jn) & 1) << jo;
            }
            g
        };
        if let Some(a) =
            (1..vp).find(|&a| perm.iter().enumerate().all(|(jn, &jo)| jo == (jn as u32 + a) % vp))
        {
            let (rows, cols) = (1usize << (vp - a), 1usize << a);
            if per >= inplace_min() {
                return PermPlan::InPlace { rows, cols };
            }
            return PermPlan::Transpose { rows, cols };
        }
        let fixed = perm.iter().enumerate().take_while(|&(jn, &jo)| jn as u32 == jo).count();
        let run = 1usize << fixed;
        if run > 1 {
            let starts = (0..per / run).map(|b| gather(b * run) as u32).collect();
            return PermPlan::Runs { starts, run };
        }
        PermPlan::Gather { table: (0..per).map(|l| gather(l) as u32).collect() }
    }

    /// Fills `fresh` with the permutation of `old` (out-of-place plans
    /// only; `InPlace` is dispatched directly in `apply_virt_perm`).
    fn apply<T: Copy>(&self, old: &[T], fresh: &mut Vec<T>) {
        fresh.clear();
        match self {
            PermPlan::Transpose { rows, cols } => {
                crate::local::transpose_flat_blocked_into(old, *rows, *cols, 64, fresh);
            }
            PermPlan::InPlace { .. } => unreachable!("InPlace plans never stage through a buffer"),
            PermPlan::Runs { starts, run } => {
                fresh.reserve(old.len());
                for &s in starts {
                    fresh.extend_from_slice(&old[s as usize..s as usize + run]);
                }
            }
            PermPlan::Gather { table } => {
                fresh.extend(table.iter().map(|&g| old[g as usize]));
            }
        }
    }
}

/// Builds the label matrix for a map (element `w` carries value `w`).
pub fn label_mapped(map: FieldMap) -> MappedMatrix<u64> {
    MappedMatrix::<u64>::from_fn(map, |w| w)
}

/// Asserts that `m`'s stored labels agree with its role map: the element
/// at every (node, local) position is the address the map says lives
/// there. Returns the first mismatch as `(node, local, found)`.
pub fn check_labels(m: &MappedMatrix<u64>) -> Option<(u64, u64, u64)> {
    for x in 0..(1u64 << m.map().n()) {
        for l in 0..(1u64 << m.map().vp()) {
            let want = m.map().element_at(NodeId(x), l);
            let found = m.node(NodeId(x))[l as usize];
            if found != want {
                return Some((x, l, found));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubesim::{MachineParams, PortMode};

    fn unit_net(n: u32) -> SimNet<Vec<u64>> {
        SimNet::new(n, MachineParams::unit(PortMode::OnePort))
    }

    fn map_2_2() -> FieldMap {
        // m = 4: real = dims {0, 1}, virt = dims {2, 3}.
        FieldMap::new(vec![0, 1], vec![2, 3])
    }

    #[test]
    fn place_element_roundtrip() {
        let map = FieldMap::new(vec![2, 0], vec![3, 1]);
        for w in 0..16u64 {
            let (x, l) = map.place(w);
            assert_eq!(map.element_at(x, l), w);
        }
        // Spot check: w = 0b1101 → node bits (w2, w0) = (1, 1) → node 0b11;
        // local bits (w3, w1) = (1, 0) → local 0b01.
        assert_eq!(map.place(0b1101), (NodeId(0b11), 0b01));
    }

    #[test]
    fn from_layout_agrees_with_layout() {
        use cubelayout::{Assignment, Direction};
        for layout in [
            Layout::one_dim(3, 3, Direction::Cols, 2, Assignment::Cyclic, Encoding::Binary),
            Layout::one_dim(2, 4, Direction::Rows, 2, Assignment::Consecutive, Encoding::Binary),
            Layout::square(3, 3, 2, Assignment::Cyclic, Encoding::Binary),
            Layout::square(2, 2, 1, Assignment::Consecutive, Encoding::Binary),
        ] {
            let map = FieldMap::from_layout(&layout);
            for (u, v) in layout.elements() {
                let w = cubeaddr::concat(u, v, layout.q());
                let pl = layout.place(u, v);
                assert_eq!(map.place(w), (pl.node, pl.local), "layout {layout:?} w={w:#b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "binary encodings")]
    fn gray_layout_rejected() {
        use cubelayout::Assignment;
        let l = Layout::square(2, 2, 1, Assignment::Cyclic, Encoding::Gray);
        let _ = FieldMap::from_layout(&l);
    }

    #[test]
    fn exchange_real_virt_preserves_labels() {
        for policy in
            [SendPolicy::Ideal, SendPolicy::Unbuffered, SendPolicy::Buffered { min_direct: 2 }]
        {
            let mut m = label_mapped(map_2_2());
            let mut net = unit_net(2);
            m.exchange_real_virt(&mut net, 0, 1, policy);
            assert_eq!(m.map().real_dim(0), 3);
            assert_eq!(m.map().virt_dim(1), 0);
            assert_eq!(check_labels(&m), None, "policy {policy:?}");
            net.finalize();
        }
    }

    #[test]
    fn exchange_moves_half_the_data() {
        let mut m = label_mapped(map_2_2());
        let mut net = unit_net(2);
        m.exchange_real_virt(&mut net, 1, 0, SendPolicy::Ideal);
        let r = net.finalize();
        assert_eq!(r.rounds, 1);
        // Each node sent half of its 4 elements.
        assert_eq!(r.critical_elems, 2);
        assert_eq!(r.total_elems, 2 * 4);
    }

    #[test]
    fn swap_real_real_distance_two() {
        let mut m = label_mapped(map_2_2());
        let mut net = unit_net(2);
        m.swap_real_real(&mut net, 0, 1);
        assert_eq!(check_labels(&m), None);
        let r = net.finalize();
        assert_eq!(r.rounds, 2);
        // Half the nodes (01 and 10) moved their full arrays.
        assert_eq!(r.total_elems, 2 * 4 * 2); // 2 nodes × 4 elems × 2 hops
    }

    #[test]
    fn permute_virt_local_only() {
        let mut m = label_mapped(map_2_2());
        let mut net = unit_net(2);
        m.permute_virt(&mut net, &[1, 0]);
        assert_eq!(m.map().virt_dim(0), 3);
        assert_eq!(check_labels(&m), None);
        net.finish_round();
        let r = net.finalize();
        assert_eq!(r.total_elems, 0);
    }

    #[test]
    fn inplace_plan_keeps_pool_cold() {
        // vp = 12 → 4096 elements per node: exactly the default
        // threshold, so the rotation runs in place and the lazily-warmed
        // pool must stay empty.
        let map = FieldMap::new(vec![0], (1..13).collect());
        let mut m = label_mapped(map);
        assert_eq!(m.pool_capacity_elems(), 0, "pool warmed at construction");
        let mut net = SimNet::new(1, MachineParams::unit(PortMode::OnePort).with_t_copy(0.5));
        let rotation: Vec<u32> = (6..12).chain(0..6).collect();
        m.permute_virt(&mut net, &rotation);
        assert_eq!(check_labels(&m), None);
        assert_eq!(m.pool_capacity_elems(), 0, "in-place plan warmed the pool");
        net.finish_round();
        // The copy cost is charged identically on both realizations.
        assert!(net.finalize().copy_time > 0.0);
    }

    #[test]
    fn pooled_plan_warms_lazily() {
        let map = FieldMap::new(vec![0], (1..13).collect());
        let mut m = label_mapped(map);
        let mut net = unit_net(1);
        let rotation: Vec<u32> = (6..12).chain(0..6).collect();
        // Forcing the threshold above per ⇒ the pooled tiled path runs
        // and warms one full-size buffer per node on first use.
        with_inplace_min(usize::MAX, || m.permute_virt(&mut net, &rotation));
        assert_eq!(check_labels(&m), None);
        assert_eq!(m.pool_capacity_elems(), 2 * (1 << 12), "2 nodes x full local size");
        net.finish_round();
        net.finalize();
    }

    #[test]
    fn forced_inplace_plan_matches_pooled_result() {
        // Same scramble schedule under both realizations of the rotation
        // permutations must give identical data.
        let run = |min: usize| {
            with_inplace_min(min, || {
                let mut m = label_mapped(map_2_2());
                let mut net = unit_net(2);
                m.permute_virt(&mut net, &[1, 0]);
                m.exchange_real_virt(&mut net, 0, 1, SendPolicy::Ideal);
                m.permute_virt(&mut net, &[1, 0]);
                net.finish_round();
                let report = net.finalize();
                (m.into_buffers(), report)
            })
        };
        assert_eq!(run(1), run(usize::MAX));
    }

    #[test]
    fn identity_permute_virt_free() {
        let mut m = label_mapped(map_2_2());
        let mut net = unit_net(2);
        m.permute_virt(&mut net, &[0, 1]);
        net.finish_round();
        assert_eq!(net.finalize().copy_time, 0.0);
    }

    #[test]
    fn rearrange_to_arbitrary_map() {
        // 3 real + 3 virt dims; scramble everything.
        let start = FieldMap::new(vec![0, 1, 2], vec![3, 4, 5]);
        let target = FieldMap::new(vec![5, 0, 4], vec![2, 3, 1]);
        let mut m = label_mapped(start);
        let mut net: SimNet<Vec<u64>> = SimNet::new(3, MachineParams::unit(PortMode::OnePort));
        let steps = m.rearrange_to(&mut net, &target, SendPolicy::Ideal);
        assert_eq!(check_labels(&m), None);
        assert_eq!(m.map(), &target);
        assert!(steps <= 6, "{steps} steps");
        net.finalize();
    }

    #[test]
    fn corollary4_one_element_per_node_transpose() {
        // N = PQ = 2^m processors (no virtual dimensions): the transpose
        // is m/2 exchanges, each over distance two (Corollary 4) — the
        // lower bound of Corollary 2.
        let m_bits = 6u32;
        let start = FieldMap::new((0..m_bits).collect(), vec![]);
        let target =
            FieldMap::new((0..m_bits).map(|i| (i + m_bits / 2) % m_bits).collect(), vec![]);
        let mut mm = label_mapped(start);
        let mut net: SimNet<Vec<u64>> = SimNet::new(m_bits, MachineParams::unit(PortMode::OnePort));
        let steps = mm.rearrange_to(&mut net, &target, SendPolicy::Ideal);
        assert_eq!(check_labels(&mm), None);
        // m/2 real/real swaps, 2 rounds each.
        assert_eq!(steps, m_bits as usize);
        let r = net.finalize();
        assert_eq!(r.rounds, m_bits as usize);
        // Every element traverses its two dimensions: Hamming((u‖v),(v‖u))
        // = 2 per swap (Lemma 5).
        assert!(r.total_elems > 0);
    }

    #[test]
    fn standard_exchange_transpose_via_rearrange() {
        // 1D transpose, p = q = 2, n = 2, consecutive columns: real dims
        // before = {v1, v0} (w-dims 3, 2... for column-consecutive with
        // q = 2, n = 2 the column dims are {0,1} shifted — use cyclic for
        // simplicity): real before = {0, 1}; after the transpose the real
        // dims are the u-dims {2, 3}.
        let before = FieldMap::new(vec![0, 1], vec![2, 3]);
        let after = FieldMap::new(vec![2, 3], vec![0, 1]);
        let mut m = label_mapped(before);
        let mut net = unit_net(2);
        let steps = m.rearrange_to(&mut net, &after, SendPolicy::Ideal);
        assert_eq!(steps, 2); // n exchange steps.
        assert_eq!(check_labels(&m), None);
        let r = net.finalize();
        assert_eq!(r.rounds, 2);
        // T = n(M/2·t_c + τ) with M = 4: 2·(2 + 1) = 6.
        assert_eq!(r.time, 6.0);
    }
}
