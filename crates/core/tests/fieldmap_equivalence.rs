//! Property test: the block-move `MappedMatrix` data plane is
//! observationally equivalent to the element-path reference
//! implementation it replaced.
//!
//! Random legal schedules of the exchange-engine primitives run through
//! both implementations and must produce identical payloads at every
//! node, identical role maps, and identical [`CommReport`]s — and the
//! block-move implementation must produce that same result at every
//! worker-thread count (the staging/commit split keeps all `SimNet`
//! interaction serial, so parallelism must be invisible).

use cubesim::{par, CommReport, MachineParams, PortMode, SimNet};
use cubetranspose::reference::ref_twin;
use cubetranspose::{FieldMap, MappedMatrix, SendPolicy};
use proptest::prelude::*;

/// SplitMix64 so schedules are a pure function of the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span
    }
}

#[derive(Clone, Debug)]
enum Op {
    Exchange { i: u32, j: u32, policy: SendPolicy },
    Swap { i1: u32, i2: u32 },
    Permute { perm: Vec<u32> },
    Relabel { perm: Vec<u32> },
}

fn random_perm(rng: &mut Rng, vp: u32) -> Vec<u32> {
    let mut p: Vec<u32> = (0..vp).collect();
    for k in (1..p.len()).rev() {
        let j = rng.below(k as u64 + 1) as usize;
        p.swap(k, j);
    }
    p
}

fn random_policy(rng: &mut Rng, vp: u32) -> SendPolicy {
    match rng.below(3) {
        0 => SendPolicy::Ideal,
        1 => SendPolicy::Unbuffered,
        _ => SendPolicy::Buffered { min_direct: 1 << rng.below(vp as u64 + 1) },
    }
}

fn random_ops(rng: &mut Rng, n: u32, vp: u32, count: usize) -> Vec<Op> {
    (0..count)
        .map(|_| match rng.below(4) {
            0 if n >= 2 => {
                let i1 = rng.below(n as u64) as u32;
                let i2 = (i1 + 1 + rng.below(n as u64 - 1) as u32) % n;
                Op::Swap { i1, i2 }
            }
            1 => Op::Permute { perm: random_perm(rng, vp) },
            2 => Op::Relabel { perm: random_perm(rng, vp) },
            _ => Op::Exchange {
                i: rng.below(n as u64) as u32,
                j: rng.below(vp as u64) as u32,
                policy: random_policy(rng, vp),
            },
        })
        .collect()
}

/// A random role assignment of `n + vp` matrix dimensions.
fn random_map(rng: &mut Rng, n: u32, vp: u32) -> FieldMap {
    let mut dims: Vec<u32> = (0..n + vp).collect();
    for k in (1..dims.len()).rev() {
        let j = rng.below(k as u64 + 1) as usize;
        dims.swap(k, j);
    }
    let virt = dims.split_off(n as usize);
    FieldMap::new(dims, virt)
}

fn unit_net(n: u32) -> SimNet<Vec<u64>> {
    SimNet::new(n, MachineParams::unit(PortMode::OnePort).with_t_copy(0.5))
}

type Outcome = (Vec<Vec<u64>>, FieldMap, CommReport);

fn run_block(map: FieldMap, ops: &[Op]) -> Outcome {
    let mut m = MappedMatrix::<u64>::from_fn(map, |w| w);
    let mut net = unit_net(m.map().n());
    for op in ops {
        match op {
            Op::Exchange { i, j, policy } => m.exchange_real_virt(&mut net, *i, *j, *policy),
            Op::Swap { i1, i2 } => m.swap_real_real(&mut net, *i1, *i2),
            Op::Permute { perm } => m.permute_virt(&mut net, perm),
            Op::Relabel { perm } => m.relabel_virt(perm),
        }
    }
    net.finish_round(); // flush a trailing permute's copy charge
    let map = m.map().clone();
    (m.into_buffers(), map, net.finalize())
}

fn run_reference(map: FieldMap, ops: &[Op]) -> Outcome {
    let mut m = ref_twin(&MappedMatrix::<u64>::from_fn(map, |w| w));
    let mut net = unit_net(m.map().n());
    for op in ops {
        match op {
            Op::Exchange { i, j, policy } => m.exchange_real_virt(&mut net, *i, *j, *policy),
            Op::Swap { i1, i2 } => m.swap_real_real(&mut net, *i1, *i2),
            Op::Permute { perm } => m.permute_virt(&mut net, perm),
            Op::Relabel { perm } => m.relabel_virt(perm),
        }
    }
    net.finish_round();
    let map = m.map().clone();
    (m.into_buffers(), map, net.finalize())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn block_move_data_plane_matches_reference(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let n = 1 + rng.below(3) as u32;
        let vp = 1 + rng.below(5) as u32;
        let map = random_map(&mut rng, n, vp);
        let count = 1 + rng.below(6) as usize;
        let ops = random_ops(&mut rng, n, vp, count);
        let expect = run_reference(map.clone(), &ops);
        for threads in [1usize, 2, 5] {
            let got = par::with_threads(threads, || run_block(map.clone(), &ops));
            prop_assert_eq!(&expect.0, &got.0, "payloads diverge at {} threads", threads);
            prop_assert_eq!(&expect.1, &got.1, "role maps diverge at {} threads", threads);
            prop_assert_eq!(&expect.2, &got.2, "reports diverge at {} threads", threads);
        }
    }

    /// The same schedule equivalence with the in-place C2R plan forced
    /// on for every rotation permutation (the default threshold of 4096
    /// elements never fires at these vp ≤ 5 shapes): payloads, maps and
    /// reports must still match the reference byte-for-byte at every
    /// thread count.
    #[test]
    fn block_move_matches_reference_with_inplace_plan(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let n = 1 + rng.below(3) as u32;
        let vp = 1 + rng.below(5) as u32;
        let map = random_map(&mut rng, n, vp);
        let count = 1 + rng.below(6) as usize;
        let ops = random_ops(&mut rng, n, vp, count);
        let expect = run_reference(map.clone(), &ops);
        for threads in [1usize, 2, 5] {
            let got = cubetranspose::fieldmap::with_inplace_min(1, || {
                par::with_threads(threads, || run_block(map.clone(), &ops))
            });
            prop_assert_eq!(&expect.0, &got.0, "payloads diverge at {} threads", threads);
            prop_assert_eq!(&expect.1, &got.1, "role maps diverge at {} threads", threads);
            prop_assert_eq!(&expect.2, &got.2, "reports diverge at {} threads", threads);
        }
    }

    #[test]
    fn rearrange_to_matches_reference(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let n = 1 + rng.below(3) as u32;
        let vp = 1 + rng.below(4) as u32;
        let start = random_map(&mut rng, n, vp);
        let target = random_map(&mut rng, n, vp);
        let policy = random_policy(&mut rng, vp);

        let mut rm = ref_twin(&MappedMatrix::<u64>::from_fn(start.clone(), |w| w));
        let mut rnet = unit_net(n);
        let rsteps = rm.rearrange_to(&mut rnet, &target, policy);
        rnet.finish_round();
        let expect = (rm.into_buffers(), rsteps, rnet.finalize());

        for threads in [1usize, 3] {
            let (buffers, steps, report) = par::with_threads(threads, || {
                let mut m = MappedMatrix::<u64>::from_fn(start.clone(), |w| w);
                let mut net = unit_net(n);
                let steps = m.rearrange_to(&mut net, &target, policy);
                net.finish_round();
                (m.into_buffers(), steps, net.finalize())
            });
            prop_assert_eq!(&expect.0, &buffers, "payloads diverge at {} threads", threads);
            prop_assert_eq!(expect.1, steps);
            prop_assert_eq!(&expect.2, &report, "reports diverge at {} threads", threads);
        }
    }
}
