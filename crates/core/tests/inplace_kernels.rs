//! Property tests for the C2R/R2C in-place transpose kernel
//! (`cubetranspose::inplace`): round-trip identity, equivalence with the
//! out-of-place kernels and the `MappedMatrix` reference, and
//! byte-identity across worker counts.

use cubetranspose::inplace;
use cubetranspose::local::Dense;
use proptest::prelude::*;

/// SplitMix64 so shapes are a pure function of the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        self.next() % span
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A shape from the family the seed selects: coprime sides, shared
/// factor, degenerate 1 × n / m × 1, or square.
fn random_shape(rng: &mut Rng) -> (usize, usize) {
    match rng.below(5) {
        0 => {
            // gcd = 1 by construction: consecutive integers are coprime.
            let m = 2 + rng.below(40) as usize;
            (m, m + 1)
        }
        1 => {
            // gcd > 1: both sides share the factor g.
            let g = 2 + rng.below(6) as usize;
            (g * (1 + rng.below(8) as usize), g * (1 + rng.below(8) as usize))
        }
        2 => (1, 1 + rng.below(60) as usize),
        3 => (1 + rng.below(60) as usize, 1),
        _ => {
            let m = 1 + rng.below(48) as usize;
            (m, m)
        }
    }
}

fn payload(rows: usize, cols: usize, salt: u64) -> Vec<u64> {
    (0..(rows * cols) as u64).map(|i| i ^ salt.rotate_left(17)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `c2r ∘ r2c` is the identity at every shape family.
    #[test]
    fn c2r_r2c_roundtrip_identity(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let (m, n) = random_shape(&mut rng);
        let data = payload(m, n, seed);
        let mut buf = data.clone();
        inplace::r2c(&mut buf, m, n);
        inplace::c2r(&mut buf, m, n);
        prop_assert_eq!(buf, data, "{} x {}", m, n);
    }

    /// The in-place kernel agrees with `Dense::transpose_naive` and with
    /// the tiled out-of-place family, and is byte-identical at 1/2/5
    /// worker threads (serial driver included).
    #[test]
    fn inplace_matches_naive_at_any_thread_count(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let (m, n) = random_shape(&mut rng);
        let data = payload(m, n, seed);
        let dense = Dense::from_vec(m, n, data.clone());
        let expect = dense.transpose_naive().into_vec();
        prop_assert_eq!(
            &expect,
            &cubetranspose::local::transpose_flat(&data, m, n),
            "tiled family diverges from naive at {} x {}", m, n
        );
        let mut serial = data.clone();
        inplace::transpose_serial(&mut serial, m, n);
        prop_assert_eq!(&expect, &serial, "serial driver at {} x {}", m, n);
        for threads in [1usize, 2, 5] {
            let mut got = data.clone();
            inplace::transpose_with(threads, &mut got, m, n);
            prop_assert_eq!(&expect, &got, "{} x {} at {} threads", m, n, threads);
        }
    }

    /// Rectangular `Dense::transpose_in_place` (now the one in-place
    /// path, square included) agrees with the naive transpose and swaps
    /// the dimensions.
    #[test]
    fn dense_in_place_rectangular(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let (m, n) = random_shape(&mut rng);
        let mut dense = Dense::from_vec(m, n, payload(m, n, seed));
        let expect = dense.transpose_naive();
        dense.transpose_in_place();
        prop_assert_eq!(dense.rows(), n);
        prop_assert_eq!(dense.cols(), m);
        prop_assert_eq!(&dense, &expect, "{} x {}", m, n);
    }
}

/// Pinned (non-random) coverage of the two gcd regimes: when
/// `gcd(m, n) = 1` the rotation pass must be skipped (pure 2-pass), and
/// when `gcd(m, n) > 1` all three passes run — both must match naive.
#[test]
fn gcd_regimes_pinned() {
    for (m, n) in [(7, 16), (16, 7), (31, 64), (12, 18), (18, 12), (32, 24)] {
        let tag = if gcd(m, n) == 1 { "coprime" } else { "shared-factor" };
        let data = payload(m, n, 0xfeed);
        let expect = Dense::from_vec(m, n, data.clone()).transpose_naive().into_vec();
        for threads in [1usize, 2, 5] {
            let mut got = data.clone();
            inplace::transpose_with(threads, &mut got, m, n);
            assert_eq!(got, expect, "{tag} {m}x{n} at {threads} threads");
        }
    }
}
