//! Performance smoke for the in-place C2R transpose kernel: at a
//! vp ≥ 20 local-block shape, the in-place path must not be slower than
//! the scratch gather path it replaces (the `PermPlan::Gather`-style
//! full relocation through a staging buffer). Ignored by default;
//! `scripts/ci.sh` runs it in release mode with `--ignored`.

use cubetranspose::inplace;
use std::time::{Duration, Instant};

/// Best-of-`reps` wall time of `f` (the minimum filters scheduler noise).
fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("reps > 0")
}

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn inplace_no_slower_than_scratch_gather() {
    // vp = 20: a 2^10 x 2^10 u64 local block (8 MiB) — the engine's
    // canonical a = vp/2 local-transpose rotation — realized two ways.
    // Both run serially: the per-node reality inside the engine's
    // node-parallel fan-out.
    let (rows, cols) = (1usize << 10, 1usize << 10);
    let data: Vec<u64> = (0..(rows * cols) as u64).collect();

    // Scratch gather path: one shared relocation table (built outside
    // the timed region, as PermPlan is), applied through a full-size
    // staging buffer per call.
    let table: Vec<u32> = {
        let mut t = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            for r in 0..rows {
                t.push((r * cols + c) as u32);
            }
        }
        t
    };
    let mut src = data.clone();
    let mut staging: Vec<u64> = Vec::with_capacity(rows * cols);
    let gather = best_of(3, || {
        staging.clear();
        staging.extend(table.iter().map(|&g| src[g as usize]));
        std::mem::swap(&mut src, &mut staging);
    });

    let mut buf = data.clone();
    let inplace_t = best_of(3, || {
        inplace::transpose_serial(&mut buf, rows, cols);
        inplace::transpose_serial(&mut buf, cols, rows);
    });
    // The in-place timing covers TWO transposes (there and back, so every
    // rep starts from the same layout); halve it for the per-call figure.
    let inplace_t = inplace_t / 2;

    // Correctness cross-check of what was just timed.
    assert_eq!(buf, data, "in-place roundtrip corrupted the buffer");

    assert!(
        inplace_t <= gather,
        "in-place transpose ({inplace_t:?}) slower than scratch gather ({gather:?}) \
         at {rows}x{cols}"
    );
}
