//! Time-bounded performance smoke test for the block-move exchange
//! engine.
//!
//! Runs a full n = 10, vp = 10 dimension sweep (1024 nodes, 1024
//! elements each — every real dimension exchanged with a virtual one)
//! followed by a virtual rotation and a worst-case scramble, and fails
//! if it takes longer than a generous wall-clock bound. Ignored by
//! default so ordinary debug test runs stay fast; `scripts/ci.sh` runs
//! it in release mode with `--ignored`.

use cubesim::{MachineParams, PortMode, SimNet};
use cubetranspose::fieldmap::{check_labels, label_mapped};
use cubetranspose::{FieldMap, SendPolicy};
use std::time::{Duration, Instant};

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn n10_fieldmap_sweep_completes_within_bound() {
    let n = 10u32;
    let vp = 10u32;
    let map = FieldMap::new((0..n).collect(), (n..n + vp).collect());
    let mut m = label_mapped(map);
    let mut net: SimNet<Vec<u64>> =
        SimNet::new(n, MachineParams::unit(PortMode::OnePort).with_t_copy(0.5));

    let start = Instant::now();
    for i in 0..n {
        m.exchange_real_virt(&mut net, i, i, SendPolicy::Ideal);
    }
    let rotation: Vec<u32> = (vp / 2..vp).chain(0..vp / 2).collect();
    m.permute_virt(&mut net, &rotation);
    let scramble: Vec<u32> = {
        let mut p: Vec<u32> = (0..vp).collect();
        p.sort_by_key(|&j| (7 * j + 3) % vp);
        p
    };
    m.permute_virt(&mut net, &scramble);
    net.finish_round();
    let elapsed = start.elapsed();

    // 10 exchange rounds + one flush round carrying both permutes' copies.
    assert_eq!(net.finalize().rounds, n as usize + 1);
    assert_eq!(check_labels(&m), None);
    // ~0.1 s on a modest core; the bound only catches order-of-magnitude
    // regressions (e.g. falling back to per-element gathers), not
    // scheduler jitter.
    assert!(elapsed < Duration::from_secs(30), "n=10 fieldmap sweep took {elapsed:?}");
}
