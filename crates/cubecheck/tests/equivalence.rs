//! Plan ⇔ execution equivalence, on random schedules, at multiple
//! thread settings.
//!
//! For every engine with a static planner, the lowered plan's per-round
//! link claims must coincide exactly — round counts, link sets, element
//! counts, message/packet totals — with the `CommReport` of a real
//! execution recorded under `record_links`. The execution runs under
//! `cubesim::par::with_threads` at 1 and 2 workers, pinning the
//! determinism claim the engines make ("results do not depend on the
//! thread count") to the static schedule. Every random plan must also
//! pass `check_all` cleanly: no false positives.

use cubeaddr::{DimSet, NodeId};
use cubecomm::ecube::{ecube_route, RouteMsg};
use cubecomm::exchange::all_to_all_exchange;
use cubecomm::one_to_all::{one_to_all_rotated_sbts, one_to_all_sbt};
use cubecomm::plan::{
    all_to_all_exchange_plan, all_to_all_sbnt_plan, ecube_route_plan, one_to_all_sbt_plan,
    one_to_all_trees_plan, some_to_all_plan, CommSchedule,
};
use cubecomm::sbnt::all_to_all_sbnt;
use cubecomm::sbt::Sbt;
use cubecomm::some_to_all::some_to_all;
use cubecomm::{Block, BlockMsg, BufferPolicy};
use cubesim::par::with_threads;
use cubesim::{CommReport, MachineParams, PortMode, SimNet};
use proptest::prelude::*;

/// Thread settings every execution is replayed at (satellite 1: the
/// proptest runs in CI at >= 2 settings).
const THREADS: [usize; 2] = [1, 2];

/// Deterministic pseudo-random size matrix (same hash as
/// `cubecomm/tests/props.rs`), zeros included.
fn random_sizes(n: u32, seed: u64, max_b: u64) -> Vec<Vec<u64>> {
    let num = 1usize << n;
    (0..num as u64)
        .map(|s| {
            (0..num as u64)
                .map(|d| {
                    let h =
                        (s.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(d).wrapping_mul(seed | 1))
                            >> 33;
                    h % (max_b + 1)
                })
                .collect()
        })
        .collect()
}

fn payloads(sizes: &[Vec<u64>]) -> Vec<Vec<Vec<u64>>> {
    sizes
        .iter()
        .enumerate()
        .map(|(s, row)| {
            row.iter()
                .enumerate()
                .map(|(d, &e)| {
                    (0..e).map(|i| (s as u64) * 1_000_000 + (d as u64) * 1000 + i).collect()
                })
                .collect()
        })
        .collect()
}

/// Lowers `plan` against `params` and requires (a) zero diagnostics and
/// (b) exact agreement with the recorded execution.
fn assert_equivalent(plan: &CommSchedule, params: &MachineParams, report: &CommReport) {
    let low = cubecheck::lower(plan, params);
    let diags = cubecheck::check_all(&low, params);
    assert!(diags.is_empty(), "{}: {}", plan.name, diags[0]);
    let errs = cubecheck::cross_validate(&low, report);
    assert!(errs.is_empty(), "{}:\n{}", plan.name, errs.join("\n"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The exchange planner mirrors `all_to_all_exchange` under all
    /// three buffering policies.
    #[test]
    fn exchange_plan_equivalent(n in 1u32..5, seed in any::<u64>(), max_b in 0u64..6) {
        let sizes = random_sizes(n, seed, max_b);
        let params = MachineParams::unit(PortMode::OnePort).with_max_packet(3);
        for policy in [
            BufferPolicy::Ideal,
            BufferPolicy::Unbuffered,
            BufferPolicy::Buffered { min_direct: 2 },
        ] {
            let plan = all_to_all_exchange_plan(n, &sizes, policy, PortMode::OnePort);
            for t in THREADS {
                let report = with_threads(t, || {
                    let mut net = SimNet::new(n, params.clone());
                    net.record_links();
                    let _ = all_to_all_exchange(&mut net, payloads(&sizes), policy);
                    net.finalize()
                });
                assert_equivalent(&plan, &params, &report);
            }
        }
    }

    /// The SBnT planner mirrors `all_to_all_sbnt`.
    #[test]
    fn sbnt_plan_equivalent(n in 1u32..5, seed in any::<u64>(), max_b in 0u64..6) {
        let sizes = random_sizes(n, seed, max_b);
        let params = MachineParams::unit(PortMode::AllPorts);
        let plan = all_to_all_sbnt_plan(n, &sizes);
        for t in THREADS {
            let report = with_threads(t, || {
                let mut net = SimNet::new(n, params.clone());
                net.record_links();
                let _ = all_to_all_sbnt(&mut net, payloads(&sizes));
                net.finalize()
            });
            assert_equivalent(&plan, &params, &report);
        }
    }

    /// The SBT and rotated-tree planners mirror the one-to-all engines.
    #[test]
    fn one_to_all_plans_equivalent(n in 1u32..5, root_raw in any::<u64>(), len in 0u64..6) {
        let root = NodeId(root_raw & cubeaddr::mask(n));
        let sizes: Vec<u64> = (0..(1u64 << n)).map(|d| (len + d) % 5).collect();
        let blocks: Vec<Vec<u64>> =
            sizes.iter().enumerate().map(|(d, &e)| vec![d as u64; e as usize]).collect();

        let params = MachineParams::unit(PortMode::OnePort);
        let plan = one_to_all_sbt_plan(n, root, &sizes);
        for t in THREADS {
            let report = with_threads(t, || {
                let mut net = SimNet::new(n, params.clone());
                net.record_links();
                let _ = one_to_all_sbt(&mut net, root, blocks.clone());
                net.finalize()
            });
            assert_equivalent(&plan, &params, &report);
        }

        let params = MachineParams::unit(PortMode::AllPorts);
        let trees: Vec<Sbt> = (0..n).map(|k| Sbt::rotated(n, root, k)).collect();
        if !trees.is_empty() {
            let plan = one_to_all_trees_plan(n, &sizes, &trees);
            for t in THREADS {
                let report = with_threads(t, || {
                    let mut net = SimNet::new(n, params.clone());
                    net.record_links();
                    let _ = one_to_all_rotated_sbts(&mut net, root, blocks.clone());
                    net.finalize()
                });
                assert_equivalent(&plan, &params, &report);
            }
        }
    }

    /// The some-to-all planner mirrors `some_to_all` for random
    /// dimension splits.
    #[test]
    fn some_to_all_plan_equivalent(n in 1u32..5, mask_raw in any::<u64>(), seed in any::<u64>()) {
        let l_dims = DimSet(mask_raw & cubeaddr::mask(n));
        let k_dims = l_dims.complement(n);
        let sources = 1usize << l_dims.len();
        let num = 1usize << n;
        let sizes: Vec<Vec<u64>> = (0..sources as u64)
            .map(|i| (0..num as u64).map(|d| (i + d + seed) % 4).collect())
            .collect();
        let blocks: Vec<Vec<Vec<u64>>> = sizes
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter().map(|&e| vec![i as u64; e as usize]).collect()
            })
            .collect();
        let params = MachineParams::unit(PortMode::OnePort);
        let plan =
            some_to_all_plan(n, l_dims, k_dims, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
        for t in THREADS {
            let report = with_threads(t, || {
                let mut net: SimNet<BlockMsg<u64>> = SimNet::new(n, params.clone());
                net.record_links();
                let _ = some_to_all(&mut net, l_dims, k_dims, blocks.clone(), BufferPolicy::Ideal);
                net.finalize()
            });
            assert_equivalent(&plan, &params, &report);
        }
    }

    /// The e-cube flight planner mirrors the flat router, including its
    /// contention serialization, at both thread settings (the router is
    /// the one engine with a parallel data plane).
    #[test]
    fn ecube_plan_equivalent(n in 1u32..5, seed in any::<u64>(), count in 0usize..12) {
        let num = 1u64 << n;
        let msgs: Vec<(NodeId, NodeId, u64)> = (0..count as u64)
            .map(|i| {
                let h = i.wrapping_add(1).wrapping_mul(seed | 1);
                let src = (h >> 7) % num;
                let dst = (h >> 29) % num;
                let elems = (h >> 51) % 4; // zeros exercise the skip path
                (NodeId(src), NodeId(dst), elems)
            })
            .collect();
        let params = MachineParams::unit(PortMode::AllPorts);
        let plan = ecube_route_plan(n, &msgs);
        for t in THREADS {
            let report = with_threads(t, || {
                let mut net: SimNet<Block<u64>> = SimNet::new(n, params.clone());
                net.record_links();
                let route_msgs: Vec<RouteMsg<u64>> = msgs
                    .iter()
                    .map(|&(src, dst, elems)| RouteMsg {
                        src,
                        dst,
                        data: vec![src.bits(); elems as usize],
                    })
                    .collect();
                let _ = ecube_route(&mut net, route_msgs);
                net.finalize()
            });
            assert_equivalent(&plan, &params, &report);
        }
    }
}
