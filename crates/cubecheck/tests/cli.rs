//! End-to-end tests of the `cubecheck` binary's exit protocol.

use std::process::Command;

fn cubecheck(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cubecheck")).args(args).output().expect("binary runs")
}

#[test]
fn unknown_workload_exits_2_and_lists_available_names_sorted() {
    let out = cubecheck(&["no-such-figure"]);
    assert_eq!(out.status.code(), Some(2), "distinct exit code for unknown workloads");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown workload 'no-such-figure'"), "{stderr}");
    assert!(stderr.contains("nothing was checked"), "{stderr}");
    assert!(stderr.contains("available workloads:"), "{stderr}");
    // The suggestion list is every resolvable name, sorted.
    let listed: Vec<&str> = stderr
        .lines()
        .skip_while(|l| !l.starts_with("available workloads:"))
        .skip(1)
        .map(str::trim)
        .collect();
    let mut expect = vec!["fig14b", "fig16", "fig17", "fig18", "n16-smoke", "dragonfly-smoke"];
    expect.sort_unstable();
    assert_eq!(listed, expect, "{stderr}");
}

#[test]
fn list_names_the_smoke_workloads() {
    let out = cubecheck(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["fig16", "n16-smoke", "dragonfly-smoke"] {
        assert!(stdout.lines().any(|l| l == name), "missing {name} in {stdout}");
    }
}

#[test]
fn dragonfly_smoke_lints_clean_from_the_cli() {
    let out = cubecheck(&["dragonfly-smoke"]);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("dragonfly-smoke: 2 schedules"), "{stdout}");
    assert!(stdout.contains("all invariants hold"), "{stdout}");
}
