//! Perf smoke: planning and checking must stay cheap enough for CI.
//!
//! Ignored by default; `scripts/ci.sh` runs it in release under a
//! timeout. The bounds are deliberately generous — they catch
//! complexity regressions (an accidental O(N²) in the planner or a
//! checker), not jitter.

use cubeaddr::NodeId;
use cubecheck::workloads::transpose_msgs;
use cubecomm::plan::{all_to_all_exchange_plan, ecube_route_plan, exchange_plan, BlockMeta};
use cubecomm::BufferPolicy;
use cubesim::{MachineParams, PortMode};
use std::time::Instant;

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn planning_and_checking_stay_fast() {
    // Router flight plan at the largest benchmarked size.
    let start = Instant::now();
    let msgs = transpose_msgs(14, 4);
    let router = ecube_route_plan(14, &msgs);
    let router_build = start.elapsed();
    assert!(router_build.as_secs_f64() < 10.0, "n=14 router plan took {router_build:?}");

    // Transpose-pair exchange plan at bench size.
    let n = 14u32;
    let blocks: Vec<BlockMeta> = transpose_msgs(n, 8)
        .into_iter()
        .map(|(src, dst, elems)| BlockMeta { src, dst, elems })
        .collect();
    let dims: Vec<u32> = (0..n).rev().collect();
    let start = Instant::now();
    let exchange =
        exchange_plan(n, blocks, &dims, BufferPolicy::Ideal, PortMode::OnePort, "smoke/exchange");
    let exchange_build = start.elapsed();
    assert!(exchange_build.as_secs_f64() < 10.0, "n=14 exchange plan took {exchange_build:?}");
    assert!(!exchange.rounds.is_empty());

    // Full rule sweep on a checked-size workload: n=12 all-to-all
    // exchange (4096 blocks) plus the n=14 router plan above.
    let params = MachineParams::connection_machine();
    let sizes: Vec<Vec<u64>> =
        (0..16).map(|s: u64| (0..16).map(|d| u64::from(s != d)).collect()).collect();
    let small = all_to_all_exchange_plan(4, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
    let start = Instant::now();
    for plan in [&router, &small] {
        let low = cubecheck::lower(plan, &params);
        let diags = cubecheck::check_all(&low, &params);
        assert!(diags.is_empty(), "{}", diags[0]);
    }
    let check = start.elapsed();
    assert!(check.as_secs_f64() < 20.0, "rule sweep took {check:?}");

    // A routed pair sanity anchor so the smoke also guards correctness.
    let single = ecube_route_plan(4, &[(NodeId(0), NodeId(15), 1)]);
    assert_eq!(single.rounds.len(), 4);
}
