//! Perf smoke: planning and checking must stay cheap enough for CI.
//!
//! Ignored by default; `scripts/ci.sh` runs it in release under a
//! timeout. The bounds are deliberately generous — they catch
//! complexity regressions (an accidental O(N²) in the planner or a
//! checker), not jitter.

use cubeaddr::NodeId;
use cubecheck::workloads::transpose_msgs;
use cubecomm::plan::{all_to_all_exchange_plan, ecube_route_plan, exchange_plan, BlockMeta};
use cubecomm::BufferPolicy;
use cubesim::{MachineParams, PortMode};
use std::time::Instant;

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn planning_and_checking_stay_fast() {
    // Router flight plan at the largest benchmarked size.
    let start = Instant::now();
    let msgs = transpose_msgs(14, 4);
    let router = ecube_route_plan(14, &msgs);
    let router_build = start.elapsed();
    assert!(router_build.as_secs_f64() < 10.0, "n=14 router plan took {router_build:?}");

    // Transpose-pair exchange plan at bench size.
    let n = 14u32;
    let blocks: Vec<BlockMeta> = transpose_msgs(n, 8)
        .into_iter()
        .map(|(src, dst, elems)| BlockMeta { src, dst, elems })
        .collect();
    let dims: Vec<u32> = (0..n).rev().collect();
    let start = Instant::now();
    let exchange =
        exchange_plan(n, blocks, &dims, BufferPolicy::Ideal, PortMode::OnePort, "smoke/exchange");
    let exchange_build = start.elapsed();
    assert!(exchange_build.as_secs_f64() < 10.0, "n=14 exchange plan took {exchange_build:?}");
    assert!(!exchange.rounds.is_empty());

    // Full rule sweep on a checked-size workload: n=12 all-to-all
    // exchange (4096 blocks) plus the n=14 router plan above.
    let params = MachineParams::connection_machine();
    let sizes: Vec<Vec<u64>> =
        (0..16).map(|s: u64| (0..16).map(|d| u64::from(s != d)).collect()).collect();
    let small = all_to_all_exchange_plan(4, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
    let start = Instant::now();
    for plan in [&router, &small] {
        let low = cubecheck::lower(plan, &params);
        let diags = cubecheck::check_all(&low, &params);
        assert!(diags.is_empty(), "{}", diags[0]);
    }
    let check = start.elapsed();
    assert!(check.as_secs_f64() < 20.0, "rule sweep took {check:?}");

    // A routed pair sanity anchor so the smoke also guards correctness.
    let single = ecube_route_plan(4, &[(NodeId(0), NodeId(15), 1)]);
    assert_eq!(single.rounds.len(), 4);
}

#[test]
#[ignore = "perf smoke; run in release via scripts/ci.sh"]
fn dragonfly_planning_and_replay_stay_fast() {
    use cubecomm::plan::{dragonfly_direct_plan, dragonfly_swap_exchange_plan};
    use cubetopo::{SwappedDragonfly, Topology};

    // The CI smoke shape: D3(4,8), 256 nodes, 11 ports per router.
    let d = SwappedDragonfly::new(4, 8);
    let num = d.num_nodes() as u64;
    let params = cubesim::MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);

    // Full all-to-all through the swap-exchange planner: 65 280 blocks
    // placed into 2M-1 = 15 rounds.
    let sizes: Vec<Vec<u64>> =
        (0..num).map(|s| (0..num).map(|t| u64::from(s != t)).collect()).collect();
    let start = Instant::now();
    let swap = dragonfly_swap_exchange_plan(4, 8, &sizes);
    let swap_build = start.elapsed();
    assert!(swap_build.as_secs_f64() < 10.0, "D3(4,8) swap-exchange plan took {swap_build:?}");
    assert_eq!(swap.rounds.len(), 15);

    // Node permutation through the direct planner (a static simulation,
    // so the bound guards its queue bookkeeping too).
    let msgs: Vec<(NodeId, NodeId, u64)> =
        (0..num).map(|x| (NodeId(x), NodeId((x * 7 + 3) % num), 4)).collect();
    let start = Instant::now();
    let direct = dragonfly_direct_plan(4, 8, &msgs);
    let direct_build = start.elapsed();
    assert!(direct_build.as_secs_f64() < 10.0, "D3(4,8) direct plan took {direct_build:?}");

    // Rule sweep plus a replayed execution, cross-validated round by
    // round — the whole static-to-dynamic loop under one time bound.
    let start = Instant::now();
    for plan in [&swap, &direct] {
        let low = cubecheck::lower(plan, &params);
        let diags = cubecheck::check_all(&low, &params);
        assert!(diags.is_empty(), "{}: {}", plan.name, diags[0]);
        let errs = cubecheck::cross_validate(&low, &cubecheck::run_schedule(plan, &params));
        assert!(errs.is_empty(), "{}: {}", plan.name, errs.join("\n"));
    }
    let loop_time = start.elapsed();
    assert!(loop_time.as_secs_f64() < 20.0, "check + replay sweep took {loop_time:?}");
}
