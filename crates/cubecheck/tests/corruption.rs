//! Deliberately corrupted schedules: each corruption must trigger
//! exactly the intended rule, with the right location attached — the
//! checkers' precision tests (the recall side is the equivalence suite).

use cubeaddr::NodeId;
use cubecheck::{check_all, lower, Diag, Rule};
use cubecomm::plan::{
    all_to_all_exchange_plan, ecube_route_plan, BlockMeta, CommSchedule, PlanRound, PlannedMsg,
};
use cubecomm::BufferPolicy;
use cubesim::{MachineParams, PortMode};

fn rules_of(diags: &[Diag]) -> Vec<Rule> {
    let mut rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

/// Duplicate link claim: splitting one exchange message into two
/// messages on the same directed link in the same round breaks *only*
/// edge-disjointness (sizes, chains and ports all stay intact).
#[test]
fn duplicate_link_claim_fires_link_exclusive_only() {
    let sizes = vec![vec![1u64; 4]; 4];
    let plan = all_to_all_exchange_plan(2, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
    let params = MachineParams::unit(PortMode::OnePort);
    let mut low = lower(&plan, &params);

    let victim = low
        .claims
        .iter()
        .position(|c| c.blocks.len() >= 2)
        .expect("all-to-all claims carry >= 2 blocks");
    let mut split = low.claims[victim].clone();
    let moved = split.blocks.split_off(1);
    split.elems = split.blocks.iter().map(|&b| low.blocks[b as usize].elems).sum();
    split.packets = params.packets(split.elems as usize) as u64;
    let mut second = low.claims[victim].clone();
    second.blocks = moved;
    second.elems = second.blocks.iter().map(|&b| low.blocks[b as usize].elems).sum();
    second.packets = params.packets(second.elems as usize) as u64;
    let (round, src, dim) = (split.round, split.src, split.dim);
    low.claims[victim] = split;
    low.claims.push(second);

    let diags = check_all(&low, &params);
    assert_eq!(rules_of(&diags), vec![Rule::LinkExclusive], "{diags:?}");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].round, Some(round));
    assert_eq!(diags[0].node, Some(src));
    assert_eq!(diags[0].dim, Some(dim));
}

/// Oversized packet: declaring fewer packets than `⌈S/B_m⌉` requires
/// breaks only the packet budget.
#[test]
fn oversized_packet_fires_packet_budget_only() {
    let plan = ecube_route_plan(2, &[(NodeId(0), NodeId(3), 4)]);
    let params = MachineParams::unit(PortMode::AllPorts).with_max_packet(2);
    let mut low = lower(&plan, &params);
    assert_eq!(low.claims[0].packets, 2);
    low.claims[0].packets = 1; // one packet of 4 > B_m = 2

    let diags = check_all(&low, &params);
    assert_eq!(rules_of(&diags), vec![Rule::PacketBudget], "{diags:?}");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].round, Some(low.claims[0].round));
    assert_eq!(diags[0].node, Some(0));
    assert_eq!(diags[0].dim, Some(low.claims[0].dim));
}

/// Cyclic channel dependencies: four blocks chasing each other around
/// the 2-cube. Every round is edge-disjoint and every block arrives, but
/// the channel dependency graph is the 4-cycle
/// `(0,d0) → (1,d1) → (3,d0) → (2,d1) → (0,d0)` — the configuration
/// dimension-ordered routing exists to exclude.
#[test]
fn cyclic_channel_dependency_fires_deadlock_free_only() {
    let msg =
        |src: u64, dim: u32, block: u32| PlannedMsg { src: NodeId(src), dim, blocks: vec![block] };
    let plan = CommSchedule {
        name: "corrupt/cycle".into(),
        topo: cubetopo::TopoSpec::hypercube(2),
        ports: PortMode::AllPorts,
        dimension_ordered: true, // claims an order it does not have
        blocks: vec![
            BlockMeta { src: NodeId(0), dst: NodeId(3), elems: 1 },
            BlockMeta { src: NodeId(1), dst: NodeId(2), elems: 1 },
            BlockMeta { src: NodeId(3), dst: NodeId(0), elems: 1 },
            BlockMeta { src: NodeId(2), dst: NodeId(1), elems: 1 },
        ],
        rounds: vec![
            PlanRound {
                msgs: vec![msg(0, 0, 0), msg(1, 1, 1), msg(3, 0, 2), msg(2, 1, 3)],
                copies: vec![],
            },
            PlanRound {
                msgs: vec![msg(1, 1, 0), msg(3, 0, 1), msg(2, 1, 2), msg(0, 0, 3)],
                copies: vec![],
            },
        ],
    };
    let params = MachineParams::unit(PortMode::AllPorts);
    let low = lower(&plan, &params);
    let diags = check_all(&low, &params);
    assert_eq!(rules_of(&diags), vec![Rule::DeadlockFree], "{diags:?}");
    assert_eq!(diags.len(), 1);
    assert!(diags[0].detail.contains("cycle"), "{}", diags[0]);
    assert!(diags[0].node.is_some());
}

/// Dropped element: deleting the final hop of a routed block leaves its
/// delivery chain short of the destination — conservation, and only
/// conservation, with the block named.
#[test]
fn dropped_element_fires_conservation_only() {
    let plan = ecube_route_plan(2, &[(NodeId(0), NodeId(3), 2)]);
    let params = MachineParams::unit(PortMode::AllPorts);
    let mut low = lower(&plan, &params);
    assert_eq!(low.claims.len(), 2, "0 -> 3 takes two hops");
    let last = low.claims.iter().map(|c| c.round).max().unwrap();
    low.claims.retain(|c| c.round != last);

    let diags = check_all(&low, &params);
    assert_eq!(rules_of(&diags), vec![Rule::Conservation], "{diags:?}");
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].block, Some(0));
    assert_eq!(diags[0].node, Some(1), "chain stops at the intermediate node");
    assert!(diags[0].detail.contains("dropped"), "{}", diags[0]);
}

/// Sanity: the uncorrupted versions of all the fixtures are clean.
#[test]
fn uncorrupted_fixtures_are_clean() {
    let params = MachineParams::unit(PortMode::OnePort);
    let sizes = vec![vec![1u64; 4]; 4];
    let plan = all_to_all_exchange_plan(2, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
    assert!(check_all(&lower(&plan, &params), &params).is_empty());

    let params = MachineParams::unit(PortMode::AllPorts).with_max_packet(2);
    let plan = ecube_route_plan(2, &[(NodeId(0), NodeId(3), 4)]);
    assert!(check_all(&lower(&plan, &params), &params).is_empty());
}
