//! The invariant checkers.
//!
//! Each checker consumes a [`Lowered`] schedule and returns structured
//! [`Diag`]s; [`check_all`] runs all five. The checkers are independent
//! by construction — the corruption tests in `tests/corruption.rs` rely
//! on a single broken invariant firing exactly its own rule.

use crate::diag::{Diag, Rule};
use crate::ir::{LinkClaim, Lowered};
use cubesim::{MachineParams, PortMode};
use cubetopo::Topology;
use std::collections::{HashMap, HashSet};

/// Runs every checker; diagnostics come back grouped by rule, in
/// schedule order within each rule.
pub fn check_all(low: &Lowered, params: &MachineParams) -> Vec<Diag> {
    let mut diags = check_port_model(low);
    diags.extend(check_link_exclusive(low));
    diags.extend(check_packet_budget(low, params));
    diags.extend(check_conservation(low));
    diags.extend(check_deadlock_free(low));
    diags
}

fn diag(low: &Lowered, rule: Rule, detail: String) -> Diag {
    Diag {
        schedule: low.name.clone(),
        rule,
        round: None,
        node: None,
        dim: None,
        block: None,
        detail,
    }
}

/// Claims grouped by round (rounds beyond [`Lowered::rounds`] included,
/// so corrupted schedules still group sanely).
fn claims_by_round(low: &Lowered) -> Vec<Vec<&LinkClaim>> {
    let rounds = low.rounds.max(low.claims.iter().map(|c| c.round + 1).max().unwrap_or(0));
    let mut by_round: Vec<Vec<&LinkClaim>> = vec![Vec::new(); rounds];
    for c in &low.claims {
        by_round[c.round].push(c);
    }
    by_round
}

/// Port-model compliance (paper §2): claims name real links, and under
/// one-port communication each node touches at most one link per round.
/// A node may send *and* receive on that one link (bidirectional
/// exchange), so the constraint is on *distinct* links, both endpoints
/// counted — exactly the discipline [`cubesim::SimNet`] enforces
/// dynamically.
pub fn check_port_model(low: &Lowered) -> Vec<Diag> {
    let mut diags = Vec::new();
    let topo = low.topo;
    let num = topo.num_nodes() as u64;
    let ports = topo.ports();
    // A claim names a real link iff its endpoints are in range and the
    // port is wired (a cube port always is; a Dragonfly group's swap
    // fixed point is not).
    let unlinked =
        |c: &LinkClaim| c.dim >= ports || c.src >= num || topo.neighbor(c.src, c.dim).is_none();
    for c in &low.claims {
        if unlinked(c) {
            let mut d =
                diag(low, Rule::PortModel, format!("claim names no link of the {}", topo.label()));
            (d.round, d.node, d.dim) = (Some(c.round), Some(c.src), Some(c.dim));
            diags.push(d);
        }
    }
    if low.ports != PortMode::OnePort {
        return diags;
    }
    for (round, claims) in claims_by_round(low).iter().enumerate() {
        // node -> the one undirected link it may use this round
        // (canonically named from its lower endpoint), plus the claimed
        // dim for the diagnostic. On the cube both ends number a link by
        // its dimension, so "one link" coincides with "one dim".
        let mut used: HashMap<u64, ((u64, u32), u32)> = HashMap::new();
        let mut reported: HashSet<u64> = HashSet::new();
        for c in claims {
            if unlinked(c) {
                continue; // already reported structurally
            }
            let far = topo.neighbor(c.src, c.dim).expect("wired: checked above");
            let link = if c.src <= far {
                (c.src, c.dim)
            } else {
                (far, topo.reverse_port(c.src, c.dim).expect("wired: checked above"))
            };
            for endpoint in [c.src, far] {
                match used.entry(endpoint) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((link, c.dim));
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if e.get().0 != link && reported.insert(endpoint) {
                            let mut d = diag(
                                low,
                                Rule::PortModel,
                                format!(
                                    "one-port node uses links on dims {} and {} in one round",
                                    e.get().1,
                                    c.dim
                                ),
                            );
                            (d.round, d.node, d.dim) = (Some(round), Some(endpoint), Some(c.dim));
                            diags.push(d);
                        }
                    }
                }
            }
        }
    }
    diags
}

/// Edge-disjointness within a round (§3/§8.1): one message per directed
/// link per round.
pub fn check_link_exclusive(low: &Lowered) -> Vec<Diag> {
    let mut diags = Vec::new();
    for (round, claims) in claims_by_round(low).iter().enumerate() {
        let mut seen: HashMap<(u64, u32), u32> = HashMap::new();
        for c in claims {
            *seen.entry((c.src, c.dim)).or_insert(0) += 1;
        }
        let mut dups: Vec<((u64, u32), u32)> = seen.into_iter().filter(|&(_, k)| k > 1).collect();
        dups.sort_unstable();
        for ((src, dim), count) in dups {
            let mut d = diag(
                low,
                Rule::LinkExclusive,
                format!("{count} messages claim one directed link in one round"),
            );
            (d.round, d.node, d.dim) = (Some(round), Some(src), Some(dim));
            diags.push(d);
        }
    }
    diags
}

/// Packet budget (§2): every message carries data and declares enough
/// packets that none exceeds `B_m`.
pub fn check_packet_budget(low: &Lowered, params: &MachineParams) -> Vec<Diag> {
    let mut diags = Vec::new();
    for c in &low.claims {
        let detail = if c.elems == 0 {
            Some("empty message (a start-up with no data)".to_string())
        } else {
            let need = params.packets(c.elems as usize) as u64;
            (c.packets < need).then(|| {
                format!(
                    "{} elems need {} packets of <= {} elems, claim declares {}",
                    c.elems, need, params.max_packet, c.packets
                )
            })
        };
        if let Some(detail) = detail {
            let mut d = diag(low, Rule::PacketBudget, detail);
            (d.round, d.node, d.dim) = (Some(c.round), Some(c.src), Some(c.dim));
            diags.push(d);
        }
    }
    diags
}

/// The hops of every block, gathered from the claims and sorted by
/// round: `hops[id] = [(round, src, dim), ...]`.
fn block_hops(low: &Lowered) -> Vec<Vec<(usize, u64, u32)>> {
    let mut hops: Vec<Vec<(usize, u64, u32)>> = vec![Vec::new(); low.blocks.len()];
    for c in &low.claims {
        for &b in &c.blocks {
            if let Some(h) = hops.get_mut(b as usize) {
                h.push((c.round, c.src, c.dim));
            }
        }
    }
    for h in &mut hops {
        h.sort_unstable();
    }
    hops
}

/// Element conservation (§3): claim sizes are exactly the sums of their
/// blocks, and every block's hops chain its source to its destination,
/// one claim per hop, rounds strictly increasing.
pub fn check_conservation(low: &Lowered) -> Vec<Diag> {
    let mut diags = Vec::new();
    let topo = low.topo;
    let (num, ports) = (topo.num_nodes() as u64, topo.ports());
    for c in &low.claims {
        let mut sum = 0u64;
        let mut bad_id = None;
        for &b in &c.blocks {
            match low.blocks.get(b as usize) {
                Some(meta) => sum += meta.elems,
                None => bad_id = bad_id.or(Some(b)),
            }
        }
        if let Some(b) = bad_id {
            let mut d = diag(low, Rule::Conservation, "claim carries an unknown block".into());
            (d.round, d.node, d.dim, d.block) = (Some(c.round), Some(c.src), Some(c.dim), Some(b));
            diags.push(d);
        } else if sum != c.elems {
            let mut d = diag(
                low,
                Rule::Conservation,
                format!("claim declares {} elems but its blocks total {}", c.elems, sum),
            );
            (d.round, d.node, d.dim) = (Some(c.round), Some(c.src), Some(c.dim));
            diags.push(d);
        }
    }
    for (id, hops) in block_hops(low).iter().enumerate() {
        let meta = &low.blocks[id];
        let mut at = meta.src.bits();
        let mut last_round = None;
        let mut broken = false;
        for &(round, src, dim) in hops {
            if last_round == Some(round) {
                let mut d =
                    diag(low, Rule::Conservation, "block claimed twice in one round".into());
                (d.round, d.node, d.dim, d.block) =
                    (Some(round), Some(src), Some(dim), Some(id as u32));
                diags.push(d);
                broken = true;
                break;
            }
            if src != at {
                let mut d = diag(
                    low,
                    Rule::Conservation,
                    format!("claimed to depart node {src} but the block is at node {at}"),
                );
                (d.round, d.node, d.dim, d.block) =
                    (Some(round), Some(src), Some(dim), Some(id as u32));
                diags.push(d);
                broken = true;
                break;
            }
            match (dim < ports && at < num).then(|| topo.neighbor(at, dim)).flatten() {
                Some(next) => at = next,
                None => {
                    // The hop names no link of the topology (PortModel
                    // reports the claim itself); the chain cannot
                    // continue past it.
                    let mut d = diag(
                        low,
                        Rule::Conservation,
                        format!("block routed over a nonexistent link of the {}", topo.label()),
                    );
                    (d.round, d.node, d.dim, d.block) =
                        (Some(round), Some(src), Some(dim), Some(id as u32));
                    diags.push(d);
                    broken = true;
                    break;
                }
            }
            last_round = Some(round);
        }
        if !broken && at != meta.dst.bits() {
            let mut d = diag(
                low,
                Rule::Conservation,
                format!("element dropped: delivery chain ends at node {at}, not node {}", meta.dst),
            );
            (d.node, d.block) = (Some(at), Some(id as u32));
            diags.push(d);
        }
    }
    diags
}

/// Deadlock freedom for dimension-ordered schedules: the channel
/// dependency graph — one channel per `(node, dim)`, one edge per
/// consecutive hop pair of any block — must be acyclic (the Dally–Seitz
/// condition the e-cube order guarantees). Schedules not flagged
/// dimension-ordered are skipped: their safety argument is the
/// round-synchronous barrier, not channel ordering.
pub fn check_deadlock_free(low: &Lowered) -> Vec<Diag> {
    if !low.dimension_ordered {
        return Vec::new();
    }
    let n = u64::from(low.topo.ports().max(1));
    let chan = |src: u64, dim: u32| -> u64 { src * n + u64::from(dim) };
    let mut edges: HashSet<(u64, u64)> = HashSet::new();
    for hops in block_hops(low) {
        for pair in hops.windows(2) {
            let (_, s1, d1) = pair[0];
            let (_, s2, d2) = pair[1];
            edges.insert((chan(s1, d1), chan(s2, d2)));
        }
    }
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in &edges {
        adj.entry(a).or_default().push(b);
        adj.entry(b).or_default();
    }
    // Iterative three-color DFS; a back edge is a cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color: HashMap<u64, u8> = adj.keys().map(|&c| (c, WHITE)).collect();
    let mut roots: Vec<u64> = adj.keys().copied().collect();
    roots.sort_unstable();
    for root in roots {
        if color[&root] != WHITE {
            continue;
        }
        // Stack of (channel, next-neighbor index).
        let mut stack: Vec<(u64, usize)> = vec![(root, 0)];
        color.insert(root, GRAY);
        while let Some(frame) = stack.last_mut() {
            let (c, i) = (frame.0, frame.1);
            frame.1 += 1;
            match adj[&c].get(i).copied() {
                None => {
                    color.insert(c, BLACK);
                    stack.pop();
                }
                Some(next) => match color[&next] {
                    WHITE => {
                        color.insert(next, GRAY);
                        stack.push((next, 0));
                    }
                    GRAY => {
                        // Reconstruct the cycle from the gray stack.
                        let start = stack.iter().position(|&(x, _)| x == next).unwrap_or(0);
                        let cycle: Vec<String> = stack[start..]
                            .iter()
                            .map(|&(x, _)| format!("({}, dim {})", x / n, x % n))
                            .collect();
                        let mut d = diag(
                            low,
                            Rule::DeadlockFree,
                            format!("channel dependency cycle: {} -> back", cycle.join(" -> ")),
                        );
                        (d.node, d.dim) = (Some(next / n), Some((next % n) as u32));
                        return vec![d];
                    }
                    _ => {}
                },
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubeaddr::NodeId;
    use cubecomm::plan::{all_to_all_exchange_plan, ecube_route_plan, one_to_all_sbt_plan};
    use cubecomm::BufferPolicy;

    fn unit(ports: PortMode) -> MachineParams {
        MachineParams::unit(ports)
    }

    #[test]
    fn clean_exchange_plan_passes_all_rules() {
        let sizes = vec![vec![3u64; 8]; 8];
        for policy in [
            BufferPolicy::Ideal,
            BufferPolicy::Unbuffered,
            BufferPolicy::Buffered { min_direct: 6 },
        ] {
            let plan = all_to_all_exchange_plan(3, &sizes, policy, PortMode::OnePort);
            let low = crate::ir::lower(&plan, &unit(PortMode::OnePort));
            let diags = check_all(&low, &unit(PortMode::OnePort));
            assert!(diags.is_empty(), "{policy:?}: {}", diags[0]);
        }
    }

    #[test]
    fn clean_router_and_sbt_plans_pass() {
        let msgs: Vec<(NodeId, NodeId, u64)> =
            (0..16u64).map(|x| (NodeId(x), NodeId(15 - x), 3)).collect();
        let plan = ecube_route_plan(4, &msgs);
        let low = crate::ir::lower(&plan, &unit(PortMode::AllPorts));
        assert!(check_all(&low, &unit(PortMode::AllPorts)).is_empty());

        let sizes: Vec<u64> = (0..16).map(|d| d % 4).collect();
        let plan = one_to_all_sbt_plan(4, NodeId(3), &sizes);
        let low = crate::ir::lower(&plan, &unit(PortMode::OnePort));
        assert!(check_all(&low, &unit(PortMode::OnePort)).is_empty());
    }

    #[test]
    fn one_port_violation_detected() {
        // Two claims at the same node on different dims in one round.
        let msgs = vec![(NodeId(0), NodeId(1), 2), (NodeId(0), NodeId(2), 2)];
        let plan = ecube_route_plan(2, &msgs);
        let mut low = crate::ir::lower(&plan, &unit(PortMode::OnePort));
        low.ports = PortMode::OnePort; // the router plans n-port; reinterpret
        let diags = check_port_model(&low);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::PortModel);
        assert_eq!(diags[0].node, Some(0));
        // Same schedule under n-port is clean.
        low.ports = PortMode::AllPorts;
        assert!(check_port_model(&low).is_empty());
    }

    #[test]
    fn bidirectional_exchange_is_one_port_legal() {
        // Nodes 0 and 1 swap over dim 0 in the same round: both endpoints
        // use one link. SimNet allows this; so must the checker.
        let sizes: Vec<Vec<u64>> = vec![vec![0, 2], vec![2, 0]];
        let plan = all_to_all_exchange_plan(1, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
        let low = crate::ir::lower(&plan, &unit(PortMode::OnePort));
        assert!(check_all(&low, &unit(PortMode::OnePort)).is_empty());
    }
}
