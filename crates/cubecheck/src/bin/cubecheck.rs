//! Lints the figure workloads' communication schedules.
//!
//! ```text
//! cubecheck --all-figures        lint every figure workload
//! cubecheck --list               list lintable figures
//! cubecheck fig16 fig18          lint specific figures
//! ```
//!
//! Exits nonzero if any schedule violates an invariant; CI runs
//! `--all-figures` so a schedule regression fails the build before it
//! bends a curve.

use cubecheck::workloads::{figure, FIGURES};
use cubecheck::{check_all, lower};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for name in FIGURES {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let names: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "--all-figures") {
        FIGURES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut violations = 0usize;
    for name in names {
        let Some(workloads) = figure(name) else {
            eprintln!("cubecheck: unknown figure '{name}' (try --list)");
            return ExitCode::FAILURE;
        };
        let (mut schedules, mut claims) = (0usize, 0u64);
        for w in workloads {
            let low = lower(&w.schedule, &w.params);
            schedules += 1;
            claims += low.claims.len() as u64;
            for d in check_all(&low, &w.params) {
                eprintln!("{d}");
                violations += 1;
            }
        }
        println!("{name}: {schedules} schedules, {claims} link claims checked");
    }
    if violations > 0 {
        eprintln!("cubecheck: {violations} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("cubecheck: all invariants hold");
        ExitCode::SUCCESS
    }
}
