//! Lints the figure workloads' communication schedules.
//!
//! ```text
//! cubecheck --all-figures        lint every figure workload
//! cubecheck --list               list lintable figures
//! cubecheck fig16 fig18          lint specific figures
//! cubecheck n16-smoke            lint the 65 536-node smoke workload
//! cubecheck dragonfly-smoke      lint the Swapped Dragonfly planners
//! ```
//!
//! Exits 1 if any schedule violates an invariant, 2 if a named workload
//! does not exist; CI runs `--all-figures` so a schedule regression
//! fails the build before it bends a curve, plus the smoke workloads
//! under a time bound. Workloads share constructions through the
//! process-wide plan cache; the summary line reports its hit/miss
//! counters.

use cubecheck::workloads::{figure, plan_cache, workload_names, FIGURES};
use cubecheck::{check_all, lower};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for name in workload_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let names: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "--all-figures") {
        FIGURES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut violations = 0usize;
    for name in names {
        let Some(workloads) = figure(name) else {
            // Exit 2, distinct from the invariant-violation exit 1, so
            // CI scripts can tell a typo from a broken schedule. List
            // what *would* have worked — a typo'd figure name is most
            // easily fixed by seeing the real one next to it.
            eprintln!("cubecheck: unknown workload '{name}'; nothing was checked");
            eprintln!("available workloads:");
            for known in workload_names() {
                eprintln!("  {known}");
            }
            return ExitCode::from(2);
        };
        let (mut schedules, mut claims) = (0usize, 0u64);
        for w in workloads {
            let mut low = lower(&w.schedule, &w.params);
            // Cached schedules carry their canonical builder name; the
            // figure-point name is the useful one in diagnostics.
            low.name = w.name.clone();
            schedules += 1;
            claims += low.claims.len() as u64;
            for d in check_all(&low, &w.params) {
                eprintln!("{d}");
                violations += 1;
            }
        }
        println!("{name}: {schedules} schedules, {claims} link claims checked");
    }
    let stats = plan_cache().stats();
    println!(
        "plan cache: {} hits, {} misses, {} evictions ({} / {} entries)",
        stats.hits, stats.misses, stats.evictions, stats.entries, stats.capacity
    );
    if violations > 0 {
        eprintln!("cubecheck: {violations} violation(s)");
        ExitCode::FAILURE
    } else {
        println!("cubecheck: all invariants hold");
        ExitCode::SUCCESS
    }
}
