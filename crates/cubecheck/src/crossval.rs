//! Cross-validation of a lowered schedule against a simulated run.
//!
//! The checkers are only worth trusting if the static plan is really the
//! schedule the engine executes. This module compares a [`Lowered`]
//! schedule with the [`CommReport`] of an execution recorded under
//! [`cubesim::SimNet::record_links`]: round counts, the exact
//! `(src, dim, elems)` link set of every round, and the report's message
//! / element / packet totals must all agree.

use crate::ir::Lowered;
use cubesim::CommReport;

/// Compares plan and execution; returns one human-readable line per
/// mismatch (empty = equivalent). The report must come from a run with
/// link recording enabled and must cover *only* the planned operation.
pub fn cross_validate(low: &Lowered, report: &CommReport) -> Vec<String> {
    let mut errs = Vec::new();
    if report.link_history.len() != report.rounds {
        errs.push(format!(
            "report has {} link-history rounds for {} rounds — was record_links enabled \
             before the run?",
            report.link_history.len(),
            report.rounds
        ));
        return errs;
    }
    if low.rounds != report.rounds {
        errs.push(format!("round count: plan has {}, execution ran {}", low.rounds, report.rounds));
    }
    // Per-round link sets, as sorted (src, dim, elems) triples.
    let rounds = low.rounds.min(report.rounds);
    let mut planned: Vec<Vec<(u64, u32, u64)>> = vec![Vec::new(); rounds];
    for c in &low.claims {
        if c.round < rounds {
            planned[c.round].push((c.src, c.dim, c.elems));
        }
    }
    for (r, plan_links) in planned.iter_mut().enumerate() {
        plan_links.sort_unstable();
        let mut run_links: Vec<(u64, u32, u64)> =
            report.link_history[r].iter().map(|e| (e.src, e.dim, u64::from(e.elems))).collect();
        run_links.sort_unstable();
        if *plan_links != run_links {
            let detail = plan_links
                .iter()
                .find(|l| !run_links.contains(l))
                .map(|&(s, d, e)| format!("plan-only link (src {s}, dim {d}, {e} elems)"))
                .or_else(|| {
                    run_links
                        .iter()
                        .find(|l| !plan_links.contains(l))
                        .map(|&(s, d, e)| format!("run-only link (src {s}, dim {d}, {e} elems)"))
                })
                .unwrap_or_else(|| "same links, different multiplicities".to_string());
            errs.push(format!(
                "round {r}: plan claims {} links, run used {} — first difference: {detail}",
                plan_links.len(),
                run_links.len()
            ));
        }
    }
    let (msgs, elems, packets) = (low.claims.len() as u64, low.total_elems(), low.total_packets());
    if msgs != report.total_messages {
        errs.push(format!("total messages: plan {} vs run {}", msgs, report.total_messages));
    }
    if elems != report.total_elems {
        errs.push(format!("total elems: plan {} vs run {}", elems, report.total_elems));
    }
    if packets != report.total_packets {
        errs.push(format!("total packets: plan {} vs run {}", packets, report.total_packets));
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use cubecomm::exchange::all_to_all_exchange;
    use cubecomm::plan::all_to_all_exchange_plan;
    use cubecomm::BufferPolicy;
    use cubesim::{MachineParams, PortMode, SimNet};

    #[test]
    fn exchange_plan_matches_execution() {
        let n = 3;
        let params = MachineParams::unit(PortMode::OnePort);
        let sizes: Vec<Vec<u64>> =
            (0..8).map(|s| (0..8).map(|d| u64::from(s != d) * 2).collect()).collect();
        let plan = all_to_all_exchange_plan(n, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
        let low = lower(&plan, &params);

        let mut net = SimNet::new(n, params);
        net.record_links();
        let blocks: Vec<Vec<Vec<u64>>> =
            sizes.iter().map(|row| row.iter().map(|&e| vec![7u64; e as usize]).collect()).collect();
        let _ = all_to_all_exchange(&mut net, blocks, BufferPolicy::Ideal);
        let report = net.finalize();
        let errs = cross_validate(&low, &report);
        assert!(errs.is_empty(), "{}", errs.join("\n"));
    }

    #[test]
    fn mismatch_is_reported() {
        let n = 2;
        let params = MachineParams::unit(PortMode::OnePort);
        let sizes = vec![vec![1u64; 4]; 4];
        let plan = all_to_all_exchange_plan(n, &sizes, BufferPolicy::Ideal, PortMode::OnePort);
        let mut low = lower(&plan, &params);
        low.claims[0].elems += 1; // corrupt one link claim

        let mut net = SimNet::new(n, params);
        net.record_links();
        let blocks: Vec<Vec<Vec<u64>>> =
            sizes.iter().map(|row| row.iter().map(|&e| vec![0u64; e as usize]).collect()).collect();
        let _ = all_to_all_exchange(&mut net, blocks, BufferPolicy::Ideal);
        let errs = cross_validate(&low, &net.finalize());
        assert!(!errs.is_empty());
        assert!(errs.iter().any(|e| e.contains("plan-only link")), "{}", errs.join("\n"));
    }
}
