//! Structured diagnostics: which rule broke, where, and which clause of
//! the paper it contradicts.

use std::fmt;

/// The invariants the checkers prove.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// Port-model compliance: under one-port communication a node uses at
    /// most one link per round (counting both endpoints; bidirectional
    /// exchange on the *same* link is allowed), and every claim names a
    /// real link of the cube.
    PortModel,
    /// Edge-disjointness within a round: at most one message per directed
    /// link per round.
    LinkExclusive,
    /// Packet budget: every message carries data, and its declared packet
    /// count covers `⌈S/B_m⌉` — no packet exceeds the machine's maximum
    /// packet size.
    PacketBudget,
    /// Element conservation: every block travels from its source to its
    /// destination along a connected chain of claims, each hop claimed
    /// exactly once, and every claim's size is exactly the sum of its
    /// blocks.
    Conservation,
    /// Deadlock freedom: for dimension-ordered schedules, the channel
    /// dependency graph induced by the block paths is acyclic, so the
    /// same schedule runs deadlock-free on an asynchronous machine.
    DeadlockFree,
}

impl Rule {
    /// The paper clause the rule formalizes.
    pub fn paper_ref(self) -> &'static str {
        match self {
            Rule::PortModel => {
                "§2: one-port vs n-port communication — \"communication on all ports \
                 concurrently\" is the n-cube option; one-port uses one link per step"
            }
            Rule::LinkExclusive => {
                "§3/§8.1: the exchange and tree schedules send one message per directed \
                 link per step (edge-disjoint use of the cube's links)"
            }
            Rule::PacketBudget => {
                "§2: a message of S elements over one link takes ⌈S/B_m⌉ start-ups — \
                 packets never exceed the maximum packet size B_m"
            }
            Rule::Conservation => {
                "§3: personalized communication delivers every source element to its \
                 destination exactly once"
            }
            Rule::DeadlockFree => {
                "§7/Figures 14b, 16–18: dimension-ordered (e-cube) routing orders the \
                 channel dependencies, leaving the dependency graph acyclic"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::PortModel => "port-model",
            Rule::LinkExclusive => "link-exclusive",
            Rule::PacketBudget => "packet-budget",
            Rule::Conservation => "conservation",
            Rule::DeadlockFree => "deadlock-free",
        };
        f.write_str(name)
    }
}

/// One violation, located as precisely as the rule allows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diag {
    /// Name of the offending schedule.
    pub schedule: String,
    /// The broken rule.
    pub rule: Rule,
    /// Round of the violation, when local to a round.
    pub round: Option<usize>,
    /// Node involved (the sender, or the port-constrained node).
    pub node: Option<u64>,
    /// Dimension of the link involved.
    pub dim: Option<u32>,
    /// Block id involved, for per-block rules.
    pub block: Option<u32>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}]", self.schedule, self.rule)?;
        if let Some(r) = self.round {
            write!(f, " round {r}")?;
        }
        if let Some(x) = self.node {
            write!(f, " node {x}")?;
        }
        if let Some(d) = self.dim {
            write!(f, " dim {d}")?;
        }
        if let Some(b) = self.block {
            write!(f, " block {b}")?;
        }
        write!(f, ": {} (violates {})", self.detail, self.rule.paper_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_paper_ref() {
        let d = Diag {
            schedule: "test/n2".into(),
            rule: Rule::LinkExclusive,
            round: Some(3),
            node: Some(5),
            dim: Some(1),
            block: None,
            detail: "two messages on one link".into(),
        };
        let s = d.to_string();
        assert!(s.contains("test/n2"));
        assert!(s.contains("link-exclusive"));
        assert!(s.contains("round 3"));
        assert!(s.contains("node 5"));
        assert!(s.contains("dim 1"));
        assert!(s.contains("§3/§8.1"));
    }
}
