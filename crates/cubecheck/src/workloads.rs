//! The figure workloads, as static schedules.
//!
//! Figures 14(b) and 16–18 all route the node-permutation transpose
//! `x → tr(x)` through the dimension-ordered router; each workload here
//! is the corresponding [`CommSchedule`] (built by
//! [`cubecomm::plan::ecube_route_plan`]) paired with the figure's
//! machine model, at every benchmarked parameter point. The `cubecheck`
//! binary lints them all; `cubebench`'s figure driver can do the same
//! before generating data (`--lint`).
//!
//! Schedules are built through a process-wide [`PlanCache`] (see
//! [`plan_cache`]): figures sharing a parameter point (the same `n` and
//! element count) share one construction, and re-lints are warm hits.
//! The cache hands out `Arc`s, so a workload's schedule is shared, not
//! cloned; the figure-specific display name lives on the workload (and
//! is copied onto the lowered IR for diagnostics), not on the schedule.

use cubeaddr::NodeId;
use cubecomm::plan::{
    dragonfly_direct_plan_cached, dragonfly_swap_exchange_plan_cached, ecube_route_plan_cached,
    CommSchedule, PlanCache,
};
use cubesim::{MachineParams, PortMode};
use cubesync::sync::{Arc, OnceLock};
use cubetopo::{SwappedDragonfly, Topology};
use cubetranspose::two_dim::tr;

/// The process-wide plan cache feeding every figure workload. Sized to
/// hold all distinct parameter points of all figures at once (the four
/// figures use 31 distinct `(n, elems)` transpose plans).
pub fn plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| PlanCache::new(64))
}

/// One lintable workload: a schedule plus the machine it targets.
pub struct FigureWorkload {
    /// Workload name, e.g. `fig16/n10`.
    pub name: String,
    /// The static schedule (shared through [`plan_cache`]).
    pub schedule: Arc<CommSchedule>,
    /// The machine model of the figure (sets `B_m` for the packet rule).
    pub params: MachineParams,
}

/// The transpose permutation messages of the figures: one message
/// `x → tr(x)` of `elems` elements per off-diagonal node.
pub fn transpose_msgs(n: u32, elems: u64) -> Vec<(NodeId, NodeId, u64)> {
    let half = n / 2;
    (0..cubeaddr::num_nodes(n) as u64)
        .filter(|&x| tr(x, half) != x)
        .map(|x| (NodeId(x), NodeId(tr(x, half)), elems))
        .collect()
}

fn workload(
    figure: &str,
    n: u32,
    elems: u64,
    params: MachineParams,
    tag: String,
) -> FigureWorkload {
    let schedule = ecube_route_plan_cached(plan_cache(), n, &transpose_msgs(n, elems));
    FigureWorkload { name: format!("{figure}/{tag}"), schedule, params }
}

/// Figure 14(b): iPSC routing logic, all ports, `2^(m-n)` elements per
/// node, for `n ∈ {2, 4, 6}` and `m ∈ {8, 10, …, 16}`.
pub fn fig14b() -> Vec<FigureWorkload> {
    let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
    [2u32, 4, 6]
        .into_iter()
        .flat_map(|n| (8..=16u32).step_by(2).map(move |m| (n, m)))
        .map(|(n, m_log)| {
            let per = 1u64 << (m_log - n);
            workload("fig14b", n, per, params.clone(), format!("n{n}/m{m_log}"))
        })
        .collect()
}

/// Figure 16: Connection Machine, one element per processor,
/// `n ∈ {6, 8, …, 14}`.
pub fn fig16() -> Vec<FigureWorkload> {
    (6..=14u32)
        .step_by(2)
        .map(|n| workload("fig16", n, 1, MachineParams::connection_machine(), format!("n{n}")))
        .collect()
}

/// Figure 17: Connection Machine, `2^e` elements per processor for
/// `e ∈ {0, …, 5}`, `n ∈ {8, 10, 12}`.
pub fn fig17() -> Vec<FigureWorkload> {
    [8u32, 10, 12]
        .into_iter()
        .flat_map(|n| (0..=5u32).map(move |e| (n, e)))
        .map(|(n, e_log)| {
            workload(
                "fig17",
                n,
                1 << e_log,
                MachineParams::connection_machine(),
                format!("n{n}/e{e_log}"),
            )
        })
        .collect()
}

/// Figure 18: Connection Machine, fixed `2^m`-element matrices over
/// growing machines: `m ∈ {14, 16, 18}`, `n ∈ {8, …, min(14, m)}`.
pub fn fig18() -> Vec<FigureWorkload> {
    [14u32, 16, 18]
        .into_iter()
        .flat_map(|m| (8..=m.min(14)).step_by(2).map(move |n| (m, n)))
        .map(|(m_log, n)| {
            workload(
                "fig18",
                n,
                1 << (m_log - n),
                MachineParams::connection_machine(),
                format!("m{m_log}/n{n}"),
            )
        })
        .collect()
}

/// The n=16 CI smoke: one Connection-Machine transpose plan at the
/// scale the ROADMAP gated on fast construction (65 536 nodes, one
/// element per processor). Not part of [`FIGURES`] — CI invokes it by
/// name under a time bound (`scripts/ci.sh`).
pub fn n16_smoke() -> Vec<FigureWorkload> {
    vec![workload("n16-smoke", 16, 1, MachineParams::connection_machine(), "n16".into())]
}

/// The Swapped-Dragonfly CI smoke: both Draper planner variants on a
/// `D3(4,8)` (256 nodes, 11 ports per router) — the swap-exchange
/// all-to-all (one element per node pair) and direct routing of the
/// node permutation `x → (x·7 + 3) mod N`. Like [`n16_smoke`], not part
/// of [`FIGURES`]; CI lints it by name (`scripts/ci.sh`).
pub fn dragonfly_smoke() -> Vec<FigureWorkload> {
    let (k, m) = (4u32, 8u32);
    let d = SwappedDragonfly::new(k, m);
    let num = d.num_nodes() as u64;
    let params = MachineParams::intel_ipsc().with_ports(PortMode::AllPorts);
    let sizes: Vec<Vec<u64>> =
        (0..num).map(|s| (0..num).map(|t| u64::from(s != t)).collect()).collect();
    let msgs: Vec<(NodeId, NodeId, u64)> =
        (0..num).map(|x| (NodeId(x), NodeId((x * 7 + 3) % num), 4)).collect();
    vec![
        FigureWorkload {
            name: format!("dragonfly-smoke/swap-exchange/{}", d.label()),
            schedule: dragonfly_swap_exchange_plan_cached(plan_cache(), k, m, &sizes),
            params: params.clone(),
        },
        FigureWorkload {
            name: format!("dragonfly-smoke/direct/{}", d.label()),
            schedule: dragonfly_direct_plan_cached(plan_cache(), k, m, &msgs),
            params,
        },
    ]
}

/// Names of all lintable figures.
pub const FIGURES: [&str; 4] = ["fig14b", "fig16", "fig17", "fig18"];

/// Every name [`figure`] resolves — the figures plus the CI smoke
/// workloads — sorted, for `--list` and unknown-workload diagnostics.
pub fn workload_names() -> Vec<&'static str> {
    let mut names = FIGURES.to_vec();
    names.extend(["n16-smoke", "dragonfly-smoke"]);
    names.sort_unstable();
    names
}

/// The workloads of one figure, by name.
pub fn figure(name: &str) -> Option<Vec<FigureWorkload>> {
    match name {
        "fig14b" => Some(fig14b()),
        "fig16" => Some(fig16()),
        "fig17" => Some(fig17()),
        "fig18" => Some(fig18()),
        "n16-smoke" => Some(n16_smoke()),
        "dragonfly-smoke" => Some(dragonfly_smoke()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_resolves() {
        for name in FIGURES {
            assert!(figure(name).is_some());
            assert!(!figure(name).unwrap().is_empty());
        }
        assert!(figure("fig9").is_none());
        assert_eq!(figure("n16-smoke").unwrap().len(), 1);
        assert_eq!(figure("dragonfly-smoke").unwrap().len(), 2);
    }

    #[test]
    fn dragonfly_smoke_lints_clean() {
        for w in dragonfly_smoke() {
            let low = crate::ir::lower(&w.schedule, &w.params);
            let diags = crate::rules::check_all(&low, &w.params);
            assert!(diags.is_empty(), "{}: {}", w.name, diags[0]);
        }
    }

    #[test]
    fn repeated_figures_share_cached_plans() {
        let a = fig16();
        let b = fig16();
        for (wa, wb) in a.iter().zip(&b) {
            assert!(Arc::ptr_eq(&wa.schedule, &wb.schedule), "{} rebuilt", wa.name);
        }
        assert!(plan_cache().stats().hits >= a.len() as u64);
    }

    #[test]
    fn transpose_msgs_match_the_permutation() {
        let msgs = transpose_msgs(4, 3);
        // n = 4: tr swaps the two halves; fixed points are x with equal
        // halves (4 of 16), so 12 messages.
        assert_eq!(msgs.len(), 12);
        for (src, dst, elems) in msgs {
            assert_eq!(elems, 3);
            assert_ne!(src, dst);
            assert_eq!(tr(src.bits(), 2), dst.bits());
        }
    }
}
