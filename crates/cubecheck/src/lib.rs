//! Static analysis of Boolean-cube communication schedules.
//!
//! The paper's complexity claims all rest on *structural* properties of
//! the communication schedules — properties the simulator can only
//! witness dynamically, run by run. This crate proves them statically:
//!
//! 1. [`cubecomm::plan`] builders produce a [`CommSchedule`] — the
//!    schedule as data, no payloads, no simulator.
//! 2. [`ir::lower`] flattens it against a [`cubesim::MachineParams`]
//!    into per-round *link claims* `(round, src, dim, elems, packets)`.
//! 3. [`rules::check_all`] runs the five checkers; each violation is a
//!    structured [`diag::Diag`] naming the schedule, round, node, link,
//!    broken [`diag::Rule`] and the paper clause it contradicts.
//! 4. [`crossval::cross_validate`] ties the static story to the dynamic
//!    one: the lowered claims must coincide, round for round and link
//!    for link, with the [`cubesim::CommReport::link_history`] an actual
//!    execution records. Property tests enforce this on random schedules
//!    at multiple thread settings, so the checkers are guaranteed to be
//!    analyzing the schedules the engines really run.
//!
//! The `cubecheck` binary lints the figure workloads
//! ([`workloads`]) at the benchmarked cube sizes, so CI catches any
//! schedule regression before it shows up as a wrong curve.

pub mod crossval;
pub mod diag;
pub mod exec;
pub mod ir;
pub mod rules;
pub mod workloads;

pub use crossval::cross_validate;
pub use cubecomm::plan::CommSchedule;
pub use diag::{Diag, Rule};
pub use exec::run_schedule;
pub use ir::{lower, LinkClaim, Lowered};
pub use rules::check_all;
